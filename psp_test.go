package psp

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewDefaultFacade(t *testing.T) {
	fw, err := NewDefault(42)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Keywords() == nil {
		t.Fatal("framework missing keyword database")
	}
}

func TestFacadeSocialWorkflow(t *testing.T) {
	fw, err := NewDefault(42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Application: "excavator",
		Region:      RegionEurope,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := res.Index.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Topic != "DPF delete" {
		t.Errorf("top topic = %s, want DPF delete", top.Topic)
	}
	table := RenderSAITable(res.Index, "SAI")
	if !strings.Contains(table, "DPF delete") {
		t.Error("rendered SAI table misses the top topic")
	}
	chart, err := RenderSAIChart(res.Index, "chart")
	if err != nil || !strings.Contains(chart, "#") {
		t.Errorf("chart rendering failed: %v", err)
	}
}

func TestFacadeFinancialWorkflow(t *testing.T) {
	fw, err := NewDefault(42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunFinancial(FinancialInput{
		Category:    "dpf-tampering",
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  NonMonopolistic,
		Maker:       "TerraMach",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MV.Units() != 506160 {
		t.Errorf("MV = %s, want 506,160.00 EUR", res.MV)
	}
	summary := RenderFinancialSummary(res, "summary")
	if !strings.Contains(summary, "506,160.00 EUR") {
		t.Errorf("summary misses MV:\n%s", summary)
	}
	diagram, err := RenderBEPDiagram(res.Curve, "bep")
	if err != nil || !strings.Contains(diagram, "break-even point") {
		t.Errorf("BEP diagram failed: %v", err)
	}
}

func TestFacadeTARATypes(t *testing.T) {
	// The facade aliases must interoperate with the core workflow types.
	item := &Item{
		Name: "Gateway",
		Assets: []*Asset{{
			ID: "GW-FW", Name: "Gateway firmware",
			Properties: []SecurityProperty{PropertyIntegrity},
		}},
	}
	a := NewAnalysis(item)
	a.AddDamage(&DamageScenario{
		ID:       "DS-1",
		AssetIDs: []string{"GW-FW"},
		Impacts:  map[ImpactCategory]ImpactRating{CategorySafety: ImpactMajor},
	})
	a.AddThreat(&ThreatScenario{
		ID: "TS-1", Name: "Gateway reflash",
		DamageIDs: []string{"DS-1"},
		Property:  PropertyIntegrity,
		STRIDE:    Tampering,
		Vector:    VectorLocal,
	})
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Feasibility != FeasibilityLow {
		t.Errorf("results = %+v", results)
	}
	if got := RenderVectorTable(StandardVectorTable()); !strings.Contains(got, "Network") {
		t.Error("vector table rendering broken")
	}
	if got := RenderCALTable(StandardCALTable()); !strings.Contains(got, "CAL4") {
		t.Error("CAL table rendering broken")
	}
}

func TestFacadeRemoteClientPath(t *testing.T) {
	// The HTTP client path must be wirable purely through the facade.
	store, err := DefaultSocialStore(7)
	if err != nil {
		t.Fatal(err)
	}
	srv := newLocalServer(t, store)
	ds, err := DefaultMarketDataset()
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: NewSocialClient(srv), Market: ds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunSocial(context.Background(), SocialInput{
		Application:     "excavator",
		Region:          RegionEurope,
		Since:           time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		DisableLearning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Index.Entries) == 0 {
		t.Fatal("remote path returned empty index")
	}
}

func TestFacadeTopicTrend(t *testing.T) {
	fw, err := NewDefault(42)
	if err != nil {
		t.Fatal(err)
	}
	trend, err := fw.TopicTrend(context.Background(),
		[]string{"dpfdelete", "dpfoff", "dpfremoval"}, SocialInput{
			Until: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
		})
	if err != nil {
		t.Fatal(err)
	}
	if trend.Direction != TrendRising {
		t.Errorf("DPF trend = %v (slope %.3f), want rising", trend.Direction, trend.Slope)
	}
	chart, err := RenderTrendChart(trend, "DPF delete attraction")
	if err != nil || !strings.Contains(chart, "rising") {
		t.Errorf("trend chart failed: %v", err)
	}
}
