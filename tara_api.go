package psp

import (
	"io"

	"github.com/psp-framework/psp/internal/tara"
)

// ISO/SAE 21434 TARA types, re-exported from the tara engine.
type (
	// Analysis is a complete TARA work product.
	Analysis = tara.Analysis
	// Item is an item definition with its assets.
	Item = tara.Item
	// Asset is an item element with cybersecurity properties.
	Asset = tara.Asset
	// DamageScenario is an adverse consequence with SFOP impact ratings.
	DamageScenario = tara.DamageScenario
	// ThreatScenario is a potential cause of asset compromise.
	ThreatScenario = tara.ThreatScenario
	// ThreatResult is the per-threat risk determination outcome.
	ThreatResult = tara.ThreatResult
	// AttackPath is an ordered sequence of attack steps.
	AttackPath = tara.AttackPath
	// AttackStep is one step of an attack path.
	AttackStep = tara.AttackStep
	// AttackPotentialInput is an attack potential profile (Fig. 3).
	AttackPotentialInput = tara.AttackPotentialInput
	// VectorTable maps attack vectors to feasibility ratings (G.9).
	VectorTable = tara.VectorTable
	// CALTable is the CAL determination matrix (Fig. 6).
	CALTable = tara.CALTable
	// RiskMatrix maps impact × feasibility to risk values.
	RiskMatrix = tara.RiskMatrix

	// FeasibilityRating is the Very Low..High feasibility scale.
	FeasibilityRating = tara.FeasibilityRating
	// ImpactRating is the Negligible..Severe impact scale.
	ImpactRating = tara.ImpactRating
	// ImpactCategory is a SFOP damage dimension.
	ImpactCategory = tara.ImpactCategory
	// AttackVector is the Physical..Network access scale.
	AttackVector = tara.AttackVector
	// AttackerProfile classifies adversaries (Insider, Outsider, ...).
	AttackerProfile = tara.AttackerProfile
	// SecurityProperty is a protected asset property (C, I, A, ...).
	SecurityProperty = tara.SecurityProperty
	// STRIDECategory classifies threats by STRIDE.
	STRIDECategory = tara.STRIDECategory
	// CAL is a Cybersecurity Assurance Level.
	CAL = tara.CAL
	// RiskValue is the 1..5 risk level.
	RiskValue = tara.RiskValue
	// TreatmentOption is a risk treatment decision.
	TreatmentOption = tara.TreatmentOption
)

// Feasibility ratings.
const (
	FeasibilityVeryLow = tara.FeasibilityVeryLow
	FeasibilityLow     = tara.FeasibilityLow
	FeasibilityMedium  = tara.FeasibilityMedium
	FeasibilityHigh    = tara.FeasibilityHigh
)

// Impact ratings.
const (
	ImpactNegligible = tara.ImpactNegligible
	ImpactModerate   = tara.ImpactModerate
	ImpactMajor      = tara.ImpactMajor
	ImpactSevere     = tara.ImpactSevere
)

// Impact categories (SFOP).
const (
	CategorySafety      = tara.CategorySafety
	CategoryFinancial   = tara.CategoryFinancial
	CategoryOperational = tara.CategoryOperational
	CategoryPrivacy     = tara.CategoryPrivacy
)

// Attack vectors.
const (
	VectorPhysical = tara.VectorPhysical
	VectorLocal    = tara.VectorLocal
	VectorAdjacent = tara.VectorAdjacent
	VectorNetwork  = tara.VectorNetwork
)

// Attacker profiles.
const (
	ProfileInsider   = tara.ProfileInsider
	ProfileOutsider  = tara.ProfileOutsider
	ProfileRational  = tara.ProfileRational
	ProfileMalicious = tara.ProfileMalicious
	ProfileActive    = tara.ProfileActive
	ProfilePassive   = tara.ProfilePassive
	ProfileLocal     = tara.ProfileLocal
	ProfileRemote    = tara.ProfileRemote
)

// Security properties.
const (
	PropertyConfidentiality = tara.PropertyConfidentiality
	PropertyIntegrity       = tara.PropertyIntegrity
	PropertyAvailability    = tara.PropertyAvailability
	PropertyAuthenticity    = tara.PropertyAuthenticity
	PropertyAuthorization   = tara.PropertyAuthorization
	PropertyNonRepudiation  = tara.PropertyNonRepudiation
)

// STRIDE categories.
const (
	Spoofing              = tara.Spoofing
	Tampering             = tara.Tampering
	Repudiation           = tara.Repudiation
	InformationDisclosure = tara.InformationDisclosure
	DenialOfService       = tara.DenialOfService
	ElevationOfPrivilege  = tara.ElevationOfPrivilege
)

// Assurance levels.
const (
	CALNone = tara.CALNone
	CAL1    = tara.CAL1
	CAL2    = tara.CAL2
	CAL3    = tara.CAL3
	CAL4    = tara.CAL4
)

// Concept-phase types (§9.4).
type (
	// CybersecurityGoal is a concept-level requirement with a CAL.
	CybersecurityGoal = tara.CybersecurityGoal
	// CybersecurityClaim documents a retained or shared risk.
	CybersecurityClaim = tara.CybersecurityClaim
	// ConceptOutcome bundles goals and claims.
	ConceptOutcome = tara.ConceptOutcome
)

// DeriveConcept turns risk-determination results into cybersecurity
// goals (for reduced/avoided risks) and claims (for retained/shared
// ones).
func DeriveConcept(results []*ThreatResult) (*ConceptOutcome, error) {
	return tara.DeriveConcept(results)
}

// HEAVENS-style impact derivation (the model the paper cites as [15]).
type (
	// ImpactParams carries the four per-category levels (S/F/O/P, 0–3).
	ImpactParams = tara.ImpactParams
	// SafetyLevel follows ISO 26262 severity classes S0–S3.
	SafetyLevel = tara.SafetyLevel
	// FinancialLevel classifies economic damage F0–F3.
	FinancialLevel = tara.FinancialLevel
	// OperationalLevel classifies loss of function O0–O3.
	OperationalLevel = tara.OperationalLevel
	// PrivacyLevel classifies personal-data exposure P0–P3.
	PrivacyLevel = tara.PrivacyLevel
)

// DeriveImpacts converts HEAVENS-style parameter levels into the
// per-category impact map of a damage scenario.
func DeriveImpacts(p ImpactParams) (map[ImpactCategory]ImpactRating, error) {
	return tara.DeriveImpacts(p)
}

// NewDamageScenario builds a damage scenario with HEAVENS-derived
// impacts.
func NewDamageScenario(id, description string, assetIDs []string, p ImpactParams) (*DamageScenario, error) {
	return tara.NewDamageScenario(id, description, assetIDs, p)
}

// ReadAnalysisJSON deserializes a TARA work-product document.
func ReadAnalysisJSON(r io.Reader) (*Analysis, error) { return tara.ReadJSON(r) }

// Assessment-as-a-service: the incremental engine's planning API, the
// versioned mutation ops, and the multi-tenant registry behind the
// /v1/tara routes.
type (
	// TARAPlan is one planned incremental rating pass: the dirty threat
	// IDs to rate, then commit.
	TARAPlan = tara.Plan
	// TARAOp is one mutation of an analysis in the versioned tenant
	// mutation API.
	TARAOp = tara.Op
	// TARAOpKind enumerates the mutation kinds.
	TARAOpKind = tara.OpKind
	// TARARegistry is a multi-tenant collection of named analyses.
	TARARegistry = tara.Registry
	// TARATenant is one named analysis of a registry.
	TARATenant = tara.Tenant
	// TenantAssessment is an immutable published rating of one tenant.
	TenantAssessment = tara.TenantAssessment
	// TARAGenSpec parameterizes GenerateTARAAnalysis.
	TARAGenSpec = tara.GenSpec
)

// Mutation op kinds.
const (
	OpUpsertAsset    = tara.OpUpsertAsset
	OpRemoveAsset    = tara.OpRemoveAsset
	OpUpsertDamage   = tara.OpUpsertDamage
	OpRemoveDamage   = tara.OpRemoveDamage
	OpUpsertThreat   = tara.OpUpsertThreat
	OpRemoveThreat   = tara.OpRemoveThreat
	OpUpsertPath     = tara.OpUpsertPath
	OpRemovePath     = tara.OpRemovePath
	OpSetVectorModel = tara.OpSetVectorModel
	OpSetThreatTable = tara.OpSetThreatTable
)

// ErrTenantVersionMismatch reports an optimistic-concurrency conflict in
// TARATenant.MutateAt.
var ErrTenantVersionMismatch = tara.ErrVersionMismatch

// NewTARARegistry returns an empty tenant registry.
func NewTARARegistry() *TARARegistry { return tara.NewRegistry() }

// ApplyTARAOps applies mutation ops in order, returning how many were
// applied; on error the applied prefix stays in effect.
func ApplyTARAOps(a *Analysis, ops []TARAOp) (int, error) { return tara.ApplyOps(a, ops) }

// DecodeTARAOps parses a JSON array of mutation ops.
func DecodeTARAOps(r io.Reader) ([]TARAOp, error) { return tara.DecodeOps(r) }

// GenerateTARAAnalysis deterministically generates a synthetic analysis
// of the given shape — fixture fleets for tests and load experiments.
func GenerateTARAAnalysis(spec TARAGenSpec) (*Analysis, error) { return tara.GenerateAnalysis(spec) }

// NewAnalysis builds a TARA analysis with the standard's default models.
func NewAnalysis(item *Item) *Analysis { return tara.NewAnalysis(item) }

// StandardVectorTable returns the fixed G.9 attack-vector table
// (Fig. 5 / Fig. 9-A).
func StandardVectorTable() *VectorTable { return tara.StandardVectorTable() }

// StandardCALTable returns the CAL determination matrix (Fig. 6).
func StandardCALTable() *CALTable { return tara.StandardCALTable() }

// StandardRiskMatrix returns the informative risk matrix of Annex H.
func StandardRiskMatrix() *RiskMatrix { return tara.StandardRiskMatrix() }
