// Quickstart: build a PSP framework over the built-in reference corpus,
// compute the Social Attraction Index for European excavators, and print
// the ranking with the top threat's attack probability.
package main

import (
	"context"
	"fmt"
	"log"

	psp "github.com/psp-framework/psp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// NewDefault wires the deterministic reference corpus (seeded) and
	// the calibrated market dataset.
	fw, err := psp.NewDefault(42)
	if err != nil {
		return fmt.Errorf("build framework: %w", err)
	}

	// One call runs the Fig. 7 social workflow: keyword query,
	// auto-learning, SAI computation, insider/outsider classification.
	res, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Application: "excavator",
		Region:      psp.RegionEurope,
	})
	if err != nil {
		return fmt.Errorf("social workflow: %w", err)
	}

	fmt.Print(psp.RenderSAITable(res.Index, "Social Attraction Index — excavators, Europe"))

	top, err := res.Index.Top()
	if err != nil {
		return err
	}
	fmt.Printf("\nmost attractive insider attack: %s (probability %.1f%%, %d posts)\n",
		top.Topic, top.Probability*100, top.Posts)

	if len(res.Learned) > 0 {
		fmt.Println("\nkeywords auto-learned this run:")
		for topic, tags := range res.Learned {
			fmt.Printf("  %-22s %v\n", topic+":", tags)
		}
	}
	return nil
}
