// Fleet TARA: a full-vehicle risk assessment over the Fig. 4 reference
// architecture, with the social platform consumed over HTTP — the
// deployment shape of the paper's prototype (PSP as a service next to an
// external social API).
//
// The example starts an in-process sociald endpoint, points the
// framework's client at it, runs one TARA per safety-critical ECU with
// both static and PSP-retuned weights, and prints the fleet risk
// register before/after.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"runtime"

	psp "github.com/psp-framework/psp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Serve the reference corpus over HTTP, as sociald would.
	store, err := psp.DefaultSocialStore(42)
	if err != nil {
		return err
	}
	server := httptest.NewServer(psp.NewSocialServer(store, psp.NewRateLimiter(200, 100)).Handler())
	defer server.Close()

	ds, err := psp.DefaultMarketDataset()
	if err != nil {
		return err
	}
	fw, err := psp.New(psp.Config{
		Searcher: psp.NewSocialClient(server.URL),
		Market:   ds,
		// Over a remote platform the workflow is latency-bound, so fan
		// the keyword and threat queries out across parallel requests.
		Concurrency: 2 * runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return err
	}
	fmt.Printf("social platform: %s (%d posts)\n\n", server.URL, store.Len())

	// One insider tuning shared by the powertrain items.
	tuning, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Threats: []*psp.ThreatScenario{{
			ID: "TS-TUNE", Name: "Powertrain reprogramming",
			DamageIDs: []string{"DS-X"},
			Property:  psp.PropertyIntegrity,
			STRIDE:    psp.Tampering,
			Profiles:  []psp.AttackerProfile{psp.ProfileInsider},
			Vector:    psp.VectorPhysical,
			Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1", "dpfdelete", "egrremoval"},
		}},
	})
	if err != nil {
		return err
	}
	retuned := tuning.Tunings[0].Table

	items := fleetItems()
	for _, model := range []struct {
		label string
		table *psp.VectorTable
	}{
		{"static ISO/SAE 21434 G.9", psp.StandardVectorTable()},
		{"PSP-retuned insider weights", retuned},
	} {
		fmt.Printf("== fleet risk register — %s ==\n", model.label)
		for _, item := range items {
			item.analysis.VectorModel = model.table
			results, err := item.analysis.Run()
			if err != nil {
				return fmt.Errorf("item %s: %w", item.analysis.Item.Name, err)
			}
			for _, r := range results {
				fmt.Printf("  %-6s %-30s risk=%s (%-9s) CAL=%s\n",
					item.ecu, r.Threat.Name, r.Risk, r.Feasibility, r.CAL)
			}
		}
		fmt.Println()
	}
	return nil
}

type fleetItem struct {
	ecu      string
	analysis *psp.Analysis
}

// fleetItems builds one small TARA per safety-critical powertrain ECU of
// the reference architecture.
func fleetItems() []fleetItem {
	mk := func(ecu, name, threatName string, impact psp.ImpactRating) fleetItem {
		item := &psp.Item{
			Name: name,
			Assets: []*psp.Asset{{
				ID: ecu + "-FW", Name: name + " firmware",
				Properties: []psp.SecurityProperty{psp.PropertyIntegrity},
				ECU:        ecu,
			}},
		}
		a := psp.NewAnalysis(item)
		a.AddDamage(&psp.DamageScenario{
			ID:          "DS-1",
			Description: "tampered control function in the field",
			AssetIDs:    []string{ecu + "-FW"},
			Impacts: map[psp.ImpactCategory]psp.ImpactRating{
				psp.CategorySafety: impact,
			},
		})
		a.AddThreat(&psp.ThreatScenario{
			ID: "TS-1", Name: threatName,
			DamageIDs: []string{"DS-1"},
			AssetIDs:  []string{ecu + "-FW"},
			Property:  psp.PropertyIntegrity,
			STRIDE:    psp.Tampering,
			Profiles:  []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileLocal},
			Vector:    psp.VectorPhysical,
		})
		return fleetItem{ecu: ecu, analysis: a}
	}
	return []fleetItem{
		mk("ECM", "Engine Control Module", "calibration reflash", psp.ImpactMajor),
		mk("TCM", "Transmission Control Module", "shift map tampering", psp.ImpactModerate),
		mk("DEFC", "Diesel Exhaust Fluid Controller", "emission defeat", psp.ImpactMajor),
		mk("BCU", "Brake Control Unit", "brake map tampering", psp.ImpactSevere),
	}
}
