// Excavator DPF tampering: the paper's financial case study (Fig. 10,
// Fig. 11, Fig. 12, Equations 6 and 7).
//
// The example queries the social platform for excavator insider attacks
// in Europe (SAI ranking — DPF deletion comes out on top), then runs the
// financial workflow for the top attack: potential attacker estimation
// from sales data and annual reports, price mining of defeat-device
// listings, market value, break-even analysis and the adversary
// investment bound the anti-tampering architecture must withstand.
package main

import (
	"context"
	"fmt"
	"log"

	psp "github.com/psp-framework/psp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fw, err := psp.NewDefault(42)
	if err != nil {
		return err
	}

	// Step 1 — SAI ranking for "excavator, Europe" (Fig. 12).
	social, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Application: "excavator",
		Region:      psp.RegionEurope,
	})
	if err != nil {
		return err
	}
	chart, err := psp.RenderSAIChart(social.Index, `SAI — query "excavator, Europe"`)
	if err != nil {
		return err
	}
	fmt.Print(chart)
	top, err := social.Index.Top()
	if err != nil {
		return err
	}
	fmt.Printf("\ntop insider attack: %s → running the financial model for it\n\n", top.Topic)

	// Step 2 — financial workflow (Fig. 10) for DPF tampering.
	res, err := fw.RunFinancial(psp.FinancialInput{
		Category:    "dpf-tampering",
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  psp.NonMonopolistic,
		Maker:       "TerraMach",
	})
	if err != nil {
		return err
	}
	fmt.Print(psp.RenderFinancialSummary(res, "Financial feasibility — DPF tampering, excavators, Europe"))

	// The two headline numbers of the paper.
	fmt.Printf("\nEquation 6: MV = %d × %s = %s per year\n", res.PAE, res.PPIA, res.MV)
	fmt.Printf("Equation 7: the product must resist an adversary investment of %s\n\n", res.SecurityBudget)

	// Step 3 — break-even diagram (Fig. 11).
	diagram, err := psp.RenderBEPDiagram(res.Curve, "Break-even diagram (per attacker)")
	if err != nil {
		return err
	}
	fmt.Print(diagram)

	// Price survey detail: the clusters behind PPIA.
	fmt.Println("\nmined price bands (devices and services):")
	for _, c := range res.Survey.Clusters {
		fmt.Printf("  %7.2f EUR × %d listings\n", c.Center, c.Size())
	}
	fmt.Printf("dominant band vendors (n of Eq. 3): %d\n", res.Survey.CompetitorCount())
	return nil
}
