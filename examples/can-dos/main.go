// CAN DoS and OBD reprogramming: the powertrain attacks behind the
// paper's Section II argument, run on the CAN bus simulator.
//
// Part 1 measures a signal-extinction style denial of service against
// the ECM torque frame: Severe safety impact, trivially feasible with
// physical bus access — yet the ISO/SAE 21434 CAL table caps
// physical-vector goals at CAL2, the exact mismatch the paper
// criticizes.
//
// Part 2 executes an ECM reprogramming through a UDS-style diagnostic
// session with a leaked seed/key secret: the local/OBD attack whose
// feasibility the PSP social tuning promotes from Low to High.
package main

import (
	"fmt"
	"log"

	"github.com/psp-framework/psp/internal/canbus"
	"github.com/psp-framework/psp/internal/tara"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := dosExperiment(); err != nil {
		return err
	}
	return flashExperiment()
}

func dosExperiment() error {
	fmt.Println("== Part 1: signal-extinction DoS on the powertrain CAN ==")
	bus := canbus.NewBus()
	torque := canbus.NewPeriodicSender("ECM-torque",
		canbus.Frame{ID: 0x0C0, Data: []byte{0x10, 0x27}}, 2)
	attacker := canbus.NewFlooder("attacker", canbus.Frame{ID: 0x000})
	attacker.Active = false // attack starts later
	if err := bus.Attach(torque, attacker); err != nil {
		return err
	}

	if err := bus.Run(200); err != nil {
		return err
	}
	baseline := torque.DeliveryRate()

	attacker.Active = true
	g0, d0, _ := torque.Stats()
	if err := bus.Run(200); err != nil {
		return err
	}
	g1, d1, _ := torque.Stats()
	underAttack := float64(d1-d0) / float64(g1-g0)

	fmt.Printf("torque frame delivery: %.0f%% baseline → %.0f%% under attack\n",
		baseline*100, underAttack*100)

	// The TARA verdict for this scenario under the standard models.
	impact := tara.ImpactSevere // loss of torque control while driving
	cal, err := tara.StandardCALTable().Determine(impact, tara.VectorPhysical)
	if err != nil {
		return err
	}
	feas, err := tara.StandardVectorTable().Rating(tara.VectorPhysical)
	if err != nil {
		return err
	}
	fmt.Printf("standard TARA: impact=%s, vector=Physical → feasibility=%s, CAL=%s\n",
		impact, feas, cal)
	fmt.Printf("→ a %.0f%% outage of a safety-critical signal rates '%s' feasibility and\n",
		(1-underAttack)*100, feas)
	fmt.Println("  caps at CAL2 — the mismatch the PSP framework corrects.")

	// The attack potential-based model already disagrees with G.9.
	potential, err := tara.StandardPotentialWeights().Potential(tara.AttackPotentialInput{
		Time: tara.TimeOneDay, Expertise: tara.ExpertiseProficient,
		Knowledge: tara.KnowledgePublic, Window: tara.WindowEasy,
		Equipment: tara.EquipmentStandard,
	})
	if err != nil {
		return err
	}
	fmt.Printf("attack potential of the same attack: %d → %s (models disagree)\n\n",
		potential, tara.StandardPotentialThresholds().Rating(potential))
	return nil
}

func flashExperiment() error {
	fmt.Println("== Part 2: ECM reprogramming via OBD with a leaked secret ==")
	secret := []byte{0xA5, 0x5A} // leaked on the tuning forums
	stock := []byte("STOCK-CAL-v1")
	tuned := []byte("STAGE1-CAL-power+18%")

	bus := canbus.NewBus()
	ecm := canbus.NewECU("ECM", 0x7E0, 0x7E8, secret, stock)
	tool := canbus.NewTester("obd-flasher", 0x7E8, canbus.FlashScript(0x7E0, secret, tuned))
	if err := bus.Attach(ecm, tool); err != nil {
		return err
	}
	slots, err := canbus.RunUntilDone(bus, tool, 1000)
	if err != nil {
		return err
	}
	if tool.Failed() != 0 {
		return fmt.Errorf("flash failed with NRC 0x%02X", tool.Failed())
	}
	fmt.Printf("firmware before: %q\n", stock)
	fmt.Printf("firmware after:  %q (flashed in %d bus slots)\n", ecm.Firmware, slots)
	fmt.Println("→ with scene-leaked secrets, OBD reprogramming is a routine local attack;")
	fmt.Println("  the PSP-retuned table rates it High instead of G.9's Low.")
	return nil
}
