// ECM reprogramming: the paper's running example (Figs. 8 and 9).
//
// The example builds the ECM reprogramming threat scenario, asks the PSP
// framework to retune the ISO/SAE 21434 attack-vector table from social
// data over two time windows, and shows how the risk verdict of a full
// TARA flips once the retuned weights are installed:
//
//   - static G.9: physical attacks rate Very Low → risk R1 (Retain);
//   - PSP all-time: physical attacks rate High → risk R4 (Share);
//   - PSP since 2022: local (OBD) attacks take over — the trend
//     inversion the paper confirms against industry reports.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	psp "github.com/psp-framework/psp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func ecmThreat() *psp.ThreatScenario {
	return &psp.ThreatScenario{
		ID: "TS-01", Name: "ECM reprogramming",
		Description: "Owner-approved reflash of calibration maps (chip tuning, defeat devices)",
		DamageIDs:   []string{"DS-01"},
		Property:    psp.PropertyIntegrity,
		STRIDE:      psp.Tampering,
		Profiles:    []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileRational, psp.ProfileLocal},
		Vector:      psp.VectorPhysical,
		Keywords:    []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

func run() error {
	fw, err := psp.NewDefault(42)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Window 1: the full corpus (Fig. 9-B).
	allTime, err := fw.RunSocial(ctx, psp.SocialInput{
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	fmt.Print(psp.RenderTuningComparison(allTime.OutsiderTable, allTime.Tunings[0]))

	// Window 2: posts since 2022 only (Fig. 9-C).
	recent, err := fw.RunSocial(ctx, psp.SocialInput{
		Since:   time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	fmt.Println("\nTime-window sensitivity (Fig. 9-C, data since 2022):")
	fmt.Print(psp.RenderVectorTable(recent.Tunings[0].Table))

	// Run the TARA twice: static weights, then PSP weights.
	for _, cfg := range []struct {
		label string
		table *psp.VectorTable
	}{
		{"static ISO/SAE 21434 G.9", psp.StandardVectorTable()},
		{"PSP-retuned (all time)", allTime.Tunings[0].Table},
	} {
		analysis := buildAnalysis()
		analysis.VectorModel = cfg.table
		results, err := analysis.Run()
		if err != nil {
			return err
		}
		fmt.Printf("\nTARA verdicts with %s:\n", cfg.label)
		for _, r := range results {
			fmt.Printf("  %-20s feasibility=%-9s risk=%s treatment=%s\n",
				r.Threat.Name, r.Feasibility, r.Risk, r.Treatment)
		}
	}
	return nil
}

func buildAnalysis() *psp.Analysis {
	item := &psp.Item{
		Name: "Engine Control Module",
		Assets: []*psp.Asset{{
			ID: "ECM-FW", Name: "ECM firmware and calibration maps",
			Properties: []psp.SecurityProperty{psp.PropertyIntegrity},
			ECU:        "ECM",
		}},
	}
	a := psp.NewAnalysis(item)
	a.AddDamage(&psp.DamageScenario{
		ID:          "DS-01",
		Description: "Emission controls defeated; warranty and compliance exposure",
		AssetIDs:    []string{"ECM-FW"},
		Impacts: map[psp.ImpactCategory]psp.ImpactRating{
			psp.CategorySafety:    psp.ImpactModerate,
			psp.CategoryFinancial: psp.ImpactMajor,
		},
	})
	a.AddThreat(ecmThreat())
	a.AddPath(&psp.AttackPath{
		ID: "AP-01", ThreatID: "TS-01",
		Steps: []psp.AttackStep{
			{Description: "access cabin OBD port", Vector: psp.VectorLocal},
			{Description: "bench-flash modified calibration", Vector: psp.VectorPhysical},
		},
	})
	return a
}
