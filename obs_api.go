package psp

import (
	"io"
	"log/slog"
	"net/http"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/monitor"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// Observability types, re-exported from the obs core. The registry and
// its recorders are allocation-free and lock-free on the hot path:
// attaching metrics to a store, monitor or WAL does not add locks to
// the instrumented code.
type (
	// MetricsRegistry collects named metric families and renders them in
	// the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// MetricsCounter is a monotonically increasing atomic counter.
	MetricsCounter = obs.Counter
	// MetricsGauge is an atomic last-value gauge.
	MetricsGauge = obs.Gauge
	// MetricsHistogram is a fixed-bucket atomic histogram with
	// exposition-time quantile estimation.
	MetricsHistogram = obs.Histogram
	// HTTPMetrics instruments HTTP routes: request IDs, per-route
	// status-class counters, latency histograms and access logging.
	HTTPMetrics = obs.HTTPMetrics

	// SocialStoreMetrics is the social store's recording surface
	// (psp_store_* and, through its WAL field, psp_wal_*). Attach with
	// SocialStore.SetMetrics or SocialDurableOptions.Metrics.
	SocialStoreMetrics = social.StoreMetrics
	// SocialStoreStats is a typed point-in-time snapshot of a store
	// (SocialStore.Stats): corpus size, shard count, search shard
	// visits, changefeed backlog and WAL floors.
	SocialStoreStats = social.StoreStats
	// WALMetrics is the write-ahead log's recording surface: append and
	// fsync latency, group-commit coalescing, segment rolls.
	WALMetrics = durable.LogMetrics
	// MonitorMetrics is the social monitor's recording surface
	// (psp_monitor_*). Attach with MonitorConfig.Metrics.
	MonitorMetrics = monitor.Metrics
	// TARAMonitorMetrics is the TARA fleet monitor's recording surface
	// (psp_tara_*). Attach with TARAMonitorConfig.Metrics.
	TARAMonitorMetrics = monitor.TARAMetrics
	// TARARegistryStats is a typed snapshot of a tenant registry
	// (TARARegistry.Stats): fleet size, dirty backlog and the cumulative
	// engine rating-call counter demonstrating incremental re-rating.
	TARARegistryStats = tara.RegistryStats

	// Tracer records spans into a bounded lock-free ring with head-based
	// sampling; export with Tracer.Handler (GET /v1/trace). See
	// internal/obs for the tracing model.
	Tracer = obs.Tracer
	// TracerOptions configures a Tracer: ring capacity, probabilistic
	// sample rate, slow-span threshold, logger and metrics registry.
	TracerOptions = obs.TracerOptions
	// Span is one timed operation in a trace, carrying cost-attribution
	// attributes and point-in-time events. Nil spans are safe no-ops.
	Span = obs.Span
)

// MetricsContentType is the Content-Type of the Prometheus text
// exposition served by MetricsRegistry.Handler and GET /v1/metrics.
const MetricsContentType = obs.ContentType

// RequestIDHeader carries a request's correlation ID; inbound values
// are honored, absent ones minted by the HTTP middleware.
const RequestIDHeader = obs.RequestIDHeader

// TraceparentHeader is the W3C trace-context header the HTTP middleware
// extracts and SocialClient injects, stitching pspd's server spans and
// sociald's backend spans into one distributed trace.
const TraceparentHeader = obs.TraceparentHeader

// Version identifies this build of the library in psp_build_info and
// daemon startup logs.
const Version = "0.10.0"

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSocialStoreMetrics registers the psp_store_* and psp_wal_* families
// in reg and returns the surface to attach to one store.
func NewSocialStoreMetrics(reg *MetricsRegistry) *SocialStoreMetrics {
	return social.NewStoreMetrics(reg)
}

// NewMonitorMetrics registers the psp_monitor_* family in reg.
func NewMonitorMetrics(reg *MetricsRegistry) *MonitorMetrics { return monitor.NewMetrics(reg) }

// NewTARAMonitorMetrics registers the psp_tara_* family in reg.
func NewTARAMonitorMetrics(reg *MetricsRegistry) *TARAMonitorMetrics {
	return monitor.NewTARAMetrics(reg)
}

// NewHTTPMetrics registers the psp_http_* family in reg and returns
// route-wrapping middleware; logger (nil = discard) receives access
// logs carrying the request ID.
func NewHTTPMetrics(reg *MetricsRegistry, logger *slog.Logger) *HTTPMetrics {
	return obs.NewHTTPMetrics(reg, logger)
}

// MetricsHandler serves a registry's Prometheus exposition over GET.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// PprofHandler serves net/http/pprof; mount it at /debug/pprof/. The
// daemons gate it behind their -pprof flag — it has no auth.
func PprofHandler() http.Handler { return obs.PprofHandler() }

// NewTracer builds a span tracer. Wire it everywhere one request
// travels: SocialStore.SetTracer, MonitorConfig.Tracer,
// TARAMonitorConfig.Tracer, MultiOptions.Tracer,
// HTTPMetrics.WithTracer (or MonitorAPI.WithTracing) — spans started
// by any of them join the same trace through the context.
func NewTracer(opts TracerOptions) *Tracer { return obs.NewTracer(opts) }

// TraceHandler serves a tracer's recorded spans as JSON over GET:
// ?trace_id= looks one trace up, ?limit= bounds the newest-first list.
func TraceHandler(t *Tracer) http.Handler { return t.Handler() }

// RegisterBuildInfo registers psp_build_info (version, go and VCS
// revision labels) plus process start-time/uptime gauges in reg.
func RegisterBuildInfo(reg *MetricsRegistry, version string) {
	obs.RegisterBuildInfo(reg, version)
}

// WriteMetrics renders a registry's Prometheus text exposition to w.
func WriteMetrics(w io.Writer, reg *MetricsRegistry) error { return reg.WritePrometheus(w) }

// NopLogger returns a logger that discards everything — the default
// wherever a *slog.Logger is optional.
func NopLogger() *slog.Logger { return obs.NopLogger() }
