package psp

import (
	"context"
	"net/http"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/monitor"
	"github.com/psp-framework/psp/internal/social"
)

// Framework is the PSP framework instance; see core.Framework.
type Framework = core.Framework

// Config wires the framework's dependencies and tunables, including
// Concurrency, the worker-pool width of the social workflow's query
// fan-out (0 defaults to runtime.GOMAXPROCS(0); 1 is sequential).
type Config = core.Config

// Workflow inputs and outputs (Fig. 7 and Fig. 10 of the paper).
type (
	// SocialInput parameterizes the social workflow.
	SocialInput = core.SocialInput
	// SocialResult is the social workflow output.
	SocialResult = core.SocialResult
	// ThreatTuning is the per-threat regenerated weight table.
	ThreatTuning = core.ThreatTuning
	// FinancialInput parameterizes the financial workflow.
	FinancialInput = core.FinancialInput
	// FinancialResult is the financial workflow output.
	FinancialResult = core.FinancialResult
	// AdversaryProfile carries the Equation 4 fixed-cost terms.
	AdversaryProfile = core.AdversaryProfile
	// KeywordDB is the attack keyword database.
	KeywordDB = core.KeywordDB
	// KeywordGroup is one attack topic with its hashtags.
	KeywordGroup = core.KeywordGroup
)

// New builds a Framework from an explicit configuration.
func New(cfg Config) (*Framework, error) { return core.New(cfg) }

// NewDefault builds a Framework over the built-in reference corpus
// (seeded deterministically) and the calibrated market dataset — the
// configuration that reproduces the paper's case studies.
func NewDefault(seed int64) (*Framework, error) {
	store, err := social.DefaultStore(seed)
	if err != nil {
		return nil, err
	}
	ds, err := market.DefaultDataset()
	if err != nil {
		return nil, err
	}
	return core.New(Config{Searcher: store, Market: ds})
}

// NewKeywordDB builds a keyword database from topic groups.
func NewKeywordDB(groups []KeywordGroup) (*KeywordDB, error) {
	return core.NewKeywordDB(groups)
}

// DefaultKeywordDB returns the built-in keyword database seeded with the
// paper's first-iteration hashtags.
func DefaultKeywordDB() (*KeywordDB, error) { return core.DefaultKeywordDB() }

// DefaultAdversaryProfile returns the default Equation 4 adversary
// profile (one work-year at 60 EUR/h plus lab depreciation).
func DefaultAdversaryProfile() *AdversaryProfile { return core.DefaultAdversaryProfile() }

// Continuous monitoring (ISO/SAE 21434 Clause 8): the changefeed →
// scheduler → cached-assessment subsystem behind the pspd daemon.
type (
	// ResultCache backs incremental re-assessment: cached platform
	// listings with exact invalidation plus per-slice memos of the
	// workflow's derivations. Pass to Framework.RunSocialDelta.
	ResultCache = core.ResultCache
	// SocialQueryCache caches drained platform listings behind the
	// Searcher interface.
	SocialQueryCache = core.QueryCache
	// DirtySet summarizes which topics and threats an ingest delta can
	// affect.
	DirtySet = core.DirtySet
	// Monitor schedules incremental re-assessment over a store
	// changefeed.
	Monitor = monitor.Monitor
	// MonitorConfig wires a Monitor.
	MonitorConfig = monitor.Config
	// Assessment is one published risk snapshot with freshness metadata.
	Assessment = monitor.Assessment
	// MonitorAPI serves a Monitor over HTTP (ingest + assessment +
	// health).
	MonitorAPI = monitor.API
	// MonitorState is a monitor's persisted warm-restart image: the
	// serialized assessment, the listing cache's fill identities, and
	// the durable store cursor the image was taken at.
	MonitorState = monitor.State
	// MonitorStateStore persists and restores MonitorState
	// (MonitorConfig.State).
	MonitorStateStore = monitor.StateStore
	// SocialResultState is the JSON-serializable form of a workflow
	// result (core.ExportResult / core.RestoreResult wired through the
	// monitor's state).
	SocialResultState = core.ResultState
	// TARAMonitor continuously re-rates the dirty tenants of a TARA
	// registry, optionally bridged to a social Monitor's threat tunings.
	TARAMonitor = monitor.TARAMonitor
	// TARAMonitorConfig wires a TARAMonitor.
	TARAMonitorConfig = monitor.TARAConfig
)

// NewResultCache builds a result cache over a platform backend.
func NewResultCache(backend Searcher) *ResultCache { return core.NewResultCache(backend) }

// NewSocialQueryCache wraps a platform behind a listing cache.
func NewSocialQueryCache(backend Searcher) *SocialQueryCache { return core.NewQueryCache(backend) }

// NewMonitor validates the configuration and builds a Monitor; drive it
// with Run and read it with Assessment/WaitFor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return monitor.New(cfg) }

// NewMonitorAPI wraps a monitor in its HTTP API. Chain WithTARA to add
// the /v1/tara multi-tenant routes.
func NewMonitorAPI(m *Monitor) *MonitorAPI { return monitor.NewAPI(m) }

// NewTARAMonitor validates the configuration and builds a TARAMonitor;
// drive it with Run and read tenants through the registry.
func NewTARAMonitor(cfg TARAMonitorConfig) (*TARAMonitor, error) { return monitor.NewTARAMonitor(cfg) }

// NewMonitorFileState persists monitor state in one JSON file, replaced
// atomically on every save. Give it to MonitorConfig.State (over a
// store opened with OpenSocialStore) and a restarted monitor serves its
// previous assessment immediately, then catches up with an incremental
// delta run instead of a cold full workflow.
func NewMonitorFileState(path string) MonitorStateStore { return monitor.NewFileStateStore(path) }

// ListenAndServeGraceful runs an HTTP server until ctx is cancelled,
// then drains in-flight requests (bounded by drainTimeout; ≤ 0 means
// 5 s) — the SIGINT/SIGTERM shutdown path shared by pspd and sociald.
func ListenAndServeGraceful(ctx context.Context, srv *http.Server, drainTimeout time.Duration) error {
	return monitor.ListenAndServe(ctx, srv, drainTimeout)
}
