// Package psp is the public facade of the PSP framework — an
// implementation of "PSP Framework: A novel risk assessment method in
// compliance with ISO/SAE-21434" (Oberti, Sanchez, Savino, Parisi,
// Di Carlo; DSN 2023).
//
// The PSP framework augments the static Threat Analysis and Risk
// Assessment (TARA) models of ISO/SAE 21434 with two dynamic inputs:
//
//   - social sentiment: a Social Attraction Index (SAI) computed over
//     attack-related social-media posts retunes the standard's
//     attack-vector feasibility tables for insider threat scenarios; and
//   - financial exposure: market value, break-even and adversary
//     fixed-cost equations turn market data into an attack feasibility
//     rating and a security budget the product must withstand.
//
// # Quick start
//
//	fw, err := psp.NewDefault(42) // reference corpus + market dataset
//	if err != nil { ... }
//	res, err := fw.RunSocial(ctx, psp.SocialInput{
//	    Application: "excavator",
//	    Region:      psp.RegionEurope,
//	})
//	top, _ := res.Index.Top() // "DPF delete"
//
// The facade re-exports the domain types of the internal packages
// (tara, social, sai, finance, market, core, report) so downstream users
// program against a single import path. Everything is deterministic:
// stochastic components take explicit seeds and no library code calls
// time.Now.
//
// # Scaling
//
// The social workflow's platform queries fan out across a bounded
// worker pool — set Config.Concurrency (default GOMAXPROCS, 1 for
// strictly sequential) to overlap round trips to a remote platform.
// Results are deterministic at any setting. The in-process store serves
// term-filtered queries from an inverted term index, and federated
// searches (NewMultiPlatform) query every backend concurrently.
package psp
