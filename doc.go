// Package psp is the public facade of the PSP framework — an
// implementation of "PSP Framework: A novel risk assessment method in
// compliance with ISO/SAE-21434" (Oberti, Sanchez, Savino, Parisi,
// Di Carlo; DSN 2023).
//
// The PSP framework augments the static Threat Analysis and Risk
// Assessment (TARA) models of ISO/SAE 21434 with two dynamic inputs:
//
//   - social sentiment: a Social Attraction Index (SAI) computed over
//     attack-related social-media posts retunes the standard's
//     attack-vector feasibility tables for insider threat scenarios; and
//   - financial exposure: market value, break-even and adversary
//     fixed-cost equations turn market data into an attack feasibility
//     rating and a security budget the product must withstand.
//
// # Quick start
//
//	fw, err := psp.NewDefault(42) // reference corpus + market dataset
//	if err != nil { ... }
//	res, err := fw.RunSocial(ctx, psp.SocialInput{
//	    Application: "excavator",
//	    Region:      psp.RegionEurope,
//	})
//	top, _ := res.Index.Top() // "DPF delete"
//
// The facade re-exports the domain types of the internal packages
// (tara, social, sai, finance, market, core, report) so downstream users
// program against a single import path. Everything is deterministic:
// stochastic components take explicit seeds and no library code calls
// time.Now.
//
// # Scaling
//
// The social workflow's platform queries fan out across a bounded
// worker pool — set Config.Concurrency (default GOMAXPROCS, 1 for
// strictly sequential) to overlap round trips to a remote platform.
// Results are deterministic at any setting. The in-process store
// stripes its corpus across shards keyed by CreatedAt time bucket
// (NewSocialStoreShards; the daemons expose -shards) and serves reads
// entirely lock-free: each shard publishes an immutable copy-on-write
// snapshot of its time, tag and term indices behind an atomic pointer,
// writers build successors aside and commit with one pointer swap, so
// a search never blocks a writer and a committing writer never stalls
// a search. Duplicate detection runs on a hash-striped ID registry —
// no store-global lock on the ingest path. Queries whose Since/Until
// window spans fewer time buckets than there are stripes visit only
// the stripes those buckets occupy (window→stripe pruning), and
// term-filtered queries walk an inverted term index with tag unions
// via a k-way merge of sorted postings. Federated searches
// (NewMultiPlatform) query every backend concurrently. Listings page
// with keyset cursors (resume after a (CreatedAt, ID) key) and stream:
// every shard seeks its sorted indices to the cursor by binary search
// and the page merge stops at MaxResults+1 posts, so a page costs
// O(page + seek) rather than O(matches) — and queries that do not need
// Page.TotalMatches set Query.SkipTotal to skip the count walk
// entirely. Pagination stays stable while posts are ingested
// concurrently; the offset tokens of earlier releases are retired.
// Shard count never changes results — listings are byte-identical at
// any setting.
//
// # Continuous monitoring
//
// ISO/SAE 21434 Clause 8 frames risk assessment as an ongoing
// activity, and the monitoring subsystem makes the batch workflow
// continuous: SocialStore.Watch exposes a changefeed of ingested
// posts, a Monitor (NewMonitor) tails it, debounces, classifies the
// delta into the affected keyword topics and threats (DirtySet), and
// re-runs just the dirty slice of the workflow through a ResultCache —
// cached listings with exact invalidation plus memoized per-topic
// co-occurrence graphs, SAI entries and threat tunings. Incremental
// refreshes are provably identical to a cold RunSocial over the merged
// corpus, at a fraction of the work (see Framework.RunSocialDelta).
// The pspd daemon serves the resulting Assessment over HTTP — ingest,
// cached SAI/TARA results with freshness metadata, health — with
// graceful shutdown via ListenAndServeGraceful. GET /v1/assessment
// answers conditional requests (ETag keyed on the assessment
// generation / If-None-Match → 304), so fleet dashboards poll for free
// between rating changes.
//
// # Multi-tenant TARA
//
// The rating engine itself is incremental and multi-tenant. An
// Analysis validates once, tracks dirty threats through its typed
// mutation surface, and re-rates only those on the next Run — with
// unchanged threats served as pointer-identical memoized results, so
// an incremental re-run is byte-identical to a cold run at a fraction
// of the cost. A TARARegistry (NewTARARegistry) hosts one versioned
// Tenant per item or ECU: mutations are atomic closures with optional
// compare-and-set on the model version (ErrTenantVersionMismatch), and
// each rating pass publishes an immutable TenantAssessment snapshot
// lock-free. A TARAMonitor (NewTARAMonitor) keeps the whole fleet
// fresh: it debounces tenant mutations and social assessment
// generations, re-rates only dirty tenants on the shared worker pool,
// and applies social threat tunings tenant-selectively. pspd serves it
// under /v1/tara — tenant directory, per-tenant assessments with
// ETag/304 polling, JSON op mutations with expect_version → 409, PUT/
// DELETE tenant lifecycle — and boots a reference fleet derived from
// the paper's Fig. 4 vehicle architecture (ReferenceArchitecture,
// DeriveTARARegistry): one tenant per ECU with topology-derived attack
// paths whose content-addressed identities keep memoized ratings
// stable across topology edits (SyncTARAPaths).
//
// # Durability
//
// Clause 8 monitoring only counts if it survives restarts, so the
// store and the monitor both persist. OpenSocialStore runs a store on
// a crash-safe engine (internal/durable): every Add appends to its
// time-bucket stripe's segmented write-ahead log — CRC-framed records,
// group commit, one fsync acknowledging every append waiting on that
// stripe — before it touches an index, a background pass compacts the
// live store into atomic JSON Lines snapshots and truncates old WAL
// segments, and reopening the directory recovers snapshot + WAL tail
// (torn tails truncated, never fatal) into listings byte-identical to
// the acknowledged pre-crash state. The monitor persists its own state
// alongside (MonitorConfig.State, NewMonitorFileState): the serialized
// assessment, the listing cache's fill identities, and the store
// cursor. A restarted pspd therefore serves its previous assessment
// immediately — same generation, same ETag — and catches up with one
// incremental delta run over the posts ingested past the cursor
// instead of a cold full workflow. The daemons expose all of this as
// -data-dir; snapshot/corpus dumps (WriteSocialPostsFile,
// sociald -dump) are atomic — temp file, fsync, rename — so no crash
// can leave a half-written corpus.
//
// # Observability
//
// Every stage of the pipeline is instrumented through a
// zero-dependency metrics core (internal/obs, re-exported as
// MetricsRegistry and friends) that matches the store's lock-free
// ethos: counters and gauges are single atomics, histograms are
// fixed-bucket atomic arrays with exposition-time p50/p99 estimation,
// and the registry publishes immutable copy-on-write snapshots so a
// scrape never blocks recording. Attach a surface to a store
// (SocialStore.SetMetrics, SocialDurableOptions.Metrics — psp_store_*
// and psp_wal_*), a monitor (MonitorConfig.Metrics — psp_monitor_*),
// or a TARA fleet (TARAMonitorConfig.Metrics — psp_tara_*), and serve
// it all as a Prometheus text exposition (MetricsHandler; pspd and
// sociald mount GET /v1/metrics). HTTP routes wrap in NewHTTPMetrics
// middleware — per-route status-class counters, latency histograms,
// X-Request-ID correlation flowing into structured log/slog lines —
// and the same state is available programmatically as typed snapshots
// (SocialStore.Stats, TARARegistry.Stats). pspd separates liveness
// (/v1/healthz, always 200) from readiness (/v1/readyz, 503 until the
// initial assessment and TARA rating pass land). The instrumented hot
// paths stay within a few percent of bare (BENCH_7.json).
//
// # Distributed tracing
//
// On top of the metrics core sits a zero-dependency span tracer
// (NewTracer) with per-query cost attribution across the whole
// pipeline. Spans thread through context.Context, record into a
// bounded lock-free ring, and sample at the head: the keep/drop coin
// is flipped once per root (TracerOptions.SampleRate; the daemons
// expose -trace-sample) and inherited by children, while failed
// spans, spans over the slow threshold (-slow-ms) and force-sampled
// spans are always kept — and every finished span, sampled or not,
// feeds the psp_trace_* metrics. Traces cross the federation hop via
// the W3C traceparent header: the HTTP middleware continues an
// inbound header and the social client injects one per attempt, so a
// federated page through pspd and the sociald backends it queries is
// one trace, each backend's server span retrievable from its own
// GET /v1/trace endpoint by the shared trace ID. Attribution covers
// every stage — ingest (store.add posts/inserted, wal.append
// stripes/records/group size), search (store.search stripes visited,
// postings scanned, delta size), federation (multi.search and
// per-backend multi.backend spans with retry, breaker-skip and
// degraded-page decisions as events), and the asynchronous tail: the
// monitor's debounced flush links into the ingest trace that
// triggered it (delta size, invalidated fills, dirty topics/threats)
// and each tenant re-rate records a tara.rate span (dirty threats,
// rating calls). Wire it with SocialStore.SetTracer,
// MonitorConfig.Tracer, TARAMonitorConfig.Tracer, MultiOptions.Tracer
// and NewHTTPMetrics().WithTracer / MonitorAPI.WithTracing; spans
// serve as JSON from GET /v1/trace (TraceHandler). Unsampled spans
// cost one atomic coin flip, keeping the default configuration within
// a few percent of bare (BENCH_10.json).
//
// # Resilience and graceful degradation
//
// Every dependency failure has a declared contract, and a chaos suite
// (deterministic, seedable fault injection via internal/fault: disk
// faults through the WAL's filesystem seam, transport faults under the
// HTTP client, flaky platform backends) proves each one under -race.
// The contracts, innermost out:
//
//   - Disk: a persistent WAL write or fsync failure is sticky — the
//     log refuses later appends rather than risk forging a record on a
//     torn tail — and the durable store above it degrades to read-only
//     instead of crashing. Ingest returns ErrSocialDegraded
//     (errors.Is-matchable, carrying cause and onset), while every
//     previously acknowledged post keeps serving: search, pagination,
//     the changefeed and the monitor's cached assessments stay live.
//     pspd answers ingest with 503 + Retry-After, reports the cause on
//     /v1/healthz and fails /v1/readyz. A restart recovers the
//     acknowledged state byte-identically (torn tails truncated) and
//     resumes writes if the disk healed. Acknowledged-means-durable is
//     never weakened: no fault schedule, torn write or crash loses an
//     acknowledged batch.
//   - Remote platform: the social HTTP client retries transient
//     failures (transport errors, 502/503/504) with capped, jittered
//     exponential backoff, honors 429 Retry-After, and aborts any wait
//     promptly on context cancellation.
//   - Federation: MultiOptions (NewMultiPlatformOptions) bounds each
//     federated page with a shared deadline, opts into partial mode —
//     pages with at least one healthy backend serve the healthy merge,
//     marked Degraded with per-backend health annotations, and keep
//     paginating so recovered backends rejoin on later pages — and
//     arms a per-backend circuit breaker that fails fast after
//     consecutive failures and re-closes through a half-open probe.
//   - Monitor: a failed re-assessment never poisons the served
//     picture — the last good assessment keeps serving with the
//     failure exposed via LastError and psp_monitor_* metrics, and the
//     monitor's own backoff retry converges after the platform heals
//     without requiring new ingest.
//
// All resilience seams are pay-for-use: with no injector bound and no
// fault firing, the federated and ingest hot paths stay within a few
// percent of their bare twins (BENCH_8.json).
package psp
