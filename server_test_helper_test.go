package psp

import (
	"net/http/httptest"
	"testing"
)

// newLocalServer exposes a store over the HTTP API for facade tests and
// returns its base URL.
func newLocalServer(t *testing.T, store *SocialStore) string {
	t.Helper()
	srv := httptest.NewServer(NewSocialServer(store, nil).Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}
