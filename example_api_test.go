package psp_test

import (
	"context"
	"fmt"
	"log"

	psp "github.com/psp-framework/psp"
)

// ExampleNewDefault shows the one-call setup over the reference corpus
// and the excavator SAI verdict of the paper's Fig. 12.
func ExampleNewDefault() {
	fw, err := psp.NewDefault(42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Application: "excavator",
		Region:      psp.RegionEurope,
	})
	if err != nil {
		log.Fatal(err)
	}
	top, err := res.Index.Top()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(top.Topic)
	// Output: DPF delete
}

// ExampleFramework_RunFinancial reproduces Equations 6 and 7 of the
// paper: the market value of DPF tampering on European excavators and
// the adversary investment the product must withstand.
func ExampleFramework_RunFinancial() {
	fw, err := psp.NewDefault(42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.RunFinancial(psp.FinancialInput{
		Category:    "dpf-tampering",
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  psp.NonMonopolistic,
		Maker:       "TerraMach",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAE = %d\n", res.PAE)
	fmt.Printf("MV  = %s\n", res.MV)
	fmt.Printf("FC  = %s\n", res.SecurityBudget)
	// Output:
	// PAE = 1406
	// MV  = 506,160.00 EUR
	// FC  = 145,286.67 EUR
}

// ExampleStandardVectorTable prints the static G.9 table the PSP
// framework retunes (Fig. 5 of the paper).
func ExampleStandardVectorTable() {
	fmt.Print(psp.RenderVectorTable(psp.StandardVectorTable()))
	// Output:
	// ISO/SAE 21434 G.9 (attack vector-based)
	// +---------------+---------------------------+
	// | Attack vector | Attack feasibility rating |
	// +---------------+---------------------------+
	// | Network       | High                      |
	// | Adjacent      | Medium                    |
	// | Local         | Low                       |
	// | Physical      | Very Low                  |
	// +---------------+---------------------------+
}

// ExampleDeriveConcept shows the §9.4 concept phase: goals for treated
// risks, claims for retained ones.
func ExampleDeriveConcept() {
	item := &psp.Item{
		Name: "Engine Control Module",
		Assets: []*psp.Asset{{
			ID: "FW", Name: "Firmware",
			Properties: []psp.SecurityProperty{psp.PropertyIntegrity},
		}},
	}
	a := psp.NewAnalysis(item)
	a.AddDamage(&psp.DamageScenario{
		ID: "DS-1", AssetIDs: []string{"FW"},
		Impacts: map[psp.ImpactCategory]psp.ImpactRating{
			psp.CategorySafety: psp.ImpactSevere,
		},
	})
	a.AddThreat(&psp.ThreatScenario{
		ID: "TS-1", Name: "Firmware tampering",
		DamageIDs: []string{"DS-1"},
		Property:  psp.PropertyIntegrity,
		STRIDE:    psp.Tampering,
		Vector:    psp.VectorNetwork,
	})
	results, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	concept, err := psp.DeriveConcept(results)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range concept.Goals {
		fmt.Printf("%s at %s\n", g.ID, g.CAL)
	}
	// Output: CG-TS-1 at CAL4
}
