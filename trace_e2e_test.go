package psp

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// wireTrace mirrors the GET /v1/trace JSON schema.
type wireTrace struct {
	Spans []struct {
		TraceID  string `json:"trace_id"`
		SpanID   string `json:"span_id"`
		ParentID string `json:"parent_id"`
		Name     string `json:"name"`
		Error    string `json:"error"`
		Attrs    []struct {
			Key   string `json:"key"`
			Value string `json:"value"`
		} `json:"attrs"`
	} `json:"spans"`
	Count int `json:"count"`
}

func getTrace(t *testing.T, url string) wireTrace {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var out wireTrace
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out
}

// newTracedBackend stands up a sociald-shaped backend: a small corpus
// behind the HTTP search API, instrumented middleware with its own
// tracer, and GET /v1/trace mounted — the daemon wiring in miniature.
func newTracedBackend(t *testing.T, name string, days []int) (url string) {
	t.Helper()
	store := NewSocialStore()
	for _, d := range days {
		p := &Post{
			ID:        fmt.Sprintf("%s-d%02d", name, d),
			Author:    "author-" + name,
			Text:      "federated #chiptuning stage1 traffic",
			CreatedAt: time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, d),
			Region:    RegionEurope,
			Metrics:   PostMetrics{Views: 100 + d},
		}
		if err := store.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Rate 0: the backend records only because the frontend's inbound
	// traceparent carries the sampled flag.
	tracer := NewTracer(TracerOptions{SampleRate: 0})
	httpMet := NewHTTPMetrics(NewMetricsRegistry(), nil).WithTracer(tracer)
	mux := http.NewServeMux()
	mux.Handle("/v2/", httpMet.Instrument(
		func(r *http.Request) string { return r.URL.Path },
		NewSocialServer(store, nil).Handler()))
	mux.Handle("/v1/trace", TraceHandler(tracer))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestEndToEndDistributedTrace is the acceptance path: a pspd-shaped
// frontend — durable store, monitor federating over two sociald-shaped
// backends, traced HTTP API — ingests one post over HTTP and must
// yield a single trace, retrievable from GET /v1/trace by trace ID,
// containing the server span, the store/WAL ingest spans, the linked
// monitor flush, and per-backend client child spans whose trace ID the
// backends' own /v1/trace endpoints confirm across the wire.
func TestEndToEndDistributedTrace(t *testing.T) {
	tracer := NewTracer(TracerOptions{SampleRate: 1})

	alphaURL := newTracedBackend(t, "alpha", []int{1, 3, 5})
	betaURL := newTracedBackend(t, "beta", []int{2, 4, 6})

	store, err := OpenSocialStore(t.TempDir(), SocialDurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	store.SetTracer(tracer)

	multi, err := NewMultiPlatformOptions(MultiOptions{Partial: true, Tracer: tracer},
		PlatformSource{Name: "local", Searcher: store},
		PlatformSource{Name: "alpha", Searcher: NewSocialClient(alphaURL)},
		PlatformSource{Name: "beta", Searcher: NewSocialClient(betaURL)},
	)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Searcher: multi})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(MonitorConfig{
		Framework: fw,
		Store:     store,
		Searcher:  multi,
		Input: SocialInput{Threats: []*ThreatScenario{{
			ID: "TS-ECM-01", Name: "ECM reprogramming",
			DamageIDs: []string{"DS-01"},
			Property:  PropertyIntegrity,
			STRIDE:    Tampering,
			Profiles:  []AttackerProfile{ProfileInsider},
			Vector:    VectorPhysical,
			Keywords:  []string{"chiptuning", "stage1"},
		}}},
		Debounce: 20 * time.Millisecond,
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(runCtx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("monitor did not stop after cancellation")
		}
	})
	waitCtx, waitCancel := context.WithTimeout(runCtx, 60*time.Second)
	defer waitCancel()
	if _, err := m.WaitFor(waitCtx, 1); err != nil {
		t.Fatalf("initial assessment: %v", err)
	}

	api := NewMonitorAPI(m).WithObservability(NewMetricsRegistry(), nil).WithTracing(tracer)
	front := httptest.NewServer(api.Handler())
	t.Cleanup(front.Close)

	// One ingest over HTTP: the server span roots the trace.
	body := `[{"id":"ingest-001","author":"newuser","text":"fresh #chiptuning stage1 file","created_at":"2024-02-01T10:00:00Z","region":"EU","metrics":{"views":500}}]`
	resp, err := http.Post(front.URL+"/v1/posts", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if _, err := m.WaitFor(waitCtx, 2); err != nil {
		t.Fatalf("post-ingest assessment: %v", err)
	}

	// Find the ingest trace: the one holding the store.add span.
	list := getTrace(t, front.URL+"/v1/trace?limit=500")
	var traceID string
	for _, s := range list.Spans {
		if s.Name == "store.add" {
			traceID = s.TraceID
			break
		}
	}
	if traceID == "" {
		t.Fatalf("no store.add span among %d recorded spans", list.Count)
	}

	trace := getTrace(t, front.URL+"/v1/trace?trace_id="+traceID)
	byName := map[string][]int{}
	for i, s := range trace.Spans {
		byName[s.Name] = append(byName[s.Name], i)
		if s.TraceID != traceID {
			t.Fatalf("span %s leaked into trace %s", s.Name, traceID)
		}
	}
	for _, want := range []string{"store.add", "wal.append", "monitor.flush", "multi.search", "multi.backend"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace %s missing %q span; has %v", traceID, want, byName)
		}
	}
	var serverSpan bool
	for name := range byName {
		if strings.HasPrefix(name, "http.server ") {
			serverSpan = true
		}
	}
	if !serverSpan {
		t.Fatalf("trace %s has no http.server span; spans %v", traceID, byName)
	}

	// Parent links: wal.append under store.add, monitor.flush linked to
	// store.add, multi.search under monitor.flush.
	spanID := func(idx int) string { return trace.Spans[idx].SpanID }
	parent := func(idx int) string { return trace.Spans[idx].ParentID }
	add, wal := byName["store.add"][0], byName["wal.append"][0]
	flush := byName["monitor.flush"][0]
	if parent(wal) != spanID(add) {
		t.Fatalf("wal.append parent %s, want store.add %s", parent(wal), spanID(add))
	}
	if parent(flush) != spanID(add) {
		t.Fatalf("monitor.flush parent %s, want store.add %s", parent(flush), spanID(add))
	}
	// The delta run issues one federated query per re-filled slice;
	// every multi.search hangs off the flush, every multi.backend off
	// one of those searches.
	searches := map[string]bool{}
	for _, idx := range byName["multi.search"] {
		if parent(idx) != spanID(flush) {
			t.Fatalf("multi.search parent %s, want monitor.flush %s", parent(idx), spanID(flush))
		}
		searches[spanID(idx)] = true
	}

	// Per-backend client child spans with cost attrs.
	backends := map[string]bool{}
	for _, idx := range byName["multi.backend"] {
		s := trace.Spans[idx]
		if !searches[s.ParentID] {
			t.Fatalf("multi.backend parent %s is not a multi.search span", s.ParentID)
		}
		attrs := map[string]string{}
		for _, a := range s.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["posts"] == "" {
			t.Fatalf("multi.backend span lacks posts attr: %v", attrs)
		}
		backends[attrs["backend"]] = true
	}
	for _, want := range []string{"local", "alpha", "beta"} {
		if !backends[want] {
			t.Fatalf("no multi.backend span for %q (got %v)", want, backends)
		}
	}

	// Across the wire: each sociald backend recorded a server span in
	// the SAME trace, retrievable from its own /v1/trace endpoint.
	for _, backend := range []string{alphaURL, betaURL} {
		remote := getTrace(t, backend+"/v1/trace?trace_id="+traceID)
		if remote.Count == 0 {
			t.Fatalf("backend %s recorded no span for trace %s", backend, traceID)
		}
		if !strings.HasPrefix(remote.Spans[0].Name, "http.server ") {
			t.Fatalf("backend span = %q, want http.server", remote.Spans[0].Name)
		}
	}
}
