package psp

import (
	"github.com/psp-framework/psp/internal/itemgen"
	"github.com/psp-framework/psp/internal/vehicle"
)

// Vehicle E/E architecture model (Fig. 4) and the derivation bridge that
// bootstraps TARA work products from it.
type (
	// VehicleTopology is the vehicle network: ECUs connected by buses.
	VehicleTopology = vehicle.Topology
	// ECU is an electronic control unit of the architecture.
	ECU = vehicle.ECU
	// VehicleBus is a communication segment connecting ECUs.
	VehicleBus = vehicle.Bus
	// VehicleDomain is a functional domain (powertrain, body, ...).
	VehicleDomain = vehicle.Domain
	// BusKind is a bus technology (CAN, LIN, Ethernet, wireless, ...).
	BusKind = vehicle.BusKind
	// SurfaceClass classifies attack surfaces by reach (physical,
	// short-range, long-range).
	SurfaceClass = vehicle.SurfaceClass
)

// NewVehicleTopology returns an empty topology with the given name.
func NewVehicleTopology(name string) *VehicleTopology { return vehicle.NewTopology(name) }

// ReferenceArchitecture returns the paper's Fig. 4 vehicle network.
func ReferenceArchitecture() (*VehicleTopology, error) { return vehicle.ReferenceArchitecture() }

// DeriveTARAAnalysis builds a starter TARA for one ECU of the topology.
func DeriveTARAAnalysis(top *VehicleTopology, ecuID string) (*Analysis, error) {
	return itemgen.DeriveAnalysis(top, ecuID)
}

// DeriveTARAPaths enumerates attack paths for a threat on a target ECU
// from the topology.
func DeriveTARAPaths(top *VehicleTopology, targetID, threatID string) ([]*AttackPath, error) {
	return itemgen.DerivePaths(top, targetID, threatID)
}

// SyncTARAPaths reconciles an analysis's topology-derived attack paths
// with the current topology, leaving analyst-added paths and unchanged
// routes (and their memoized ratings) alone. Reports whether anything
// changed.
func SyncTARAPaths(top *VehicleTopology, a *Analysis, ecuID string) (bool, error) {
	return itemgen.SyncPaths(top, a, ecuID)
}

// DeriveTARARegistry bootstraps a multi-tenant TARA registry from a
// vehicle architecture: one tenant per ECU, named by the ECU ID, with
// topology-derived attack paths. Deterministic — the same topology
// yields byte-identical tenant documents.
func DeriveTARARegistry(top *VehicleTopology) (*TARARegistry, error) {
	return itemgen.DeriveRegistry(top)
}
