package psp

import (
	"context"
	"io"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
)

// Social platform types, re-exported from the social substrate.
type (
	// Post is one social-media post.
	Post = social.Post
	// PostMetrics carries a post's engagement counters.
	PostMetrics = social.Metrics
	// Region is a coarse market region tag.
	Region = social.Region
	// SocialQuery selects posts from the platform.
	SocialQuery = social.Query
	// SocialStore is the in-memory post store.
	SocialStore = social.Store
	// SocialServer exposes a store over the HTTP search API.
	SocialServer = social.Server
	// SocialClient talks to a SocialServer and implements Searcher.
	SocialClient = social.Client
	// Searcher is the platform capability the framework needs.
	Searcher = social.Searcher
	// CorpusSpec configures synthetic corpus generation.
	CorpusSpec = social.GeneratorSpec
	// TopicSpec describes one attack topic of a corpus.
	TopicSpec = social.TopicSpec
	// RateLimiter is a token-bucket request limiter.
	RateLimiter = social.RateLimiter
	// SocialCursor is a keyset pagination position: listings resume
	// strictly after a (CreatedAt, ID) key, so pages stay stable under
	// concurrent ingest (the offset tokens of earlier releases are
	// retired).
	SocialCursor = social.Cursor
	// WatchOptions configures a store changefeed subscription
	// (SocialStore.Watch).
	WatchOptions = social.WatchOptions
	// SocialDurableOptions tunes a durable store's write-ahead log and
	// snapshot compaction (OpenSocialStore).
	SocialDurableOptions = social.DurableOptions
	// SocialDurableCursor is a durable store's write-ahead-log position
	// (one replay floor per stripe); PostsSince turns it into the delta
	// ingested after the cursor was taken.
	SocialDurableCursor = social.DurableCursor
)

// Page-size limits of the social search APIs.
const (
	// SocialDefaultPageSize applies when a query sets no MaxResults.
	SocialDefaultPageSize = social.DefaultPageSize
	// SocialMaxPageSize is the page-size ceiling; the workflow requests
	// it to minimize round trips against remote platforms.
	SocialMaxPageSize = social.MaxPageSize
)

// EncodeSocialCursor renders a cursor as an opaque keyset continuation
// token ("k<unix-nanoseconds>.<base64url(post ID)>").
func EncodeSocialCursor(c SocialCursor) string { return social.EncodeCursor(c) }

// ParseSocialCursor parses a keyset continuation token.
func ParseSocialCursor(token string) (SocialCursor, error) { return social.ParseCursor(token) }

// Regions of the reference corpus.
const (
	RegionEurope       = social.RegionEurope
	RegionNorthAmerica = social.RegionNorthAmerica
	RegionAsiaPacific  = social.RegionAsiaPacific
	RegionOther        = social.RegionOther
)

// SocialDefaultShards is the lock-stripe count a store created without
// an explicit shard count uses. Stores stripe their corpus across
// shards keyed by CreatedAt time bucket; search results are identical
// at any stripe count — sharding only sets how many writers and
// readers can make progress concurrently.
const SocialDefaultShards = social.DefaultShards

// NewSocialStore returns an empty post store.
func NewSocialStore() *SocialStore { return social.NewStore() }

// NewSocialStoreShards returns an empty post store striped across n
// lock shards (n ≤ 0 selects SocialDefaultShards); the daemons' -shards
// flag maps onto this.
func NewSocialStoreShards(n int) *SocialStore { return social.NewStoreShards(n) }

// DefaultSocialStore generates the reference corpus (calibrated to the
// paper's case studies) into a fresh store.
func DefaultSocialStore(seed int64) (*SocialStore, error) { return social.DefaultStore(seed) }

// DefaultSocialStoreShards is DefaultSocialStore with an explicit
// lock-shard count.
func DefaultSocialStoreShards(seed int64, shards int) (*SocialStore, error) {
	return social.DefaultStoreShards(seed, shards)
}

// DefaultCorpusSpec returns the reference corpus specification.
func DefaultCorpusSpec(seed int64) CorpusSpec { return social.DefaultCorpusSpec(seed) }

// GenerateCorpus builds the posts of a corpus specification.
func GenerateCorpus(spec CorpusSpec) ([]*Post, error) { return social.Generate(spec) }

// NewSocialServer wraps a store in the HTTP search API; limiter may be
// nil.
func NewSocialServer(store *SocialStore, limiter *RateLimiter) *SocialServer {
	return social.NewServer(store, limiter)
}

// NewSocialClient builds an HTTP client for a remote social API.
func NewSocialClient(baseURL string) *SocialClient { return social.NewClient(baseURL, nil) }

// NewRateLimiter builds a token bucket holding capacity tokens refilled
// at refillPerSecond, for rate-limiting a SocialServer.
func NewRateLimiter(capacity int, refillPerSecond float64) *RateLimiter {
	return social.NewRateLimiter(capacity, refillPerSecond, nil)
}

// PlatformSource is one named backend of a federated search.
type PlatformSource = social.PlatformSource

// Federated-search resilience types (see NewMultiPlatformOptions).
type (
	// MultiOptions tunes a federated searcher's resilience seams:
	// per-backend timeouts, the circuit breaker, partial-results mode,
	// and metrics. The zero value is the bare all-or-nothing federation.
	MultiOptions = social.MultiOptions
	// MultiMetrics is the federated searcher's psp_multi_* recording
	// surface.
	MultiMetrics = social.MultiMetrics
	// BackendStatus is one backend's health annotation on a degraded
	// federated page.
	BackendStatus = social.BackendStatus
)

// ErrSocialDegraded is the sentinel (errors.Is) a durable store's
// ingest returns after a persistent write-ahead-log failure flipped it
// into read-only degraded mode: reads keep serving the committed state,
// Add is refused until restart, and pspd maps the error to
// 503 + Retry-After.
var ErrSocialDegraded = social.ErrDegraded

// NewMultiPlatform federates several platforms (e.g. the Twitter-style
// store plus an Instagram-style one, per the paper's roadmap) behind the
// Searcher interface. Backends are queried concurrently; the merged
// listing pages exactly like the in-process store (default page size,
// offset continuation tokens), so drain it with SearchAllPosts rather
// than expecting one unbounded page from a single Search call.
func NewMultiPlatform(sources ...PlatformSource) (Searcher, error) {
	return social.NewMulti(sources...)
}

// NewMultiPlatformOptions is NewMultiPlatform with resilience options:
// per-backend timeouts, a circuit breaker that fails persistently
// broken backends fast, and opt-in partial-results mode where a page
// with failing backends returns the healthy backends' posts annotated
// as degraded instead of failing outright.
func NewMultiPlatformOptions(opts MultiOptions, sources ...PlatformSource) (Searcher, error) {
	return social.NewMultiOptions(opts, sources...)
}

// NewMultiMetrics registers the psp_multi_* families in reg for use via
// MultiOptions.Metrics.
func NewMultiMetrics(reg *MetricsRegistry) *MultiMetrics {
	return social.NewMultiMetrics(reg)
}

// SearchAllPosts drains every page of a query through any Searcher,
// accumulating all matching posts.
func SearchAllPosts(ctx context.Context, s Searcher, q SocialQuery) ([]*Post, error) {
	return social.SearchAll(ctx, s, q)
}

// PoisonCampaign describes a data-poisoning attempt against the SAI
// pipeline; InjectPoison generates its bot posts for resilience testing.
type PoisonCampaign = social.PoisonCampaign

// InjectPoison generates a poisoning campaign's bot posts.
func InjectPoison(c PoisonCampaign) ([]*Post, error) { return social.InjectPoison(c) }

// OpenSocialStore opens (or initializes) a crash-safe store in a data
// directory: every Add is acknowledged only after its batch is in a
// group-committed fsync'd write-ahead-log record, a background pass
// compacts the WAL into snapshots, and reopening the directory
// recovers the corpus (snapshot + WAL tail, torn tails truncated) with
// search results byte-identical to the acknowledged pre-crash state.
// Close flushes a final snapshot; Flush forces one. The daemons'
// -data-dir flag maps onto this.
func OpenSocialStore(dir string, opts SocialDurableOptions) (*SocialStore, error) {
	return social.OpenStoreDir(dir, opts)
}

// WriteSocialPosts streams posts to w as a JSON Lines snapshot.
func WriteSocialPosts(w io.Writer, posts []*Post) error { return social.WritePosts(w, posts) }

// WriteSocialPostsFile dumps posts to path as a JSON Lines snapshot,
// atomically: temp file, fsync, rename — a crash mid-dump can never
// leave a truncated file for LoadSocialStore to half-parse.
func WriteSocialPostsFile(path string, posts []*Post) error {
	return social.WritePostsFile(path, posts)
}

// WriteSocialStoreFile atomically dumps a store's current contents to
// path as a JSON Lines snapshot (lock-free; writers keep committing).
func WriteSocialStoreFile(path string, s *SocialStore) error {
	return social.WriteStoreFile(path, s)
}

// ReadSocialPosts parses a JSON Lines snapshot.
func ReadSocialPosts(r io.Reader) ([]*Post, error) { return social.ReadPosts(r) }

// LoadSocialStore reads a JSON Lines snapshot into a fresh store.
func LoadSocialStore(r io.Reader) (*SocialStore, error) { return social.LoadStore(r) }

// LoadSocialStoreShards is LoadSocialStore with an explicit lock-shard
// count.
func LoadSocialStoreShards(r io.Reader, shards int) (*SocialStore, error) {
	return social.LoadStoreShards(r, shards)
}

// SAI types, re-exported from the sai engine.
type (
	// SAIIndex is a sorted Social Attraction Index.
	SAIIndex = sai.Index
	// SAIEntry is one index row.
	SAIEntry = sai.Entry
	// SAIWeights is the attraction mix.
	SAIWeights = sai.Weights
	// RatingBands maps vector shares onto feasibility ratings.
	RatingBands = sai.RatingBands
	// Trend is a fitted quarterly topic trend.
	Trend = sai.Trend
	// TrendDirection classifies a trend (rising / stable / falling).
	TrendDirection = sai.TrendDirection
)

// Trend directions.
const (
	TrendFalling = sai.TrendFalling
	TrendStable  = sai.TrendStable
	TrendRising  = sai.TrendRising
)

// DefaultSAIWeights returns the default attraction mix.
func DefaultSAIWeights() SAIWeights { return sai.DefaultWeights() }

// DefaultRatingBands returns the default share → rating bands.
func DefaultRatingBands() RatingBands { return sai.DefaultRatingBands() }

// Finance types, re-exported from the finance engine.
type (
	// Money is an amount in integer cents of a currency.
	Money = finance.Money
	// Currency is a currency code.
	Currency = finance.Currency
	// MarketKind selects the Equation 2 branch.
	MarketKind = finance.MarketKind
	// BEPCurve is a sampled break-even diagram (Fig. 11).
	BEPCurve = finance.BEPCurve
)

// Currencies.
const (
	EUR = finance.EUR
	USD = finance.USD
	GBP = finance.GBP
)

// Market kinds.
const (
	Monopolistic    = finance.Monopolistic
	NonMonopolistic = finance.NonMonopolistic
)

// FromUnits builds a Money from currency units.
func FromUnits(amount float64, c Currency) Money { return finance.FromUnits(amount, c) }

// Market dataset types.
type (
	// MarketDataset bundles sales, reports and listings.
	MarketDataset = market.Dataset
	// MarketListing is one marketplace advertisement.
	MarketListing = market.Listing
	// SalesRecord is one sales figure.
	SalesRecord = market.SalesRecord
)

// DefaultMarketDataset returns the dataset calibrated to the excavator
// case study (Equations 6 and 7).
func DefaultMarketDataset() (*MarketDataset, error) { return market.DefaultDataset() }
