package psp

// The benchmark harness regenerates every table and figure of the paper
// (experiments E01–E15 of DESIGN.md) and runs the ablation studies
// A1–A5. Each benchmark measures the full pipeline behind its artifact
// and reports the shape metric that EXPERIMENTS.md records, via
// b.ReportMetric, so `go test -bench=.` doubles as the reproduction run.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/fault"
	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/lifecycle"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/standards"
	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

// Shared fixtures: the corpus and dataset are deterministic, so building
// them once keeps the benchmarks focused on the pipelines.
var (
	fixtureOnce  sync.Once
	fixtureStore *social.Store
	fixtureData  *market.Dataset
	fixtureErr   error
)

func fixtures(b *testing.B) (*social.Store, *market.Dataset) {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureStore, fixtureErr = social.DefaultStore(42)
		if fixtureErr != nil {
			return
		}
		fixtureData, fixtureErr = market.DefaultDataset()
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureStore, fixtureData
}

func benchFramework(b *testing.B, cfg core.Config) *core.Framework {
	b.Helper()
	store, ds := fixtures(b)
	if cfg.Searcher == nil {
		cfg.Searcher = store
	}
	if cfg.Market == nil {
		cfg.Market = ds
	}
	fw, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return fw
}

func benchECMThreat() *tara.ThreatScenario {
	return &tara.ThreatScenario{
		ID: "TS-ECM", Name: "ECM reprogramming",
		DamageIDs: []string{"DS-01"},
		Property:  tara.PropertyIntegrity,
		STRIDE:    tara.Tampering,
		Profiles:  []tara.AttackerProfile{tara.ProfileInsider},
		Vector:    tara.VectorPhysical,
		Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

func excavatorInput() core.FinancialInput {
	return core.FinancialInput{
		Category:    market.CategoryDPFTampering,
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  finance.NonMonopolistic,
		Maker:       market.MajorExcavatorMaker,
	}
}

// E14 / Fig. 1 — standards contribution graph.
func BenchmarkFig1StandardsGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := standards.ISO21434Graph()
		if err != nil {
			b.Fatal(err)
		}
		if g.ITShare() == 0 {
			b.Fatal("empty IT share")
		}
	}
}

// E15 / Fig. 2 — lifecycle with TARA reprocessing.
func BenchmarkFig2Lifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lc := lifecycle.New(nil)
		if err := lc.RunToProduction(); err != nil {
			b.Fatal(err)
		}
		if lc.ReprocessingCount() != 6 {
			b.Fatalf("reprocessing count %d", lc.ReprocessingCount())
		}
	}
}

// E01 / Fig. 3 — attack potential aggregation over all level
// combinations (5×4×4×4×4 = 1280 profiles per iteration).
func BenchmarkFig3AttackPotential(b *testing.B) {
	w := tara.StandardPotentialWeights()
	th := tara.StandardPotentialThresholds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := tara.TimeOneDay; t <= tara.TimeBeyondSixMonths; t++ {
			for e := tara.ExpertiseLayman; e <= tara.ExpertiseMultipleExperts; e++ {
				for k := tara.KnowledgePublic; k <= tara.KnowledgeStrictlyConfidential; k++ {
					for wo := tara.WindowUnlimited; wo <= tara.WindowDifficult; wo++ {
						for q := tara.EquipmentStandard; q <= tara.EquipmentMultipleBespoke; q++ {
							r, err := tara.RatePotential(w, th, tara.AttackPotentialInput{
								Time: t, Expertise: e, Knowledge: k, Window: wo, Equipment: q,
							})
							if err != nil || !r.Valid() {
								b.Fatal(err)
							}
						}
					}
				}
			}
		}
	}
}

// E04 / Fig. 4 — attack-surface classification and route enumeration.
func BenchmarkFig4Surfaces(b *testing.B) {
	top, err := vehicle.ReferenceArchitecture()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []vehicle.SurfaceClass{
			vehicle.SurfaceLongRange, vehicle.SurfaceShortRange, vehicle.SurfacePhysical,
		} {
			routes, err := top.AttackRoutes(s, "ECM")
			if err != nil || len(routes) == 0 {
				b.Fatal(err)
			}
		}
	}
}

// E02 / Fig. 5 — static G.9 table lookups.
func BenchmarkFig5AttackVector(b *testing.B) {
	tbl := tara.StandardVectorTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range tara.AllVectors() {
			if _, err := tbl.Rating(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E03 / Fig. 6 — CAL determination over the full matrix.
func BenchmarkFig6CAL(b *testing.B) {
	tbl := tara.StandardCALTable()
	impacts := []tara.ImpactRating{
		tara.ImpactNegligible, tara.ImpactModerate, tara.ImpactMajor, tara.ImpactSevere,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, imp := range impacts {
			for _, v := range tara.AllVectors() {
				if _, err := tbl.Determine(imp, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// E05 / Fig. 7 — the full social workflow.
func BenchmarkFig7Workflow(b *testing.B) {
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.RunSocial(ctx, core.SocialInput{
			Threats: []*tara.ThreatScenario{benchECMThreat()},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tunings) != 1 {
			b.Fatal("missing tuning")
		}
	}
}

// E06 / Fig. 8 — weight tuning for one threat scenario.
func BenchmarkFig8WeightTuning(b *testing.B) {
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	var physicalShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.RunSocial(ctx, core.SocialInput{
			DisableLearning: true,
			Threats:         []*tara.ThreatScenario{benchECMThreat()},
		})
		if err != nil {
			b.Fatal(err)
		}
		physicalShare = res.Tunings[0].VectorShares[tara.VectorPhysical]
	}
	b.ReportMetric(physicalShare, "physical-share")
}

// E07+E08 / Fig. 9 — both analysis windows back to back.
func BenchmarkFig9TimeWindows(b *testing.B) {
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	cut := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	var allTimeTop, recentTop string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, err := fw.RunSocial(ctx, core.SocialInput{
			DisableLearning: true,
			Threats:         []*tara.ThreatScenario{benchECMThreat()},
		})
		if err != nil {
			b.Fatal(err)
		}
		recent, err := fw.RunSocial(ctx, core.SocialInput{
			Since:           cut,
			DisableLearning: true,
			Threats:         []*tara.ThreatScenario{benchECMThreat()},
		})
		if err != nil {
			b.Fatal(err)
		}
		allTimeTop = all.Tunings[0].Table.RankedVectors()[0].String()
		recentTop = recent.Tunings[0].Table.RankedVectors()[0].String()
	}
	if allTimeTop != "Physical" || recentTop != "Local" {
		b.Fatalf("trend inversion broken: all-time top %s, recent top %s", allTimeTop, recentTop)
	}
}

// E09 / Fig. 10 — the full financial workflow.
func BenchmarkFig10Financial(b *testing.B) {
	fw := benchFramework(b, core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.RunFinancial(excavatorInput())
		if err != nil {
			b.Fatal(err)
		}
		if res.PAE != 1406 {
			b.Fatalf("PAE %d", res.PAE)
		}
	}
}

// E10 / Fig. 11 — break-even curve sampling.
func BenchmarkFig11BEP(b *testing.B) {
	fc := finance.FromUnits(145286, finance.EUR)
	ppia := finance.FromUnits(360, finance.EUR)
	vcu := finance.FromUnits(50, finance.EUR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, err := finance.ComputeBEPCurve(fc, 3, ppia, vcu, 2812, 41)
		if err != nil || curve.BreakEvenUnits != 1406 {
			b.Fatal(err)
		}
	}
}

// E11 / Fig. 12 — the excavator SAI ranking.
func BenchmarkFig12SAI(b *testing.B) {
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	var topProbability float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.RunSocial(ctx, core.SocialInput{
			Application: "excavator",
			Region:      social.RegionEurope,
		})
		if err != nil {
			b.Fatal(err)
		}
		top, err := res.Index.Top()
		if err != nil || top.Topic != "DPF delete" {
			b.Fatalf("top %v err %v", top.Topic, err)
		}
		topProbability = top.Probability
	}
	b.ReportMetric(topProbability, "top-probability")
}

// E12 / Eq. 6 — market value computation chain.
func BenchmarkEq6MarketValue(b *testing.B) {
	_, ds := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := ds.Sales.MarketShare(market.MajorExcavatorMaker, "excavator", "EU", 2022)
		if err != nil {
			b.Fatal(err)
		}
		pea, err := ds.Reports.PEA(market.CategoryDPFTampering, "excavator", "EU", 2022)
		if err != nil {
			b.Fatal(err)
		}
		pae, err := finance.PAE(ms, pea)
		if err != nil {
			b.Fatal(err)
		}
		mv, err := finance.MarketValue(pae, finance.FromUnits(360, finance.EUR))
		if err != nil || mv.Units() != 506160 {
			b.Fatalf("MV %v err %v", mv, err)
		}
	}
}

// E13 / Eq. 7 — adversary investment bound.
func BenchmarkEq7FixedCost(b *testing.B) {
	ppia := finance.FromUnits(360, finance.EUR)
	vcu := finance.FromUnits(50, finance.EUR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc, err := finance.InverseFixedCost(1406, ppia, vcu, 3)
		if err != nil || fc.Cents != 14528667 {
			b.Fatalf("FC %v err %v", fc, err)
		}
	}
}

// paddedStore builds the reference corpus plus `filler` synthetic posts
// that can never match an excavator-term query (outsider phrasing,
// car/truck applications, disjoint tags). Growing the corpus this way
// isolates how Store.Search scales with corpus size while the query's
// result set stays fixed.
func paddedStore(b *testing.B, filler int) *social.Store {
	return paddedStoreShards(b, filler, 0)
}

// paddedStoreShards is paddedStore over a store with an explicit
// lock-stripe count (0 = the library default).
func paddedStoreShards(b *testing.B, filler, shards int) *social.Store {
	b.Helper()
	spec := social.DefaultCorpusSpec(42)
	store := social.NewStoreShards(shards)
	posts, err := social.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Add(posts...); err != nil {
		b.Fatal(err)
	}
	if filler > 0 {
		pad, err := social.Generate(social.GeneratorSpec{
			Seed:      43,
			FirstYear: 2019,
			LastYear:  2023,
			Topics: []social.TopicSpec{{
				Key:          "filler-chatter",
				Tags:         []string{"fillerchatter"},
				Applications: []string{"car", "truck"},
				Insider:      false,
				YearlyVolume: map[int]int{
					2019: filler / 5, 2020: filler / 5, 2021: filler / 5,
					2022: filler / 5, 2023: filler - 4*(filler/5),
				},
				VectorMix: map[string]float64{
					social.VectorKeyAdjacent: 0.5, social.VectorKeyNetwork: 0.5,
				},
			}},
		})
		if err != nil {
			b.Fatal(err)
		}
		// Re-ID the padding so it cannot collide with the base corpus.
		for i, p := range pad {
			p.ID = fmt.Sprintf("pad%06d", i)
		}
		if err := store.Add(pad...); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

// BenchmarkStoreSearchTerms measures term-only queries (the Fig. 7
// target-application filter) while the corpus grows around a fixed
// result set. With the inverted term index the cost tracks the matching
// posting lists, not the corpus, so ns/op should stay near-flat as the
// store doubles — the old implementation scanned the full time index.
func BenchmarkStoreSearchTerms(b *testing.B) {
	for _, filler := range []int{0, 8000, 24000, 56000} {
		store := paddedStore(b, filler)
		b.Run(fmt.Sprintf("corpus-%d", store.Len()), func(b *testing.B) {
			ctx := context.Background()
			q := social.Query{MustTerms: []string{"excavator", "limp"}}
			page, err := store.Search(ctx, q)
			if err != nil || page.TotalMatches == 0 {
				b.Fatalf("query matches nothing (err %v)", err)
			}
			matches := page.TotalMatches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Search(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// mixedPostSeq hands out globally unique suffixes for posts written by
// the concurrent mixed benchmark: the fixture store persists across
// b.N calibration runs and -cpu settings, so IDs must never repeat.
var mixedPostSeq atomic.Int64

// mixedWritePost builds the n-th ingest post of the mixed benchmark.
// Timestamps advance one day per post, so a stream of writes walks the
// store's time buckets round-robin — concurrent writers land on
// different lock stripes — while staying chronological, the common
// ingest shape (appends keep every posting list sorted without
// re-sorting).
func mixedWritePost(n int64) *social.Post {
	return &social.Post{
		ID:        fmt.Sprintf("mix-%09d", n),
		Author:    "mixbench",
		Text:      "live #mixbench chatter from the fleet",
		CreatedAt: time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, int(n)),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: int(n % 1000)},
	}
}

// BenchmarkStoreConcurrentMixed is the monitoring daemon's load shape:
// goroutines alternating ingest (Add) and page queries (Search) over a
// ≥64k-post corpus. With one lock stripe every write serializes the
// whole store and pays an O(corpus) index merge; at 8 stripes writers
// touch 1/8th of the index under 1/8th of the lock footprint, so mixed
// throughput scales with the shard count (compare ns/op across the
// shards= sub-benchmarks; BENCH_3.json records the sweep). The obs=on
// variant re-runs the widest shape with a full psp_store_* recording
// surface attached — its ns/op against the obs=off twin is the
// metrics-overhead acceptance check (BENCH_7.json; the atomic
// recorders must stay within a few percent).
func BenchmarkStoreConcurrentMixed(b *testing.B) {
	for _, cfg := range []struct {
		shards int
		obs    bool
	}{{1, false}, {2, false}, {4, false}, {8, false}, {8, true}} {
		store := paddedStoreShards(b, 56000, cfg.shards)
		if cfg.obs {
			store.SetMetrics(social.NewStoreMetrics(obs.NewRegistry()))
		}
		corpus := store.Len()
		name := fmt.Sprintf("corpus=%d/shards=%d", corpus, cfg.shards)
		if cfg.obs {
			name += "/obs=on"
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				q := social.Query{AnyTags: []string{"dpfdelete"}, MaxResults: 50}
				for i := 0; pb.Next(); i++ {
					if i%2 == 0 {
						if err := store.Add(mixedWritePost(mixedPostSeq.Add(1))); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					page, err := store.Search(ctx, q)
					if err != nil || page.TotalMatches == 0 {
						b.Errorf("search: %v (total %d)", err, page.TotalMatches)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreReadUnderWrite measures search latency while a
// concurrent writer commits bursts non-stop — the read-dominated
// monitoring shape with ingest trickling in. The copy-on-write store
// serves every search from an immutable snapshot, so read latency must
// stay flat no matter how long the writer holds its stripe mutexes;
// the PR 3 locked store stalled each search behind the in-flight
// commit (compare BENCH_4.json's locked-baseline records). Beyond the
// mean, the p50-ns/p99-ns metrics expose the tail, where lock
// convoying shows first.
func BenchmarkStoreReadUnderWrite(b *testing.B) {
	store := paddedStoreShards(b, 56000, 8)
	corpus := store.Len()
	b.Run(fmt.Sprintf("corpus=%d/shards=%d", corpus, 8), func(b *testing.B) {
		ctx := context.Background()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var stopOnce sync.Once
		// Deferred so a b.Fatalf below cannot leak the writer into the
		// rest of the bench binary.
		stopWriter := func() { stopOnce.Do(func() { close(stop); wg.Wait() }) }
		defer stopWriter()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// 256-post bursts walking consecutive day buckets: every
				// commit spans several stripes, like fleet ingest.
				burst := make([]*social.Post, 256)
				for j := range burst {
					burst[j] = mixedWritePost(mixedPostSeq.Add(1))
				}
				if err := store.Add(burst...); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		q := social.Query{AnyTags: []string{"dpfdelete"}, MaxResults: 50}
		lats := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			page, err := store.Search(ctx, q)
			lats = append(lats, time.Since(t0))
			if err != nil || page.TotalMatches == 0 {
				b.Fatalf("search: %v (total %d)", err, page.TotalMatches)
			}
		}
		b.StopTimer()
		stopWriter()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns")
	})
}

// windowStore builds a uniform 90-day corpus (720 posts/day ≈ 64k) on a
// 16-stripe store for the pruning benchmark.
func windowStore(b *testing.B) *social.Store {
	b.Helper()
	store := social.NewStoreShards(16)
	batch := make([]*social.Post, 0, 90*720)
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 90; day++ {
		for k := 0; k < 720; k++ {
			batch = append(batch, &social.Post{
				ID:        fmt.Sprintf("win-%02d-%04d", day, k),
				Author:    "fleet",
				Text:      "telemetry #fleetwatch chatter",
				CreatedAt: base.AddDate(0, 0, day).Add(time.Duration(k) * 2 * time.Minute),
				Region:    social.RegionEurope,
				Metrics:   social.Metrics{Views: k},
			})
		}
	}
	if err := store.Add(batch...); err != nil {
		b.Fatal(err)
	}
	return store
}

// BenchmarkStoreSearchWindow pins window→stripe pruning: on a 90-day
// corpus at 16 stripes, a 1-day window maps to at most 2 time buckets
// and therefore visits at most 2 stripes — the visited-stripe counter
// is reported per op — while the unbounded listing fans out to all 16.
// The monitor's delta queries are exactly the 1-day shape.
func BenchmarkStoreSearchWindow(b *testing.B) {
	store := windowStore(b)
	day := time.Date(2024, 4, 15, 0, 0, 0, 0, time.UTC)
	for _, win := range []struct {
		name         string
		since, until time.Time
	}{
		{"1d", day, day.AddDate(0, 0, 1)},
		{"7d", day, day.AddDate(0, 0, 7)},
		{"all", time.Time{}, time.Time{}},
	} {
		b.Run(fmt.Sprintf("shards=%d/window=%s", 16, win.name), func(b *testing.B) {
			ctx := context.Background()
			q := social.Query{Since: win.since, Until: win.until, MaxResults: 100}
			visits0 := store.SearchShardVisits()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := store.Search(ctx, q)
				if err != nil || len(page.Posts) != 100 {
					b.Fatalf("windowed page: %v (%d posts)", err, len(page.Posts))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(store.SearchShardVisits()-visits0)/float64(b.N), "stripe-visits/op")
		})
	}
}

// BenchmarkStoreSearchPage pins the streaming-pagination contract:
// producing one page costs O(page + seek), so per-page ns/op must stay
// near-flat while the corpus grows 8× around a fixed page size — both
// for the first page and for a keyset resume from the middle of the
// listing (the seek path). The pre-shard store materialized every
// match per page, scaling O(corpus) on this exact workload.
func BenchmarkStoreSearchPage(b *testing.B) {
	midCursor := social.EncodeCursor(social.Cursor{
		CreatedAt: time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC),
	})
	for _, filler := range []int{0, 56000} {
		store := paddedStore(b, filler)
		corpus := store.Len()
		for _, pos := range []struct{ name, token string }{
			{"first", ""},
			{"mid", midCursor},
		} {
			b.Run(fmt.Sprintf("corpus=%d/page=%s", corpus, pos.name), func(b *testing.B) {
				ctx := context.Background()
				q := social.Query{MaxResults: 100, PageToken: pos.token}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					page, err := store.Search(ctx, q)
					if err != nil || len(page.Posts) != 100 || page.NextToken == "" {
						b.Fatalf("page: %v (%d posts)", err, len(page.Posts))
					}
				}
			})
		}
	}
}

// withLatency adds a fixed delay to every request, modelling the WAN
// round trip to a public platform API (loopback alone hides the
// latency the remote deployment shape actually pays).
func withLatency(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		h.ServeHTTP(w, r)
	})
}

// BenchmarkRunSocialParallel runs the full Fig. 7 workflow against the
// platform over HTTP with a 10 ms simulated round trip — the deployment
// shape of the paper's prototype, which is latency-bound. The bounded
// fan-out of keyword-group, re-query and per-threat searches overlaps
// those round trips, so wall-clock time drops as Config.Concurrency
// rises even on one core.
func BenchmarkRunSocialParallel(b *testing.B) {
	store, ds := fixtures(b)
	srv := httptest.NewServer(withLatency(social.NewServer(store, nil).Handler(), 10*time.Millisecond))
	defer srv.Close()
	for _, concurrency := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("concurrency-%d", concurrency), func(b *testing.B) {
			fw, err := core.New(core.Config{
				Searcher:    social.NewClient(srv.URL, nil),
				Market:      ds,
				Concurrency: concurrency,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunSocial(ctx, core.SocialInput{
					Threats: []*tara.ThreatScenario{benchECMThreat()},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tunings) != 1 {
					b.Fatal("missing tuning")
				}
			}
		})
	}
}

// A1 — SAI attraction weight mixes: how the top probability moves with
// the views/interactions/popularity balance.
func BenchmarkAblationSAIWeights(b *testing.B) {
	mixes := []struct {
		name string
		w    sai.Weights
	}{
		{"views-only", sai.Weights{Views: 1, SentimentGate: true}},
		{"interactions-heavy", sai.Weights{Views: 1, Interactions: 4, Popularity: 5, SentimentGate: true}},
		{"default", sai.DefaultWeights()},
		{"popularity-heavy", sai.Weights{Views: 0.5, Interactions: 1, Popularity: 40, SentimentGate: true}},
	}
	for _, mix := range mixes {
		b.Run(mix.name, func(b *testing.B) {
			fw := benchFramework(b, core.Config{Weights: mix.w})
			ctx := context.Background()
			var top float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunSocial(ctx, core.SocialInput{
					Application:     "excavator",
					Region:          social.RegionEurope,
					DisableLearning: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				e, err := res.Index.Top()
				if err != nil {
					b.Fatal(err)
				}
				if e.Topic != "DPF delete" {
					b.Fatalf("mix %s flipped the top entry to %s", mix.name, e.Topic)
				}
				top = e.Probability
			}
			b.ReportMetric(top, "top-probability")
		})
	}
}

// A2 — sentiment gating on vs off.
func BenchmarkAblationSentimentGate(b *testing.B) {
	for _, gate := range []bool{true, false} {
		name := "gate-on"
		if !gate {
			name = "gate-off"
		}
		b.Run(name, func(b *testing.B) {
			w := sai.DefaultWeights()
			w.SentimentGate = gate
			fw := benchFramework(b, core.Config{Weights: w})
			ctx := context.Background()
			var physShare float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunSocial(ctx, core.SocialInput{
					DisableLearning: true,
					Threats:         []*tara.ThreatScenario{benchECMThreat()},
				})
				if err != nil {
					b.Fatal(err)
				}
				physShare = res.Tunings[0].VectorShares[tara.VectorPhysical]
			}
			b.ReportMetric(physShare, "physical-share")
		})
	}
}

// A3 — keyword auto-learning coverage gain.
func BenchmarkAblationKeywordLearning(b *testing.B) {
	for _, learning := range []bool{false, true} {
		name := "seeds-only"
		if learning {
			name = "with-learning"
		}
		b.Run(name, func(b *testing.B) {
			fw := benchFramework(b, core.Config{})
			ctx := context.Background()
			var posts float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunSocial(ctx, core.SocialInput{DisableLearning: !learning})
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for _, e := range res.Index.Entries {
					total += e.Posts
				}
				posts = float64(total)
			}
			b.ReportMetric(posts, "posts-covered")
		})
	}
}

// A4 — time-window sweep: physical share of the ECM threat by window
// start year.
func BenchmarkAblationWindowSweep(b *testing.B) {
	for _, year := range []int{2019, 2020, 2021, 2022, 2023} {
		b.Run(time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC).Format("since-2006"), func(b *testing.B) {
			fw := benchFramework(b, core.Config{})
			ctx := context.Background()
			since := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
			var physShare float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunSocial(ctx, core.SocialInput{
					Since:           since,
					DisableLearning: true,
					Threats:         []*tara.ThreatScenario{benchECMThreat()},
				})
				if err != nil {
					b.Fatal(err)
				}
				physShare = res.Tunings[0].VectorShares[tara.VectorPhysical]
			}
			b.ReportMetric(physShare, "physical-share")
		})
	}
}

// A5 — PPIA sensitivity to the price-clustering k.
func BenchmarkAblationPriceClusterK(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(string(rune('k'))+"="+string(rune('0'+k)), func(b *testing.B) {
			fw := benchFramework(b, core.Config{PriceClusters: k})
			var ppia float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fw.RunFinancial(excavatorInput())
				if err != nil {
					b.Fatal(err)
				}
				ppia = res.PPIA.Units()
			}
			b.ReportMetric(ppia, "ppia-eur")
		})
	}
}

// walPostSeq hands out globally unique suffixes for posts written by
// the WAL benchmark (the durable fixture persists across b.N
// calibration runs and -cpu settings).
var walPostSeq atomic.Int64

// BenchmarkWALAppendGroupCommit measures the durable-ingest overhead:
// the same concurrent Add stream against an in-memory store
// (mode=memory) and a write-ahead-logged store (mode=wal, group
// commit + fsync before acknowledgement). The load is the daemon's live
// shape — many concurrent clients whose posts land on the current
// day's time bucket — so one stripe's log takes the whole stream and
// every fsync acknowledges all appends waiting on it; the batch
// dimension is the ingest-API batch size (ns/op is per batch, ÷ batch
// for per-post). The mode ratio at equal batch is the cost of crash
// safety; BENCH_5.json records the sweep.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	for _, batch := range []int{1, 16} {
		for _, mode := range []string{"memory", "wal"} {
			b.Run(fmt.Sprintf("batch=%d/mode=%s", batch, mode), func(b *testing.B) {
				b.SetParallelism(16)
				var store *social.Store
				if mode == "wal" {
					var err error
					store, err = social.OpenStoreDir(b.TempDir(), social.DurableOptions{
						Shards:       social.DefaultShards,
						CompactEvery: -1, // measure the log, not the compactor
					})
					if err != nil {
						b.Fatal(err)
					}
				} else {
					store = social.NewStoreShards(social.DefaultShards)
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					posts := make([]*social.Post, batch)
					for pb.Next() {
						for i := range posts {
							posts[i] = walBenchPost(walPostSeq.Add(1))
						}
						if err := store.Add(posts...); err != nil {
							b.Fatal(err)
						}
					}
				})
				// Close's final snapshot is shutdown work, not append
				// cost: keep it off the timer.
				b.StopTimer()
				if err := store.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(batch), "posts/op")
			})
		}
	}
}

// copyTreeHardlink clones a durable data directory, hardlinking
// snapshot files (never modified in place — compaction replaces them
// atomically) but byte-copying WAL segments, which a clone's store
// appends to through the shared inode and would otherwise corrupt the
// source fixture for later iterations.
func copyTreeHardlink(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if filepath.Ext(path) == ".seg" {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(target, data, 0o644)
		}
		return os.Link(path, target)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// durableFixture builds (once) a 64k-post durable data directory whose
// state mirrors a daemon mid-life: the bulk compacted into a snapshot,
// a ~16k-post WAL tail on top.
var (
	durableFixtureOnce sync.Once
	durableFixtureDir  string
	durableFixtureLen  int
	durableFixtureErr  error
)

func durableFixture(b *testing.B) (string, int) {
	b.Helper()
	durableFixtureOnce.Do(func() {
		dir, err := os.MkdirTemp("", "psp-bench-durable-*")
		if err != nil {
			durableFixtureErr = err
			return
		}
		durableFixtureDir = dir
		store, err := social.OpenStoreDir(dir, social.DurableOptions{
			Shards:       social.DefaultShards,
			CompactEvery: -1,
		})
		if err != nil {
			durableFixtureErr = err
			return
		}
		base := paddedStore(b, 56000).SnapshotPosts()
		split := len(base) - 16000
		if err := store.Add(base[:split]...); err == nil {
			err = store.Flush() // snapshot the bulk
		}
		if err != nil {
			durableFixtureErr = err
			return
		}
		// The WAL tail: realistic record sizes (256-post batches).
		for lo := split; lo < len(base); lo += 256 {
			hi := lo + 256
			if hi > len(base) {
				hi = len(base)
			}
			if err := store.Add(base[lo:hi]...); err != nil {
				durableFixtureErr = err
				return
			}
		}
		durableFixtureLen = store.Len()
		// Deliberately no Close: a clean close would compact the tail
		// away, and the fixture models a crash. The handles live until
		// the test binary exits.
	})
	if durableFixtureErr != nil {
		b.Fatal(durableFixtureErr)
	}
	return durableFixtureDir, durableFixtureLen
}

// durableWarmFixture builds (once) a fully compacted 64k-post data
// directory — per-stripe snapshots with index sidecars, empty WAL
// tail — the state a graceful shutdown leaves behind.
var (
	durableWarmOnce sync.Once
	durableWarmDir  string
	durableWarmLen  int
	durableWarmErr  error
)

func durableWarmFixture(b *testing.B) (string, int) {
	b.Helper()
	durableWarmOnce.Do(func() {
		dir, err := os.MkdirTemp("", "psp-bench-warm-*")
		if err != nil {
			durableWarmErr = err
			return
		}
		durableWarmDir = dir
		// 16 stripes, not DefaultShards: compaction granularity is the
		// stripe, so finer striping is what lets a one-day delta rewrite
		// 1/16th of the corpus (sociald/pspd expose the same knob as
		// -shards).
		store, err := social.OpenStoreDir(dir, social.DurableOptions{
			Shards:       16,
			CompactEvery: -1,
		})
		if err != nil {
			durableWarmErr = err
			return
		}
		posts := paddedStore(b, 64000).SnapshotPosts()
		for lo := 0; lo < len(posts); lo += 1024 {
			hi := lo + 1024
			if hi > len(posts) {
				hi = len(posts)
			}
			if err := store.Add(posts[lo:hi]...); err != nil {
				durableWarmErr = err
				return
			}
		}
		if err := store.Flush(); err != nil {
			durableWarmErr = err
			return
		}
		durableWarmLen = store.Len()
		// No Close: the directory is already fully compacted and the
		// handles live until the test binary exits.
	})
	if durableWarmErr != nil {
		b.Fatal(durableWarmErr)
	}
	return durableWarmDir, durableWarmLen
}

// stripSidecars deletes every index sidecar from a cloned data
// directory, forcing recovery down the re-tokenize fallback — the
// pre-PR-9 open path, and the baseline the sidecar is measured against.
func stripSidecars(b *testing.B, dir string) {
	b.Helper()
	idx, err := filepath.Glob(filepath.Join(dir, "snap", "*.idx"))
	if err != nil {
		b.Fatal(err)
	}
	if len(idx) == 0 {
		b.Fatal("no sidecars to strip")
	}
	for _, p := range idx {
		if err := os.Remove(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery64k measures opening a 64k-post data directory until
// the store is fully queryable, in three shapes. warm=indexed loads the
// per-stripe index sidecars (the PR-9 fast path); warm=rebuild is the
// same directory with the sidecars deleted, so every stripe
// re-tokenizes — the pre-sidecar baseline (BENCH_5.json measured
// 2.33 s for the crash shape). crash reopens a kill -9 directory:
// indexed snapshot bulk plus a 16k-post WAL tail to replay.
// BENCH_9.json commits the figures.
func BenchmarkRecovery64k(b *testing.B) {
	openClone := func(b *testing.B, src string, corpus int, strip bool, wantRebuilt bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dst := filepath.Join(b.TempDir(), fmt.Sprintf("clone-%d", i))
			copyTreeHardlink(b, src, dst)
			if strip {
				stripSidecars(b, dst)
			}
			// A real recovery starts in a fresh process with an empty heap;
			// collect the bench loop's accumulated garbage off-timer so the
			// timed open does not pay for it.
			runtime.GC()
			b.StartTimer()
			store, err := social.OpenStoreDir(dst, social.DurableOptions{CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if store.Len() != corpus {
				b.Fatalf("recovered %d posts, want %d", store.Len(), corpus)
			}
			b.StopTimer()
			if st := store.Stats(); wantRebuilt != (st.RecoveredRebuilt > 0) {
				b.Fatalf("recovery split %d indexed / %d rebuilt does not match the benchmark's shape",
					st.RecoveredIndexed, st.RecoveredRebuilt)
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(corpus), "posts")
	}
	warmSrc, warmCorpus := durableWarmFixture(b)
	b.Run(fmt.Sprintf("warm=indexed/corpus=%d", warmCorpus), func(b *testing.B) {
		openClone(b, warmSrc, warmCorpus, false, false)
	})
	b.Run(fmt.Sprintf("warm=rebuild/corpus=%d", warmCorpus), func(b *testing.B) {
		openClone(b, warmSrc, warmCorpus, true, true)
	})
	crashSrc, crashCorpus := durableFixture(b)
	b.Run(fmt.Sprintf("crash/corpus=%d", crashCorpus), func(b *testing.B) {
		openClone(b, crashSrc, crashCorpus, false, false)
	})
}

// BenchmarkCompactDelta measures one snapshot compaction of a 64k-post
// store after a delta, reporting the bytes and stripes it rewrote.
// stripes=one confines the delta to one UTC day (one stripe — live
// ingest's shape), so incremental compaction writes a small fraction
// of the corpus; stripes=all spreads the same record count across
// every stripe, which is the full-rewrite worst case the <10%
// acceptance ratio in BENCH_9.json is measured against.
func BenchmarkCompactDelta(b *testing.B) {
	deltaPost := func(n, days int) *social.Post {
		return &social.Post{
			ID:        fmt.Sprintf("delta-%09d", n),
			Author:    "compactbench",
			Text:      "fresh #compactbench chatter about tuning the fleet",
			CreatedAt: time.Date(2024, 6, 1+n%days, 12, 0, 0, n, time.UTC),
			Region:    social.RegionEurope,
			Metrics:   social.Metrics{Views: n % 1000},
		}
	}
	src, corpus := durableWarmFixture(b)
	for _, shape := range []struct {
		name  string
		delta int
		days  int
	}{
		{"delta=1k/stripes=one", 1000, 1},
		{"delta=1k/stripes=all", 1000, 16},
		{"delta=16k/stripes=all", 16000, 16},
	} {
		b.Run(fmt.Sprintf("%s/corpus=%d", shape.name, corpus), func(b *testing.B) {
			var bytes, stripes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst := filepath.Join(b.TempDir(), fmt.Sprintf("clone-%d", i))
				copyTreeHardlink(b, src, dst)
				store, err := social.OpenStoreDir(dst, social.DurableOptions{CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]*social.Post, shape.delta)
				for n := range batch {
					batch[n] = deltaPost(n, shape.days)
				}
				if err := store.Add(batch...); err != nil {
					b.Fatal(err)
				}
				before := store.Stats()
				runtime.GC()
				b.StartTimer()
				if err := store.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				after := store.Stats()
				bytes += after.CompactionBytes - before.CompactionBytes
				stripes += after.CompactedStripes - before.CompactedStripes
				if err := store.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
			b.ReportMetric(float64(stripes)/float64(b.N), "stripes/op")
		})
	}
}

// walBenchPost builds the n-th ingest post of the WAL benchmark: all
// posts share one "live" day — concurrent ingest lands on one hot
// stripe, the daemon's steady-state shape (and the one group commit
// exists for).
func walBenchPost(n int64) *social.Post {
	return &social.Post{
		ID:        fmt.Sprintf("wal-%09d", n),
		Author:    "walbench",
		Text:      "durable #walbench chatter from the fleet",
		CreatedAt: time.Date(2024, 1, 1, 12, 0, 0, int(n%1_000_000_000), time.UTC),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: int(n % 1000)},
	}
}

// taraFleet builds (once) the assessment-as-a-service fixture: ~50
// tenant analyses of ~100 threats each, the fleet shape a pspd hosting
// one tenant per vehicle variant carries.
var (
	taraFleetOnce     sync.Once
	taraFleetAnalyses []*tara.Analysis
	taraFleetErr      error
	taraDeltaSeq      atomic.Int64
)

func taraFleet(b *testing.B) []*tara.Analysis {
	b.Helper()
	taraFleetOnce.Do(func() {
		for i := 0; i < 50; i++ {
			a, err := tara.GenerateAnalysis(tara.GenSpec{
				Name:           fmt.Sprintf("tenant-%02d", i),
				Assets:         20,
				Damages:        25,
				Threats:        100,
				PathsPerThreat: 2,
				Seed:           9000 + int64(i),
			})
			if err != nil {
				taraFleetErr = err
				return
			}
			taraFleetAnalyses = append(taraFleetAnalyses, a)
		}
	})
	if taraFleetErr != nil {
		b.Fatal(taraFleetErr)
	}
	return taraFleetAnalyses
}

// taraBenchTables returns two distinct feasibility-table overrides; the
// delta benchmark alternates between them so every mutation genuinely
// changes the effective table (an override equal to the installed one
// dirties nothing by design).
func taraBenchTables(b *testing.B) [2]*tara.VectorTable {
	b.Helper()
	mk := func(name string, phys tara.FeasibilityRating) *tara.VectorTable {
		t, err := tara.NewVectorTable(name, map[tara.AttackVector]tara.FeasibilityRating{
			tara.VectorPhysical: phys,
			tara.VectorLocal:    tara.FeasibilityMedium,
			tara.VectorAdjacent: tara.FeasibilityLow,
			tara.VectorNetwork:  tara.FeasibilityVeryLow,
		})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	return [2]*tara.VectorTable{
		mk("bench-field-a", tara.FeasibilityHigh),
		mk("bench-field-b", tara.FeasibilityMedium),
	}
}

// BenchmarkAnalysisRunCold is the batch-script baseline the refactor
// replaces: every iteration rates the full 50-tenant × 100-threat fleet
// from scratch (clones run cold), on the framework worker pool.
// rating-calls/op records the work: 5000 threat ratings per pass.
func BenchmarkAnalysisRunCold(b *testing.B) {
	fleet := taraFleet(b)
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	var calls uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calls = 0
		for _, a := range fleet {
			cold := a.Clone()
			if _, err := fw.RateAnalysis(ctx, cold); err != nil {
				b.Fatal(err)
			}
			calls += cold.RatingCalls()
		}
	}
	b.ReportMetric(float64(calls), "rating-calls/op")
}

// BenchmarkAnalysisRerateDelta is the incremental engine on the same
// fleet: one tenant takes a single-threat feasibility override, then
// the whole fleet is re-rated. Dirty tracking re-rates exactly one
// threat — the other 4999 are served as memoized pointer-identical
// results and the 49 clean tenants plan zero work — so ns/op must land
// well over 5× below the cold baseline (the acceptance bar; in
// practice it is orders of magnitude). rating-calls/op pins the work
// at 1.
func BenchmarkAnalysisRerateDelta(b *testing.B) {
	fleet := taraFleet(b)
	tables := taraBenchTables(b)
	fw := benchFramework(b, core.Config{})
	ctx := context.Background()
	// Warm every tenant outside the timer: the service steady state.
	for _, a := range fleet {
		if _, err := fw.RateAnalysis(ctx, a); err != nil {
			b.Fatal(err)
		}
	}
	var calls uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The sequence survives the harness's calibration runs, so each
		// tenant's consecutive overrides alternate tables — every
		// mutation changes the effective table, none is a no-op.
		idx := taraDeltaSeq.Add(1)
		a := fleet[idx%int64(len(fleet))]
		before := a.RatingCalls()
		changed, err := a.SetThreatTable(a.Threats[0].ID, tables[(idx/int64(len(fleet)))%2])
		if err != nil {
			b.Fatal(err)
		}
		if !changed {
			b.Fatal("override did not change the effective table")
		}
		for _, t := range fleet {
			if _, err := fw.RateAnalysis(ctx, t); err != nil {
				b.Fatal(err)
			}
		}
		calls = a.RatingCalls() - before
		if calls != 1 {
			b.Fatalf("delta pass made %d rating calls, want 1", calls)
		}
	}
	b.ReportMetric(float64(calls), "rating-calls/op")
}

// BenchmarkResilienceSeams prices the fault-injection and graceful-
// degradation seams on their hot paths, healthy-case (the seams armed
// but no fault firing — what production pays). Two pairs:
//
//   - multi=bare vs multi=resilient: a federated page over two healthy
//     backends, bare all-or-nothing vs per-backend timeout + circuit
//     breaker + partial-results mode armed;
//   - ingest=osfs vs ingest=faultfs: group-committed WAL ingest on the
//     raw filesystem vs through the fault.FS seam with no injectors
//     bound (nil-injector consults on every write and fsync).
//
// The acceptance bar: each instrumented twin within 5% of its bare
// one. BENCH_8.json commits the figures.
func BenchmarkResilienceSeams(b *testing.B) {
	for _, mode := range []string{"bare", "resilient"} {
		b.Run("multi="+mode, func(b *testing.B) {
			store := paddedStore(b, 8000)
			sources := []social.PlatformSource{
				{Name: "alpha", Searcher: store},
				{Name: "beta", Searcher: store},
			}
			var (
				s   social.Searcher
				err error
			)
			if mode == "resilient" {
				s, err = social.NewMultiOptions(social.MultiOptions{
					BackendTimeout:   5 * time.Second,
					Partial:          true,
					BreakerThreshold: 3,
				}, sources...)
			} else {
				s, err = social.NewMulti(sources...)
			}
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			q := social.Query{AnyTags: []string{"fillerchatter"}, MaxResults: 50, SkipTotal: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := s.Search(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(page.Posts) == 0 || page.Degraded {
					b.Fatalf("healthy federated page: %d posts, degraded=%v", len(page.Posts), page.Degraded)
				}
			}
		})
	}
	for _, mode := range []string{"osfs", "faultfs"} {
		b.Run("ingest="+mode, func(b *testing.B) {
			opts := social.DurableOptions{
				Shards:       social.DefaultShards,
				CompactEvery: -1, // measure the log, not the compactor
			}
			if mode == "faultfs" {
				// The seam armed, nothing bound: every segment write and
				// fsync consults nil injectors.
				opts.FS = &fault.FS{}
			}
			store, err := social.OpenStoreDir(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			const batch = 16
			posts := make([]*social.Post, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range posts {
					posts[j] = walBenchPost(walPostSeq.Add(1))
				}
				if err := store.Add(posts...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(batch), "posts/op")
		})
	}
}

// BenchmarkTracingOverhead prices the distributed-tracing tentpole on
// the two hottest shapes: the mixed ingest+search store workload
// (BenchmarkStoreConcurrentMixed's shape) and the armed federated page
// (BenchmarkResilienceSeams's resilient shape), each bare against
// traced at the default 0.1 head-sampling rate and at full sampling.
// The acceptance bar is trace=sampled within ~5% of trace=off: the
// untraced paths cost one atomic pointer load, and an unsampled span
// is one small allocation plus the sampling coin — no ring write, no
// attr formatting (attrs are set but the span is dropped at End).
func BenchmarkTracingOverhead(b *testing.B) {
	tracerFor := func(mode string) *obs.Tracer {
		switch mode {
		case "sampled":
			return obs.NewTracer(obs.TracerOptions{SampleRate: 0.1})
		case "full":
			return obs.NewTracer(obs.TracerOptions{SampleRate: 1})
		default:
			return nil
		}
	}
	for _, mode := range []string{"off", "sampled", "full"} {
		store := paddedStoreShards(b, 56000, 8)
		store.SetTracer(tracerFor(mode))
		b.Run(fmt.Sprintf("store=mixed/trace=%s", mode), func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				q := social.Query{AnyTags: []string{"dpfdelete"}, MaxResults: 50}
				for i := 0; pb.Next(); i++ {
					if i%2 == 0 {
						if err := store.Add(mixedWritePost(mixedPostSeq.Add(1))); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					page, err := store.Search(ctx, q)
					if err != nil || page.TotalMatches == 0 {
						b.Errorf("search: %v (total %d)", err, page.TotalMatches)
						return
					}
				}
			})
		})
	}
	for _, mode := range []string{"off", "sampled", "full"} {
		b.Run(fmt.Sprintf("multi=armed/trace=%s", mode), func(b *testing.B) {
			store := paddedStore(b, 8000)
			s, err := social.NewMultiOptions(social.MultiOptions{
				BackendTimeout:   5 * time.Second,
				Partial:          true,
				BreakerThreshold: 3,
				Tracer:           tracerFor(mode),
			},
				social.PlatformSource{Name: "alpha", Searcher: store},
				social.PlatformSource{Name: "beta", Searcher: store},
			)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			q := social.Query{AnyTags: []string{"fillerchatter"}, MaxResults: 50, SkipTotal: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := s.Search(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(page.Posts) == 0 || page.Degraded {
					b.Fatalf("healthy federated page: %d posts, degraded=%v", len(page.Posts), page.Degraded)
				}
			}
		})
	}
}
