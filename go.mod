module github.com/psp-framework/psp

go 1.21
