package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: github.com/psp-framework/psp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStoreConcurrentMixed/corpus=64215/shards=1         	     200	   1207216 ns/op	  260083 B/op	      37 allocs/op
BenchmarkStoreConcurrentMixed/corpus=64215/shards=8-4       	     200	    169188 ns/op	   36258 B/op	      60 allocs/op
BenchmarkStoreSearchPage/corpus=8215/page=first             	      50	      6860 ns/op
BenchmarkStoreSearchPage/corpus=64215/page=mid-4            	      50	      7748.5 ns/op
BenchmarkStoreReadUnderWrite/corpus=64215/shards=8-4        	     200	     12345 ns/op	      9871 p50-ns	     31415 p99-ns
BenchmarkStoreSearchWindow/shards=16/window=1d              	     200	      3040 ns/op	         1.000 stripe-visits/op
PASS
ok  	github.com/psp-framework/psp	11.685s`
	records, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("parsed %d records, want 6", len(records))
	}
	first := records[0]
	if first.Name != "StoreConcurrentMixed" || first.Corpus != 64215 || first.Shards != 1 ||
		first.CPU != 1 || first.Iterations != 200 || first.NsPerOp != 1207216 ||
		first.BytesPerOp != 260083 || first.AllocsPerOp != 37 {
		t.Errorf("record 0 = %+v", first)
	}
	// The trailing -4 is the GOMAXPROCS suffix, not part of the shard
	// count.
	if records[1].Shards != 8 || records[1].CPU != 4 {
		t.Errorf("cpu suffix misparsed: %+v", records[1])
	}
	if records[2].Page != "first" || records[2].CPU != 1 || records[2].BytesPerOp != 0 {
		t.Errorf("record 2 = %+v", records[2])
	}
	if records[3].Page != "mid" || records[3].CPU != 4 || records[3].NsPerOp != 7748.5 {
		t.Errorf("record 3 = %+v", records[3])
	}
	// Custom b.ReportMetric units land in the metrics map.
	ruw := records[4]
	if ruw.Name != "StoreReadUnderWrite" || ruw.Shards != 8 || ruw.CPU != 4 ||
		ruw.Metrics["p50-ns"] != 9871 || ruw.Metrics["p99-ns"] != 31415 {
		t.Errorf("record 4 = %+v", ruw)
	}
	win := records[5]
	if win.Name != "StoreSearchWindow/window=1d" || win.Shards != 16 ||
		win.Metrics["stripe-visits/op"] != 1 || win.NsPerOp != 3040 {
		t.Errorf("record 5 = %+v", win)
	}
	if records[2].Metrics != nil {
		t.Errorf("record without custom metrics got %v", records[2].Metrics)
	}
}

func TestParseNameWithoutComponents(t *testing.T) {
	rec, err := parseName("BenchmarkFig7Workflow-4")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "Fig7Workflow" || rec.CPU != 4 || rec.Corpus != 0 {
		t.Errorf("rec = %+v", rec)
	}
	// Unknown key=value components and plain sub-names stay in the name.
	rec, err = parseName("BenchmarkX/mode=fast/sub")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "X/mode=fast/sub" || rec.CPU != 1 {
		t.Errorf("rec = %+v", rec)
	}
}
