// Command benchreport converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout. CI pipes the shard-scaling suite
// (BenchmarkStoreConcurrentMixed, BenchmarkStoreSearchPage) through it
// to emit BENCH_3.json, so the perf trajectory of the sharded store is
// tracked as data rather than prose.
//
// Sub-benchmark name components of the form key=value (corpus=64215,
// shards=8, page=mid) become typed fields; the trailing "-N" the
// testing package appends under -cpu is parsed into the cpu field
// (absent suffix means GOMAXPROCS=1).
//
// Usage:
//
//	go test -run '^$' -bench 'StoreConcurrentMixed|StoreSearchPage' \
//	    -benchtime 200x -cpu 1,4 -benchmem . | benchreport > BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark line. Corpus, Shards and Page are zero/empty
// when the benchmark name carries no such component.
type Record struct {
	Name        string  `json:"name"`
	Corpus      int     `json:"corpus,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Page        string  `json:"page,omitempty"`
	CPU         int     `json:"cpu"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]Record, error) {
	var records []Record
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		rec, err := parseName(m[1])
		if err != nil {
			return nil, err
		}
		if rec.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("iterations of %q: %w", sc.Text(), err)
		}
		if rec.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("ns/op of %q: %w", sc.Text(), err)
		}
		if m[4] != "" {
			rec.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			rec.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// parseName splits a benchmark name into the record's typed fields.
func parseName(name string) (Record, error) {
	rec := Record{CPU: 1}
	name = strings.TrimPrefix(name, "Benchmark")
	// The testing package appends "-N" for GOMAXPROCS=N > 1. Key=value
	// components keep their digits behind '=', so a trailing dash-number
	// is always the cpu suffix.
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			rec.CPU = n
			name = name[:i]
		}
	}
	parts := strings.Split(name, "/")
	rec.Name = parts[0]
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			rec.Name += "/" + part
			continue
		}
		switch key {
		case "corpus":
			n, err := strconv.Atoi(val)
			if err != nil {
				return rec, fmt.Errorf("benchmark %s: corpus %q: %w", name, val, err)
			}
			rec.Corpus = n
		case "shards":
			n, err := strconv.Atoi(val)
			if err != nil {
				return rec, fmt.Errorf("benchmark %s: shards %q: %w", name, val, err)
			}
			rec.Shards = n
		case "page":
			rec.Page = val
		default:
			rec.Name += "/" + part
		}
	}
	return rec, nil
}
