// Command benchreport converts `go test -bench` output on stdin into a
// JSON benchmark record on stdout. CI pipes the shard-scaling suite
// (BenchmarkStoreConcurrentMixed, BenchmarkStoreSearchPage → BENCH_3.json)
// and the lock-free read suite (BenchmarkStoreReadUnderWrite,
// BenchmarkStoreSearchWindow → BENCH_4.json) through it, so the perf
// trajectory of the store is tracked as data rather than prose.
//
// Sub-benchmark name components of the form key=value (corpus=64215,
// shards=8, page=mid) become typed fields; the trailing "-N" the
// testing package appends under -cpu is parsed into the cpu field
// (absent suffix means GOMAXPROCS=1). Custom b.ReportMetric units
// (p50-ns, stripe-visits/op, ...) land in the metrics map.
//
// Usage:
//
//	go test -run '^$' -bench 'StoreConcurrentMixed|StoreSearchPage' \
//	    -benchtime 200x -cpu 1,4 -benchmem . | benchreport > BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark line. Corpus, Shards and Page are zero/empty
// when the benchmark name carries no such component; Metrics is nil
// when the benchmark reports no custom metrics.
type Record struct {
	Name        string             `json:"name"`
	Corpus      int                `json:"corpus,omitempty"`
	Shards      int                `json:"shards,omitempty"`
	Page        string             `json:"page,omitempty"`
	CPU         int                `json:"cpu"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark lines: a name, an iteration count, then
// (value, unit) measurement pairs. Known units fill the typed fields;
// anything else — the custom b.ReportMetric units — lands in Metrics.
func parse(sc *bufio.Scanner) ([]Record, error) {
	var records []Record
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") ||
			// A measurement tail is (value, unit) pairs including ns/op.
			len(fields)%2 != 0 || fields[3] != "ns/op" {
			continue
		}
		rec, err := parseName(fields[0])
		if err != nil {
			return nil, err
		}
		if rec.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("iterations of %q: %w", sc.Text(), err)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("measurement %q of %q: %w", fields[i], sc.Text(), err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = val
			case "B/op":
				rec.BytesPerOp = int64(val)
			case "allocs/op":
				rec.AllocsPerOp = int64(val)
			default:
				if rec.Metrics == nil {
					rec.Metrics = make(map[string]float64)
				}
				rec.Metrics[unit] = val
			}
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// parseName splits a benchmark name into the record's typed fields.
func parseName(name string) (Record, error) {
	rec := Record{CPU: 1}
	name = strings.TrimPrefix(name, "Benchmark")
	// The testing package appends "-N" for GOMAXPROCS=N > 1. Key=value
	// components keep their digits behind '=', so a trailing dash-number
	// is always the cpu suffix.
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			rec.CPU = n
			name = name[:i]
		}
	}
	parts := strings.Split(name, "/")
	rec.Name = parts[0]
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			rec.Name += "/" + part
			continue
		}
		switch key {
		case "corpus":
			n, err := strconv.Atoi(val)
			if err != nil {
				return rec, fmt.Errorf("benchmark %s: corpus %q: %w", name, val, err)
			}
			rec.Corpus = n
		case "shards":
			n, err := strconv.Atoi(val)
			if err != nil {
				return rec, fmt.Errorf("benchmark %s: shards %q: %w", name, val, err)
			}
			rec.Shards = n
		case "page":
			rec.Page = val
		default:
			rec.Name += "/" + part
		}
	}
	return rec, nil
}
