package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLoadCorpusGeneratesByDefault(t *testing.T) {
	store, err := loadCorpus(42, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("generated store is empty")
	}
}

func TestDumpAndLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")

	store, err := loadCorpus(7, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpCorpus(store, 7, path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("snapshot missing or empty: %v", err)
	}

	back, err := loadCorpus(0, path, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != store.Len() {
		t.Errorf("snapshot round trip: %d posts, want %d", back.Len(), store.Len())
	}
}

func TestLoadCorpusMissingFile(t *testing.T) {
	if _, err := loadCorpus(0, "/nonexistent/corpus.jsonl", "", 0); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunServesAndShutsDownGracefully boots the server and cancels the
// signal context — the SIGINT/SIGTERM path — expecting a clean exit.
func TestRunServesAndShutsDownGracefully(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, addr, 7, 0, 0, "", "", "", 4) }()

	url := "http://" + addr + "/v2/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still serving after shutdown")
	}
}
