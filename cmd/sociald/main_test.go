package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCorpusGeneratesByDefault(t *testing.T) {
	store, err := loadCorpus(42, "")
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("generated store is empty")
	}
}

func TestDumpAndLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")

	store, err := loadCorpus(7, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpCorpus(store, 7, path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("snapshot missing or empty: %v", err)
	}

	back, err := loadCorpus(0, path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != store.Len() {
		t.Errorf("snapshot round trip: %d posts, want %d", back.Len(), store.Len())
	}
}

func TestLoadCorpusMissingFile(t *testing.T) {
	if _, err := loadCorpus(0, "/nonexistent/corpus.jsonl"); err == nil {
		t.Error("missing file accepted")
	}
}
