package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	psp "github.com/psp-framework/psp"
)

func TestLoadCorpusGeneratesByDefault(t *testing.T) {
	store, err := loadCorpus(42, "", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("generated store is empty")
	}
}

func TestDumpAndLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")

	store, err := loadCorpus(7, "", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpCorpus(store, 7, path, psp.NopLogger()); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("snapshot missing or empty: %v", err)
	}

	back, err := loadCorpus(0, path, "", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != store.Len() {
		t.Errorf("snapshot round trip: %d posts, want %d", back.Len(), store.Len())
	}
}

func TestLoadCorpusMissingFile(t *testing.T) {
	if _, err := loadCorpus(0, "/nonexistent/corpus.jsonl", "", 0, nil); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunServesAndShutsDownGracefully boots the server and cancels the
// signal context — the SIGINT/SIGTERM path — expecting a clean exit.
func TestRunServesAndShutsDownGracefully(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr: addr, seed: 7, shards: 4,
			logLevel: "warn", logFormat: "text",
		})
	}()

	url := "http://" + addr + "/v2/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The search API is instrumented: a search records under the store
	// and HTTP families, and /v1/metrics serves the exposition.
	resp, err := http.Get("http://" + addr + "/v2/search?q=chiptuning")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no request ID on search response")
	}
	resp, err = http.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"psp_store_searches_total 1",
		`psp_http_requests_total{code="2xx",route="/v2/search"} 1`,
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still serving after shutdown")
	}
}
