// Command sociald serves the synthetic social-media corpus over the
// HTTP search API, standing in for the remote social platform the PSP
// paper's prototype queried. Point `psp sai -server http://...` or a
// custom psp.SocialClient at it.
//
// Usage:
//
//	sociald [-addr :8384] [-seed 42] [-rate 50] [-burst 100]
//	        [-corpus snapshot.jsonl] [-dump snapshot.jsonl]
//	        [-data-dir /var/lib/sociald] [-shards 0]
//
// -corpus loads a JSON Lines snapshot instead of generating the
// reference corpus; -dump writes the served corpus to a snapshot
// (atomically: temp file, fsync, rename) and exits. -shards sets the
// store's shard count (0 = library default) so concurrent search
// traffic and ingest spread across locks; results are identical at any
// setting.
//
// -data-dir runs the store on a per-stripe write-ahead log with
// snapshot compaction: restarts recover the corpus instead of
// regenerating it, and SIGTERM flushes a final snapshot. -seed/-corpus
// seed only an empty data directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	psp "github.com/psp-framework/psp"
)

func main() {
	addr := flag.String("addr", ":8384", "listen address")
	seed := flag.Int64("seed", 42, "corpus seed")
	rate := flag.Float64("rate", 50, "requests per second refill rate (0 disables limiting)")
	burst := flag.Int("burst", 100, "rate limiter burst capacity")
	corpus := flag.String("corpus", "", "load corpus from a JSON Lines snapshot instead of generating")
	dump := flag.String("dump", "", "write the corpus to a JSON Lines snapshot and exit")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty runs in-memory")
	shards := flag.Int("shards", 0, "store shard count (0 = library default)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *seed, *rate, *burst, *corpus, *dump, *dataDir, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "sociald:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, seed int64, rate float64, burst int, corpus, dump, dataDir string, shards int) error {
	store, err := loadCorpus(seed, corpus, dataDir, shards)
	if err != nil {
		return err
	}
	// With -data-dir this compacts the WAL tail into a final snapshot
	// on the way out (SIGTERM included); in-memory it is a no-op.
	defer func() {
		if err := store.Close(); err != nil {
			log.Printf("sociald: final flush: %v", err)
		}
	}()
	if dump != "" {
		return dumpCorpus(store, seed, dump)
	}
	var limiter *psp.RateLimiter
	if rate > 0 {
		limiter = newLimiter(burst, rate)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           psp.NewSocialServer(store, limiter).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("sociald: serving %d posts on %s (seed %d, %d store shards)",
		store.Len(), addr, seed, store.Shards())
	// Drain in-flight searches on SIGINT/SIGTERM instead of dropping
	// them mid-response; the helper is shared with pspd.
	if err := psp.ListenAndServeGraceful(ctx, srv, 5*time.Second); err != nil {
		return err
	}
	log.Printf("sociald: shut down cleanly")
	return nil
}

func newLimiter(burst int, rate float64) *psp.RateLimiter {
	return psp.NewRateLimiter(burst, rate)
}

// loadCorpus builds the store — durable when dataDir is set, striped
// across the requested shard count — from the data directory, a
// snapshot file, or the generator.
func loadCorpus(seed int64, path, dataDir string, shards int) (*psp.SocialStore, error) {
	if dataDir != "" {
		// The Seed hook runs only until the directory's seed marker
		// commits and resumes a crashed seed idempotently — a kill -9
		// mid-seed can never leave a silently partial corpus.
		return psp.OpenSocialStore(dataDir, psp.SocialDurableOptions{
			Shards: shards,
			Seed:   func() ([]*psp.Post, error) { return seedPosts(seed, path) },
		})
	}
	if path == "" {
		return psp.DefaultSocialStoreShards(seed, shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	store, err := psp.LoadSocialStoreShards(f, shards)
	if err != nil {
		return nil, fmt.Errorf("load corpus %s: %w", path, err)
	}
	return store, nil
}

// seedPosts produces the posts seeding a fresh data directory.
func seedPosts(seed int64, path string) ([]*psp.Post, error) {
	if path == "" {
		return psp.GenerateCorpus(psp.DefaultCorpusSpec(seed))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	return psp.ReadSocialPosts(f)
}

// dumpCorpus writes the served store's contents as a snapshot —
// atomically, so a crash mid-dump can never leave a truncated file
// that a later -corpus load would half-parse. It dumps the store, not
// a regenerated seed corpus, so posts recovered from a data directory
// are never silently missing from the dump.
func dumpCorpus(store *psp.SocialStore, seed int64, path string) error {
	if err := psp.WriteSocialStoreFile(path, store); err != nil {
		return err
	}
	log.Printf("sociald: wrote %d posts (seed %d) to %s", store.Len(), seed, path)
	return nil
}
