// Command sociald serves the synthetic social-media corpus over the
// HTTP search API, standing in for the remote social platform the PSP
// paper's prototype queried. Point `psp sai -server http://...` or a
// custom psp.SocialClient at it.
//
// Usage:
//
//	sociald [-addr :8384] [-seed 42] [-rate 50] [-burst 100]
//	        [-corpus snapshot.jsonl] [-dump snapshot.jsonl] [-shards 0]
//
// -corpus loads a JSON Lines snapshot instead of generating the
// reference corpus; -dump writes the served corpus to a snapshot and
// exits. -shards sets the store's shard count (0 = library
// default) so concurrent search traffic and ingest spread across
// locks; results are identical at any setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	psp "github.com/psp-framework/psp"
)

func main() {
	addr := flag.String("addr", ":8384", "listen address")
	seed := flag.Int64("seed", 42, "corpus seed")
	rate := flag.Float64("rate", 50, "requests per second refill rate (0 disables limiting)")
	burst := flag.Int("burst", 100, "rate limiter burst capacity")
	corpus := flag.String("corpus", "", "load corpus from a JSON Lines snapshot instead of generating")
	dump := flag.String("dump", "", "write the corpus to a JSON Lines snapshot and exit")
	shards := flag.Int("shards", 0, "store shard count (0 = library default)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *seed, *rate, *burst, *corpus, *dump, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "sociald:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, seed int64, rate float64, burst int, corpus, dump string, shards int) error {
	store, err := loadCorpus(seed, corpus, shards)
	if err != nil {
		return err
	}
	if dump != "" {
		return dumpCorpus(store, seed, dump)
	}
	var limiter *psp.RateLimiter
	if rate > 0 {
		limiter = newLimiter(burst, rate)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           psp.NewSocialServer(store, limiter).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("sociald: serving %d posts on %s (seed %d, %d store shards)",
		store.Len(), addr, seed, store.Shards())
	// Drain in-flight searches on SIGINT/SIGTERM instead of dropping
	// them mid-response; the helper is shared with pspd.
	if err := psp.ListenAndServeGraceful(ctx, srv, 5*time.Second); err != nil {
		return err
	}
	log.Printf("sociald: shut down cleanly")
	return nil
}

func newLimiter(burst int, rate float64) *psp.RateLimiter {
	return psp.NewRateLimiter(burst, rate)
}

// loadCorpus builds the store — striped across the requested shard
// count — from a snapshot file or the generator.
func loadCorpus(seed int64, path string, shards int) (*psp.SocialStore, error) {
	if path == "" {
		return psp.DefaultSocialStoreShards(seed, shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	store, err := psp.LoadSocialStoreShards(f, shards)
	if err != nil {
		return nil, fmt.Errorf("load corpus %s: %w", path, err)
	}
	return store, nil
}

// dumpCorpus regenerates the reference corpus posts and writes them as a
// snapshot.
func dumpCorpus(store *psp.SocialStore, seed int64, path string) error {
	posts, err := psp.GenerateCorpus(psp.DefaultCorpusSpec(seed))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create snapshot: %w", err)
	}
	defer f.Close()
	if err := psp.WriteSocialPosts(f, posts); err != nil {
		return err
	}
	log.Printf("sociald: wrote %d posts (of %d stored) to %s", len(posts), store.Len(), path)
	return f.Close()
}
