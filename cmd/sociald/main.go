// Command sociald serves the synthetic social-media corpus over the
// HTTP search API, standing in for the remote social platform the PSP
// paper's prototype queried. Point `psp sai -server http://...` or a
// custom psp.SocialClient at it.
//
// Usage:
//
//	sociald [-addr :8384] [-seed 42] [-rate 50] [-burst 100]
//	        [-corpus snapshot.jsonl] [-dump snapshot.jsonl]
//	        [-data-dir /var/lib/sociald] [-shards 0]
//	        [-trace-sample 0.1] [-slow-ms 250]
//	        [-log-level info] [-log-format text] [-pprof]
//
// -corpus loads a JSON Lines snapshot instead of generating the
// reference corpus; -dump writes the served corpus to a snapshot
// (atomically: temp file, fsync, rename) and exits. -shards sets the
// store's shard count (0 = library default) so concurrent search
// traffic and ingest spread across locks; results are identical at any
// setting.
//
// -data-dir runs the store on a per-stripe write-ahead log with
// snapshot compaction: restarts recover the corpus instead of
// regenerating it, and SIGTERM flushes a final snapshot. -seed/-corpus
// seed only an empty data directory.
//
// Logs are structured (log/slog; -log-level, -log-format json for log
// shippers). GET /v1/metrics serves a Prometheus exposition of the
// store (psp_store_*, and psp_wal_* when durable), the search API
// (psp_http_*), span counts (psp_trace_*) and psp_build_info; every
// response carries an X-Request-ID header. Requests are traced: the
// middleware continues an inbound W3C traceparent header (as sent by a
// federated pspd), so sociald's server and store spans join the
// caller's distributed trace; GET /v1/trace serves the recorded spans
// (-trace-sample sets the keep rate for healthy traces, -slow-ms the
// always-keep latency bar). -pprof mounts net/http/pprof under
// /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	psp "github.com/psp-framework/psp"
)

// options carries the daemon configuration from flags to run.
type options struct {
	addr        string
	seed        int64
	rate        float64
	burst       int
	corpus      string
	dump        string
	dataDir     string
	shards      int
	traceSample float64
	slowMS      int
	logLevel    string
	logFormat   string
	pprof       bool
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8384", "listen address")
	flag.Int64Var(&opts.seed, "seed", 42, "corpus seed")
	flag.Float64Var(&opts.rate, "rate", 50, "requests per second refill rate (0 disables limiting)")
	flag.IntVar(&opts.burst, "burst", 100, "rate limiter burst capacity")
	flag.StringVar(&opts.corpus, "corpus", "", "load corpus from a JSON Lines snapshot instead of generating")
	flag.StringVar(&opts.dump, "dump", "", "write the corpus to a JSON Lines snapshot and exit")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durable data directory (WAL + snapshots); empty runs in-memory")
	flag.IntVar(&opts.shards, "shards", 0, "store shard count (0 = library default)")
	flag.Float64Var(&opts.traceSample, "trace-sample", 0.1, "probabilistic trace sample rate in [0,1]; errors and slow spans are always kept")
	flag.IntVar(&opts.slowMS, "slow-ms", 250, "spans at least this many milliseconds long are always traced and logged (<0 disables)")
	flag.StringVar(&opts.logLevel, "log-level", "info", "log floor: debug, info, warn or error")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log encoding: text or json")
	flag.BoolVar(&opts.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "sociald:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger from the -log-level/-log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (valid: text, json)", format)
	}
}

func run(ctx context.Context, opts options) error {
	logger, err := newLogger(opts.logLevel, opts.logFormat)
	if err != nil {
		return err
	}
	obsReg := psp.NewMetricsRegistry()
	psp.RegisterBuildInfo(obsReg, psp.Version)
	tracer := psp.NewTracer(psp.TracerOptions{
		SampleRate:    opts.traceSample,
		SlowThreshold: time.Duration(opts.slowMS) * time.Millisecond,
		Logger:        logger,
		Registry:      obsReg,
	})
	store, err := loadCorpus(opts.seed, opts.corpus, opts.dataDir, opts.shards, psp.NewSocialStoreMetrics(obsReg))
	if err != nil {
		return err
	}
	store.SetTracer(tracer)
	// With -data-dir this compacts the WAL tail into a final snapshot
	// on the way out (SIGTERM included); in-memory it is a no-op.
	defer func() {
		if err := store.Close(); err != nil {
			logger.Error("final flush failed", "error", err)
		}
	}()
	if opts.dump != "" {
		return dumpCorpus(store, opts.seed, opts.dump, logger)
	}
	var limiter *psp.RateLimiter
	if opts.rate > 0 {
		limiter = newLimiter(opts.burst, opts.rate)
	}

	// The search API's two routes are a bounded label set, so the path
	// itself can serve as the route label.
	httpMet := psp.NewHTTPMetrics(obsReg, logger).WithTracer(tracer)
	mux := http.NewServeMux()
	mux.Handle("/v2/", httpMet.Instrument(
		func(r *http.Request) string { return r.URL.Path },
		psp.NewSocialServer(store, limiter).Handler()))
	mux.Handle("/v1/metrics", psp.MetricsHandler(obsReg))
	mux.Handle("/v1/trace", psp.TraceHandler(tracer))
	if opts.pprof {
		mux.Handle("/debug/pprof/", psp.PprofHandler())
	}

	srv := &http.Server{
		Addr:              opts.addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Slowloris/stuck-client bounds: a request (headers + body)
		// must arrive within ReadTimeout and a response flush within
		// WriteTimeout (generous enough for 30s pprof profiles);
		// idle keep-alive connections are reaped after IdleTimeout.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	logger.Info("serving",
		"posts", store.Len(), "addr", opts.addr, "seed", opts.seed, "shards", store.Shards())
	// Drain in-flight searches on SIGINT/SIGTERM instead of dropping
	// them mid-response; the helper is shared with pspd.
	if err := psp.ListenAndServeGraceful(ctx, srv, 5*time.Second); err != nil {
		return err
	}
	logger.Info("shut down cleanly")
	return nil
}

func newLimiter(burst int, rate float64) *psp.RateLimiter {
	return psp.NewRateLimiter(burst, rate)
}

// loadCorpus builds the store — durable when dataDir is set, striped
// across the requested shard count — from the data directory, a
// snapshot file, or the generator. met attaches the store's recording
// surface from the first recovery replay on.
func loadCorpus(seed int64, path, dataDir string, shards int, met *psp.SocialStoreMetrics) (*psp.SocialStore, error) {
	if dataDir != "" {
		// The Seed hook runs only until the directory's seed marker
		// commits and resumes a crashed seed idempotently — a kill -9
		// mid-seed can never leave a silently partial corpus.
		return psp.OpenSocialStore(dataDir, psp.SocialDurableOptions{
			Shards:  shards,
			Seed:    func() ([]*psp.Post, error) { return seedPosts(seed, path) },
			Metrics: met,
		})
	}
	var store *psp.SocialStore
	var err error
	if path == "" {
		store, err = psp.DefaultSocialStoreShards(seed, shards)
	} else {
		var f *os.File
		f, err = os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open corpus: %w", err)
		}
		defer f.Close()
		store, err = psp.LoadSocialStoreShards(f, shards)
		if err != nil {
			return nil, fmt.Errorf("load corpus %s: %w", path, err)
		}
	}
	if err != nil {
		return nil, err
	}
	store.SetMetrics(met)
	return store, nil
}

// seedPosts produces the posts seeding a fresh data directory.
func seedPosts(seed int64, path string) ([]*psp.Post, error) {
	if path == "" {
		return psp.GenerateCorpus(psp.DefaultCorpusSpec(seed))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	return psp.ReadSocialPosts(f)
}

// dumpCorpus writes the served store's contents as a snapshot —
// atomically, so a crash mid-dump can never leave a truncated file
// that a later -corpus load would half-parse. It dumps the store, not
// a regenerated seed corpus, so posts recovered from a data directory
// are never silently missing from the dump.
func dumpCorpus(store *psp.SocialStore, seed int64, path string, logger *slog.Logger) error {
	if err := psp.WriteSocialStoreFile(path, store); err != nil {
		return err
	}
	logger.Info("wrote snapshot", "posts", store.Len(), "seed", seed, "path", path)
	return nil
}
