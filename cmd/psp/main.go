// Command psp is the PSP framework command-line interface.
//
// Subcommands:
//
//	psp sai      -app excavator -region EU [-since 2022-01-01] [-until ...]
//	psp weights  -threat "ECM reprogramming" -tags chiptuning,remap [-since ...]
//	psp finance  -category dpf-tampering -app excavator -region EU -year 2022 -maker TerraMach
//	psp tara     (runs the built-in ECM example analysis)
//
// By default the subcommands run against the built-in reference corpus
// and market dataset; -server switches the social source to a remote
// sociald instance, exercising the HTTP client path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	psp "github.com/psp-framework/psp"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "psp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: psp <sai|weights|finance|tara> [flags]")
	}
	switch args[0] {
	case "sai":
		return runSAI(w, args[1:])
	case "weights":
		return runWeights(w, args[1:])
	case "finance":
		return runFinance(w, args[1:])
	case "tara":
		return runTARA(w, args[1:])
	case "trend":
		return runTrend(w, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want sai, weights, finance, tara or trend)", args[0])
	}
}

func runTrend(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	tags := fs.String("tags", "chiptuning,ecutune,remap,stage1", "comma-separated attack hashtags")
	app := fs.String("app", "", "target application filter")
	region := fs.String("region", "", "region code filter")
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fw, err := common.framework()
	if err != nil {
		return err
	}
	since, until, err := common.window()
	if err != nil {
		return err
	}
	trend, err := fw.TopicTrend(context.Background(), splitTrim(*tags), psp.SocialInput{
		Application: *app,
		Region:      psp.Region(*region),
		Since:       since,
		Until:       until,
	})
	if err != nil {
		return err
	}
	chart, err := psp.RenderTrendChart(trend, fmt.Sprintf("Quarterly attraction — tags %s", *tags))
	if err != nil {
		return err
	}
	fmt.Fprint(w, chart)
	return nil
}

// commonFlags holds the flags shared by the social subcommands.
type commonFlags struct {
	seed   *int64
	server *string
	since  *string
	until  *string
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		seed:   fs.Int64("seed", 42, "reference corpus seed"),
		server: fs.String("server", "", "remote sociald base URL (empty = in-process corpus)"),
		since:  fs.String("since", "", "window start (YYYY-MM-DD)"),
		until:  fs.String("until", "", "window end (YYYY-MM-DD, exclusive)"),
	}
}

func (c *commonFlags) framework() (*psp.Framework, error) {
	if *c.server == "" {
		return psp.NewDefault(*c.seed)
	}
	ds, err := psp.DefaultMarketDataset()
	if err != nil {
		return nil, err
	}
	return psp.New(psp.Config{
		Searcher: psp.NewSocialClient(*c.server),
		Market:   ds,
	})
}

func (c *commonFlags) window() (since, until time.Time, err error) {
	parse := func(s string) (time.Time, error) {
		if s == "" {
			return time.Time{}, nil
		}
		return time.Parse("2006-01-02", s)
	}
	if since, err = parse(*c.since); err != nil {
		return
	}
	until, err = parse(*c.until)
	return
}

func runSAI(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sai", flag.ContinueOnError)
	app := fs.String("app", "", "target application (e.g. excavator)")
	region := fs.String("region", "", "region code (EU, NA, APAC)")
	filter := fs.Bool("filter", false, "drop inauthentic posts (poisoning defence)")
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fw, err := common.framework()
	if err != nil {
		return err
	}
	since, until, err := common.window()
	if err != nil {
		return err
	}
	res, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Application:       *app,
		Region:            psp.Region(*region),
		Since:             since,
		Until:             until,
		FilterInauthentic: *filter,
	})
	if err != nil {
		return err
	}
	if *filter {
		fmt.Fprintf(w, "poisoning defence: dropped %d inauthentic posts\n\n", res.InauthenticFiltered)
	}
	title := "Social Attraction Index"
	if *app != "" {
		title += fmt.Sprintf(" — %q", *app)
	}
	fmt.Fprint(w, psp.RenderSAITable(res.Index, title))
	chart, err := psp.RenderSAIChart(res.Index, "")
	if err != nil {
		return err
	}
	fmt.Fprint(w, chart)
	if len(res.Learned) > 0 {
		fmt.Fprintln(w, "auto-learned keywords:")
		topics := make([]string, 0, len(res.Learned))
		for topic := range res.Learned {
			topics = append(topics, topic)
		}
		sort.Strings(topics)
		for _, topic := range topics {
			fmt.Fprintf(w, "  %s: %v\n", topic, res.Learned[topic])
		}
	}
	return nil
}

func runWeights(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("weights", flag.ContinueOnError)
	threatName := fs.String("threat", "ECM reprogramming", "threat scenario name")
	tags := fs.String("tags", "chiptuning,ecutune,remap,stage1", "comma-separated attack hashtags")
	app := fs.String("app", "", "target application filter")
	region := fs.String("region", "", "region code filter")
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fw, err := common.framework()
	if err != nil {
		return err
	}
	since, until, err := common.window()
	if err != nil {
		return err
	}
	threat := &psp.ThreatScenario{
		ID: "TS-CLI-01", Name: *threatName,
		DamageIDs: []string{"DS-CLI"},
		Property:  psp.PropertyIntegrity,
		STRIDE:    psp.Tampering,
		Profiles:  []psp.AttackerProfile{psp.ProfileInsider},
		Vector:    psp.VectorPhysical,
		Keywords:  splitTrim(*tags),
	}
	res, err := fw.RunSocial(context.Background(), psp.SocialInput{
		Application: *app,
		Region:      psp.Region(*region),
		Since:       since,
		Until:       until,
		Threats:     []*psp.ThreatScenario{threat},
	})
	if err != nil {
		return err
	}
	if len(res.Tunings) == 0 {
		return fmt.Errorf("no tuning produced for threat %q", *threatName)
	}
	fmt.Fprint(w, psp.RenderTuningComparison(res.OutsiderTable, res.Tunings[0]))
	return nil
}

func runFinance(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("finance", flag.ContinueOnError)
	category := fs.String("category", "dpf-tampering", "attack category key")
	app := fs.String("app", "excavator", "vehicle application")
	region := fs.String("region", "EU", "region code")
	year := fs.Int("year", 2022, "sales year")
	maker := fs.String("maker", "TerraMach", "maker (non-monopolistic markets)")
	mono := fs.Bool("monopolistic", false, "use total vehicle sales instead of maker share")
	seed := fs.Int64("seed", 42, "reference corpus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fw, err := psp.NewDefault(*seed)
	if err != nil {
		return err
	}
	in := psp.FinancialInput{
		Category:    *category,
		Application: *app,
		Region:      *region,
		Year:        *year,
		MarketKind:  psp.NonMonopolistic,
		Maker:       *maker,
	}
	if *mono {
		in.MarketKind = psp.Monopolistic
		in.Maker = ""
	}
	res, err := fw.RunFinancial(in)
	if err != nil {
		return err
	}
	fmt.Fprint(w, psp.RenderFinancialSummary(res,
		fmt.Sprintf("Financial feasibility — %s / %s / %s / %d", *category, *app, *region, *year)))
	diagram, err := psp.RenderBEPDiagram(res.Curve, "Break-even diagram")
	if err != nil {
		return err
	}
	fmt.Fprint(w, diagram)
	return nil
}

func runTARA(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tara", flag.ContinueOnError)
	retuned := fs.Bool("psp", false, "install the PSP-retuned vector table before running")
	seed := fs.Int64("seed", 42, "reference corpus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	analysis := buildECMAnalysis()
	if *retuned {
		fw, err := psp.NewDefault(*seed)
		if err != nil {
			return err
		}
		res, err := fw.RunSocial(context.Background(), psp.SocialInput{
			Threats: []*psp.ThreatScenario{analysis.Threats[0]},
		})
		if err != nil {
			return err
		}
		if len(res.Tunings) > 0 && res.Tunings[0].Insider {
			analysis.VectorModel = res.Tunings[0].Table
		}
	}
	results, err := analysis.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "TARA — %s (vector model: %s)\n\n", analysis.Item.Name, analysis.VectorModel.Name)
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %-28s impact=%-10s feasibility=%-9s risk=%s treatment=%-7s CAL=%s\n",
			r.Threat.ID, r.Threat.Name, r.Impact, r.Feasibility, r.Risk, r.Treatment, r.CAL)
	}
	// Concept phase (§9.4): goals for treated risks, claims for the rest.
	concept, err := psp.DeriveConcept(results)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\ncybersecurity goals:")
	if len(concept.Goals) == 0 {
		fmt.Fprintln(w, "  (none — all risks retained or shared)")
	}
	for _, g := range concept.Goals {
		fmt.Fprintf(w, "  %s [%s, risk %s] %s\n", g.ID, g.CAL, g.Risk, g.Statement)
	}
	fmt.Fprintln(w, "cybersecurity claims:")
	if len(concept.Claims) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, c := range concept.Claims {
		fmt.Fprintf(w, "  %s %s\n", c.ID, c.Rationale)
	}
	return nil
}

// buildECMAnalysis assembles the paper's ECM item analysis.
func buildECMAnalysis() *psp.Analysis {
	item := &psp.Item{
		Name:        "Engine Control Module",
		Description: "Hard real-time powertrain ECU on the CAN powertrain subnet",
		Assets: []*psp.Asset{
			{
				ID: "ECM-FW", Name: "ECM firmware and calibration",
				Properties: []psp.SecurityProperty{psp.PropertyIntegrity, psp.PropertyAuthenticity},
				ECU:        "ECM",
			},
			{
				ID: "ECM-CAN", Name: "Powertrain CAN traffic",
				Properties: []psp.SecurityProperty{psp.PropertyIntegrity, psp.PropertyAvailability},
				ECU:        "ECM",
			},
		},
	}
	a := psp.NewAnalysis(item)
	a.AddDamage(&psp.DamageScenario{
		ID:          "DS-01",
		Description: "Emission controls defeated in the field",
		AssetIDs:    []string{"ECM-FW"},
		Impacts: map[psp.ImpactCategory]psp.ImpactRating{
			psp.CategorySafety:    psp.ImpactModerate,
			psp.CategoryFinancial: psp.ImpactMajor,
		},
	})
	a.AddDamage(&psp.DamageScenario{
		ID:          "DS-02",
		Description: "Loss of torque control while driving",
		AssetIDs:    []string{"ECM-CAN"},
		Impacts: map[psp.ImpactCategory]psp.ImpactRating{
			psp.CategorySafety: psp.ImpactSevere,
		},
	})
	a.AddThreat(&psp.ThreatScenario{
		ID: "TS-01", Name: "ECM reprogramming",
		DamageIDs: []string{"DS-01"},
		AssetIDs:  []string{"ECM-FW"},
		Property:  psp.PropertyIntegrity,
		STRIDE:    psp.Tampering,
		Profiles:  []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileRational, psp.ProfileLocal},
		Vector:    psp.VectorPhysical,
		Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1"},
	})
	a.AddThreat(&psp.ThreatScenario{
		ID: "TS-02", Name: "Powertrain CAN DoS",
		DamageIDs: []string{"DS-02"},
		AssetIDs:  []string{"ECM-CAN"},
		Property:  psp.PropertyAvailability,
		STRIDE:    psp.DenialOfService,
		Profiles:  []psp.AttackerProfile{psp.ProfileOutsider, psp.ProfileMalicious},
		Vector:    psp.VectorPhysical,
	})
	a.AddPath(&psp.AttackPath{
		ID: "AP-01", ThreatID: "TS-01",
		Steps: []psp.AttackStep{
			{Description: "access cabin OBD port", Vector: psp.VectorLocal},
			{Description: "bench-flash modified calibration", Vector: psp.VectorPhysical},
		},
	})
	return a
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
