package main

import (
	"strings"
	"testing"
)

func TestCLISubcommands(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		markers []string
	}{
		{
			name:    "sai",
			args:    []string{"sai", "-app", "excavator", "-region", "EU"},
			markers: []string{"DPF delete", "Probability"},
		},
		{
			name: "weights",
			args: []string{"weights", "-threat", "ECM reprogramming",
				"-tags", "chiptuning,ecutune,remap,stage1"},
			markers: []string{"Outsider threats", "PSP-tuned", "corrective factors"},
		},
		{
			name: "weights windowed",
			args: []string{"weights", "-since", "2022-01-01",
				"-tags", "chiptuning,ecutune,remap,stage1"},
			markers: []string{"since 2022-01-01"},
		},
		{
			name:    "finance",
			args:    []string{"finance"},
			markers: []string{"506,160.00 EUR", "145,286.67 EUR", "break-even point: 1406"},
		},
		{
			name:    "finance monopolistic",
			args:    []string{"finance", "-monopolistic"},
			markers: []string{"84300"},
		},
		{
			name:    "tara",
			args:    []string{"tara"},
			markers: []string{"ECM reprogramming", "R1"},
		},
		{
			name:    "tara with psp weights",
			args:    []string{"tara", "-psp"},
			markers: []string{"PSP insider", "R4"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf strings.Builder
			if err := run(&buf, tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			for _, m := range tt.markers {
				if !strings.Contains(buf.String(), m) {
					t.Errorf("output misses %q:\n%s", m, buf.String())
				}
			}
		})
	}
}

func TestCLIErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run(&buf, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(&buf, []string{"sai", "-since", "not-a-date"}); err == nil {
		t.Error("bad date accepted")
	}
	if err := run(&buf, []string{"finance", "-category", "no-such-category"}); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestCLITrendSubcommand(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []string{"trend", "-until", "2023-01-01"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trend: rising") {
		t.Errorf("trend output wrong:\n%s", buf.String())
	}
	if err := run(&buf, []string{"trend", "-tags", ""}); err == nil {
		t.Error("empty tags accepted")
	}
}
