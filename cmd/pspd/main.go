// Command pspd is the PSP continuous-monitoring daemon: it keeps a live
// social corpus, tails its changefeed, and re-runs the dirty slice of
// the Fig. 7 social workflow as posts arrive — the ongoing risk
// monitoring ISO/SAE 21434 Clause 8 requires, served over HTTP:
//
//	POST /v1/posts      ingest a JSON post or array of posts
//	GET  /v1/assessment current cached SAI/TARA result + freshness metadata
//	GET  /v1/healthz    liveness, corpus size, assessment generation
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests.
//
// Usage:
//
//	pspd [-addr :8484] [-seed 42] [-corpus snapshot.jsonl]
//	     [-application excavator] [-region EU]
//	     [-debounce 200ms] [-drain 5s] [-concurrency 0] [-shards 0]
//
// -corpus seeds the store from a JSON Lines snapshot instead of the
// generated reference corpus; -application and -region scope the
// monitored workflow like the psp CLI's sai command. -shards sets the
// store's shard count (0 = library default): more shards let
// concurrent ingest batches commit in parallel and shrink every lock
// hold to one stripe's share of the index, without changing any
// result.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	psp "github.com/psp-framework/psp"
)

func main() {
	addr := flag.String("addr", ":8484", "listen address")
	seed := flag.Int64("seed", 42, "corpus seed (ignored with -corpus)")
	corpus := flag.String("corpus", "", "seed the store from a JSON Lines snapshot")
	application := flag.String("application", "", "target application filter (e.g. excavator)")
	region := flag.String("region", "", "region filter (EU, NA, APAC, OTHER)")
	debounce := flag.Duration("debounce", 200*time.Millisecond, "quiet period before re-assessment")
	drain := flag.Duration("drain", 5*time.Second, "shutdown drain timeout")
	concurrency := flag.Int("concurrency", 0, "workflow query fan-out (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "store shard count (0 = library default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *seed, *corpus, *application, *region, *debounce, *drain, *concurrency, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "pspd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, seed int64, corpus, application, region string, debounce, drain time.Duration, concurrency, shards int) error {
	store, err := loadCorpus(seed, corpus, shards)
	if err != nil {
		return err
	}
	m, err := newMonitor(store, application, region, debounce, concurrency)
	if err != nil {
		return err
	}

	// The monitor and server share a context: a monitor failure (e.g.
	// the initial assessment erroring against a remote backend) tears
	// the server down instead of leaving a daemon that serves 503s
	// forever, and SIGINT/SIGTERM stops both.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	monErr := make(chan error, 1)
	go func() {
		err := m.Run(runCtx)
		monErr <- err
		if err != nil {
			stop()
		}
	}()

	srv := &http.Server{
		Addr:              addr,
		Handler:           psp.NewMonitorAPI(m).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("pspd: monitoring %d posts on %s (seed %d, debounce %s, %d store shards)",
		store.Len(), addr, seed, debounce, store.Shards())
	if err := psp.ListenAndServeGraceful(runCtx, srv, drain); err != nil {
		return err
	}
	// Surface the monitor's exit reason: a cancellation-driven stop is
	// a clean shutdown, anything else is the root cause.
	if err := <-monErr; err != nil && ctx.Err() == nil {
		return err
	}
	log.Printf("pspd: shut down cleanly")
	return nil
}

// newMonitor wires the framework and monitor over the store.
func newMonitor(store *psp.SocialStore, application, region string, debounce time.Duration, concurrency int) (*psp.Monitor, error) {
	// Validate the region eagerly: a typo would otherwise make a
	// healthy-looking daemon monitor an empty corpus forever.
	switch psp.Region(region) {
	case "", psp.RegionEurope, psp.RegionNorthAmerica, psp.RegionAsiaPacific, psp.RegionOther:
	default:
		return nil, fmt.Errorf("unknown region %q (valid: %s, %s, %s, %s)",
			region, psp.RegionEurope, psp.RegionNorthAmerica, psp.RegionAsiaPacific, psp.RegionOther)
	}
	fw, err := psp.New(psp.Config{Searcher: store, Concurrency: concurrency})
	if err != nil {
		return nil, err
	}
	return psp.NewMonitor(psp.MonitorConfig{
		Framework: fw,
		Store:     store,
		Input: psp.SocialInput{
			Application: application,
			Region:      psp.Region(region),
			Threats:     defaultThreats(),
		},
		Debounce: debounce,
	})
}

// defaultThreats is the monitored threat scenario list: the paper's
// running ECM reprogramming case plus the outsider immobilizer-bypass
// contrast. A product security team would supply its own TARA scenarios
// here.
func defaultThreats() []*psp.ThreatScenario {
	return []*psp.ThreatScenario{
		{
			ID: "TS-ECM-01", Name: "ECM reprogramming",
			Description: "Owner-approved reflash of ECM calibration",
			DamageIDs:   []string{"DS-01"},
			Property:    psp.PropertyIntegrity,
			STRIDE:      psp.Tampering,
			Profiles:    []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileRational, psp.ProfileLocal},
			Vector:      psp.VectorPhysical,
			Keywords:    []string{"chiptuning", "ecutune", "remap", "stage1"},
		},
		{
			ID: "TS-IMMO-01", Name: "Immobilizer bypass",
			Description: "Theft via key-fob relay or cloning",
			DamageIDs:   []string{"DS-02"},
			Property:    psp.PropertyAuthenticity,
			STRIDE:      psp.Spoofing,
			Profiles:    []psp.AttackerProfile{psp.ProfileOutsider},
			Vector:      psp.VectorAdjacent,
			Keywords:    []string{"keyfobhack", "relayattack"},
		},
	}
}

// loadCorpus builds the store — striped across the requested shard
// count — from a snapshot file or the generator.
func loadCorpus(seed int64, path string, shards int) (*psp.SocialStore, error) {
	if path == "" {
		return psp.DefaultSocialStoreShards(seed, shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	store, err := psp.LoadSocialStoreShards(f, shards)
	if err != nil {
		return nil, fmt.Errorf("load corpus %s: %w", path, err)
	}
	return store, nil
}
