// Command pspd is the PSP continuous-monitoring daemon: it keeps a live
// social corpus, tails its changefeed, and re-runs the dirty slice of
// the Fig. 7 social workflow as posts arrive — the ongoing risk
// monitoring ISO/SAE 21434 Clause 8 requires, served over HTTP:
//
//	POST /v1/posts      ingest a JSON post or array of posts
//	GET  /v1/assessment current cached SAI/TARA result + freshness metadata
//	                    (supports ETag / If-None-Match conditional polling)
//	GET  /v1/healthz    liveness (always 200): corpus size, generation,
//	                    readiness detail, WAL floors, changefeed backlog
//	GET  /v1/readyz     readiness: 503 until the initial assessment and
//	                    the initial TARA rating pass have landed
//	GET  /v1/metrics    Prometheus text exposition
//
// With -tara (default on) the daemon also serves assessment-as-a-service
// for a multi-tenant TARA fleet — one tenant per ECU of the reference
// architecture, with topology-derived attack paths:
//
//	GET    /v1/tara           tenant directory
//	GET    /v1/tara/{tenant}  current assessment (ETag / If-None-Match)
//	PUT    /v1/tara/{tenant}  create a tenant from an analysis document
//	POST   /v1/tara/{tenant}  apply mutation ops (optimistic concurrency)
//	DELETE /v1/tara/{tenant}  remove the tenant
//
// Tenant mutations re-rate only the dirty threats of the mutated tenant,
// and the social monitor's threat tunings flow into the tenants holding
// the monitored threat scenarios (TS-ECM-01 on the ECM tenant,
// TS-IMMO-01 on the BCM tenant).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests (and, with -data-dir, flushing a final snapshot).
//
// Usage:
//
//	pspd [-addr :8484] [-seed 42] [-corpus snapshot.jsonl]
//	     [-data-dir /var/lib/pspd]
//	     [-application excavator] [-region EU]
//	     [-debounce 200ms] [-drain 5s] [-concurrency 0] [-shards 0]
//	     [-trace-sample 0.1] [-slow-ms 250]
//	     [-log-level info] [-log-format text] [-pprof]
//
// -corpus seeds the store from a JSON Lines snapshot instead of the
// generated reference corpus; -application and -region scope the
// monitored workflow like the psp CLI's sai command. -shards sets the
// store's shard count (0 = library default): more shards let
// concurrent ingest batches commit in parallel and shrink every lock
// hold to one stripe's share of the index, without changing any
// result.
//
// -data-dir makes the daemon durable: the store runs on a per-stripe
// write-ahead log with background snapshot compaction (ingest
// acknowledges only after its batch is fsync'd), and the monitor
// persists its assessment, listing cache and changefeed cursor after
// every publication. A restarted pspd recovers the corpus from
// snapshot + WAL tail, serves its previous assessment immediately
// (same generation, same ETag) and catches up with one incremental
// delta run instead of a cold full workflow. -seed/-corpus seed only
// an empty data directory; afterwards the directory is authoritative
// (including its shard count — -shards must agree or stay 0).
//
// # Operating pspd
//
// Logs are structured (log/slog): -log-level picks the floor
// (debug/info/warn/error) and -log-format selects human-readable text
// or one-JSON-object-per-line for log shippers. Every HTTP response
// carries an X-Request-ID header (inbound IDs are honored, absent ones
// minted) and every request-scoped log line carries the same
// request_id attribute, so a failed ingest or tenant mutation can be
// correlated across client and daemon.
//
// GET /v1/metrics exposes Prometheus families for every stage of the
// pipeline:
//
//	psp_store_*    ingest/search counts and latency, shard visits,
//	               changefeed backlog, compactions, recovery
//	psp_wal_*      append/fsync latency, group-commit coalescing
//	               (records per fsync), segment rolls
//	psp_monitor_*  assessment generation, publish latency (debounce to
//	               publication), delta sizes, failure count and age
//	psp_tara_*     fleet size, dirty backlog, per-tenant re-rate
//	               latency, cumulative engine rating calls
//	psp_http_*     per-route request counts by status class and latency
//
// Readiness and liveness are distinct: /v1/healthz always answers 200
// while the process is up (point liveness probes here), and
// /v1/readyz answers 503 with the pending reasons until the daemon can
// actually serve assessments (point readiness gates here — on a warm
// restart the persisted assessment restores readiness immediately).
// Every request is traced end to end: the HTTP middleware continues an
// inbound W3C traceparent header (or starts a fresh trace), and spans
// from every stage the request touches — server handling, store search
// and ingest, WAL group commits, monitor delta runs, per-tenant TARA
// re-rates — share its trace ID, each carrying cost-attribution
// attributes (postings scanned, fsync group sizes, dirty threats).
// -trace-sample sets the probabilistic keep rate for healthy traces
// (0 records only errors, slow spans and degraded pages; 1 records
// everything); -slow-ms sets the latency above which a span is always
// kept and logged. GET /v1/trace serves the recorded spans as JSON —
// newest first, or one coherent trace via ?trace_id=. Span counts and
// durations additionally surface per span name under psp_trace_* in
// /v1/metrics, next to psp_build_info and process uptime.
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for
// live profiling; it is off by default because profiles are expensive
// and the endpoint has no auth.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	psp "github.com/psp-framework/psp"
)

// options carries the daemon configuration from flags to run.
type options struct {
	addr        string
	seed        int64
	corpus      string
	dataDir     string
	application string
	region      string
	debounce    time.Duration
	drain       time.Duration
	concurrency int
	shards      int
	taraFleet   bool
	traceSample float64
	slowMS      int
	logLevel    string
	logFormat   string
	pprof       bool
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8484", "listen address")
	flag.Int64Var(&opts.seed, "seed", 42, "corpus seed (ignored with -corpus)")
	flag.StringVar(&opts.corpus, "corpus", "", "seed the store from a JSON Lines snapshot")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durable data directory (WAL + snapshots + monitor state); empty runs in-memory")
	flag.StringVar(&opts.application, "application", "", "target application filter (e.g. excavator)")
	flag.StringVar(&opts.region, "region", "", "region filter (EU, NA, APAC, OTHER)")
	flag.DurationVar(&opts.debounce, "debounce", 200*time.Millisecond, "quiet period before re-assessment")
	flag.DurationVar(&opts.drain, "drain", 5*time.Second, "shutdown drain timeout")
	flag.IntVar(&opts.concurrency, "concurrency", 0, "workflow query fan-out (0 = GOMAXPROCS)")
	flag.IntVar(&opts.shards, "shards", 0, "store shard count (0 = library default)")
	flag.BoolVar(&opts.taraFleet, "tara", true, "serve the multi-tenant TARA fleet on /v1/tara")
	flag.Float64Var(&opts.traceSample, "trace-sample", 0.1, "probabilistic trace sample rate in [0,1]; errors and slow spans are always kept")
	flag.IntVar(&opts.slowMS, "slow-ms", 250, "spans at least this many milliseconds long are always traced and logged (<0 disables)")
	flag.StringVar(&opts.logLevel, "log-level", "info", "log floor: debug, info, warn or error")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log encoding: text or json")
	flag.BoolVar(&opts.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pspd:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger from the -log-level/-log-format
// flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (valid: text, json)", format)
	}
}

func run(ctx context.Context, opts options) error {
	logger, err := newLogger(opts.logLevel, opts.logFormat)
	if err != nil {
		return err
	}
	obsReg := psp.NewMetricsRegistry()
	psp.RegisterBuildInfo(obsReg, psp.Version)
	storeMet := psp.NewSocialStoreMetrics(obsReg)
	tracer := psp.NewTracer(psp.TracerOptions{
		SampleRate:    opts.traceSample,
		SlowThreshold: time.Duration(opts.slowMS) * time.Millisecond,
		Logger:        logger,
		Registry:      obsReg,
	})

	store, recovered, err := loadCorpus(opts.seed, opts.corpus, opts.dataDir, opts.shards, storeMet)
	if err != nil {
		return err
	}
	store.SetTracer(tracer)
	// The final flush pairs with the graceful HTTP drain: once the
	// server and monitor stopped, the WAL tail compacts into a snapshot
	// so the next start recovers without replay.
	defer func() {
		if err := store.Close(); err != nil {
			logger.Error("final flush failed", "error", err)
		}
	}()
	var state psp.MonitorStateStore
	if opts.dataDir != "" {
		state = psp.NewMonitorFileState(filepath.Join(opts.dataDir, "monitor.json"))
	}
	m, fw, err := newMonitor(store, state, opts, psp.NewMonitorMetrics(obsReg), tracer, logger)
	if err != nil {
		return err
	}
	var tm *psp.TARAMonitor
	if opts.taraFleet {
		tm, err = newTARAFleet(fw, m, opts.debounce, psp.NewTARAMonitorMetrics(obsReg), tracer, logger)
		if err != nil {
			return err
		}
	}

	// The monitor and server share a context: a monitor failure (e.g.
	// the initial assessment erroring against a remote backend) tears
	// the server down instead of leaving a daemon that serves 503s
	// forever, and SIGINT/SIGTERM stops both.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	monErr := make(chan error, 1)
	go func() {
		err := m.Run(runCtx)
		monErr <- err
		if err != nil {
			stopRun()
		}
	}()
	api := psp.NewMonitorAPI(m).WithObservability(obsReg, logger).WithTracing(tracer)
	if opts.pprof {
		api.WithPprof()
	}
	if tm != nil {
		// The TARA loop only stops on cancellation; rating failures are
		// retried with backoff and surfaced per-tenant, so its exit needs
		// no teardown of its own.
		go func() { _ = tm.Run(runCtx) }()
		api.WithTARA(tm)
	}

	srv := &http.Server{
		Addr:              opts.addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Slowloris/stuck-client bounds: a request (headers + body)
		// must arrive within ReadTimeout and a response flush within
		// WriteTimeout (generous enough for 30s pprof profiles);
		// idle keep-alive connections are reaped after IdleTimeout.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	persistence := "in-memory"
	if opts.dataDir != "" {
		persistence = fmt.Sprintf("durable at %s (recovered=%v)", opts.dataDir, recovered)
	}
	logger.Info("monitoring",
		"posts", store.Len(), "addr", opts.addr, "seed", opts.seed,
		"debounce", opts.debounce, "shards", store.Shards(), "persistence", persistence)
	if tm != nil {
		logger.Info("serving TARA fleet", "tenants", tm.Registry().Len())
	}
	if err := psp.ListenAndServeGraceful(runCtx, srv, opts.drain); err != nil {
		return err
	}
	// Surface the monitor's exit reason: a cancellation-driven stop is
	// a clean shutdown, anything else is the root cause.
	if err := <-monErr; err != nil && ctx.Err() == nil {
		return err
	}
	logger.Info("shut down cleanly")
	return nil
}

// newMonitor wires the framework and monitor over the store; the
// framework is returned too, so the TARA fleet can share its worker
// pool.
func newMonitor(store *psp.SocialStore, state psp.MonitorStateStore, opts options, met *psp.MonitorMetrics, tracer *psp.Tracer, logger *slog.Logger) (*psp.Monitor, *psp.Framework, error) {
	// Validate the region eagerly: a typo would otherwise make a
	// healthy-looking daemon monitor an empty corpus forever.
	switch psp.Region(opts.region) {
	case "", psp.RegionEurope, psp.RegionNorthAmerica, psp.RegionAsiaPacific, psp.RegionOther:
	default:
		return nil, nil, fmt.Errorf("unknown region %q (valid: %s, %s, %s, %s)",
			opts.region, psp.RegionEurope, psp.RegionNorthAmerica, psp.RegionAsiaPacific, psp.RegionOther)
	}
	fw, err := psp.New(psp.Config{Searcher: store, Concurrency: opts.concurrency})
	if err != nil {
		return nil, nil, err
	}
	m, err := psp.NewMonitor(psp.MonitorConfig{
		Framework: fw,
		Store:     store,
		Input: psp.SocialInput{
			Application: opts.application,
			Region:      psp.Region(opts.region),
			Threats:     defaultThreats(),
		},
		Debounce: opts.debounce,
		State:    state,
		Metrics:  met,
		Tracer:   tracer,
		Logger:   logger,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, fw, nil
}

// newTARAFleet derives one TARA tenant per reference-architecture ECU,
// attaches the socially monitored threat scenarios to the tenants owning
// the affected units, and wires the fleet's rating loop to the social
// monitor's tuning stream.
func newTARAFleet(fw *psp.Framework, m *psp.Monitor, debounce time.Duration, met *psp.TARAMonitorMetrics, tracer *psp.Tracer, logger *slog.Logger) (*psp.TARAMonitor, error) {
	top, err := psp.ReferenceArchitecture()
	if err != nil {
		return nil, err
	}
	reg, err := psp.DeriveTARARegistry(top)
	if err != nil {
		return nil, err
	}
	attach := []struct {
		tenant string
		threat *psp.ThreatScenario
	}{
		{"ECM", defaultThreats()[0]}, // TS-ECM-01
		{"BCM", defaultThreats()[1]}, // TS-IMMO-01
	}
	for _, at := range attach {
		ten, ok := reg.Get(at.tenant)
		if !ok {
			return nil, fmt.Errorf("tara fleet: reference architecture has no %s tenant", at.tenant)
		}
		th := *at.threat
		// Re-anchor the scenario on the tenant's derived tampering
		// damage; its monitored keywords stay as declared.
		th.DamageIDs = []string{"DS-TAMPER"}
		if _, err := ten.Mutate(func(a *psp.Analysis) (bool, error) {
			if err := a.UpsertThreat(&th); err != nil {
				return false, err
			}
			if _, err := psp.SyncTARAPaths(top, a, at.tenant); err != nil {
				return false, err
			}
			return true, nil
		}); err != nil {
			return nil, fmt.Errorf("tara fleet: attach %s to %s: %w", th.ID, at.tenant, err)
		}
	}
	return psp.NewTARAMonitor(psp.TARAMonitorConfig{
		Framework: fw,
		Registry:  reg,
		Social:    m,
		Debounce:  debounce,
		Metrics:   met,
		Tracer:    tracer,
		Logger:    logger,
	})
}

// defaultThreats is the monitored threat scenario list: the paper's
// running ECM reprogramming case plus the outsider immobilizer-bypass
// contrast. A product security team would supply its own TARA scenarios
// here.
func defaultThreats() []*psp.ThreatScenario {
	return []*psp.ThreatScenario{
		{
			ID: "TS-ECM-01", Name: "ECM reprogramming",
			Description: "Owner-approved reflash of ECM calibration",
			DamageIDs:   []string{"DS-01"},
			Property:    psp.PropertyIntegrity,
			STRIDE:      psp.Tampering,
			Profiles:    []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileRational, psp.ProfileLocal},
			Vector:      psp.VectorPhysical,
			Keywords:    []string{"chiptuning", "ecutune", "remap", "stage1"},
		},
		{
			ID: "TS-IMMO-01", Name: "Immobilizer bypass",
			Description: "Theft via key-fob relay or cloning",
			DamageIDs:   []string{"DS-02"},
			Property:    psp.PropertyAuthenticity,
			STRIDE:      psp.Spoofing,
			Profiles:    []psp.AttackerProfile{psp.ProfileOutsider},
			Vector:      psp.VectorAdjacent,
			Keywords:    []string{"keyfobhack", "relayattack"},
		},
	}
}

// loadCorpus builds the store — durable when dataDir is set, striped
// across the requested shard count — from the data directory, a
// snapshot file, or the generator. recovered reports whether an
// existing data directory supplied the corpus (seeding is then
// skipped). met attaches the store's recording surface (WAL metrics
// included) from the first recovery replay on.
func loadCorpus(seed int64, path, dataDir string, shards int, met *psp.SocialStoreMetrics) (store *psp.SocialStore, recovered bool, err error) {
	if dataDir == "" {
		store, err = loadEphemeral(seed, path, shards)
		if err == nil {
			store.SetMetrics(met)
		}
		return store, false, err
	}
	// recovered = the directory held a store before this boot. Seeding
	// is handled by the store itself (Seed hook): it runs only until
	// the directory's seed marker commits, resumes a crashed seed
	// idempotently, and every seed post is WAL-durable before the
	// daemon serves.
	_, statErr := os.Stat(filepath.Join(dataDir, "MANIFEST.json"))
	recovered = statErr == nil
	store, err = psp.OpenSocialStore(dataDir, psp.SocialDurableOptions{
		Shards:  shards,
		Seed:    func() ([]*psp.Post, error) { return seedPosts(seed, path) },
		Metrics: met,
	})
	if err != nil {
		return nil, false, err
	}
	return store, recovered, nil
}

// loadEphemeral is the in-memory path: generator or snapshot file.
func loadEphemeral(seed int64, path string, shards int) (*psp.SocialStore, error) {
	if path == "" {
		return psp.DefaultSocialStoreShards(seed, shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	store, err := psp.LoadSocialStoreShards(f, shards)
	if err != nil {
		return nil, fmt.Errorf("load corpus %s: %w", path, err)
	}
	return store, nil
}

// seedPosts produces the posts seeding a fresh data directory.
func seedPosts(seed int64, path string) ([]*psp.Post, error) {
	if path == "" {
		return psp.GenerateCorpus(psp.DefaultCorpusSpec(seed))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open corpus: %w", err)
	}
	defer f.Close()
	posts, err := psp.ReadSocialPosts(f)
	if err != nil {
		return nil, fmt.Errorf("load corpus %s: %w", path, err)
	}
	return posts, nil
}
