package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// testOpts is the base daemon configuration of the e2e tests: fast
// debounce, 4 store shards, quiet logs.
func testOpts(addr string) options {
	return options{
		addr:      addr,
		seed:      42,
		debounce:  20 * time.Millisecond,
		drain:     time.Second,
		shards:    4,
		logLevel:  "warn",
		logFormat: "text",
	}
}

// TestDaemonServesAndShutsDownGracefully boots the full daemon (store →
// monitor → HTTP), drives ingest and assessment over the wire, then
// cancels the signal context — the SIGTERM path — and requires a clean
// exit.
func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		opts := testOpts(addr)
		opts.taraFleet = true
		done <- run(ctx, opts)
	}()

	base := "http://" + addr
	waitHealthy(t, base)

	// The assessment comes up after the initial cold run.
	var assessment struct {
		Generation int `json:"generation"`
		CorpusSize int `json:"corpus_size"`
		Index      []struct {
			Topic string `json:"topic"`
		} `json:"index"`
		Tunings []struct {
			ThreatID string            `json:"threat_id"`
			Ratings  map[string]string `json:"ratings"`
		} `json:"tunings"`
	}
	waitAssessment(t, base, 1, &assessment)
	if len(assessment.Index) == 0 || len(assessment.Tunings) != 2 {
		t.Fatalf("assessment = %+v", assessment)
	}

	// Ingest posts over the wire; the assessment generation advances.
	posts := []map[string]any{{
		"id":         "wire-1",
		"author":     "tester",
		"text":       "daemon #chiptuning ingest test",
		"created_at": time.Date(2023, 5, 1, 10, 0, 0, 0, time.UTC).Format(time.RFC3339),
		"region":     "EU",
		"metrics":    map[string]int{"views": 10},
	}}
	body, _ := json.Marshal(posts)
	resp, err := http.Post(base+"/v1/posts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing struct {
		Added int `json:"added"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ing.Added != 1 {
		t.Fatalf("ingest status %d, added %d", resp.StatusCode, ing.Added)
	}
	waitAssessment(t, base, 2, &assessment)

	// The TARA fleet is up: one tenant per reference-architecture ECU.
	var dir struct {
		Tenants []struct {
			Tenant string `json:"tenant"`
		} `json:"tenants"`
	}
	resp, err = http.Get(base + "/v1/tara")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dir.Tenants) < 10 {
		t.Fatalf("fleet has %d tenants, want ≥ 10", len(dir.Tenants))
	}

	// The ECM tenant carries the socially monitored TS-ECM-01: the
	// first assessment's tunings land as a version-2 mutation there.
	ecm := waitTenant(t, base, "ECM", 2)
	calls, total := ecm.RatingCalls, ecm.TotalThreats
	if total < 3 {
		t.Fatalf("ECM tenant has %d threats, want ≥ 3 (derived + social)", total)
	}

	// A single-threat mutation over the wire re-rates exactly one
	// threat — the incrementality acceptance check, measured through the
	// tenant's rating-call counter.
	ops, _ := json.Marshal(map[string]any{
		"expect_version": ecm.Version,
		"ops": []map[string]any{{
			"op": "set_threat_table", "id": "TS-TAMPER",
			"table": map[string]any{
				"name":    "field-report",
				"ratings": map[string]string{"physical": "high", "local": "high", "adjacent": "low", "network": "very_low"},
			},
		}},
	})
	resp, err = http.Post(base+"/v1/tara/ECM", "application/json", bytes.NewReader(ops))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant mutation status %d", resp.StatusCode)
	}
	after := waitTenant(t, base, "ECM", ecm.Version+1)
	if after.RatedThreats != 1 {
		t.Fatalf("mutation re-rated %d threats, want 1", after.RatedThreats)
	}
	if got := after.RatingCalls - calls; got != 1 {
		t.Fatalf("rating calls advanced by %d, want 1", got)
	}
	if after.TotalThreats != total {
		t.Fatalf("threat count changed: %d → %d", total, after.TotalThreats)
	}

	// SIGTERM path: cancelling the signal context drains and exits nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

// TestDaemonWarmRestart boots the daemon with a data directory, stops
// it, and boots a second life over the same directory: the corpus must
// recover (not re-seed), and the first served assessment must come from
// the persisted state — same generation, restored flag set — rather
// than a cold run.
func TestDaemonWarmRestart(t *testing.T) {
	dataDir := t.TempDir()
	boot := func() (string, context.CancelFunc, chan error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			opts := testOpts(addr)
			opts.dataDir = dataDir
			done <- run(ctx, opts)
		}()
		return "http://" + addr, cancel, done
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		t.Helper()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	var first struct {
		Generation int  `json:"generation"`
		CorpusSize int  `json:"corpus_size"`
		Restored   bool `json:"restored"`
	}
	base, cancel, done := boot()
	waitHealthy(t, base)
	waitAssessment(t, base, 1, &first)
	if first.Restored {
		t.Fatalf("first life served a restored assessment: %+v", first)
	}
	stop(cancel, done)

	var second struct {
		Generation int  `json:"generation"`
		CorpusSize int  `json:"corpus_size"`
		Restored   bool `json:"restored"`
	}
	base, cancel, done = boot()
	waitHealthy(t, base)
	waitAssessment(t, base, first.Generation, &second)
	if !second.Restored {
		t.Fatalf("second life did not serve the persisted assessment: %+v", second)
	}
	if second.Generation != first.Generation || second.CorpusSize != first.CorpusSize {
		t.Fatalf("restored metadata diverged: %+v vs %+v", second, first)
	}
	stop(cancel, done)
}

func TestRunRejectsMissingCorpus(t *testing.T) {
	opts := testOpts("127.0.0.1:0")
	opts.seed = 0
	opts.corpus = "/nonexistent/corpus.jsonl"
	opts.debounce = time.Millisecond
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("missing corpus accepted")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type tenantProbe struct {
	Tenant       string `json:"tenant"`
	Version      uint64 `json:"version"`
	Generation   uint64 `json:"generation"`
	RatedThreats int    `json:"rated_threats"`
	TotalThreats int    `json:"total_threats"`
	RatingCalls  uint64 `json:"rating_calls"`
}

// waitTenant polls /v1/tara/{name} until the served assessment covers at
// least the given model version.
func waitTenant(t *testing.T, base, name string, minVersion uint64) tenantProbe {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/tara/" + name)
		if err != nil {
			t.Fatal(err)
		}
		var probe tenantProbe
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if probe.Version >= minVersion {
				return probe
			}
		} else {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never reached version %d (last: %+v)", name, minVersion, probe)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitAssessment(t *testing.T, base string, minGeneration int, out any) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/assessment")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			var probe struct {
				Generation int `json:"generation"`
			}
			if err := json.Unmarshal(body, &probe); err != nil {
				t.Fatal(err)
			}
			if probe.Generation >= minGeneration {
				if err := json.Unmarshal(body, out); err != nil {
					t.Fatal(err)
				}
				return
			}
		} else {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("assessment never reached generation %d", minGeneration)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRunRejectsUnknownRegion(t *testing.T) {
	opts := testOpts("127.0.0.1:0")
	opts.region = "Europe"
	opts.debounce = time.Millisecond
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestRunRejectsBadLogFlags(t *testing.T) {
	opts := testOpts("127.0.0.1:0")
	opts.logLevel = "verbose"
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("unknown log level accepted")
	}
	opts = testOpts("127.0.0.1:0")
	opts.logFormat = "logfmt"
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("unknown log format accepted")
	}
}

// TestDaemonObservabilityEndpoints boots a durable daemon with the TARA
// fleet and asserts the observability surface over the wire: the
// readiness gate opens only after the initial assessment and rating
// pass, responses carry request IDs, and /v1/metrics serves a
// Prometheus exposition covering every stage family — store, WAL,
// monitor, TARA and HTTP.
func TestDaemonObservabilityEndpoints(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		opts := testOpts(addr)
		opts.dataDir = t.TempDir()
		opts.taraFleet = true
		opts.pprof = true
		done <- run(ctx, opts)
	}()
	base := "http://" + addr
	waitHealthy(t, base)

	// Readiness gate: eventually 200 (the daemon just booted, so allow
	// the initial assessment and rating pass to land).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready (last status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Healthz mirrors readiness and carries the store detail.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("no request ID on response")
	}
	var health struct {
		Ready     bool     `json:"ready"`
		Durable   bool     `json:"durable"`
		WALFloors []uint64 `json:"wal_floors"`
		Shards    int      `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.Ready || !health.Durable || health.Shards != 4 || len(health.WALFloors) != 4 {
		t.Fatalf("healthz detail = %+v", health)
	}

	// The exposition covers every stage family with live values.
	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := string(exposition)
	for _, want := range []string{
		"# TYPE psp_store_adds_total counter",
		"psp_store_posts ",
		"psp_wal_appends_total",
		"psp_wal_fsync_seconds_count",
		"psp_monitor_generations_total",
		"psp_monitor_publish_seconds_bucket",
		"psp_tara_tenants",
		"psp_tara_tenant_rates_total",
		`psp_http_requests_total{code="2xx",route="/v1/healthz"}`,
		`psp_http_request_seconds_bucket{route="/v1/readyz",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Durable boot: the seed corpus went through the WAL, so appends and
	// fsyncs carry real values (not just registered families).
	if strings.Contains(body, "psp_wal_appends_total 0\n") {
		t.Fatal("WAL appends stayed zero on a durable boot")
	}

	// pprof is mounted when opted in.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
