package main

import (
	"strings"
	"testing"

	"github.com/psp-framework/psp/internal/tara"
)

func TestRunAllExperiments(t *testing.T) {
	var buf strings.Builder
	if err := runExperiments(&buf, "all", 42); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every experiment banner appears.
	for _, id := range experimentOrder {
		if !strings.Contains(out, strings.ToUpper(id)+" —") {
			t.Errorf("output misses experiment %s", id)
		}
	}
	// The headline numbers of the paper.
	for _, marker := range []string{
		"506,160.00 EUR",                     // Eq. 6
		"145,286.67 EUR",                     // Eq. 7
		"break-even point: 1406",             // Fig. 11
		"DPF delete",                         // Fig. 12 top entry
		"TARA reprocessing events: 7",        // Fig. 2 (6 phases + 1 field event)
		"ceiling for physical attacks: CAL2", // Fig. 6
		"0% under signal-extinction DoS",     // supplementary DoS run
		"defence on : top entry DPF delete",  // poisoning defence
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output misses marker %q", marker)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	if err := runExperiments(&buf, "fig5", 42); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), tara.StandardVectorTable().Name) {
		t.Errorf("fig5 output wrong:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := runExperiments(&buf, "fig99", 42); err == nil {
		t.Error("unknown experiment accepted")
	}
}
