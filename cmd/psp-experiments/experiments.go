package main

import (
	"context"
	"fmt"
	"io"
	"time"

	psp "github.com/psp-framework/psp"
	"github.com/psp-framework/psp/internal/canbus"
	"github.com/psp-framework/psp/internal/lifecycle"
	"github.com/psp-framework/psp/internal/market"
	"github.com/psp-framework/psp/internal/report"
	"github.com/psp-framework/psp/internal/standards"
	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

// env bundles the substrates shared by the experiments.
type env struct {
	fw   *psp.Framework
	seed int64
}

func newEnv(seed int64) (*env, error) {
	fw, err := psp.NewDefault(seed)
	if err != nil {
		return nil, err
	}
	return &env{fw: fw, seed: seed}, nil
}

// ecmThreat is the paper's running threat scenario.
func ecmThreat() *psp.ThreatScenario {
	return &psp.ThreatScenario{
		ID: "TS-ECM-01", Name: "ECM reprogramming",
		Description: "Owner-approved reflash of ECM calibration maps",
		DamageIDs:   []string{"DS-01"},
		Property:    psp.PropertyIntegrity,
		STRIDE:      psp.Tampering,
		Profiles:    []psp.AttackerProfile{psp.ProfileInsider, psp.ProfileRational, psp.ProfileLocal},
		Vector:      psp.VectorPhysical,
		Keywords:    []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

type experiment struct {
	title string
	run   func(io.Writer, *env) error
}

// experimentOrder fixes the "all" output sequence. The x-prefixed
// entries are supplementary experiments backing Section II's claims and
// the paper's roadmap features.
var experimentOrder = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9b", "fig9c", "fig10", "fig11", "fig12", "eq6", "eq7",
	"xdos", "xpoison",
}

var experiments = map[string]experiment{
	"fig1":    {"Standards contribution graph (ISO/SAE 21434 ancestry)", runFig1},
	"fig2":    {"Development life cycle with TARA reprocessing", runFig2},
	"fig3":    {"Attack potential weights model (Annex G.2)", runFig3},
	"fig4":    {"Vehicle architecture attack-surface classes", runFig4},
	"fig5":    {"Attack vector-based approach (G.9, static)", runFig5},
	"fig6":    {"CAL determination matrix", runFig6},
	"fig7":    {"PSP social workflow end-to-end", runFig7},
	"fig8":    {"Outsider (A) vs PSP-tuned insider (B) weights", runFig8},
	"fig9b":   {"PSP-revised G.9 for ECM reprogramming, all-time window", runFig9B},
	"fig9c":   {"PSP-revised G.9 for ECM reprogramming, since 2022", runFig9C},
	"fig10":   {"Financial workflow end-to-end (excavator, Europe)", runFig10},
	"fig11":   {"Break-even diagram", runFig11},
	"fig12":   {"SAI ranking for excavator insider attacks", runFig12},
	"eq6":     {"Market value of DPF tampering (Equation 6)", runEq6},
	"eq7":     {"Adversary investment bound (Equation 7)", runEq7},
	"xdos":    {"Powertrain CAN DoS on the bus simulator (Section II)", runXDoS},
	"xpoison": {"SAI poisoning attack and defence (roadmap feature)", runXPoison},
}

func runFig1(w io.Writer, _ *env) error {
	g, err := standards.ISO21434Graph()
	if err != nil {
		return err
	}
	tbl := report.NewTable(fmt.Sprintf("Standards contributing to %s", g.Target),
		"Standard", "Relationship", "Domain")
	for _, c := range g.All() {
		tbl.AddRow(c.Standard, c.Strength.String(), c.Domain.String())
	}
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintf(w, "IT-security share of contributors: %.0f%%\n", g.ITShare()*100)
	return nil
}

func runFig2(w io.Writer, _ *env) error {
	lc := lifecycle.New(nil)
	if err := lc.RunToProduction(); err != nil {
		return err
	}
	if err := lc.FieldVulnerability("field CAN DoS report"); err != nil {
		return err
	}
	tbl := report.NewTable("Life cycle events (TARA reprocessing marked)",
		"#", "Phase", "Event", "Note")
	for _, e := range lc.Events() {
		tbl.AddRow(fmt.Sprintf("%d", e.Sequence), e.Phase.String(), e.Kind, e.Note)
	}
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintf(w, "TARA reprocessing events: %d\n", lc.ReprocessingCount())
	return nil
}

func runFig3(w io.Writer, _ *env) error {
	fmt.Fprint(w, report.PotentialWeights(tara.StandardPotentialWeights()))
	// Worked aggregations: the paper's powertrain-insider argument.
	weights := tara.StandardPotentialWeights()
	bands := tara.StandardPotentialThresholds()
	insider := tara.AttackPotentialInput{
		Time: tara.TimeOneWeek, Expertise: tara.ExpertiseProficient,
		Knowledge: tara.KnowledgePublic, Window: tara.WindowUnlimited,
		Equipment: tara.EquipmentSpecialized,
	}
	remote := tara.AttackPotentialInput{
		Time: tara.TimeBeyondSixMonths, Expertise: tara.ExpertiseMultipleExperts,
		Knowledge: tara.KnowledgeConfidential, Window: tara.WindowDifficult,
		Equipment: tara.EquipmentBespoke,
	}
	for _, c := range []struct {
		name string
		in   tara.AttackPotentialInput
	}{
		{"powertrain insider (unlimited access, OBD tools)", insider},
		{"remote attacker without FOTA", remote},
	} {
		v, err := weights.Potential(c.in)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: potential %d → %s\n", c.name, v, bands.Rating(v))
	}
	return nil
}

func runFig4(w io.Writer, _ *env) error {
	top, err := vehicle.ReferenceArchitecture()
	if err != nil {
		return err
	}
	tbl := report.NewTable("ECU attack-surface classes (Fig. 4 colour coding)",
		"ECU", "Name", "Domain", "Long-range", "Short-range", "Physical", "Safety-critical")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, e := range top.ECUs() {
		tbl.AddRow(e.ID, e.Name, e.Domain.String(),
			yn(e.Reachable(vehicle.SurfaceLongRange)),
			yn(e.Reachable(vehicle.SurfaceShortRange)),
			yn(e.Reachable(vehicle.SurfacePhysical)),
			yn(e.SafetyCritical))
	}
	fmt.Fprint(w, tbl.Render())
	hops, err := top.Route("OBD", "ECM")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "attack route OBD → ECM: %d hops via gateway\n", len(hops))
	return nil
}

func runFig5(w io.Writer, _ *env) error {
	fmt.Fprint(w, report.VectorTable(tara.StandardVectorTable()))
	fmt.Fprintln(w, "Note: the static table rates remote attacks highest regardless of domain —")
	fmt.Fprintln(w, "the bias the PSP framework corrects for insider-dominated scenarios.")
	return nil
}

func runFig6(w io.Writer, _ *env) error {
	cal := tara.StandardCALTable()
	fmt.Fprint(w, report.CALTable(cal))
	maxPhys, err := cal.MaxForVector(tara.VectorPhysical)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ceiling for physical attacks: %s (the paper's powertrain DoS concern)\n", maxPhys)
	return nil
}

func runFig7(w io.Writer, env *env) error {
	res, err := env.fw.RunSocial(context.Background(), psp.SocialInput{
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.SAITable(res.Index, "Social Attraction Index (full corpus)"))
	fmt.Fprintln(w, "\nauto-learned keywords (block 5):")
	if len(res.Learned) == 0 {
		fmt.Fprintln(w, "  none")
	}
	for topic, tags := range res.Learned {
		fmt.Fprintf(w, "  %s: %v\n", topic, tags)
	}
	fmt.Fprintf(w, "\nthreat tunings generated (block 12): %d\n", len(res.Tunings))
	return nil
}

func runFig8(w io.Writer, env *env) error {
	res, err := env.fw.RunSocial(context.Background(), psp.SocialInput{
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	if len(res.Tunings) == 0 {
		return fmt.Errorf("no tuning produced")
	}
	fmt.Fprint(w, report.TuningComparison(res.OutsiderTable, res.Tunings[0]))
	return nil
}

func runFig9B(w io.Writer, env *env) error {
	fmt.Fprint(w, report.VectorTable(tara.StandardVectorTable()))
	res, err := env.fw.RunSocial(context.Background(), psp.SocialInput{
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.VectorTable(res.Tunings[0].Table))
	return nil
}

func runFig9C(w io.Writer, env *env) error {
	res, err := env.fw.RunSocial(context.Background(), psp.SocialInput{
		Since:   time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Threats: []*psp.ThreatScenario{ecmThreat()},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.VectorTable(res.Tunings[0].Table))
	fmt.Fprintln(w, "Trend inversion vs the all-time window: local (OBD) attacks now lead,")
	fmt.Fprintln(w, "matching the Upstream-confirmed shift the paper reports.")
	return nil
}

func excavatorFinancialInput() psp.FinancialInput {
	return psp.FinancialInput{
		Category:    market.CategoryDPFTampering,
		Application: "excavator",
		Region:      "EU",
		Year:        2022,
		MarketKind:  psp.NonMonopolistic,
		Maker:       market.MajorExcavatorMaker,
	}
}

func runFig10(w io.Writer, env *env) error {
	res, err := env.fw.RunFinancial(excavatorFinancialInput())
	if err != nil {
		return err
	}
	fmt.Fprint(w, psp.RenderFinancialSummary(res, "Financial workflow — DPF tampering, excavators, Europe"))
	return nil
}

func runFig11(w io.Writer, env *env) error {
	res, err := env.fw.RunFinancial(excavatorFinancialInput())
	if err != nil {
		return err
	}
	diagram, err := psp.RenderBEPDiagram(res.Curve, "Break-even diagram (revenue vs cost per attacker)")
	if err != nil {
		return err
	}
	fmt.Fprint(w, diagram)
	return nil
}

func runFig12(w io.Writer, env *env) error {
	res, err := env.fw.RunSocial(context.Background(), psp.SocialInput{
		Application: "excavator",
		Region:      psp.RegionEurope,
	})
	if err != nil {
		return err
	}
	chart, err := psp.RenderSAIChart(res.Index, `SAI — query "excavator, Europe"`)
	if err != nil {
		return err
	}
	fmt.Fprint(w, chart)
	return nil
}

func runEq6(w io.Writer, env *env) error {
	res, err := env.fw.RunFinancial(excavatorFinancialInput())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MV = PAE × PPIA = %d × %s = %s per year\n", res.PAE, res.PPIA, res.MV)
	fmt.Fprintf(w, "(paper: 1,406 × 360 EUR ≈ 506,160 EUR)\n")
	return nil
}

func runEq7(w io.Writer, env *env) error {
	res, err := env.fw.RunFinancial(excavatorFinancialInput())
	if err != nil {
		return err
	}
	margin, err := res.PPIA.Sub(res.VCU)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "FC = BEP × (PPIA − VCU) / n = %d × %s / %d = %s\n",
		res.PAE, margin, res.N, res.SecurityBudget)
	fmt.Fprintf(w, "(paper: 1,406 × 310 / 3 ≈ 145,286 EUR)\n")
	fmt.Fprintln(w, "→ the anti-tampering architecture must withstand an adversary investment of this size.")
	return nil
}

func runXDoS(w io.Writer, _ *env) error {
	bus := canbus.NewBus()
	torque := canbus.NewPeriodicSender("ECM-torque",
		canbus.Frame{ID: 0x0C0, Data: []byte{0x10, 0x27}}, 2)
	attacker := canbus.NewFlooder("attacker", canbus.Frame{ID: 0x000})
	attacker.Active = false
	if err := bus.Attach(torque, attacker); err != nil {
		return err
	}
	if err := bus.Run(200); err != nil {
		return err
	}
	baseline := torque.DeliveryRate()
	attacker.Active = true
	g0, d0, _ := torque.Stats()
	if err := bus.Run(200); err != nil {
		return err
	}
	g1, d1, _ := torque.Stats()
	underAttack := float64(d1-d0) / float64(g1-g0)
	fmt.Fprintf(w, "torque frame delivery: %.0f%% baseline → %.0f%% under signal-extinction DoS\n",
		baseline*100, underAttack*100)
	cal, err := tara.StandardCALTable().Determine(tara.ImpactSevere, tara.VectorPhysical)
	if err != nil {
		return err
	}
	feas, err := tara.StandardVectorTable().Rating(tara.VectorPhysical)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "standard TARA verdict: feasibility=%s, CAL=%s — despite a total outage of a\n", feas, cal)
	fmt.Fprintln(w, "safety-critical signal (the Section II mismatch PSP corrects).")
	return nil
}

func runXPoison(w io.Writer, env *env) error {
	store, err := psp.DefaultSocialStore(env.seed)
	if err != nil {
		return err
	}
	campaign, err := psp.InjectPoison(psp.PoisonCampaign{
		Seed: env.seed, Tag: "gpsblocker", Application: "excavator",
		Region: psp.RegionEurope, Posts: 1500, Authors: 4,
		Start: time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2022, 9, 1, 0, 0, 0, 0, time.UTC),
		Views: 90000,
	})
	if err != nil {
		return err
	}
	if err := store.Add(campaign...); err != nil {
		return err
	}
	ds, err := psp.DefaultMarketDataset()
	if err != nil {
		return err
	}
	fw, err := psp.New(psp.Config{Searcher: store, Market: ds})
	if err != nil {
		return err
	}
	for _, filter := range []bool{false, true} {
		res, err := fw.RunSocial(context.Background(), psp.SocialInput{
			Application: "excavator", Region: psp.RegionEurope,
			DisableLearning: true, FilterInauthentic: filter,
		})
		if err != nil {
			return err
		}
		top, err := res.Index.Top()
		if err != nil {
			return err
		}
		label := "defence off"
		if filter {
			label = "defence on "
		}
		fmt.Fprintf(w, "%s: top entry %-22s (dropped %d inauthentic posts)\n",
			label, top.Topic, res.InauthenticFiltered)
	}
	fmt.Fprintln(w, "→ a 1,500-post bot campaign hijacks the unfiltered index; the authenticity")
	fmt.Fprintln(w, "  filter (duplicates, author bursts, engagement anomalies) restores the ranking.")
	return nil
}
