// Command psp-experiments regenerates every figure and table of the PSP
// paper from the reproduction substrates. Each experiment is addressed
// by the identifier used in DESIGN.md and EXPERIMENTS.md (fig3, fig5,
// ..., eq6, eq7); "all" runs the full set in order.
//
// Usage:
//
//	psp-experiments [-run all|fig1|fig2|...|eq7] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig1..fig12, eq6, eq7)")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()
	if err := runExperiments(os.Stdout, *run, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psp-experiments:", err)
		os.Exit(1)
	}
}

func runExperiments(w io.Writer, which string, seed int64) error {
	env, err := newEnv(seed)
	if err != nil {
		return err
	}
	if which == "all" {
		for _, id := range experimentOrder {
			if err := runOne(w, env, id); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(w, env, strings.ToLower(which))
}

func runOne(w io.Writer, env *env, id string) error {
	exp, ok := experiments[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(knownIDs(), ", "))
	}
	fmt.Fprintf(w, "==== %s — %s ====\n\n", strings.ToUpper(id), exp.title)
	if err := exp.run(w, env); err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	fmt.Fprintln(w)
	return nil
}

func knownIDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
