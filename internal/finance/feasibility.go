package finance

import (
	"fmt"

	"github.com/psp-framework/psp/internal/tara"
)

// FeasibilityInput gathers the financial indices of one insider-attack
// threat scenario.
type FeasibilityInput struct {
	// PAE is the potential attacker population (Equation 2).
	PAE int
	// BEP is the break-even volume (Equation 3).
	BEP int
	// MV is the yearly market value (Equation 1).
	MV Money
}

// Thresholds maps the demand ratio PAE/BEP onto ISO/SAE 21434
// feasibility ratings. The underlying assumption of the paper: the wider
// the profitable margin between attacker demand and the break-even
// volume, the more feasible (because more attractive and better funded)
// the insider attack.
type Thresholds struct {
	// HighMin is the minimum PAE/BEP ratio rating High.
	HighMin float64
	// MediumMin and LowMin bound the Medium and Low bands; ratios below
	// LowMin rate Very Low.
	MediumMin float64
	LowMin    float64
}

// DefaultThresholds returns the default demand-ratio bands: an attack
// whose demand covers at least 4× the break-even volume rates High,
// ≥ 1× (profitable at all) rates Medium, ≥ 0.5× rates Low, anything
// smaller rates Very Low. The paper locates profitable attacks
// ("the blue area") between Medium and High.
func DefaultThresholds() Thresholds {
	return Thresholds{HighMin: 4, MediumMin: 1, LowMin: 0.5}
}

// Validate checks band ordering.
func (t Thresholds) Validate() error {
	if t.LowMin <= 0 || t.MediumMin <= t.LowMin || t.HighMin <= t.MediumMin {
		return fmt.Errorf("finance: invalid thresholds %+v", t)
	}
	return nil
}

// Rate maps the financial input onto an attack feasibility rating.
func Rate(in FeasibilityInput, th Thresholds) (tara.FeasibilityRating, error) {
	if err := th.Validate(); err != nil {
		return 0, err
	}
	if in.PAE < 0 || in.BEP < 0 {
		return 0, fmt.Errorf("finance: negative PAE or BEP: %+v", in)
	}
	if in.BEP == 0 {
		// Zero break-even volume: the attack is profitable from the
		// first unit sold.
		return tara.FeasibilityHigh, nil
	}
	ratio := float64(in.PAE) / float64(in.BEP)
	switch {
	case ratio >= th.HighMin:
		return tara.FeasibilityHigh, nil
	case ratio >= th.MediumMin:
		return tara.FeasibilityMedium, nil
	case ratio >= th.LowMin:
		return tara.FeasibilityLow, nil
	default:
		return tara.FeasibilityVeryLow, nil
	}
}
