package finance

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/psp-framework/psp/internal/tara"
)

// The excavator case study constants of Equations 6 and 7.
var (
	ppia360 = FromUnits(360, EUR)
	vcu50   = FromUnits(50, EUR)
)

func TestPAEExcavatorCaseStudy(t *testing.T) {
	// Equation 6 input: MS = 28,120, PEA = 5% → PAE = 1,406.
	pae, err := PAE(28120, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if pae != 1406 {
		t.Errorf("PAE = %d, want 1406", pae)
	}
}

func TestPAEValidation(t *testing.T) {
	if _, err := PAE(-1, 0.5); err == nil {
		t.Error("negative units accepted")
	}
	if _, err := PAE(10, -0.1); err == nil {
		t.Error("negative PEA accepted")
	}
	if _, err := PAE(10, 1.1); err == nil {
		t.Error("PEA > 1 accepted")
	}
	if pae, _ := PAE(0, 0.5); pae != 0 {
		t.Errorf("PAE(0) = %d", pae)
	}
}

func TestMarketValueEquation6(t *testing.T) {
	// MV = PAE · PPIA = 1,406 · 360 EUR = 506,160 EUR.
	mv, err := MarketValue(1406, ppia360)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Units() != 506160 {
		t.Errorf("MV = %s, want 506,160.00 EUR (Eq. 6)", mv)
	}
	if _, err := MarketValue(-1, ppia360); err == nil {
		t.Error("negative PAE accepted")
	}
	if _, err := MarketValue(10, Money{}); err == nil {
		t.Error("zero PPIA accepted")
	}
}

func TestInverseFixedCostEquation7(t *testing.T) {
	// FC = BEP·(PPIA−VCU)/n = 1,406·310/3 ≈ 145,286.67 EUR.
	fc, err := InverseFixedCost(1406, ppia360, vcu50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Cents != 14528667 {
		t.Errorf("FC = %s (%d cents), want ≈145,286.67 EUR (Eq. 7)", fc, fc.Cents)
	}
	if _, err := InverseFixedCost(-1, ppia360, vcu50, 3); err == nil {
		t.Error("negative BEP accepted")
	}
	if _, err := InverseFixedCost(1406, ppia360, vcu50, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := InverseFixedCost(1406, vcu50, ppia360, 3); !errors.Is(err, ErrNoMargin) {
		t.Errorf("inverted margin error = %v, want ErrNoMargin", err)
	}
}

func TestFixedCostEquation4(t *testing.T) {
	// A work-year of black-hat R&D at 60 EUR/h plus 20,480 EUR of
	// depreciated lab equipment.
	fc, err := FixedCost(2080, FromUnits(60, EUR), FromUnits(20480, EUR))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Units() != 2080*60+20480 {
		t.Errorf("FC = %s, want 145,280.00 EUR", fc)
	}
	if _, err := FixedCost(-1, FromUnits(60, EUR), Money{}); err == nil {
		t.Error("negative FTEH accepted")
	}
	if _, err := FixedCost(10, FromUnits(-1, EUR), Money{}); err == nil {
		t.Error("negative hourly cost accepted")
	}
}

func TestBreakEvenEquation3(t *testing.T) {
	// With the paper's FC ≈ 145,286 EUR, n = 3 and margin = 310 EUR the
	// break-even volume must return 1,406 (the PAE it was derived from).
	fc := FromUnits(145286, EUR)
	bep, err := BreakEven(fc, 3, ppia360, vcu50)
	if err != nil {
		t.Fatal(err)
	}
	if bep != 1406 {
		t.Errorf("BEP = %d, want 1406 (round trip of Eq. 3/5)", bep)
	}
	// Rounding up: one cent above the exact multiple adds a unit.
	bep2, err := BreakEven(FromCents(31001, EUR), 1, ppia360, vcu50)
	if err != nil {
		t.Fatal(err)
	}
	if bep2 != 2 {
		t.Errorf("BEP rounding = %d, want 2", bep2)
	}
	if _, err := BreakEven(fc, 0, ppia360, vcu50); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BreakEven(fc, 3, vcu50, ppia360); !errors.Is(err, ErrNoMargin) {
		t.Errorf("no-margin error = %v", err)
	}
	if _, err := BreakEven(FromUnits(-1, EUR), 3, ppia360, vcu50); err == nil {
		t.Error("negative FC accepted")
	}
}

func TestBEPCurveShape(t *testing.T) {
	fc := FromUnits(145286, EUR)
	curve, err := ComputeBEPCurve(fc, 3, ppia360, vcu50, 2800, 57)
	if err != nil {
		t.Fatal(err)
	}
	if curve.BreakEvenUnits != 1406 {
		t.Errorf("curve BEP = %d, want 1406", curve.BreakEvenUnits)
	}
	if len(curve.Points) != 57 {
		t.Fatalf("curve has %d points, want 57", len(curve.Points))
	}
	// Zones must transition loss → profit at the break-even point,
	// matching the red/blue areas of Fig. 11.
	sawLoss, sawProfit := false, false
	for _, p := range curve.Points {
		switch {
		case p.Units < curve.BreakEvenUnits:
			if p.Zone != ZoneLoss {
				t.Errorf("units %d: zone %v, want loss", p.Units, p.Zone)
			}
			sawLoss = true
		case p.Units > curve.BreakEvenUnits:
			if p.Zone != ZoneProfit {
				t.Errorf("units %d: zone %v, want profit", p.Units, p.Zone)
			}
			sawProfit = true
		}
	}
	if !sawLoss || !sawProfit {
		t.Error("curve does not cross the break-even point")
	}
	// First point: zero revenue, cost = FC.
	if curve.Points[0].Revenue.Cents != 0 || curve.Points[0].Cost.Cents != fc.Cents {
		t.Errorf("curve origin wrong: %+v", curve.Points[0])
	}
	if _, err := ComputeBEPCurve(fc, 3, ppia360, vcu50, 2800, 1); err == nil {
		t.Error("steps=1 accepted")
	}
	if _, err := ComputeBEPCurve(fc, 3, ppia360, vcu50, 0, 10); err == nil {
		t.Error("maxUnits=0 accepted")
	}
}

func TestClassifyVolume(t *testing.T) {
	if ClassifyVolume(100, 200) != ZoneLoss {
		t.Error("below BEP should be loss")
	}
	if ClassifyVolume(200, 200) != ZoneBreakEven {
		t.Error("at BEP should be break-even")
	}
	if ClassifyVolume(300, 200) != ZoneProfit {
		t.Error("above BEP should be profit")
	}
	if ZoneLoss.String() != "loss" || ZoneProfit.String() != "profit" || ZoneBreakEven.String() != "break-even" {
		t.Error("zone strings wrong")
	}
}

func TestFinancialFeasibilityRating(t *testing.T) {
	th := DefaultThresholds()
	tests := []struct {
		name string
		in   FeasibilityInput
		want tara.FeasibilityRating
	}{
		{"demand far above break-even", FeasibilityInput{PAE: 10000, BEP: 1000}, tara.FeasibilityHigh},
		{"profitable", FeasibilityInput{PAE: 1406, BEP: 1406}, tara.FeasibilityMedium},
		{"marginal", FeasibilityInput{PAE: 800, BEP: 1406}, tara.FeasibilityLow},
		{"unprofitable", FeasibilityInput{PAE: 100, BEP: 1406}, tara.FeasibilityVeryLow},
		{"zero break-even", FeasibilityInput{PAE: 1, BEP: 0}, tara.FeasibilityHigh},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Rate(tt.in, th)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Rate(%+v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if _, err := Rate(FeasibilityInput{PAE: -1, BEP: 1}, th); err == nil {
		t.Error("negative PAE accepted")
	}
	if _, err := Rate(FeasibilityInput{PAE: 1, BEP: 1}, Thresholds{}); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestMarketKindString(t *testing.T) {
	if Monopolistic.String() != "monopolistic" || NonMonopolistic.String() != "non-monopolistic" {
		t.Error("market kind strings wrong")
	}
}

// Property: BreakEven and InverseFixedCost are mutually consistent — for
// any positive margin and competitor count, recomputing the break-even
// volume from the inverse fixed cost returns the original BEP (up to the
// +1 unit introduced by cent rounding).
func TestBEPInverseRoundTripProperty(t *testing.T) {
	f := func(bepRaw uint16, marginRaw uint16, nRaw uint8) bool {
		bep := int(bepRaw)%10000 + 1
		margin := int64(marginRaw)%100000 + 1 // cents
		n := int(nRaw)%5 + 1
		ppia := FromCents(margin+5000, EUR)
		vcu := FromCents(5000, EUR)
		fc, err := InverseFixedCost(bep, ppia, vcu, n)
		if err != nil {
			return false
		}
		back, err := BreakEven(fc, n, ppia, vcu)
		if err != nil {
			return false
		}
		return back == bep || back == bep+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
