// Package finance implements the financial attack-feasibility model of
// the PSP framework (Section III of the paper, Fig. 10):
//
//   - MV = PAE · PPIA                      (Equation 1)
//   - PAE = VS · PEA  or  MS · PEA         (Equation 2)
//   - BEP = FC · n / (PPIA − VCU)          (Equation 3)
//   - FC = FTEH · ch + SLD                 (Equation 4)
//   - FC = BEP · (PPIA − VCU) / n          (Equation 5, inverse)
//
// plus break-even analysis with profitability zones (Fig. 11) and the
// mapping of financial indices onto ISO/SAE 21434 attack feasibility
// ratings, which lets the financial model plug into the standard's risk
// determination as a fourth feasibility approach.
//
// Money is represented as int64 cents with an explicit currency code;
// all equation arithmetic happens in cents and rounds half away from
// zero at the boundaries.
package finance
