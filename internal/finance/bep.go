package finance

import "fmt"

// Zone classifies a unit volume against the break-even point (the blue
// and red areas of Fig. 11).
type Zone int

// Profitability zones.
const (
	// ZoneLoss is the red area: revenue below cost.
	ZoneLoss Zone = iota + 1
	// ZoneBreakEven is the crossing point itself.
	ZoneBreakEven
	// ZoneProfit is the blue area: revenue above cost.
	ZoneProfit
)

// String returns the zone name.
func (z Zone) String() string {
	switch z {
	case ZoneLoss:
		return "loss"
	case ZoneBreakEven:
		return "break-even"
	case ZoneProfit:
		return "profit"
	}
	return fmt.Sprintf("Zone(%d)", int(z))
}

// CurvePoint is one sample of the break-even diagram.
type CurvePoint struct {
	// Units is the sales volume.
	Units int
	// Revenue is Units × PPIA / n (the per-attacker revenue of Eq. 3).
	Revenue Money
	// Cost is FC + Units × VCU / n.
	Cost Money
	// Zone classifies the point.
	Zone Zone
}

// BEPCurve is the sampled break-even diagram of Fig. 11.
type BEPCurve struct {
	// BreakEvenUnits is the crossing volume (Equation 3).
	BreakEvenUnits int
	// Points are the samples, ascending by Units.
	Points []CurvePoint
}

// ComputeBEPCurve samples the revenue and cost lines from 0 to maxUnits
// in the given number of steps (≥ 2), marking each point's zone. The
// per-attacker framing follows the paper: revenue per unit is divided by
// the n competing attackers, equivalently FC is multiplied by n in
// Equation 3.
func ComputeBEPCurve(fc Money, n int, ppia, vcu Money, maxUnits, steps int) (*BEPCurve, error) {
	if steps < 2 {
		return nil, fmt.Errorf("finance: need at least 2 curve steps, got %d", steps)
	}
	if maxUnits < 1 {
		return nil, fmt.Errorf("finance: maxUnits %d < 1", maxUnits)
	}
	bep, err := BreakEven(fc, n, ppia, vcu)
	if err != nil {
		return nil, err
	}
	curve := &BEPCurve{BreakEvenUnits: bep}
	for i := 0; i < steps; i++ {
		units := i * maxUnits / (steps - 1)
		revenue, err := ppia.MulInt(int64(units)).DivInt(int64(n))
		if err != nil {
			return nil, err
		}
		variable, err := vcu.MulInt(int64(units)).DivInt(int64(n))
		if err != nil {
			return nil, err
		}
		cost, err := fc.Add(variable)
		if err != nil {
			return nil, err
		}
		cmp, err := revenue.Cmp(cost)
		if err != nil {
			return nil, err
		}
		zone := ZoneBreakEven
		switch {
		case cmp < 0:
			zone = ZoneLoss
		case cmp > 0:
			zone = ZoneProfit
		}
		curve.Points = append(curve.Points, CurvePoint{
			Units: units, Revenue: revenue, Cost: cost, Zone: zone,
		})
	}
	return curve, nil
}

// ClassifyVolume returns the zone of a unit volume relative to the
// break-even point without sampling a full curve.
func ClassifyVolume(units, bep int) Zone {
	switch {
	case units < bep:
		return ZoneLoss
	case units > bep:
		return ZoneProfit
	}
	return ZoneBreakEven
}
