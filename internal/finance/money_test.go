package finance

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMoneyConstructionAndUnits(t *testing.T) {
	m := FromUnits(360, EUR)
	if m.Cents != 36000 || m.Currency != EUR {
		t.Errorf("FromUnits(360) = %+v", m)
	}
	if m.Units() != 360 {
		t.Errorf("Units() = %v", m.Units())
	}
	// Rounding half away from zero.
	if got := FromUnits(0.005, EUR).Cents; got != 1 {
		t.Errorf("FromUnits(0.005) = %d cents, want 1", got)
	}
	if got := FromUnits(-0.005, EUR).Cents; got != -1 {
		t.Errorf("FromUnits(-0.005) = %d cents, want -1", got)
	}
	if !FromCents(0, EUR).IsZero() || FromCents(1, EUR).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestMoneyArithmetic(t *testing.T) {
	a := FromUnits(360, EUR)
	b := FromUnits(50, EUR)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units() != 410 {
		t.Errorf("Add = %s", sum)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Units() != 310 {
		t.Errorf("Sub = %s", diff)
	}
	if got := a.MulInt(1406); got.Units() != 506160 {
		t.Errorf("MulInt = %s, want 506,160.00 EUR", got)
	}
	if got := a.MulFloat(0.5); got.Units() != 180 {
		t.Errorf("MulFloat = %s", got)
	}
	q, err := FromUnits(310, EUR).MulInt(1406).DivInt(3)
	if err != nil {
		t.Fatal(err)
	}
	// 1406·310/3 = 145,286.666… → 145,286.67 in cents.
	if q.Cents != 14528667 {
		t.Errorf("DivInt = %s (%d cents), want 145,286.67", q, q.Cents)
	}
	if _, err := a.DivInt(0); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestMoneyCurrencyMismatch(t *testing.T) {
	eur := FromUnits(1, EUR)
	usd := FromUnits(1, USD)
	if _, err := eur.Add(usd); !errors.Is(err, ErrCurrencyMismatch) {
		t.Errorf("Add mismatch error = %v", err)
	}
	if _, err := eur.Cmp(usd); !errors.Is(err, ErrCurrencyMismatch) {
		t.Errorf("Cmp mismatch error = %v", err)
	}
	// Zero value adopts the other currency.
	sum, err := Money{}.Add(eur)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Currency != EUR || sum.Cents != 100 {
		t.Errorf("zero add = %+v", sum)
	}
}

func TestMoneyString(t *testing.T) {
	tests := []struct {
		m    Money
		want string
	}{
		{FromUnits(506160, EUR), "506,160.00 EUR"},
		{FromUnits(145286.67, EUR), "145,286.67 EUR"},
		{FromUnits(-42.5, USD), "-42.50 USD"},
		{FromCents(7, GBP), "0.07 GBP"},
		{FromUnits(1234567.89, EUR), "1,234,567.89 EUR"},
		{Money{}, "0.00 ?"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestMoneyCmp(t *testing.T) {
	a, b := FromUnits(2, EUR), FromUnits(3, EUR)
	if c, _ := a.Cmp(b); c != -1 {
		t.Errorf("Cmp(2,3) = %d", c)
	}
	if c, _ := b.Cmp(a); c != 1 {
		t.Errorf("Cmp(3,2) = %d", c)
	}
	if c, _ := a.Cmp(a); c != 0 {
		t.Errorf("Cmp(2,2) = %d", c)
	}
}

// Property: Add is commutative and Sub undoes Add for same-currency
// amounts.
func TestMoneyAddProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x := FromCents(int64(a), EUR)
		y := FromCents(int64(b), EUR)
		s1, err1 := x.Add(y)
		s2, err2 := y.Add(x)
		if err1 != nil || err2 != nil || s1 != s2 {
			return false
		}
		back, err := s1.Sub(y)
		return err == nil && back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
