package finance

import (
	"errors"
	"fmt"
)

// MarketKind selects the PAE branch of Equation 2.
type MarketKind int

// Market kinds.
const (
	// Monopolistic markets use total vehicle sales (VS).
	Monopolistic MarketKind = iota + 1
	// NonMonopolistic markets use the maker's market share (MS).
	NonMonopolistic
)

// String returns the market kind name.
func (k MarketKind) String() string {
	switch k {
	case Monopolistic:
		return "monopolistic"
	case NonMonopolistic:
		return "non-monopolistic"
	}
	return fmt.Sprintf("MarketKind(%d)", int(k))
}

// PAE computes the potential-attacker estimation of Equation 2:
// units·PEA, floored to whole attackers. units is VS for monopolistic
// markets and MS for non-monopolistic ones; pea is the potential-attacker
// share in [0, 1].
func PAE(units int, pea float64) (int, error) {
	if units < 0 {
		return 0, fmt.Errorf("finance: negative unit count %d", units)
	}
	if pea < 0 || pea > 1 {
		return 0, fmt.Errorf("finance: PEA %f outside [0,1]", pea)
	}
	return int(float64(units) * pea), nil
}

// MarketValue computes Equation 1: MV = PAE · PPIA, the yearly market
// size of an insider attack.
func MarketValue(pae int, ppia Money) (Money, error) {
	if pae < 0 {
		return Money{}, fmt.Errorf("finance: negative PAE %d", pae)
	}
	if ppia.Cents <= 0 {
		return Money{}, fmt.Errorf("finance: non-positive PPIA %s", ppia)
	}
	return ppia.MulInt(int64(pae)), nil
}

// FixedCost computes Equation 4: FC = FTEH·ch + SLD, the adversary's
// fixed cost of developing the attack. fteh is the full-time-equivalent
// hours of R&D, ch the hourly cost, sld the straight-line depreciation of
// CAPEX items (lab instrumentation, tooling).
func FixedCost(fteh float64, ch, sld Money) (Money, error) {
	if fteh < 0 {
		return Money{}, fmt.Errorf("finance: negative FTEH %f", fteh)
	}
	if ch.Cents < 0 || sld.Cents < 0 {
		return Money{}, errors.New("finance: negative hourly cost or depreciation")
	}
	labour := ch.MulFloat(fteh)
	return labour.Add(sld)
}

// ErrNoMargin is returned when PPIA ≤ VCU: with no per-unit margin the
// break-even point does not exist.
var ErrNoMargin = errors.New("finance: PPIA does not exceed VCU, no per-unit margin")

// BreakEven computes Equation 3: BEP = FC·n / (PPIA − VCU), the unit
// volume at which the insider-attack product becomes profitable. n is the
// number of competing attackers sharing the market; it must be ≥ 1. The
// result is rounded up: profitability needs the full next unit.
func BreakEven(fc Money, n int, ppia, vcu Money) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("finance: competitor count %d < 1", n)
	}
	if fc.Cents < 0 {
		return 0, fmt.Errorf("finance: negative fixed cost %s", fc)
	}
	margin, err := ppia.Sub(vcu)
	if err != nil {
		return 0, err
	}
	if margin.Cents <= 0 {
		return 0, fmt.Errorf("%w: PPIA %s, VCU %s", ErrNoMargin, ppia, vcu)
	}
	num := fc.Cents * int64(n)
	bep := num / margin.Cents
	if num%margin.Cents != 0 {
		bep++
	}
	return int(bep), nil
}

// InverseFixedCost computes Equation 5: FC = BEP·(PPIA − VCU)/n, the
// total investment an adversary can profitably spend when the break-even
// point equals the potential attacker population. This is the security
// budget the product must withstand.
func InverseFixedCost(bep int, ppia, vcu Money, n int) (Money, error) {
	if bep < 0 {
		return Money{}, fmt.Errorf("finance: negative BEP %d", bep)
	}
	if n < 1 {
		return Money{}, fmt.Errorf("finance: competitor count %d < 1", n)
	}
	margin, err := ppia.Sub(vcu)
	if err != nil {
		return Money{}, err
	}
	if margin.Cents <= 0 {
		return Money{}, fmt.Errorf("%w: PPIA %s, VCU %s", ErrNoMargin, ppia, vcu)
	}
	total := margin.MulInt(int64(bep))
	return total.DivInt(int64(n))
}
