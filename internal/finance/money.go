package finance

import (
	"errors"
	"fmt"
	"math"
)

// Currency is an ISO-4217-style currency code.
type Currency string

// Currencies used by the built-in datasets.
const (
	EUR Currency = "EUR"
	USD Currency = "USD"
	GBP Currency = "GBP"
)

// Money is an amount in integer cents of a currency. The zero value is
// "no amount" (zero EURless cents) and is safe to add.
type Money struct {
	// Cents is the amount in hundredths of the currency unit.
	Cents int64
	// Currency is the currency code; empty only for the zero value.
	Currency Currency
}

// ErrCurrencyMismatch is returned when combining amounts of different
// currencies.
var ErrCurrencyMismatch = errors.New("finance: currency mismatch")

// FromUnits builds a Money from a float amount of currency units,
// rounding half away from zero to cents.
func FromUnits(amount float64, c Currency) Money {
	return Money{Cents: roundToInt64(amount * 100), Currency: c}
}

// FromCents builds a Money from integer cents.
func FromCents(cents int64, c Currency) Money {
	return Money{Cents: cents, Currency: c}
}

// Units returns the amount in currency units.
func (m Money) Units() float64 { return float64(m.Cents) / 100 }

// IsZero reports whether the amount is zero.
func (m Money) IsZero() bool { return m.Cents == 0 }

// Neg returns the negated amount.
func (m Money) Neg() Money { return Money{Cents: -m.Cents, Currency: m.Currency} }

// Add returns m + o; the currencies must match (a zero-valued operand
// adopts the other's currency).
func (m Money) Add(o Money) (Money, error) {
	c, err := combineCurrency(m, o)
	if err != nil {
		return Money{}, err
	}
	return Money{Cents: m.Cents + o.Cents, Currency: c}, nil
}

// Sub returns m − o with the same currency rules as Add.
func (m Money) Sub(o Money) (Money, error) {
	neg := o.Neg()
	return m.Add(neg)
}

// MulInt returns m × n.
func (m Money) MulInt(n int64) Money {
	return Money{Cents: m.Cents * n, Currency: m.Currency}
}

// MulFloat returns m × f, rounded half away from zero.
func (m Money) MulFloat(f float64) Money {
	return Money{Cents: roundToInt64(float64(m.Cents) * f), Currency: m.Currency}
}

// DivInt returns m ÷ n, rounded half away from zero. n must be non-zero.
func (m Money) DivInt(n int64) (Money, error) {
	if n == 0 {
		return Money{}, errors.New("finance: division by zero")
	}
	return Money{Cents: roundToInt64(float64(m.Cents) / float64(n)), Currency: m.Currency}, nil
}

// Cmp compares two amounts of the same currency: -1, 0 or +1.
func (m Money) Cmp(o Money) (int, error) {
	if _, err := combineCurrency(m, o); err != nil {
		return 0, err
	}
	switch {
	case m.Cents < o.Cents:
		return -1, nil
	case m.Cents > o.Cents:
		return 1, nil
	}
	return 0, nil
}

// String renders the amount with thousands separators, e.g.
// "506,160.00 EUR".
func (m Money) String() string {
	sign := ""
	cents := m.Cents
	if cents < 0 {
		sign = "-"
		cents = -cents
	}
	whole := cents / 100
	frac := cents % 100
	cur := string(m.Currency)
	if cur == "" {
		cur = "?"
	}
	return fmt.Sprintf("%s%s.%02d %s", sign, groupThousands(whole), frac, cur)
}

func groupThousands(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

func combineCurrency(a, b Money) (Currency, error) {
	switch {
	case a.Currency == b.Currency:
		return a.Currency, nil
	case a.Currency == "" && a.Cents == 0:
		return b.Currency, nil
	case b.Currency == "" && b.Cents == 0:
		return a.Currency, nil
	}
	return "", fmt.Errorf("%w: %s vs %s", ErrCurrencyMismatch, a.Currency, b.Currency)
}

// roundToInt64 rounds half away from zero.
func roundToInt64(f float64) int64 {
	if f >= 0 {
		return int64(math.Floor(f + 0.5))
	}
	return -int64(math.Floor(-f + 0.5))
}
