package itemgen

import (
	"testing"

	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

func refTopology(t *testing.T) *vehicle.Topology {
	t.Helper()
	top, err := vehicle.ReferenceArchitecture()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestDeriveItemECM(t *testing.T) {
	top := refTopology(t)
	item, err := DeriveItem(top, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	if item.Name != "Engine Control Module" {
		t.Errorf("item name = %q", item.Name)
	}
	// Firmware asset + one bus asset (ECM sits on CAN-PT only).
	if len(item.Assets) != 2 {
		t.Fatalf("assets = %d, want 2: %+v", len(item.Assets), item.Assets)
	}
	if item.Assets[0].ID != "ECM-FW" || !item.Assets[0].HasProperty(tara.PropertyAuthenticity) {
		t.Errorf("firmware asset = %+v", item.Assets[0])
	}
	if item.Assets[1].ID != "ECM-CAN-PT" || !item.Assets[1].HasProperty(tara.PropertyAvailability) {
		t.Errorf("bus asset = %+v", item.Assets[1])
	}
}

func TestDeriveItemGatewayHasManyBusAssets(t *testing.T) {
	top := refTopology(t)
	item, err := DeriveItem(top, "GW")
	if err != nil {
		t.Fatal(err)
	}
	// The gateway touches 5 bus segments (all but LIN-BODY).
	if len(item.Assets) != 6 {
		t.Errorf("gateway assets = %d, want 6 (fw + 5 buses)", len(item.Assets))
	}
}

func TestDeriveItemUnknownECU(t *testing.T) {
	if _, err := DeriveItem(refTopology(t), "NOPE"); err == nil {
		t.Error("unknown ECU accepted")
	}
}

func TestDeriveAnalysisSafetyCritical(t *testing.T) {
	top := refTopology(t)
	a, err := DeriveAnalysis(top, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (tamper + DoS)", len(results))
	}
	byID := map[string]*tara.ThreatResult{}
	for _, r := range results {
		byID[r.Threat.ID] = r
	}
	if byID["TS-TAMPER"] == nil || byID["TS-DOS"] == nil {
		t.Fatal("derived threats missing")
	}
	// Safety-critical: DoS impact is Severe; physical-only ECM keeps the
	// physical vector → CAL2 ceiling.
	if byID["TS-DOS"].Impact != tara.ImpactSevere {
		t.Errorf("DoS impact = %v", byID["TS-DOS"].Impact)
	}
	if byID["TS-DOS"].CAL != tara.CAL2 {
		t.Errorf("DoS CAL = %v, want CAL2 (physical ceiling)", byID["TS-DOS"].CAL)
	}
}

func TestDeriveAnalysisNonCritical(t *testing.T) {
	top := refTopology(t)
	a, err := DeriveAnalysis(top, "SCM") // seat module: not safety critical
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Threats) != 1 {
		t.Errorf("non-critical ECU threats = %d, want 1 (tamper only)", len(a.Threats))
	}
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Impact != tara.ImpactModerate {
		t.Errorf("non-critical impact = %v, want Moderate", results[0].Impact)
	}
}

func TestSurfaceVectorMapping(t *testing.T) {
	top := refTopology(t)
	tests := []struct {
		ecu  string
		want tara.AttackVector
	}{
		{"TCU", tara.VectorNetwork},  // long-range
		{"BCM", tara.VectorAdjacent}, // short-range
		{"ECM", tara.VectorPhysical}, // physical only
	}
	for _, tt := range tests {
		if got := surfaceVector(top.ECU(tt.ecu)); got != tt.want {
			t.Errorf("surfaceVector(%s) = %v, want %v", tt.ecu, got, tt.want)
		}
	}
}

func TestDeriveFleet(t *testing.T) {
	top := refTopology(t)
	fleet, err := DeriveFleet(top, vehicle.DomainPowertrain)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 3 {
		t.Fatalf("powertrain fleet = %d analyses, want 3", len(fleet))
	}
	for _, a := range fleet {
		if _, err := a.Run(); err != nil {
			t.Errorf("fleet analysis %s failed: %v", a.Item.Name, err)
		}
	}
	if _, err := DeriveFleet(top, vehicle.Domain(99)); err == nil {
		t.Error("invalid domain accepted")
	}
}

func TestDerivePathsECM(t *testing.T) {
	top := refTopology(t)
	paths, err := DerivePaths(top, "ECM", "TS-TAMPER")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths derived")
	}
	sawDirect, sawRemote := false, false
	for _, p := range paths {
		if err := p.Validate(); err != nil {
			t.Fatalf("derived path %s invalid: %v", p.ID, err)
		}
		if p.ThreatID != "TS-TAMPER" {
			t.Errorf("path %s threat = %s", p.ID, p.ThreatID)
		}
		if len(p.Steps) == 1 && p.DominantVector() == tara.VectorPhysical {
			sawDirect = true
		}
		if p.Steps[0].Vector == tara.VectorNetwork {
			sawRemote = true
			// Remote entry must still pivot over wired buses: dominant
			// vector tightens to Local.
			if p.DominantVector() != tara.VectorLocal {
				t.Errorf("remote path %s dominant = %v, want Local", p.ID, p.DominantVector())
			}
		}
	}
	if !sawDirect {
		t.Error("missing the direct physical path to the ECM")
	}
	if !sawRemote {
		t.Error("missing a network-entry path to the ECM")
	}
	// IDs are unique.
	ids := map[string]bool{}
	for _, p := range paths {
		if ids[p.ID] {
			t.Fatalf("duplicate path ID %s", p.ID)
		}
		ids[p.ID] = true
	}
}

func TestDerivePathsIntegratesWithAnalysis(t *testing.T) {
	top := refTopology(t)
	a, err := DeriveAnalysis(top, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := DerivePaths(top, "ECM", "TS-TAMPER")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		a.AddPath(p)
	}
	results, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With paths analyzed, the tampering feasibility is governed by the
	// easiest path: the remote pivots bottom out at Local → Low under
	// G.9 (better than the Very Low of the bare physical vector).
	for _, r := range results {
		if r.Threat.ID == "TS-TAMPER" && r.Feasibility != tara.FeasibilityLow {
			t.Errorf("tamper feasibility with paths = %v, want Low", r.Feasibility)
		}
	}
}

func TestDerivePathsUnknownTarget(t *testing.T) {
	if _, err := DerivePaths(refTopology(t), "NOPE", "TS"); err == nil {
		t.Error("unknown target accepted")
	}
}
