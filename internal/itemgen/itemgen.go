// Package itemgen bridges the vehicle architecture model and the TARA
// engine: it derives ISO/SAE 21434 item definitions (with standard asset
// skeletons and plausible threat scenarios) from ECUs of a topology, so
// a fleet-wide TARA can be bootstrapped mechanically and then refined by
// the analyst.
package itemgen

import (
	"fmt"
	"sort"

	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

// DeriveItem builds an item definition for one ECU: a firmware asset
// (integrity/authenticity) plus one communication asset per attached
// bus (integrity/availability).
func DeriveItem(top *vehicle.Topology, ecuID string) (*tara.Item, error) {
	ecu := top.ECU(ecuID)
	if ecu == nil {
		return nil, fmt.Errorf("itemgen: unknown ECU %s", ecuID)
	}
	item := &tara.Item{
		Name:        ecu.Name,
		Description: fmt.Sprintf("%s (%s domain)", ecu.Name, ecu.Domain),
		Assets: []*tara.Asset{{
			ID:          ecu.ID + "-FW",
			Name:        ecu.Name + " firmware",
			Description: "Application firmware and calibration data",
			Properties:  []tara.SecurityProperty{tara.PropertyIntegrity, tara.PropertyAuthenticity},
			ECU:         ecu.ID,
		}},
	}
	for _, bus := range top.Buses() {
		attached := false
		for _, id := range bus.ECUIDs {
			if id == ecu.ID {
				attached = true
				break
			}
		}
		if !attached {
			continue
		}
		item.Assets = append(item.Assets, &tara.Asset{
			ID:          ecu.ID + "-" + bus.ID,
			Name:        fmt.Sprintf("%s traffic on %s", ecu.Name, bus.ID),
			Description: fmt.Sprintf("%s frames exchanged on the %s segment", bus.Kind, bus.ID),
			Properties:  []tara.SecurityProperty{tara.PropertyIntegrity, tara.PropertyAvailability},
			ECU:         ecu.ID,
		})
	}
	if err := item.Validate(); err != nil {
		return nil, fmt.Errorf("itemgen: derived item invalid: %w", err)
	}
	return item, nil
}

// surfaceVector maps an ECU's most remote attack surface onto the attack
// vector an outsider would use; insiders always have physical access.
func surfaceVector(ecu *vehicle.ECU) tara.AttackVector {
	switch {
	case ecu.Reachable(vehicle.SurfaceLongRange):
		return tara.VectorNetwork
	case ecu.Reachable(vehicle.SurfaceShortRange):
		return tara.VectorAdjacent
	default:
		return tara.VectorPhysical
	}
}

// DeriveAnalysis builds a full starter TARA for one ECU: the derived
// item, a tampering damage/threat pair on the firmware asset and — for
// safety-critical units — a DoS damage/threat pair on the first bus
// asset. Impacts default to Severe safety for safety-critical ECUs and
// Moderate operational otherwise; the analyst refines them afterwards.
func DeriveAnalysis(top *vehicle.Topology, ecuID string) (*tara.Analysis, error) {
	item, err := DeriveItem(top, ecuID)
	if err != nil {
		return nil, err
	}
	ecu := top.ECU(ecuID)
	a := tara.NewAnalysis(item)

	fwAsset := item.Assets[0]
	impacts := map[tara.ImpactCategory]tara.ImpactRating{
		tara.CategoryOperational: tara.ImpactModerate,
		tara.CategoryFinancial:   tara.ImpactModerate,
	}
	if ecu.SafetyCritical {
		impacts[tara.CategorySafety] = tara.ImpactSevere
	}
	a.AddDamage(&tara.DamageScenario{
		ID:          "DS-TAMPER",
		Description: fmt.Sprintf("Tampered %s alters vehicle behaviour in the field", fwAsset.Name),
		AssetIDs:    []string{fwAsset.ID},
		Impacts:     impacts,
	})
	a.AddThreat(&tara.ThreatScenario{
		ID:          "TS-TAMPER",
		Name:        ecu.Name + " firmware tampering",
		Description: "Unauthorized modification of firmware or calibration",
		DamageIDs:   []string{"DS-TAMPER"},
		AssetIDs:    []string{fwAsset.ID},
		Property:    tara.PropertyIntegrity,
		STRIDE:      tara.Tampering,
		Profiles:    []tara.AttackerProfile{tara.ProfileInsider, tara.ProfileRational, tara.ProfileLocal},
		Vector:      tara.VectorPhysical,
	})

	if ecu.SafetyCritical && len(item.Assets) > 1 {
		busAsset := item.Assets[1]
		a.AddDamage(&tara.DamageScenario{
			ID:          "DS-DOS",
			Description: fmt.Sprintf("Loss of %s while driving", busAsset.Name),
			AssetIDs:    []string{busAsset.ID},
			Impacts: map[tara.ImpactCategory]tara.ImpactRating{
				tara.CategorySafety: tara.ImpactSevere,
			},
		})
		a.AddThreat(&tara.ThreatScenario{
			ID:          "TS-DOS",
			Name:        ecu.Name + " communication DoS",
			Description: "Signal-extinction style denial of service on the bus segment",
			DamageIDs:   []string{"DS-DOS"},
			AssetIDs:    []string{busAsset.ID},
			Property:    tara.PropertyAvailability,
			STRIDE:      tara.DenialOfService,
			Profiles:    []tara.AttackerProfile{tara.ProfileOutsider, tara.ProfileMalicious},
			Vector:      surfaceVector(ecu),
		})
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("itemgen: derived analysis invalid: %w", err)
	}
	return a, nil
}

// hopVector maps a traversed bus segment onto the attack vector of the
// step: wireless attachment points are adjacent, everything wired needs
// at least local access.
func hopVector(kind vehicle.BusKind) tara.AttackVector {
	if kind == vehicle.BusWireless {
		return tara.VectorAdjacent
	}
	return tara.VectorLocal
}

// DerivePaths enumerates attack paths for a threat on a target ECU from
// the topology: one path per entry point of each surface class, with a
// step per traversed bus segment. Entry steps carry the vector of the
// surface class (long-range → Network, short-range → Adjacent,
// physical → Physical); traversal steps carry the bus vector. Paths are
// deduplicated by their step signature.
func DerivePaths(top *vehicle.Topology, targetID, threatID string) ([]*tara.AttackPath, error) {
	if _, err := top.AttackRoutes(vehicle.SurfacePhysical, targetID); err != nil {
		return nil, fmt.Errorf("itemgen: %w", err)
	}
	surfaces := []struct {
		class  vehicle.SurfaceClass
		vector tara.AttackVector
	}{
		{vehicle.SurfaceLongRange, tara.VectorNetwork},
		{vehicle.SurfaceShortRange, tara.VectorAdjacent},
		{vehicle.SurfacePhysical, tara.VectorPhysical},
	}
	var out []*tara.AttackPath
	seen := map[string]bool{}
	n := 0
	for _, s := range surfaces {
		routes, err := top.AttackRoutes(s.class, targetID)
		if err != nil {
			return nil, err
		}
		entries := make([]string, 0, len(routes))
		for entry := range routes {
			entries = append(entries, entry)
		}
		sort.Strings(entries)
		for _, entry := range entries {
			steps := []tara.AttackStep{{
				Description: fmt.Sprintf("compromise %s via %s", entry, s.class),
				Vector:      s.vector,
			}}
			for _, hop := range routes[entry] {
				bus := top.Bus(hop.BusID)
				steps = append(steps, tara.AttackStep{
					Description: fmt.Sprintf("pivot %s → %s over %s", hop.From, hop.To, hop.BusID),
					Vector:      hopVector(bus.Kind),
				})
			}
			sig := signature(steps)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			n++
			out = append(out, &tara.AttackPath{
				ID:       fmt.Sprintf("AP-%s-%02d", targetID, n),
				ThreatID: threatID,
				Steps:    steps,
			})
		}
	}
	return out, nil
}

func signature(steps []tara.AttackStep) string {
	sig := ""
	for _, s := range steps {
		sig += s.Description + "|" + s.Vector.String() + ";"
	}
	return sig
}

// DeriveFleet derives starter analyses for every ECU of a domain.
func DeriveFleet(top *vehicle.Topology, domain vehicle.Domain) ([]*tara.Analysis, error) {
	ecus := top.ByDomain(domain)
	if len(ecus) == 0 {
		return nil, fmt.Errorf("itemgen: no ECUs in domain %s", domain)
	}
	out := make([]*tara.Analysis, 0, len(ecus))
	for _, e := range ecus {
		a, err := DeriveAnalysis(top, e.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
