package itemgen

import (
	"bytes"
	"testing"

	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

// TestDeriveRegistryDeterministic: deriving the fleet twice from the
// reference architecture yields the same tenants with byte-identical
// analysis documents — the item-derivation determinism the multi-tenant
// service relies on for stable ETags after a warm restart.
func TestDeriveRegistryDeterministic(t *testing.T) {
	docs := make([]map[string][]byte, 2)
	for i := range docs {
		top, err := vehicle.ReferenceArchitecture()
		if err != nil {
			t.Fatal(err)
		}
		reg, err := DeriveRegistry(top)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Len() < 10 {
			t.Fatalf("fleet has %d tenants, want ≥ 10", reg.Len())
		}
		docs[i] = make(map[string][]byte, reg.Len())
		for _, name := range reg.Names() {
			ten, _ := reg.Get(name)
			var buf bytes.Buffer
			var werr error
			if _, err := ten.Mutate(func(a *tara.Analysis) (bool, error) {
				werr = a.WriteJSON(&buf)
				return false, nil
			}); err != nil {
				t.Fatal(err)
			}
			if werr != nil {
				t.Fatal(werr)
			}
			docs[i][name] = buf.Bytes()
		}
	}
	if len(docs[0]) != len(docs[1]) {
		t.Fatalf("tenant counts differ: %d vs %d", len(docs[0]), len(docs[1]))
	}
	for name, doc := range docs[0] {
		if !bytes.Equal(doc, docs[1][name]) {
			t.Fatalf("tenant %s derivation not deterministic", name)
		}
	}
}

// TestSyncPathsIncremental: re-syncing against an unchanged topology is
// a no-op (no re-rating), while a topology edit re-rates only the
// threats whose derived routes changed — and the incremental result
// still matches a cold run.
func TestSyncPathsIncremental(t *testing.T) {
	top, err := vehicle.ReferenceArchitecture()
	if err != nil {
		t.Fatal(err)
	}
	a, err := DeriveAnalysis(top, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	if changed, err := SyncPaths(top, a, "ECM"); err != nil || !changed {
		t.Fatalf("initial sync: changed=%v err=%v", changed, err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	base := a.RatingCalls()

	changed, err := SyncPaths(top, a, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("sync against unchanged topology reported a change")
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if got := a.RatingCalls(); got != base {
		t.Fatalf("no-op sync re-rated %d threats", got-base)
	}

	// A new wireless segment reaching the ECM changes its attack routes.
	if err := top.AddBus(&vehicle.Bus{
		ID: "WIFI-AUX", Kind: vehicle.BusWireless, ECUIDs: []string{"ECM", "TCU"},
	}); err != nil {
		t.Fatal(err)
	}
	changed, err = SyncPaths(top, a, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("sync after topology edit reported no change")
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	delta := a.RatingCalls() - base
	if delta == 0 || delta > uint64(len(a.Threats)) {
		t.Fatalf("topology edit re-rated %d threats, want 1..%d", delta, len(a.Threats))
	}
	cold, err := a.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cold) {
		t.Fatalf("result sizes diverge: %d vs %d", len(res), len(cold))
	}
	for i := range res {
		if res[i].Threat.ID != cold[i].Threat.ID || res[i].Risk != cold[i].Risk ||
			res[i].Feasibility != cold[i].Feasibility || res[i].DominantVector != cold[i].DominantVector {
			t.Fatalf("result %d diverges from cold run: %+v vs %+v", i, res[i], cold[i])
		}
	}
}

// TestTopologyFingerprint: stable across derivations, sensitive to
// structural edits.
func TestTopologyFingerprint(t *testing.T) {
	a, err := vehicle.ReferenceArchitecture()
	if err != nil {
		t.Fatal(err)
	}
	b, err := vehicle.ReferenceArchitecture()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint not stable across derivations")
	}
	if err := b.AddECU(&vehicle.ECU{
		ID: "AUX", Name: "Auxiliary unit", Domain: vehicle.DomainBody,
		Surfaces: []vehicle.SurfaceClass{vehicle.SurfacePhysical},
	}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint unchanged after topology edit")
	}
}
