package itemgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"github.com/psp-framework/psp/internal/tara"
	"github.com/psp-framework/psp/internal/vehicle"
)

// derivedPathPrefix namespaces the attack paths SyncPaths manages: IDs
// are "APT-<ecu>-<threat>-<signature hash>", so a path's identity is its
// route — unchanged routes keep their ID (and their memoized rating)
// across re-derivations, and analyst-added paths (any other ID) are
// never touched.
func derivedPathPrefix(ecuID, threatID string) string {
	return fmt.Sprintf("APT-%s-%s-", ecuID, threatID)
}

func stepSignatureID(steps []tara.AttackStep) string {
	sum := sha256.Sum256([]byte(signature(steps)))
	return hex.EncodeToString(sum[:6])
}

// SyncPaths reconciles the analysis's topology-derived attack paths with
// the current topology, for every threat of the analysis: routes that
// appeared are added, routes that vanished are removed, unchanged routes
// are left alone so their threat stays clean in the incremental engine.
// Reports whether anything changed.
func SyncPaths(top *vehicle.Topology, a *tara.Analysis, ecuID string) (bool, error) {
	changed := false
	for _, th := range a.Threats {
		want, err := DerivePaths(top, ecuID, th.ID)
		if err != nil {
			return changed, fmt.Errorf("itemgen: sync paths for %s: %w", th.ID, err)
		}
		prefix := derivedPathPrefix(ecuID, th.ID)
		wantIDs := make(map[string]bool, len(want))
		for _, p := range want {
			p.ID = prefix + stepSignatureID(p.Steps)
			wantIDs[p.ID] = true
		}
		have := make(map[string]bool)
		for _, p := range a.PathsFor(th.ID) {
			if !strings.HasPrefix(p.ID, prefix) {
				continue
			}
			if !wantIDs[p.ID] {
				if err := a.RemovePath(p.ID); err != nil {
					return changed, err
				}
				changed = true
				continue
			}
			have[p.ID] = true
		}
		for _, p := range want {
			if have[p.ID] {
				continue
			}
			if err := a.UpsertPath(p); err != nil {
				return changed, err
			}
			changed = true
		}
	}
	return changed, nil
}

// DeriveRegistry bootstraps a multi-tenant TARA registry from a vehicle
// architecture: one tenant per ECU, named by the ECU ID, holding the
// derived starter analysis with its topology-derived attack paths. The
// derivation is deterministic — the same topology yields byte-identical
// tenant documents.
func DeriveRegistry(top *vehicle.Topology) (*tara.Registry, error) {
	reg := tara.NewRegistry()
	for _, ecu := range top.ECUs() {
		a, err := DeriveAnalysis(top, ecu.ID)
		if err != nil {
			return nil, err
		}
		if _, err := SyncPaths(top, a, ecu.ID); err != nil {
			return nil, err
		}
		if _, err := reg.Create(ecu.ID, a); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
