package durable

import (
	"sync"
	"testing"

	"github.com/psp-framework/psp/internal/obs"
)

// TestLogMetricsRecording: appends, fsyncs, group coalescing, segment
// rolls and truncation all land in the shared recording surface.
func TestLogMetricsRecording(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m := NewLogMetrics(reg)
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 64, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const appends = 24
	var wg sync.WaitGroup
	for i := 0; i < appends; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
				t.Errorf("append: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := m.Appends.Value(); got != appends {
		t.Fatalf("appends = %d, want %d", got, appends)
	}
	if got := m.AppendLatency.Count(); got != appends {
		t.Fatalf("append latency count = %d, want %d", got, appends)
	}
	fsyncs := m.Fsyncs.Value()
	if fsyncs == 0 || fsyncs > appends {
		t.Fatalf("fsyncs = %d, want in [1, %d]", fsyncs, appends)
	}
	if got := m.FsyncLatency.Count(); got != fsyncs {
		t.Fatalf("fsync latency count = %d, want %d", got, fsyncs)
	}
	// The group-size histogram's sum is the total records committed, so
	// sum/fsyncs is the coalescing ratio.
	if got := m.GroupRecords.Sum(); got != appends {
		t.Fatalf("group records sum = %v, want %d", got, appends)
	}
	// Rolls happen at the start of the commit after the threshold is
	// crossed, so force a few sequential single-record commits: each
	// lands past the 64-byte threshold and rolls.
	rollsBefore := m.SegmentRolls.Value()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if m.SegmentRolls.Value() <= rollsBefore {
		t.Fatal("no segment rolls recorded")
	}
	if err := l.TruncateBefore(l.LastSeq() - 1); err != nil {
		t.Fatal(err)
	}
	if m.TruncatedSegments.Value() == 0 {
		t.Fatal("no truncated segments recorded")
	}

	// A metrics-less log must keep working (nil surface, no recording).
	l2, err := OpenLog(t.TempDir(), LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
}
