package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name within a data directory.
const ManifestName = "MANIFEST.json"

// Manifest tracks a data directory's current snapshot and, per stripe,
// the WAL replay floor: every record with sequence ≤ the floor is fully
// reflected in the snapshot, so recovery replays only records above it.
// Manifests are replaced atomically; see the package documentation.
type Manifest struct {
	// Shards is the stripe count the directory's WAL layout and
	// snapshot floors were built for. Reopening with a different count
	// is an error: the bucket→stripe mapping, and with it the per-stripe
	// logs, would no longer line up.
	Shards int `json:"shards"`
	// Gen increments with every snapshot, naming snapshot files
	// uniquely so a crashed compaction never half-overwrites the
	// snapshot the manifest still points at.
	Gen uint64 `json:"generation"`
	// Snapshot is the current snapshot's file name (within the snapshot
	// directory); empty when no snapshot has been taken yet.
	Snapshot string `json:"snapshot,omitempty"`
	// Floors holds one replay floor per stripe.
	Floors []uint64 `json:"floors"`
}

// LoadManifest reads a data directory's manifest, returning (nil, nil)
// when none exists yet.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: parse manifest: %w", err)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("durable: manifest with invalid shard count %d", m.Shards)
	}
	if len(m.Floors) != m.Shards {
		return nil, fmt.Errorf("durable: manifest floors length %d != %d shards", len(m.Floors), m.Shards)
	}
	return &m, nil
}

// Write atomically replaces the directory's manifest.
func (m *Manifest) Write(dir string) error {
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
