package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name within a data directory.
const ManifestName = "MANIFEST.json"

// ManifestVersion is the current manifest schema version. Version 0
// (the field absent — releases before indexed snapshots) names one
// whole-corpus snapshot file in Snapshot; ManifestVersion manifests
// carry one StripeSnapshot per stripe instead. Loaders accept every
// version up to the current one — an old-format directory must keep
// opening — and refuse versions from the future, whose semantics this
// code cannot know.
const ManifestVersion = 2

// StripeSnapshot names one stripe's snapshot files within the snapshot
// directory: the post snapshot (JSON Lines) and its index sidecar (the
// serialized posting lists — see internal/social's sidecar format).
// Both empty means the stripe held no posts at its last compaction. A
// missing, corrupt or version-skewed sidecar is recoverable — the posts
// file alone suffices, at re-tokenization cost — but the posts file is
// the data itself and has no fallback.
type StripeSnapshot struct {
	Posts string `json:"posts,omitempty"`
	Index string `json:"index,omitempty"`
}

// Manifest tracks a data directory's current snapshot and, per stripe,
// the WAL replay floor: every record with sequence ≤ the floor is fully
// reflected in the snapshot, so recovery replays only records above it.
// Manifests are replaced atomically; see the package documentation.
type Manifest struct {
	// Version is the manifest schema version (see ManifestVersion);
	// absent on directories written before snapshot indexing.
	Version int `json:"version,omitempty"`
	// Shards is the stripe count the directory's WAL layout and
	// snapshot floors were built for. Reopening with a different count
	// is an error: the bucket→stripe mapping, and with it the per-stripe
	// logs, would no longer line up.
	Shards int `json:"shards"`
	// Gen increments with every snapshot compaction, naming snapshot
	// files uniquely so a crashed compaction never half-overwrites the
	// files the manifest still points at.
	Gen uint64 `json:"generation"`
	// Snapshot is the version-0 whole-corpus snapshot file name (within
	// the snapshot directory); empty on Version ≥ 2 manifests, which
	// carry per-stripe entries in Stripes instead.
	Snapshot string `json:"snapshot,omitempty"`
	// Floors holds one replay floor per stripe.
	Floors []uint64 `json:"floors"`
	// Stripes holds one snapshot entry per stripe (Version ≥ 2).
	Stripes []StripeSnapshot `json:"stripes,omitempty"`
}

// LoadManifest reads a data directory's manifest, returning (nil, nil)
// when none exists yet.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: parse manifest: %w", err)
	}
	if m.Version > ManifestVersion {
		return nil, fmt.Errorf("durable: manifest version %d is newer than this build understands (%d)", m.Version, ManifestVersion)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("durable: manifest with invalid shard count %d", m.Shards)
	}
	if len(m.Floors) != m.Shards {
		return nil, fmt.Errorf("durable: manifest floors length %d != %d shards", len(m.Floors), m.Shards)
	}
	if m.Version >= 2 && len(m.Stripes) != m.Shards {
		return nil, fmt.Errorf("durable: manifest stripes length %d != %d shards", len(m.Stripes), m.Shards)
	}
	return &m, nil
}

// Write atomically replaces the directory's manifest.
func (m *Manifest) Write(dir string) error {
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
