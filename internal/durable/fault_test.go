// Chaos tests driving disk faults through the WAL's real commit path
// via the durable.FS seam. They live in package durable_test because
// internal/fault imports durable.
package durable_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/fault"
)

// appendN appends n sequential records, returning the payloads whose
// Append was acknowledged (returned nil).
func appendN(t *testing.T, l *durable.Log, start, n int) map[uint64]string {
	t.Helper()
	acked := make(map[uint64]string)
	for i := start; i < start+n; i++ {
		payload := fmt.Sprintf("record-%04d", i)
		if seq, err := l.Append([]byte(payload)); err == nil {
			acked[seq] = payload
		}
	}
	return acked
}

func replayAllExt(t *testing.T, l *durable.Log) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	err := l.Replay(0, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestWALSyncFaultSticky: a persistent fsync failure must fail the
// in-flight append AND every later one — the log never acknowledges a
// record it could not make durable, and never "recovers" silently.
func TestWALSyncFaultSticky(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated fsync failure")
	fs := &fault.FS{Sync: fault.New(fault.Config{FailFrom: 3, Err: boom})}
	l, err := durable.OpenLog(dir, durable.LogOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	acked := appendN(t, l, 0, 10)
	if len(acked) == 0 || len(acked) == 10 {
		t.Fatalf("acknowledged %d/10 appends; want a failure partway", len(acked))
	}
	// Sticky: the fault has fired, so even with the injector healed the
	// log must keep refusing appends (restart is the only recovery).
	fs.Sync.Disable()
	if _, err := l.Append([]byte("late")); err == nil {
		t.Fatal("append after sync failure succeeded; WAL failure must be sticky")
	} else if !errors.Is(err, boom) {
		t.Fatalf("sticky error = %v, want the original %v", err, boom)
	}
}

// TestWALAcknowledgedSurviveDiskFault: after a write fault kills the
// log mid-stream, reopening the directory must replay every
// acknowledged record — acknowledged-means-durable even on a dying
// disk.
func TestWALAcknowledgedSurviveDiskFault(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			dir := t.TempDir()
			fs := &fault.FS{
				Write: fault.New(fault.Config{FailFrom: 6}),
				Torn:  torn,
			}
			l, err := durable.OpenLog(dir, durable.LogOptions{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			acked := appendN(t, l, 0, 12)
			if len(acked) == 0 || len(acked) == 12 {
				t.Fatalf("acknowledged %d/12 appends; want a failure partway", len(acked))
			}
			l.Close()

			// Reopen on the healthy filesystem, as a restart would.
			l2, err := durable.OpenLog(dir, durable.LogOptions{})
			if err != nil {
				t.Fatalf("reopen after disk fault: %v", err)
			}
			defer l2.Close()
			got := replayAllExt(t, l2)
			for seq, payload := range acked {
				if got[seq] != payload {
					t.Fatalf("acknowledged seq %d lost after recovery: got %q, want %q", seq, got[seq], payload)
				}
			}
			// Recovery must also restore append service: the torn tail is
			// truncated and new records land after the last durable one.
			seq, err := l2.Append([]byte("post-recovery"))
			if err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if seq <= l2.FirstSeq() {
				t.Fatalf("post-recovery seq %d not past the recovered tail", seq)
			}
		})
	}
}

// TestWALTornTailTruncated: a torn half-record at the tail (the fault
// FS writes the front half of the failing buffer) must be dropped by
// recovery, not surfaced as a corrupt log.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	fs := &fault.FS{Write: fault.New(fault.Config{FailFrom: 4}), Torn: true}
	l, err := durable.OpenLog(dir, durable.LogOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	acked := appendN(t, l, 0, 6)
	l.Close()

	l2, err := durable.OpenLog(dir, durable.LogOptions{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	got := replayAllExt(t, l2)
	if len(got) != len(acked) {
		t.Fatalf("recovered %d records, want exactly the %d acknowledged (torn tail truncated)", len(got), len(acked))
	}
	for seq, payload := range acked {
		if got[seq] != payload {
			t.Fatalf("seq %d: %q, want %q", seq, got[seq], payload)
		}
	}
}

// TestWALOpenFaultSurfaces: a filesystem that cannot open segments must
// fail OpenLog cleanly (no panic, no half-initialized log).
func TestWALOpenFaultSurfaces(t *testing.T) {
	fs := &fault.FS{Open: fault.New(fault.Config{FailFrom: 1})}
	if _, err := durable.OpenLog(t.TempDir(), durable.LogOptions{FS: fs}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("OpenLog = %v, want ErrInjected", err)
	}
}
