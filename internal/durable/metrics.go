package durable

import (
	"github.com/psp-framework/psp/internal/obs"
)

// LogMetrics is the write-ahead log's recording surface. One instance
// is typically shared by every per-stripe log of a store, so the
// counters aggregate across stripes. All fields are obs recorders
// (atomic, nil-safe); a nil *LogMetrics disables recording entirely.
type LogMetrics struct {
	// Appends / AppendErrors count acknowledged and failed Append calls.
	Appends      *obs.Counter
	AppendErrors *obs.Counter
	// AppendLatency is the full submit→durable-acknowledge latency seen
	// by one appender, including group-commit queueing.
	AppendLatency *obs.Histogram
	// Fsyncs counts group commits; FsyncLatency times the fsync alone.
	Fsyncs       *obs.Counter
	FsyncLatency *obs.Histogram
	// GroupRecords is the records-per-fsync distribution — the group
	// commit coalescing ratio (mean = appends/fsyncs).
	GroupRecords *obs.Histogram
	// SegmentRolls counts active-segment rolls; TruncatedSegments counts
	// whole segments deleted by compaction's TruncateBefore.
	SegmentRolls      *obs.Counter
	TruncatedSegments *obs.Counter
}

// NewLogMetrics registers the psp_wal_* family in reg and returns the
// recording surface. A nil registry yields a usable all-no-op surface.
func NewLogMetrics(reg *obs.Registry) *LogMetrics {
	return &LogMetrics{
		Appends:      reg.Counter("psp_wal_appends_total", "WAL records acknowledged durable."),
		AppendErrors: reg.Counter("psp_wal_append_errors_total", "WAL appends failed."),
		AppendLatency: reg.Histogram("psp_wal_append_seconds",
			"WAL append latency, submit to durable acknowledgement.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		Fsyncs: reg.Counter("psp_wal_fsyncs_total", "WAL group commits (one fsync each)."),
		FsyncLatency: reg.Histogram("psp_wal_fsync_seconds", "WAL fsync latency.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		GroupRecords: reg.Histogram("psp_wal_group_records",
			"Records coalesced per group commit.", obs.DefaultSizeBuckets, 1),
		SegmentRolls:      reg.Counter("psp_wal_segment_rolls_total", "WAL segment rolls."),
		TruncatedSegments: reg.Counter("psp_wal_truncated_segments_total", "WAL segments deleted by compaction."),
	}
}
