package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record framing constants (see the package documentation for the
// on-disk layout).
const (
	recordHeaderSize = 8
	// MaxRecordBytes bounds a single payload. The bound exists so a
	// corrupt length field read during recovery is recognized as
	// corruption instead of provoking a multi-gigabyte allocation.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the segment roll threshold when
	// LogOptions.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20
	// DefaultMaxGroup is the group-commit batch cap when
	// LogOptions.MaxGroup is zero.
	DefaultMaxGroup = 256

	segSuffix = ".seg"
)

// groupCollectYields bounds the scheduler-yield run collectGroup waits
// for more appends before fsyncing: enough round trips for every
// concurrently acknowledged appender to resubmit, a few microseconds
// when nobody does.
const groupCollectYields = 16

// crcTable is the Castagnoli polynomial table shared by writers and
// recovery scans.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append on a closed log.
var ErrClosed = errors.New("durable: log closed")

// LogOptions tunes one write-ahead log.
type LogOptions struct {
	// SegmentBytes is the size past which the active segment rolls
	// (default DefaultSegmentBytes).
	SegmentBytes int64
	// MaxGroup caps how many waiting appends one group commit absorbs
	// (default DefaultMaxGroup).
	MaxGroup int
	// groupYields is collectGroup's patience in scheduler yields
	// (internal; groupCollectYields unless a test overrides it).
	groupYields int
	// OnDurable, when set, runs on the writer goroutine for every
	// appended record — in sequence order, after the group's fsync,
	// before the append is acknowledged. It must not call back into the
	// log.
	OnDurable func(seq uint64)
	// Metrics, when set, records append/fsync latency, group sizes and
	// segment churn. Share one instance across a store's stripe logs to
	// aggregate.
	Metrics *LogMetrics
	// FS, when set, replaces the real filesystem beneath segment writes
	// (default OSFS). The seam exists for fault injection: tests wrap it
	// to force write/fsync failures and torn tails through the real
	// commit path.
	FS FS
}

// segment is one on-disk segment file.
type segment struct {
	first uint64 // sequence of the segment's first record
	count int    // records in the segment
	path  string
}

// Log is a segmented append-only write-ahead log with group commit.
// Append is safe for concurrent use; Replay and TruncateBefore may run
// concurrently with appends.
type Log struct {
	dir  string
	opts LogOptions

	// mu guards segs — shared between the writer goroutine (rolling,
	// count updates) and Replay/TruncateBefore/LastSeq.
	mu   sync.Mutex
	segs []segment

	// sendMu serializes Append submission against Close: once closed is
	// set under the write lock, no sender is mid-submission, so the
	// writer can drain the channel and exit without stranding a caller.
	sendMu sync.RWMutex
	closed bool

	reqs chan *appendReq
	stop chan struct{}
	done chan struct{}

	// Writer-goroutine-owned state (initialized before the goroutine
	// starts, touched only by it afterwards).
	f       File
	size    int64
	nextSeq uint64
	werr    error // sticky write failure; fails all later appends
}

type appendReq struct {
	payload []byte
	done    chan appendRes
}

type appendRes struct {
	seq   uint64
	group int // records in the commit group whose fsync covered this one
	err   error
}

// AppendResult reports one durable append: the record's sequence and
// the size of the commit group whose single fsync covered it — the
// cost-attribution number that says how well group commit amortized
// this record's durability wait.
type AppendResult struct {
	Seq   uint64
	Group int
}

// OpenLog opens (or creates) the log in dir, validating existing
// segments per the package recovery rules: the scan truncates a torn or
// corrupt tail and drops any segments past a corruption or a gap in the
// segment chain. It never fails on damaged content — only on I/O errors.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxGroup <= 0 {
		opts.MaxGroup = DefaultMaxGroup
	}
	if opts.groupYields == 0 {
		opts.groupYields = groupCollectYields
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create log dir: %w", err)
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		reqs: make(chan *appendReq, opts.MaxGroup),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// segPath renders the segment file name of a first sequence.
func (l *Log) segPath(first uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d%s", first, segSuffix))
}

// recover scans the directory, validates segments, truncates damage,
// and opens the active (last) segment for appending.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("durable: read log dir: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("durable: alien segment file %s", name)
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })

	var expect uint64    // required first of the next segment; 0 = any
	var activeSize int64 // valid byte size of the last kept segment
	for i, first := range firsts {
		if expect != 0 && first != expect {
			// A gap (missing segment) or overlap: sequences past it are
			// untrustworthy, so the log ends here.
			l.dropFiles(firsts[i:])
			break
		}
		path := l.segPath(first)
		count, validSize, damaged, err := scanSegment(path, -1, nil)
		if err != nil {
			return err
		}
		if damaged {
			if err := os.Truncate(path, validSize); err != nil {
				return fmt.Errorf("durable: truncate torn tail of %s: %w", path, err)
			}
		}
		l.segs = append(l.segs, segment{first: first, count: count, path: path})
		activeSize = validSize
		expect = first + uint64(count)
		if damaged {
			l.dropFiles(firsts[i+1:])
			break
		}
	}
	if len(l.segs) == 0 {
		l.segs = []segment{{first: 1, path: l.segPath(1)}}
		expect = 1
		activeSize = 0
	}
	l.nextSeq = expect

	// The scan already established the active segment's valid size (the
	// torn tail, if any, was truncated above), so the append handle needs
	// no Stat — which keeps the File seam down to write/sync/close.
	active := l.segs[len(l.segs)-1]
	f, err := l.opts.FS.OpenAppend(active.path)
	if err != nil {
		return fmt.Errorf("durable: open active segment: %w", err)
	}
	l.f, l.size = f, activeSize
	return syncDir(l.dir)
}

// dropFiles removes the segment files of the given first sequences.
func (l *Log) dropFiles(firsts []uint64) {
	for _, first := range firsts {
		os.Remove(l.segPath(first))
	}
}

// scanSegment walks a segment's records. maxCount caps how many records
// are visited (-1 for all); fn, when non-nil, receives each record's
// index and payload (the payload slice is reused between calls). It
// returns the number of valid records, the byte offset just past the
// last valid record, and whether trailing damage (torn or corrupt data)
// was found after it.
func scanSegment(path string, maxCount int, fn func(idx int, payload []byte) error) (count int, validSize int64, damaged bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, false, nil
		}
		return 0, 0, false, fmt.Errorf("durable: open segment %s: %w", path, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, false, fmt.Errorf("durable: stat segment %s: %w", path, err)
	}
	fileSize := info.Size()

	var header [recordHeaderSize]byte
	var payload []byte
	for maxCount < 0 || count < maxCount {
		if validSize+recordHeaderSize > fileSize {
			return count, validSize, validSize < fileSize, nil
		}
		if _, err := f.ReadAt(header[:], validSize); err != nil {
			return count, validSize, true, nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordBytes ||
			validSize+recordHeaderSize+int64(length) > fileSize {
			return count, validSize, true, nil
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := f.ReadAt(payload, validSize+recordHeaderSize); err != nil {
			return count, validSize, true, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return count, validSize, true, nil
		}
		if fn != nil {
			if err := fn(count, payload); err != nil {
				return count, validSize, false, err
			}
		}
		count++
		validSize += recordHeaderSize + int64(length)
	}
	return count, validSize, false, nil
}

// Append submits one payload and blocks until it is durable (written
// and fsync'd, possibly as part of a larger group commit), returning
// the record's sequence. The payload is copied into the log's write
// buffer synchronously, so the caller may reuse it afterwards.
func (l *Log) Append(payload []byte) (uint64, error) {
	res, err := l.AppendGroup(payload)
	return res.Seq, err
}

// AppendGroup is Append also reporting the commit-group size the
// record was fsync'd with (see AppendResult).
func (l *Log) AppendGroup(payload []byte) (AppendResult, error) {
	if len(payload) == 0 {
		return AppendResult{}, fmt.Errorf("durable: empty payload")
	}
	if len(payload) > MaxRecordBytes {
		return AppendResult{}, fmt.Errorf("durable: payload of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	var t0 time.Time
	if l.opts.Metrics != nil {
		t0 = time.Now()
	}
	req := &appendReq{payload: payload, done: make(chan appendRes, 1)}
	l.sendMu.RLock()
	if l.closed {
		l.sendMu.RUnlock()
		return AppendResult{}, ErrClosed
	}
	l.reqs <- req
	l.sendMu.RUnlock()
	// Every submitted request is answered: the writer drains the
	// channel before exiting, and Close flips closed before stopping it.
	res := <-req.done
	if m := l.opts.Metrics; m != nil {
		if res.err != nil {
			m.AppendErrors.Inc()
		} else {
			m.Appends.Inc()
		}
		m.AppendLatency.ObserveSince(t0)
	}
	return AppendResult{Seq: res.seq, Group: res.group}, res.err
}

// run is the writer goroutine: it groups waiting appends, commits each
// group with one write+fsync, and acknowledges in sequence order.
func (l *Log) run() {
	defer close(l.done)
	for {
		var req *appendReq
		select {
		case req = <-l.reqs:
		case <-l.stop:
			// No sender can submit anymore; drain what already queued.
			for {
				select {
				case req := <-l.reqs:
					l.commitGroup(l.collectGroup(req))
				default:
					if l.f != nil {
						l.f.Sync()
						l.f.Close()
					}
					return
				}
			}
		}
		l.commitGroup(l.collectGroup(req))
	}
}

// collectGroup gathers the commit group for one fsync: everything
// already waiting, plus whatever arrives during a brief collection
// pause. The pause is what makes group commit actually amortize —
// appenders acknowledged by the previous fsync need a scheduler round
// trip to resubmit, so an impatient writer would commit groups of one
// to two forever, paying a full fsync each. The pause is a bounded run
// of scheduler yields rather than a timer: yields cost microseconds
// (timers on this path fire a millisecond late), stop as soon as the
// queue goes quiet, and let the resubmitting goroutines run — exactly
// the ones being waited for.
func (l *Log) collectGroup(first *appendReq) []*appendReq {
	group := []*appendReq{first}
	quiet := 0
	for len(group) < l.opts.MaxGroup && quiet < l.opts.groupYields {
		select {
		case r := <-l.reqs:
			group = append(group, r)
			quiet = 0
			continue
		default:
		}
		runtime.Gosched()
		quiet++
	}
	return group
}

// commitGroup writes one group: a single buffer build, one write, one
// fsync, then per-record OnDurable hooks and acknowledgements in
// sequence order.
func (l *Log) commitGroup(group []*appendReq) {
	if l.werr != nil {
		for _, r := range group {
			r.done <- appendRes{err: l.werr}
		}
		return
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.roll(); err != nil {
			l.werr = err
			for _, r := range group {
				r.done <- appendRes{err: err}
			}
			return
		}
	}
	var buf []byte
	for _, r := range group {
		var header [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(r.payload)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(r.payload, crcTable))
		buf = append(buf, header[:]...)
		buf = append(buf, r.payload...)
	}
	if _, err := l.f.Write(buf); err == nil {
		var t0 time.Time
		if l.opts.Metrics != nil {
			t0 = time.Now()
		}
		err = l.f.Sync()
		if err != nil {
			l.werr = fmt.Errorf("durable: fsync: %w", err)
		} else if m := l.opts.Metrics; m != nil {
			m.Fsyncs.Inc()
			m.FsyncLatency.ObserveSince(t0)
			m.GroupRecords.Observe(int64(len(group)))
		}
	} else {
		l.werr = fmt.Errorf("durable: write: %w", err)
	}
	if l.werr != nil {
		// The group's bytes may be partially on disk — a torn tail the
		// next open will truncate. Nothing was acknowledged.
		for _, r := range group {
			r.done <- appendRes{err: l.werr}
		}
		return
	}
	l.size += int64(len(buf))
	firstSeq := l.nextSeq
	l.nextSeq += uint64(len(group))
	l.mu.Lock()
	l.segs[len(l.segs)-1].count += len(group)
	l.mu.Unlock()
	for i, r := range group {
		seq := firstSeq + uint64(i)
		if l.opts.OnDurable != nil {
			l.opts.OnDurable(seq)
		}
		r.done <- appendRes{seq: seq, group: len(group)}
	}
}

// roll closes the active segment and starts the next, named after the
// next unassigned sequence.
func (l *Log) roll() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync before roll: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("durable: close before roll: %w", err)
	}
	path := l.segPath(l.nextSeq)
	f, err := l.opts.FS.Create(path)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, 0
	l.mu.Lock()
	l.segs = append(l.segs, segment{first: l.nextSeq, path: path})
	l.mu.Unlock()
	if m := l.opts.Metrics; m != nil {
		m.SegmentRolls.Inc()
	}
	return nil
}

// LastSeq returns the sequence of the last durable record (0 when the
// log has none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	last := l.segs[len(l.segs)-1]
	return last.first + uint64(last.count) - 1
}

// FirstSeq returns the lowest sequence still present on disk — the
// oldest record Replay can reach. When the log holds no records it
// returns the next sequence to be assigned.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].first
}

// Replay streams every durable record with sequence > after, in
// sequence order, to fn. It may run concurrently with appends: the
// record set visited is (at least) everything durable at call time.
// fn's payload slice is reused between calls.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.first+uint64(seg.count) <= after+1 {
			continue // entire segment at or below the floor
		}
		_, _, _, err := scanSegment(seg.path, seg.count, func(idx int, payload []byte) error {
			seq := seg.first + uint64(idx)
			if seq <= after {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore deletes every segment whose records all have
// sequence ≤ seq. Truncation is whole-segment (the active segment is
// never deleted), so some records at or below seq may survive — replay
// floors make that harmless.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := 0
	for keep+1 < len(l.segs) && l.segs[keep+1].first <= seq+1 {
		keep++
	}
	if keep == 0 {
		return nil
	}
	for _, seg := range l.segs[:keep] {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("durable: remove segment: %w", err)
		}
	}
	l.segs = append([]segment(nil), l.segs[keep:]...)
	if m := l.opts.Metrics; m != nil {
		m.TruncatedSegments.Add(uint64(keep))
	}
	return nil
}

// Close stops the writer after finishing every already-submitted
// append, syncs, and closes the active segment. Appends submitted after
// Close fail with ErrClosed. Close is idempotent.
func (l *Log) Close() error {
	l.sendMu.Lock()
	if l.closed {
		l.sendMu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.sendMu.Unlock()
	close(l.stop)
	<-l.done
	return l.werr
}
