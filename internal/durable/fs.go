package durable

import (
	"io"
	"os"
)

// File is the write-side capability the log needs from an open segment
// file. *os.File satisfies it; fault-injecting wrappers
// (internal/fault.FS) satisfy it too, which is how the chaos tests
// drive torn-write and fsync-failure scenarios through the real commit
// path instead of mocking the log.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem seam beneath a Log's segment writes. Only the
// write path goes through it — recovery reads use the OS directly,
// because the failure modes worth injecting (a write error, a failed
// fsync, a torn tail) all happen on the way to disk. The zero-value
// default is the real filesystem (OSFS).
type FS interface {
	// OpenAppend opens path for appending, creating it when absent.
	OpenAppend(path string) (File, error)
	// Create creates path exclusively (it must not exist) for writing.
	Create(path string) (File, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

var _ FS = OSFS{}

// OpenAppend implements FS with os.OpenFile(O_CREATE|O_WRONLY|O_APPEND).
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create implements FS with os.OpenFile(O_CREATE|O_EXCL|O_WRONLY).
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}
