package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// replayAll collects every record after the given floor.
func replayAll(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]string)
	for i := 0; i < 100; i++ {
		payload := fmt.Sprintf("record-%03d", i)
		seq, err := l.Append([]byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if wantSeq := uint64(i + 1); seq != wantSeq {
			t.Fatalf("append %d: seq %d, want %d", i, seq, wantSeq)
		}
		want[seq] = payload
	}
	got := replayAll(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for seq, payload := range want {
		if got[seq] != payload {
			t.Fatalf("seq %d: %q, want %q", seq, got[seq], payload)
		}
	}
	if after := replayAll(t, l, 60); len(after) != 40 {
		t.Fatalf("replay after 60: %d records, want 40", len(after))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything acknowledged must still be there.
	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
	if l2.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d, want 100", l2.LastSeq())
	}
	if seq, err := l2.Append([]byte("post-reopen")); err != nil || seq != 101 {
		t.Fatalf("append after reopen: seq %d err %v, want 101", seq, err)
	}
}

// TestLogGroupCommitConcurrent drives many concurrent appenders and
// checks that sequences come out dense and every record replays — the
// group-commit path must never drop, duplicate, or reorder an
// acknowledged record. OnDurable must observe sequences in order.
func TestLogGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	var hookMu sync.Mutex
	var hookSeqs []uint64
	l, err := OpenLog(dir, LogOptions{
		SegmentBytes: 1 << 12, // force rolls mid-flood
		OnDurable: func(seq uint64) {
			hookMu.Lock()
			hookSeqs = append(hookSeqs, seq)
			hookMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	var all []uint64
	for _, s := range seqs {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, seq := range all {
		if seq != uint64(i+1) {
			t.Fatalf("sequence hole: position %d holds %d", i, seq)
		}
	}
	for i := 1; i < len(hookSeqs); i++ {
		if hookSeqs[i] != hookSeqs[i-1]+1 {
			t.Fatalf("OnDurable out of order: %d after %d", hookSeqs[i], hookSeqs[i-1])
		}
	}
	if got := replayAll(t, l, 0); len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestLogSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 40) // ~2 records per segment
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if files := segFiles(t, dir); len(files) < 5 {
		t.Fatalf("expected several segments, got %v", files)
	}
	// Truncation keeps every record above the floor and only removes
	// whole segments.
	if err := l.TruncateBefore(10); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l, 10)
	for seq := uint64(11); seq <= 20; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d lost by truncation", seq)
		}
	}
	if first := l.FirstSeq(); first > 11 {
		t.Fatalf("FirstSeq %d after TruncateBefore(10): truncated too much", first)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after truncation: the chain must still be valid.
	l2, err := OpenLog(dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 20 {
		t.Fatalf("LastSeq after reopen = %d, want 20", l2.LastSeq())
	}
}

// appendRaw writes raw bytes to the log's newest segment file.
func appendRaw(t *testing.T, dir string, raw []byte) string {
	t.Helper()
	files := segFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no segment files")
	}
	sort.Strings(files)
	path := filepath.Join(dir, files[len(files)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// frame builds one valid record frame.
func frame(payload []byte) []byte {
	var header [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	return append(header[:], payload...)
}

// TestLogRecoveryTornTail appends a partial record frame at every
// possible cut offset and checks recovery truncates exactly the torn
// bytes — acknowledged records always survive, the torn write never
// does, and the log stays appendable.
func TestLogRecoveryTornTail(t *testing.T) {
	full := frame([]byte("in-flight-batch-payload"))
	for cut := 0; cut < len(full); cut++ {
		dir := t.TempDir()
		l, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		appendRaw(t, dir, full[:cut])

		l2, err := OpenLog(dir, LogOptions{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := replayAll(t, l2, 0); len(got) != 5 {
			t.Fatalf("cut %d: %d records, want 5", cut, len(got))
		}
		if seq, err := l2.Append([]byte("next")); err != nil || seq != 6 {
			t.Fatalf("cut %d: append after recovery: seq %d err %v", cut, seq, err)
		}
		l2.Close()
	}
}

func TestLogRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	bad := frame([]byte("flipped"))
	bad[len(bad)-1] ^= 0xFF // payload no longer matches its CRC
	appendRaw(t, dir, bad)

	l2, err := OpenLog(dir, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 5 {
		t.Fatalf("%d records after corrupt-CRC recovery, want 5", len(got))
	}
}

// TestLogRecoveryMissingSegment: an empty just-rolled segment is valid;
// a gap in the chain ends the log at the gap.
func TestLogRecoveryMissingSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// An empty tail segment, as left by a roll that crashed before its
	// first record.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%020d%s", 11, segSuffix)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2, 0); len(got) != 10 {
		t.Fatalf("%d records with empty tail segment, want 10", len(got))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Delete a middle segment: recovery must end the log at the gap
	// rather than replay sequences it cannot trust.
	files := segFiles(t, dir)
	sort.Strings(files)
	if len(files) < 3 {
		t.Fatalf("need ≥3 segments, got %v", files)
	}
	if err := os.Remove(filepath.Join(dir, files[1])); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenLog(dir, LogOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got := replayAll(t, l3, 0)
	if len(got) == 0 || len(got) >= 10 {
		t.Fatalf("%d records after gap, want a proper prefix", len(got))
	}
	for seq := uint64(1); seq <= uint64(len(got)); seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("surviving records are not a dense prefix: missing %d", seq)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Fatalf("content %q, want %q", data, "second")
	}
	// A failing writer must leave the old content and no temp litter.
	if err := WriteFileAtomic(path, func(io.Writer) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("expected write error")
	}
	if data, _ := os.ReadFile(path); string(data) != "second" {
		t.Fatalf("failed write clobbered content: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("empty dir: manifest %v err %v, want nil, nil", m, err)
	}
	in := &Manifest{Shards: 4, Gen: 7, Snapshot: "snap-00000007.jsonl", Floors: []uint64{3, 0, 12, 5}}
	if err := in.Write(dir); err != nil {
		t.Fatal(err)
	}
	out, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shards != in.Shards || out.Gen != in.Gen || out.Snapshot != in.Snapshot ||
		len(out.Floors) != len(in.Floors) || out.Floors[2] != 12 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}
