// Package durable is the crash-safe storage engine under the social
// store and the monitoring daemon: a segmented, append-only write-ahead
// log with group commit, a snapshot manifest, and atomic file
// replacement. It knows nothing about posts or assessments — payloads
// are opaque byte slices — so the social package layers its own batch
// encoding on top (see internal/social's durability notes).
//
// # Write-ahead log
//
// A Log is one directory of numbered segment files. Every record is
// framed as
//
//	offset 0  uint32 little-endian  payload length in bytes
//	offset 4  uint32 little-endian  CRC-32C (Castagnoli) of the payload
//	offset 8  payload
//
// Records carry no explicit sequence number: a record's sequence is the
// segment's first sequence plus the record's index within the segment.
// Sequences start at 1 and are dense — every accepted Append gets the
// next sequence, assigned by the single writer goroutine.
//
// # Segments
//
// Segment files are named "<first-sequence>.seg" with the sequence
// zero-padded to 20 digits ("00000000000000000001.seg"), so the
// lexical order of file names is the sequence order. A segment rolls
// once it exceeds LogOptions.SegmentBytes; rolling creates the next
// segment named after the next unassigned sequence and fsyncs the
// directory so the new name survives a crash. Only whole segments are
// ever deleted (TruncateBefore), which is what makes WAL truncation
// after a snapshot a pair of unlink calls rather than a rewrite.
//
// # Group commit
//
// Append hands the payload to the log's writer goroutine and blocks.
// The writer drains every append waiting at that moment (up to
// LogOptions.MaxGroup), frames them into one buffer, issues one write
// and one fsync, and only then acknowledges each caller — so N
// concurrent appenders share a single fsync instead of paying one
// each. The OnDurable hook runs on the writer goroutine, in sequence
// order, after the fsync and before the acknowledgement; the social
// store uses it to register every durable-but-unapplied sequence so
// snapshot floors never claim a record the in-memory indices have not
// absorbed yet.
//
// # Recovery rules
//
// Opening a log validates it back to front-of-corruption:
//
//   - Segments are scanned in name order. A record with an impossible
//     length, a CRC mismatch, or a short read (the torn tail of a
//     crashed write) ends the scan: the file is truncated to the last
//     valid record and every later segment is deleted. Torn or corrupt
//     tails are truncated, never fatal.
//   - A gap in the segment chain (a missing file) ends the log at the
//     gap: later segments are deleted, because their sequences could
//     not be trusted.
//   - An empty segment file (created by a roll that crashed before the
//     first record) is valid and simply contributes zero records.
//
// Acknowledged appends are fsync'd by definition, so none of this can
// drop an acknowledged record — only unacknowledged tail writes are at
// risk, and those are exactly what the rules discard.
//
// # Disk-fault policy
//
// A failed segment write or fsync is sticky: the writer goroutine
// records the first error and fails that append and every later one
// with it, permanently, until the process reopens the log. The log
// never retries past a write error, because after a short or failed
// write the on-disk tail position is unknown — appending again could
// interleave a new frame with the torn remains of the old one and
// forge a record that recovery would trust. Refusing is safe by
// construction: the failed batch was never acknowledged, the tail the
// failure left behind is exactly the damage the recovery scan
// truncates, and reopening re-derives the true end of the log from
// disk. Callers see the policy as one persistent error class; the
// social store maps it to read-only degraded mode rather than crashing
// (see internal/social). The write path reaches disk only through the
// FS seam (LogOptions.FS, default OSFS) — internal/fault.FS implements
// it to inject write errors, fsync failures and torn tails through the
// real commit path, which is how the chaos suite proves all of the
// above.
//
// # Snapshot manifest
//
// A Manifest (MANIFEST.json in the store's data directory) records,
// per stripe, the current snapshot files and the replay floor: the
// highest sequence known to be fully reflected in that stripe's
// snapshot. Since manifest Version 2 each stripe names two files — its
// post snapshot and an optional index sidecar holding the stripe's
// search indices in a pre-built, checksummed form (the sidecar format
// itself belongs to the layer above; see internal/social). Recovery
// loads each stripe's snapshot, then replays every WAL record with a
// sequence above that stripe's floor; records at or below a floor that
// still exist on disk (truncation is whole-segment) are skipped, and
// replayed posts that the snapshot already contains are deduplicated by
// ID. The manifest is replaced atomically (WriteFileAtomic), so a crash
// mid-compaction leaves either the old manifest (and orphaned new
// stripe files, removed at next open) or the new one — never a torn
// file.
//
// Version skew is explicit: a Version 0 manifest (the field absent —
// directories written before per-stripe snapshots) names one
// whole-corpus snapshot in Snapshot, which current code still opens;
// a Version above the writer's ManifestVersion is refused rather than
// misread. Because clean stripes keep their files and floors verbatim
// across a compaction, a Version 2 manifest may mix stripe entries
// written by different compaction passes — each entry is self-
// contained, so that mix is the normal steady state, not a repair
// case.
package durable
