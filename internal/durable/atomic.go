package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic replaces path with the bytes produced by write,
// crash-safely: the content goes to a temporary file in the same
// directory, is fsync'd, and is renamed over path, so a reader (or a
// crash) can only ever observe the complete old file or the complete
// new file — never a truncated dump. The directory is fsync'd after the
// rename so the replacement itself survives a crash.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: create temp for %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	tmp = nil // renamed away; nothing to clean up
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. Filesystems that reject directory fsync (it is optional on
// some) are tolerated: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// EINVAL/ENOTSUP from filesystems without directory fsync is
		// not a durability bug the caller can act on; everything else
		// is.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || os.IsPermission(err) {
			return nil
		}
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
