package nlp

import "sort"

// CooccurrenceGraph counts how often tag pairs appear in the same
// document. PSP's auto-learning loop (Fig. 7 block 5) uses it to discover
// new attack hashtags: tags that frequently co-occur with known attack
// tags are candidate keywords for future queries.
type CooccurrenceGraph struct {
	// counts[a][b] = number of documents containing both a and b (a ≠ b).
	counts map[string]map[string]int
	// docFreq[a] = number of documents containing a.
	docFreq map[string]int
	docs    int
}

// NewCooccurrenceGraph returns an empty graph.
func NewCooccurrenceGraph() *CooccurrenceGraph {
	return &CooccurrenceGraph{
		counts:  make(map[string]map[string]int),
		docFreq: make(map[string]int),
	}
}

// Observe records one document's tag set (duplicates are collapsed).
func (g *CooccurrenceGraph) Observe(tags []string) {
	uniq := make([]string, 0, len(tags))
	seen := make(map[string]bool, len(tags))
	for _, t := range tags {
		t = Normalize(t)
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		uniq = append(uniq, t)
	}
	if len(uniq) == 0 {
		return
	}
	g.docs++
	for _, t := range uniq {
		g.docFreq[t]++
	}
	for i, a := range uniq {
		for j, b := range uniq {
			if i == j {
				continue
			}
			if g.counts[a] == nil {
				g.counts[a] = make(map[string]int)
			}
			g.counts[a][b]++
		}
	}
}

// Docs returns the number of observed documents.
func (g *CooccurrenceGraph) Docs() int { return g.docs }

// Merge adds another graph's observations into g. Counts are plain
// integer sums, so merging per-partition graphs — in any order — yields
// exactly the graph a single pass over all documents would have built.
// The incremental re-assessment path relies on this: unchanged keyword
// groups contribute memoized per-group graphs instead of re-tokenizing
// their posts.
func (g *CooccurrenceGraph) Merge(other *CooccurrenceGraph) {
	if other == nil {
		return
	}
	g.docs += other.docs
	for t, c := range other.docFreq {
		g.docFreq[t] += c
	}
	for a, row := range other.counts {
		dst := g.counts[a]
		if dst == nil {
			dst = make(map[string]int, len(row))
			g.counts[a] = dst
		}
		for b, c := range row {
			dst[b] += c
		}
	}
}

// Count returns how many documents contain both a and b.
func (g *CooccurrenceGraph) Count(a, b string) int {
	return g.counts[Normalize(a)][Normalize(b)]
}

// Association is a candidate tag scored by its association with a seed
// set.
type Association struct {
	Tag string
	// Score is the summed conditional probability P(tag | seed) over the
	// seed set.
	Score float64
	// Support is the total number of co-occurrences with any seed.
	Support int
}

// Associates ranks tags by association with the seed set: for each
// candidate tag t ∉ seeds, score = Σ_s count(t, s) / docFreq(s). minSupport
// filters noise (candidates co-occurring fewer than minSupport times in
// total are dropped). The result is sorted by descending score, ties by
// tag.
func (g *CooccurrenceGraph) Associates(seeds []string, minSupport int) []Association {
	seedSet := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seedSet[Normalize(s)] = true
	}
	scores := make(map[string]float64)
	support := make(map[string]int)
	// Seeds iterate in sorted order so the floating-point score sums
	// accumulate identically on every run — ranking must be reproducible
	// for the workflow's determinism and incremental-equivalence
	// guarantees.
	ordered := make([]string, 0, len(seedSet))
	for s := range seedSet {
		ordered = append(ordered, s)
	}
	sort.Strings(ordered)
	for _, s := range ordered {
		df := g.docFreq[s]
		if df == 0 {
			continue
		}
		for t, c := range g.counts[s] {
			if seedSet[t] {
				continue
			}
			scores[t] += float64(c) / float64(df)
			support[t] += c
		}
	}
	out := make([]Association, 0, len(scores))
	for t, sc := range scores {
		if support[t] < minSupport {
			continue
		}
		out = append(out, Association{Tag: t, Score: sc, Support: support[t]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}
