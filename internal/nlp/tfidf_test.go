package nlp

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTFIDFRanksDistinctiveTerms(t *testing.T) {
	docs := [][]string{
		{"dpf", "delete", "kit", "excavator"},
		{"egr", "removal", "kit", "tractor"},
		{"adblue", "emulator", "kit", "truck"},
		{"dpf", "regen", "problem", "kit"},
	}
	m := NewTFIDF(docs)
	if m.DocCount() != 4 {
		t.Fatalf("DocCount() = %d, want 4", m.DocCount())
	}
	// "kit" appears everywhere → lowest IDF; "excavator" once → higher.
	if m.IDF("kit") >= m.IDF("excavator") {
		t.Errorf("IDF(kit)=%.3f should be < IDF(excavator)=%.3f", m.IDF("kit"), m.IDF("excavator"))
	}
	kws := m.TopKeywords(docs[0], 2)
	if len(kws) != 2 {
		t.Fatalf("TopKeywords returned %d, want 2", len(kws))
	}
	for _, kw := range kws {
		if kw.Term == "kit" {
			t.Errorf("ubiquitous term %q ranked in top keywords %v", kw.Term, kws)
		}
	}
}

func TestTFIDFSkipsStopwordsAndShortTerms(t *testing.T) {
	docs := [][]string{{"the", "dpf", "is", "ok"}}
	m := NewTFIDF(docs)
	for _, kw := range m.TopKeywords(docs[0], 10) {
		if IsStopword(kw.Term) {
			t.Errorf("stop word %q in keywords", kw.Term)
		}
		if len(kw.Term) < 3 {
			t.Errorf("short term %q in keywords", kw.Term)
		}
	}
}

func TestTFIDFDeterministicTieBreak(t *testing.T) {
	docs := [][]string{{"alpha", "beta"}}
	m := NewTFIDF(docs)
	kws := m.TopKeywords(docs[0], 0)
	if len(kws) != 2 || kws[0].Term != "alpha" || kws[1].Term != "beta" {
		t.Errorf("tie break not lexicographic: %v", kws)
	}
}

func TestKMeans1DThreePriceBands(t *testing.T) {
	// Marketplace shape: budget emulators (~150), mainstream defeat
	// devices (~360), professional installs (~800).
	var values []float64
	for i := 0; i < 10; i++ {
		values = append(values, 140+float64(i)*2) // 140..158
	}
	for i := 0; i < 20; i++ {
		values = append(values, 350+float64(i)) // 350..369
	}
	for i := 0; i < 5; i++ {
		values = append(values, 790+float64(i)*4) // 790..806
	}
	clusters, err := KMeans1D(values, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	if clusters[0].Center > 200 || clusters[1].Center < 300 || clusters[1].Center > 400 || clusters[2].Center < 700 {
		t.Errorf("cluster centers off: %.1f %.1f %.1f",
			clusters[0].Center, clusters[1].Center, clusters[2].Center)
	}
	dom, err := DominantCluster(clusters)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Size() != 20 {
		t.Errorf("dominant cluster size = %d, want 20", dom.Size())
	}
	if math.Abs(dom.Center-359.5) > 1 {
		t.Errorf("dominant center = %.2f, want ≈359.5", dom.Center)
	}
}

func TestKMeans1DErrors(t *testing.T) {
	if _, err := KMeans1D(nil, 2, 0); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty input error = %v, want ErrNoObservations", err)
	}
	if _, err := KMeans1D([]float64{1}, 2, 0); !errors.Is(err, ErrNoObservations) {
		t.Errorf("k>n error = %v, want ErrNoObservations", err)
	}
	if _, err := KMeans1D([]float64{1, 2}, 0, 0); err == nil {
		t.Error("k=0 succeeded, want error")
	}
	if _, err := DominantCluster(nil); err == nil {
		t.Error("DominantCluster(nil) succeeded, want error")
	}
}

func TestKMeans1DSingleCluster(t *testing.T) {
	clusters, err := KMeans1D([]float64{5, 5, 5, 5}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Center != 5 || clusters[0].Size() != 4 {
		t.Errorf("clusters = %+v", clusters)
	}
}

// Property: clustering partitions the input — sizes sum to n, members are
// sorted ascending, and centers are ordered.
func TestKMeans1DPartitionProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		values := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, math.Mod(v, 1e6))
			}
		}
		if len(values) == 0 {
			return true
		}
		k := 1 + int(kRaw)%3
		if len(values) < k {
			return true
		}
		clusters, err := KMeans1D(values, k, 0)
		if err != nil {
			return false
		}
		total := 0
		for i, c := range clusters {
			total += c.Size()
			if !sort.Float64sAreSorted(c.Values) {
				return false
			}
			if i > 0 && clusters[i-1].Center > c.Center {
				return false
			}
		}
		return total == len(values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input should yield 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
}
