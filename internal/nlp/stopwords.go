package nlp

// stopwords is the English stop-word list used when extracting keywords
// and computing TF-IDF. Negation words ("not", "no", "never", "without")
// are deliberately NOT stop words: the sentiment engine consumes them.
var stopwords = map[string]bool{
	"a": true, "about": true, "above": true, "after": true, "again": true,
	"all": true, "also": true, "am": true, "an": true, "and": true,
	"any": true, "are": true, "as": true, "at": true, "be": true,
	"because": true, "been": true, "before": true, "being": true,
	"below": true, "between": true, "both": true, "but": true, "by": true,
	"can": true, "could": true, "did": true, "do": true, "does": true,
	"doing": true, "down": true, "during": true, "each": true, "few": true,
	"for": true, "from": true, "further": true, "get": true, "got": true,
	"had": true, "has": true, "have": true, "having": true, "he": true,
	"her": true, "here": true, "hers": true, "him": true, "his": true,
	"how": true, "i": true, "if": true, "in": true, "into": true,
	"is": true, "it": true, "its": true, "just": true, "me": true,
	"more": true, "most": true, "my": true, "now": true, "of": true,
	"on": true, "once": true, "only": true, "or": true, "other": true,
	"our": true, "ours": true, "out": true, "over": true, "own": true,
	"same": true, "she": true, "should": true, "so": true, "some": true,
	"such": true, "than": true, "that": true, "the": true, "their": true,
	"theirs": true, "them": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "those": true,
	"through": true, "to": true, "too": true, "under": true, "until": true,
	"up": true, "was": true, "we": true, "were": true, "what": true,
	"when": true, "where": true, "which": true, "while": true, "who": true,
	"whom": true, "why": true, "will": true, "with": true, "would": true,
	"you": true, "your": true, "yours": true,
}

// IsStopword reports whether the (already lower-cased) word is a stop
// word.
func IsStopword(w string) bool { return stopwords[w] }

// RemoveStopwords filters stop words out of a word list, preserving
// order.
func RemoveStopwords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}
