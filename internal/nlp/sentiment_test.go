package nlp

import (
	"testing"
	"testing/quick"
)

func TestSentimentPolarity(t *testing.T) {
	a := NewAnalyzer(nil)
	tests := []struct {
		name string
		text string
		want SentimentLabel
	}{
		{"positive scene post", "Best dpf delete kit ever, awesome power gains!", SentimentPositive},
		{"negative outcome", "Total scam, bricked my ecu and ruined the turbo", SentimentNegative},
		{"neutral spec", "The controller has a 32-bit mcu and two can channels", SentimentNeutral},
		{"negated positive", "This kit is not good", SentimentNegative},
		{"negated negative", "No problems at all after the install", SentimentPositive},
		{"intensified positive", "really awesome delete kit", SentimentPositive},
		{"emoticon positive", "finally installed it :D", SentimentPositive},
		{"emoticon negative", "week two and it died :(", SentimentNegative},
		{"empty", "", SentimentNeutral},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := a.Score(tt.text)
			if got.Label != tt.want {
				t.Errorf("Score(%q) = %+v, want label %v", tt.text, got, tt.want)
			}
		})
	}
}

func TestSentimentNegationWindow(t *testing.T) {
	a := NewAnalyzer(nil)
	// Negator affects words within the window…
	neg := a.Score("not a good kit")
	if neg.Score >= 0 {
		t.Errorf("negation within window failed: %+v", neg)
	}
	// …but not beyond it (window = 3 tokens).
	far := a.Score("not sure about this one but good stuff overall")
	if far.Score <= 0 {
		t.Errorf("negation beyond window leaked: %+v", far)
	}
}

func TestSentimentIntensifierScales(t *testing.T) {
	a := NewAnalyzer(nil)
	plain := a.Score("good kit")
	boosted := a.Score("extremely good kit")
	if boosted.Score <= plain.Score {
		t.Errorf("intensifier did not raise score: plain %.3f, boosted %.3f", plain.Score, boosted.Score)
	}
	damped := a.Score("slightly good kit")
	if damped.Score >= plain.Score {
		t.Errorf("downtoner did not lower score: plain %.3f, damped %.3f", plain.Score, damped.Score)
	}
}

func TestSentimentHashtagWeight(t *testing.T) {
	lex := NewLexicon(map[string]float64{"boost": 0.4})
	a := NewAnalyzer(lex)
	word := a.Score("boost")
	tag := a.Score("#boost")
	if tag.Score <= word.Score {
		t.Errorf("hashtag weighting missing: word %.3f, tag %.3f", word.Score, tag.Score)
	}
}

func TestSentimentStemmedFallback(t *testing.T) {
	// "gains" is in the lexicon directly, but "gaining" must match via
	// its stem.
	a := NewAnalyzer(nil)
	s := a.Score("gaining power after the tune")
	if s.Hits == 0 || s.Score <= 0 {
		t.Errorf("stemmed lexicon fallback failed: %+v", s)
	}
}

func TestSentimentScoreBoundsProperty(t *testing.T) {
	a := NewAnalyzer(nil)
	f := func(s string) bool {
		got := a.Score(s)
		return got.Score >= -1 && got.Score <= 1 && got.Hits >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLexiconMergeAndClamp(t *testing.T) {
	base := NewLexicon(map[string]float64{"alpha": 0.5, "beta": 2.5, "gamma": -3})
	if v, _ := base.Valence("beta"); v != 1 {
		t.Errorf("valence not clamped high: %v", v)
	}
	if v, _ := base.Valence("gamma"); v != -1 {
		t.Errorf("valence not clamped low: %v", v)
	}
	over := NewLexicon(map[string]float64{"alpha": -0.5, "delta": 0.1})
	base.Merge(over)
	if v, _ := base.Valence("alpha"); v != -0.5 {
		t.Errorf("merge did not override: %v", v)
	}
	if _, ok := base.Valence("delta"); !ok {
		t.Error("merge did not add new term")
	}
	if base.Len() != 4 {
		t.Errorf("Len() = %d, want 4", base.Len())
	}
}

func TestDefaultLexiconDomainTerms(t *testing.T) {
	l := DefaultLexicon()
	for _, term := range []string{"gains", "bricked", "scam", "savings", "unlocked"} {
		if _, ok := l.Valence(term); !ok {
			t.Errorf("default lexicon misses domain term %q", term)
		}
	}
}

func TestSentimentLabelString(t *testing.T) {
	if SentimentPositive.String() != "positive" ||
		SentimentNegative.String() != "negative" ||
		SentimentNeutral.String() != "neutral" ||
		SentimentLabel(0).String() != "unknown" {
		t.Error("sentiment label strings wrong")
	}
}
