package nlp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func kinds(tokens []Token) []TokenKind {
	out := make([]TokenKind, len(tokens))
	for i, t := range tokens {
		out[i] = t.Kind
	}
	return out
}

func texts(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeScenePost(t *testing.T) {
	tokens := Tokenize("Best #dpfdelete kit for my excavator, 360€ from @tuningshop https://shop.example/dpf :)")
	wantKinds := []TokenKind{
		TokenWord, TokenHashtag, TokenWord, TokenWord, TokenWord,
		TokenWord, TokenNumber, TokenWord, TokenMention, TokenURL, TokenEmoticon,
	}
	if !reflect.DeepEqual(kinds(tokens), wantKinds) {
		t.Fatalf("kinds = %v, want %v (tokens %v)", kinds(tokens), wantKinds, tokens)
	}
	wantTexts := []string{
		"best", "dpfdelete", "kit", "for", "my",
		"excavator", "360", "from", "tuningshop", "https://shop.example/dpf", ":)",
	}
	if !reflect.DeepEqual(texts(tokens), wantTexts) {
		t.Fatalf("texts = %v, want %v", texts(tokens), wantTexts)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string // expected token texts
	}{
		{"empty", "", nil},
		{"whitespace only", "   \t\n ", nil},
		{"lone sigil", "# @", nil},
		{"apostrophe word", "don't brick it", []string{"don't", "brick", "it"}},
		{"hyphenated word", "anti-tamper device", []string{"anti-tamper", "device"}},
		{"trailing hyphen splits", "tuning- kit", []string{"tuning", "kit"}},
		{"decimal number", "price 349.99 only", []string{"price", "349.99", "only"}},
		{"hashtag with digits", "#egr2023 rocks", []string{"egr2023", "rocks"}},
		{"punct-glued url", "see https://x.example/a, now", []string{"see", "https://x.example/a", "now"}},
		{"unicode words", "prova però così", []string{"prova", "però", "così"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := texts(Tokenize(tt.in))
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) texts = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestHashtagsAndWords(t *testing.T) {
	tokens := Tokenize("#DPFdelete works great #dpfdelete #EGRoff")
	tags := Hashtags(tokens)
	want := []string{"dpfdelete", "dpfdelete", "egroff"}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("Hashtags() = %v, want %v", tags, want)
	}
	words := Words(tokens)
	if !reflect.DeepEqual(words, []string{"works", "great"}) {
		t.Errorf("Words() = %v, want [works great]", words)
	}
}

// Property: tokenization never panics and yields lower-cased texts for
// words and hashtags.
func TestTokenizeTotalProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Kind == TokenWord || tok.Kind == TokenHashtag {
				for _, r := range tok.Text {
					if r >= 'A' && r <= 'Z' {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"SOOOO", "soo"},
		{"d3l3te", "delete"},
		{"DPF", "dpf"},
		{"  mixed  ", "mixed"},
		{"12345", "12345"}, // pure numbers keep digits
		{"t00l", "tool"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStem(t *testing.T) {
	tests := []struct{ in, want string }{
		{"deleted", "delet"},
		{"deletes", "delet"},
		{"deleting", "delet"},
		{"removal", "remov"},
		{"tuning", "tun"},
		{"tuners", "tun"},
		{"dpf", "dpf"},      // short words unchanged
		{"cars", "cars"},    // ≤4 letters unchanged
		{"stopped", "stop"}, // undoubling
		{"devices", "devic"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemConflatesInflections(t *testing.T) {
	// The property the sentiment engine and keyword learner rely on:
	// inflections of the same verb share a stem.
	groups := [][]string{
		{"deleted", "deletes", "deleting"},
		{"removed", "removes", "removing"},
		{"tuned", "tunes", "tuning"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if Stem(w) != base {
				t.Errorf("Stem(%q) = %q, want %q (conflation broken)", w, Stem(w), base)
			}
		}
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Error("core stop words not recognized")
	}
	if IsStopword("not") || IsStopword("never") || IsStopword("without") {
		t.Error("negators must not be stop words (sentiment engine needs them)")
	}
	in := []string{"the", "dpf", "delete", "is", "awesome"}
	got := RemoveStopwords(in)
	want := []string{"dpf", "delete", "awesome"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords(%v) = %v, want %v", in, got, want)
	}
}

func TestNGrams(t *testing.T) {
	words := []string{"dpf", "delete", "kit"}
	if got := NGrams(words, 2); !reflect.DeepEqual(got, []string{"dpf delete", "delete kit"}) {
		t.Errorf("NGrams(2) = %v", got)
	}
	if got := NGrams(words, 3); !reflect.DeepEqual(got, []string{"dpf delete kit"}) {
		t.Errorf("NGrams(3) = %v", got)
	}
	if got := NGrams(words, 4); got != nil {
		t.Errorf("NGrams(4) = %v, want nil", got)
	}
	if got := NGrams(words, 0); got != nil {
		t.Errorf("NGrams(0) = %v, want nil", got)
	}
	if got := Bigrams(words); len(got) != 2 {
		t.Errorf("Bigrams() = %v", got)
	}
}
