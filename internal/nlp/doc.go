// Package nlp implements the natural-language-processing primitives the
// PSP framework needs: tokenization of social-media text, normalization,
// a light suffix-stripping stemmer, stop-word filtering, lexicon-based
// sentiment scoring with negation and intensifier handling, n-gram and
// TF-IDF keyword extraction, hashtag co-occurrence learning, price
// extraction and one-dimensional k-means clustering for price levels.
//
// Everything is deterministic and dependency-free: the package replaces
// the commercial NLP stack behind the paper's prototype while preserving
// the three capabilities the framework actually consumes — post
// attraction scoring, adversary-device price clustering and attack
// keyword auto-learning.
package nlp
