package nlp

import "strings"

// NGrams returns the n-grams of a word sequence joined by single spaces.
// n must be ≥ 1; sequences shorter than n yield nil.
func NGrams(words []string, n int) []string {
	if n < 1 || len(words) < n {
		return nil
	}
	out := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+n], " "))
	}
	return out
}

// Bigrams returns the 2-grams of a word sequence.
func Bigrams(words []string) []string { return NGrams(words, 2) }

// CountTerms tallies term frequencies over a term list.
func CountTerms(terms []string) map[string]int {
	counts := make(map[string]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return counts
}
