package nlp

// SentimentLabel is the discrete classification of a scored text.
type SentimentLabel int

// Sentiment labels.
const (
	SentimentNegative SentimentLabel = iota + 1
	SentimentNeutral
	SentimentPositive
)

// String returns the label name.
func (l SentimentLabel) String() string {
	switch l {
	case SentimentNegative:
		return "negative"
	case SentimentNeutral:
		return "neutral"
	case SentimentPositive:
		return "positive"
	}
	return "unknown"
}

// negators flip the valence of the next sentiment-bearing word within the
// negation window.
var negators = map[string]bool{
	"not": true, "no": true, "never": true, "without": true, "dont": true,
	"don't": true, "doesnt": true, "doesn't": true, "didnt": true,
	"didn't": true, "wont": true, "won't": true, "cant": true,
	"can't": true, "cannot": true, "isnt": true, "isn't": true,
	"wasnt": true, "wasn't": true, "aint": true, "ain't": true,
}

// intensifiers scale the valence of the next sentiment-bearing word.
var intensifiers = map[string]float64{
	"very": 1.5, "really": 1.4, "extremely": 1.8, "super": 1.5,
	"totally": 1.4, "absolutely": 1.7, "so": 1.3, "insanely": 1.7,
	"slightly": 0.6, "somewhat": 0.7, "barely": 0.5, "kinda": 0.7,
	"pretty": 1.2, "quite": 1.2, "highly": 1.5, "massively": 1.7,
}

// emoticonValence scores the recognized emoticons.
var emoticonValence = map[string]float64{
	":)": 0.6, ":-)": 0.6, ":D": 0.8, ":-D": 0.8, ";)": 0.4, ";-)": 0.4,
	"<3": 0.7, ":(": -0.6, ":-(": -0.6, ":/": -0.3, ":-/": -0.3,
	":'(": -0.8, ":P": 0.3, ":-P": 0.3, "xD": 0.7, "XD": 0.7,
}

// negationWindow is how many following tokens a negator affects.
const negationWindow = 3

// Sentiment is the result of scoring a text.
type Sentiment struct {
	// Score is the aggregate valence, normalized to [-1, +1].
	Score float64
	// Label is the discrete classification of Score.
	Label SentimentLabel
	// Hits is the number of sentiment-bearing tokens encountered.
	Hits int
}

// Analyzer scores text against a lexicon with negation and intensifier
// rules. Hashtag tokens participate with an extra weight because tags
// like #dpfdelete are the strongest topical signal in scene posts.
type Analyzer struct {
	lexicon *Lexicon
	// HashtagWeight multiplies the valence of hashtag matches (default 1.5).
	HashtagWeight float64
	// NeutralBand is the half-width of the neutral zone around zero
	// (default 0.1): scores within it classify as neutral.
	NeutralBand float64
}

// NewAnalyzer builds an Analyzer around the given lexicon (nil means the
// default lexicon).
func NewAnalyzer(l *Lexicon) *Analyzer {
	if l == nil {
		l = DefaultLexicon()
	}
	return &Analyzer{lexicon: l, HashtagWeight: 1.5, NeutralBand: 0.1}
}

// Score tokenizes and scores a text.
func (a *Analyzer) Score(text string) Sentiment {
	return a.ScoreTokens(Tokenize(text))
}

// ScoreTokens scores an already-tokenized text.
func (a *Analyzer) ScoreTokens(tokens []Token) Sentiment {
	var total float64
	hits := 0
	pendingNegation := 0 // tokens remaining in the active negation window
	pendingBoost := 1.0  // intensity multiplier for the next hit
	boostArmed := false  // whether an intensifier precedes
	for _, tok := range tokens {
		switch tok.Kind {
		case TokenEmoticon:
			if v, ok := emoticonValence[tok.Text]; ok {
				total += v
				hits++
			}
			continue
		case TokenWord, TokenHashtag:
			// handled below
		default:
			continue
		}
		w := Normalize(tok.Text)
		if tok.Kind == TokenWord {
			if negators[w] {
				pendingNegation = negationWindow
				continue
			}
			if m, ok := intensifiers[w]; ok {
				pendingBoost, boostArmed = m, true
				continue
			}
		}
		v, ok := a.lexicon.Valence(w)
		if !ok {
			// Try the stemmed form so inflections still match.
			v, ok = a.lexicon.Valence(Stem(w))
		}
		if ok {
			if tok.Kind == TokenHashtag {
				v *= a.HashtagWeight
			}
			if boostArmed {
				v *= pendingBoost
				pendingBoost, boostArmed = 1.0, false
			}
			if pendingNegation > 0 {
				v = -v
			}
			total += v
			hits++
		}
		if pendingNegation > 0 {
			pendingNegation--
		}
	}
	s := Sentiment{Hits: hits}
	if hits > 0 {
		s.Score = clamp(total/float64(hits), -1, 1)
	}
	switch {
	case s.Score > a.NeutralBand:
		s.Label = SentimentPositive
	case s.Score < -a.NeutralBand:
		s.Label = SentimentNegative
	default:
		s.Label = SentimentNeutral
	}
	return s
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
