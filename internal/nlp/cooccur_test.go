package nlp

import (
	"testing"
)

func TestCooccurrenceAssociates(t *testing.T) {
	g := NewCooccurrenceGraph()
	// #dpfdelete frequently co-occurs with #dpfoff (unknown to seeds) and
	// occasionally with noise tags.
	for i := 0; i < 8; i++ {
		g.Observe([]string{"dpfdelete", "dpfoff", "excavator"})
	}
	g.Observe([]string{"dpfdelete", "weekendvibes"})
	g.Observe([]string{"egrremoval", "egroff"})
	g.Observe([]string{"unrelated", "noise"})

	if g.Docs() != 11 {
		t.Fatalf("Docs() = %d, want 11", g.Docs())
	}
	if got := g.Count("dpfdelete", "dpfoff"); got != 8 {
		t.Fatalf("Count(dpfdelete, dpfoff) = %d, want 8", got)
	}

	assocs := g.Associates([]string{"dpfdelete", "egrremoval"}, 2)
	if len(assocs) == 0 {
		t.Fatal("no associates found")
	}
	// Top associate must be dpfoff (8/9 from dpfdelete).
	if assocs[0].Tag != "dpfoff" {
		t.Errorf("top associate = %+v, want dpfoff", assocs[0])
	}
	// Noise below minSupport must be filtered.
	for _, a := range assocs {
		if a.Tag == "weekendvibes" {
			t.Errorf("low-support tag leaked into associates: %+v", a)
		}
		if a.Tag == "dpfdelete" || a.Tag == "egrremoval" {
			t.Errorf("seed tag returned as associate: %+v", a)
		}
	}
}

func TestCooccurrenceNormalizesAndDedupes(t *testing.T) {
	g := NewCooccurrenceGraph()
	g.Observe([]string{"DPFdelete", "dpfdelete", "DPFOFF"})
	if g.Docs() != 1 {
		t.Fatalf("Docs() = %d, want 1", g.Docs())
	}
	if got := g.Count("dpfdelete", "dpfoff"); got != 1 {
		t.Errorf("Count = %d, want 1 (dedup within doc)", got)
	}
}

func TestCooccurrenceEmptyObserve(t *testing.T) {
	g := NewCooccurrenceGraph()
	g.Observe(nil)
	g.Observe([]string{"", "  "})
	if g.Docs() != 0 {
		t.Errorf("Docs() = %d, want 0", g.Docs())
	}
	if got := g.Associates([]string{"anything"}, 1); len(got) != 0 {
		t.Errorf("Associates on empty graph = %v, want none", got)
	}
}

func TestExtractPrices(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []PriceMention
	}{
		{"euro symbol prefix", "selling kit €360 shipped", []PriceMention{{360, "EUR"}}},
		{"euro symbol suffix", "kit 360€ obo", []PriceMention{{360, "EUR"}}},
		{"currency word", "price is 360 EUR firm", []PriceMention{{360, "EUR"}}},
		{"decimal", "only 349.99 euros today", []PriceMention{{349.99, "EUR"}}},
		{"usd", "$450 plus shipping", []PriceMention{{450, "USD"}}},
		{"gbp word", "paid 300 pounds for it", []PriceMention{{300, "GBP"}}},
		{"thousands us", "pro install $1,299.50 all-in", []PriceMention{{1299.50, "USD"}}},
		{"thousands eu", "listino 1.299,50€", []PriceMention{{1299.50, "EUR"}}},
		{"bare number ignored", "made 360 hp on the dyno", nil},
		{"no numbers", "best delete kit ever", nil},
		{"suffixed eur", "deal: 360eur shipped", []PriceMention{{360, "EUR"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ExtractPrices(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("ExtractPrices(%q) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if got[i].Currency != tt.want[i].Currency ||
					absF(got[i].Amount-tt.want[i].Amount) > 1e-9 {
					t.Errorf("ExtractPrices(%q)[%d] = %+v, want %+v", tt.in, i, got[i], tt.want[i])
				}
			}
		})
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
