package nlp

import (
	"strings"
	"unicode"
)

// Normalize canonicalizes a word for lexicon lookup and matching:
// lower-casing, character-elongation collapse ("soooo" → "soo"), and
// common leet-speak substitutions used in tuning-scene posts
// ("d3l3te" → "delete"). It does not stem; see Stem.
func Normalize(word string) string {
	word = strings.ToLower(strings.TrimSpace(word))
	word = collapseElongation(word, 2)
	word = deleet(word)
	return word
}

// collapseElongation limits any run of the same rune to max repetitions.
func collapseElongation(s string, max int) string {
	if max < 1 {
		max = 1
	}
	var b strings.Builder
	b.Grow(len(s))
	var prev rune
	run := 0
	for _, r := range s {
		if r == prev {
			run++
		} else {
			prev, run = r, 1
		}
		if run <= max {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// leetMap holds single-character leet substitutions. Applied only when
// the word mixes letters and digits, so pure numbers stay numbers.
var leetMap = map[rune]rune{
	'0': 'o',
	'1': 'i',
	'3': 'e',
	'4': 'a',
	'5': 's',
	'7': 't',
	'@': 'a',
	'$': 's',
}

// deleet resolves leet-speak in mixed alphanumeric words.
func deleet(s string) string {
	hasLetter, hasSub := false, false
	for _, r := range s {
		if unicode.IsLetter(r) {
			hasLetter = true
		}
		if _, ok := leetMap[r]; ok {
			hasSub = true
		}
	}
	if !hasLetter || !hasSub {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if sub, ok := leetMap[r]; ok {
			b.WriteRune(sub)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// NormalizeAll maps Normalize over a token list in place of their Text,
// returning a new slice of normalized word strings (non-words excluded).
func NormalizeAll(tokens []Token) []string {
	var out []string
	for _, t := range tokens {
		if t.Kind == TokenWord || t.Kind == TokenHashtag {
			out = append(out, Normalize(t.Text))
		}
	}
	return out
}
