package nlp

// Lexicon maps normalized terms to sentiment valence in [-1, +1]. The
// default lexicon combines a compact general-purpose English core with
// domain vocabulary from the vehicle-tuning scene: in PSP's setting,
// enthusiasm about a tampering product ("best dpf delete ever, huge
// power gain") is the positive signal that feeds attack attraction.
type Lexicon struct {
	valence map[string]float64
}

// NewLexicon builds a lexicon from a term → valence map. Terms are
// normalized (Normalize) before storage so lookups are robust.
func NewLexicon(valence map[string]float64) *Lexicon {
	l := &Lexicon{valence: make(map[string]float64, len(valence))}
	for term, v := range valence {
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		l.valence[Normalize(term)] = v
	}
	return l
}

// Valence returns the valence of a normalized term and whether the term
// is known.
func (l *Lexicon) Valence(term string) (float64, bool) {
	v, ok := l.valence[term]
	return v, ok
}

// Len returns the number of lexicon entries.
func (l *Lexicon) Len() int { return len(l.valence) }

// Merge adds all entries of o, overriding existing terms.
func (l *Lexicon) Merge(o *Lexicon) {
	for term, v := range o.valence {
		l.valence[term] = v
	}
}

// DefaultLexicon returns the built-in sentiment lexicon.
func DefaultLexicon() *Lexicon {
	return NewLexicon(defaultValence)
}

// defaultValence is the built-in term → valence table.
var defaultValence = map[string]float64{
	// General positive.
	"good": 0.5, "great": 0.7, "awesome": 0.9, "amazing": 0.9,
	"excellent": 0.9, "perfect": 0.9, "best": 0.8, "love": 0.8,
	"loved": 0.8, "like": 0.4, "liked": 0.4, "nice": 0.5, "happy": 0.6,
	"glad": 0.5, "win": 0.6, "winner": 0.6, "easy": 0.5, "cheap": 0.4,
	"fast": 0.5, "quick": 0.4, "smooth": 0.5, "strong": 0.4,
	"recommend": 0.7, "recommended": 0.7, "works": 0.5, "worked": 0.5,
	"working": 0.4, "success": 0.7, "successful": 0.7, "solid": 0.5,
	"reliable": 0.6, "worth": 0.5, "bargain": 0.6, "legit": 0.5,
	"satisfied": 0.6, "impressive": 0.7, "insane": 0.6, "wow": 0.6,
	"beast": 0.6, "clean": 0.4, "smart": 0.4, "simple": 0.4,
	"effective": 0.6, "powerful": 0.6, "improved": 0.5, "improvement": 0.5,

	// General negative.
	"bad": -0.5, "terrible": -0.8, "awful": -0.8, "horrible": -0.8,
	"worst": -0.9, "hate": -0.7, "hated": -0.7, "poor": -0.5,
	"broken": -0.6, "broke": -0.6, "fail": -0.7, "failed": -0.7,
	"failure": -0.7, "useless": -0.7, "waste": -0.6, "scam": -0.9,
	"fraud": -0.9, "fake": -0.7, "slow": -0.4, "expensive": -0.4,
	"problem": -0.4, "problems": -0.4, "issue": -0.3, "issues": -0.3,
	"error": -0.4, "errors": -0.4, "bricked": -0.9, "brick": -0.7,
	"ruined": -0.8, "damage": -0.6, "damaged": -0.6, "warning": -0.3,
	"danger": -0.5, "dangerous": -0.5, "illegal": -0.3, "fine": -0.2,
	"fined": -0.6, "caught": -0.5, "risky": -0.4, "regret": -0.7,
	"avoid": -0.5, "disappointed": -0.7, "disappointing": -0.7,
	"junk": -0.7, "garbage": -0.7, "refund": -0.5, "returned": -0.4,
	"stock": -0.1, "limp": -0.5, "stalling": -0.6, "misfire": -0.5,

	// Domain positive: performance and cost gains attributed to tampering.
	"gain": 0.6, "gains": 0.6, "torque": 0.3, "boost": 0.5,
	"boosted": 0.5, "power": 0.4, "hp": 0.3, "horsepower": 0.4,
	"savings": 0.6, "saved": 0.5, "save": 0.4, "economy": 0.3,
	"mpg": 0.3, "performance": 0.4, "unlocked": 0.6, "unlock": 0.5,
	"derestricted": 0.6, "freed": 0.4, "responsive": 0.5,
	"plug-and-play": 0.6, "plug": 0.1, "warranty": 0.2,
	"dyno": 0.3, "proven": 0.6, "guaranteed": 0.5,

	// Domain negative: detection, enforcement, failures after tampering.
	"emission": -0.1, "emissions": -0.1, "inspection": -0.3,
	"recall": -0.4, "void": -0.4, "detected": -0.4, "detection": -0.3,
	"rejected": -0.6, "clogged": -0.5, "regen": -0.2, "derate": -0.6,
	"derated": -0.6, "towed": -0.6, "impounded": -0.8,
}
