package nlp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Cluster is a one-dimensional k-means cluster over scalar observations
// (prices, in PSP's use). Values are float64 for generality; the finance
// layer converts to and from integer cents at its boundary.
type Cluster struct {
	// Center is the cluster mean.
	Center float64
	// Values are the member observations, ascending.
	Values []float64
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Values) }

// ErrNoObservations is returned when clustering is asked for more
// clusters than observations or for an empty input.
var ErrNoObservations = errors.New("nlp: not enough observations to cluster")

// KMeans1D clusters scalar observations into k clusters with
// deterministic quantile seeding followed by Lloyd iterations. The result
// is sorted by ascending center. maxIter bounds the iteration count
// (values ≤ 0 mean 100).
func KMeans1D(values []float64, k, maxIter int) ([]Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("nlp: invalid cluster count %d", k)
	}
	if len(values) < k {
		return nil, fmt.Errorf("%w: %d observations for k=%d", ErrNoObservations, len(values), k)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	// Quantile seeding: deterministic and well-spread for 1-D data.
	centers := make([]float64, k)
	for i := range centers {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(len(sorted)))]
	}

	assign := make([]int, len(sorted))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, v := range sorted {
			best, bestDist := 0, math.Inf(1)
			for j, c := range centers {
				if d := math.Abs(v - c); d < bestDist {
					best, bestDist = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Update step.
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range sorted {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j] = sums[j] / float64(counts[j])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	clusters := make([]Cluster, k)
	for j := range clusters {
		clusters[j].Center = centers[j]
	}
	for i, v := range sorted {
		clusters[assign[i]].Values = append(clusters[assign[i]].Values, v)
	}
	// Drop empty clusters (possible when duplicates collapse), then sort.
	out := clusters[:0]
	for _, c := range clusters {
		if c.Size() > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Center < out[j].Center })
	return out, nil
}

// DominantCluster returns the cluster with the most members (ties break
// toward the lower center, reflecting the market's price anchor).
func DominantCluster(clusters []Cluster) (Cluster, error) {
	if len(clusters) == 0 {
		return Cluster{}, ErrNoObservations
	}
	best := clusters[0]
	for _, c := range clusters[1:] {
		if c.Size() > best.Size() {
			best = c
		}
	}
	return best, nil
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median returns the median of values (0 for empty input).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
