package nlp

import "testing"

var benchPost = "Best #dpfdelete kit ever, huge gains on my excavator — flashed " +
	"through the obd port in minutes, 360€ from @tuningshop, highly recommend :D"

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Tokenize(benchPost)) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkSentimentScore(b *testing.B) {
	a := NewAnalyzer(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Score(benchPost).Hits == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"deleted", "removals", "tuning", "devices", "emulators", "installed"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			if Stem(w) == "" {
				b.Fatal("empty stem")
			}
		}
	}
}

func BenchmarkKMeans1D(b *testing.B) {
	values := make([]float64, 0, 300)
	for i := 0; i < 100; i++ {
		values = append(values, 150+float64(i%20), 360+float64(i%30), 800+float64(i%10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans1D(values, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractPrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(ExtractPrices(benchPost)) != 1 {
			b.Fatal("price extraction failed")
		}
	}
}
