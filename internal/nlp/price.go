package nlp

import (
	"strconv"
	"strings"
	"unicode"
)

// PriceMention is a monetary amount extracted from free text.
type PriceMention struct {
	// Amount is the numeric value in currency units (not cents).
	Amount float64
	// Currency is the ISO-ish code inferred from the symbol or suffix
	// ("EUR", "USD", "GBP"); empty when no marker was present.
	Currency string
}

// currency markers recognized before or after an amount.
var currencyMarkers = map[string]string{
	"€": "EUR", "eur": "EUR", "euro": "EUR", "euros": "EUR",
	"$": "USD", "usd": "USD", "dollar": "USD", "dollars": "USD",
	"£": "GBP", "gbp": "GBP", "pound": "GBP", "pounds": "GBP",
}

// ExtractPrices scans text for monetary mentions: "€360", "360 EUR",
// "360eur", "price: 349.99 euros". Amounts without any currency marker
// are NOT returned — bare numbers in scene posts are usually horsepower
// or model designations, not prices.
func ExtractPrices(text string) []PriceMention {
	var out []PriceMention
	fields := strings.Fields(strings.ToLower(text))
	for i, f := range fields {
		f = strings.Trim(f, ".,;:!?()[]")
		if f == "" {
			continue
		}
		// Form 1: symbol-prefixed or suffixed in the same field ("€360",
		// "360€", "360eur").
		if m, ok := parsePricedField(f); ok {
			out = append(out, m)
			continue
		}
		// Form 2: bare number followed by a currency word ("360 eur").
		if amount, ok := parseAmount(f); ok && i+1 < len(fields) {
			next := strings.Trim(fields[i+1], ".,;:!?()[]")
			if cur, ok := currencyMarkers[next]; ok {
				out = append(out, PriceMention{Amount: amount, Currency: cur})
			}
		}
	}
	return out
}

// parsePricedField handles single-field forms with an embedded marker.
func parsePricedField(f string) (PriceMention, bool) {
	for marker, code := range currencyMarkers {
		if !strings.Contains(f, marker) {
			continue
		}
		rest := strings.ReplaceAll(f, marker, "")
		if amount, ok := parseAmount(rest); ok {
			return PriceMention{Amount: amount, Currency: code}, true
		}
	}
	return PriceMention{}, false
}

// parseAmount parses a decimal amount tolerant of thousands separators.
func parseAmount(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) && r != '.' && r != ',' {
			return 0, false
		}
	}
	// Disambiguate separators: if both appear, the last one is decimal.
	lastDot, lastComma := strings.LastIndex(s, "."), strings.LastIndex(s, ",")
	switch {
	case lastDot >= 0 && lastComma >= 0:
		if lastComma > lastDot { // 1.299,50 (European)
			s = strings.ReplaceAll(s, ".", "")
			s = strings.Replace(s, ",", ".", 1)
		} else { // 1,299.50 (US)
			s = strings.ReplaceAll(s, ",", "")
		}
	case lastComma >= 0:
		// Comma only: decimal if exactly two digits follow, else thousands.
		if len(s)-lastComma-1 == 2 {
			s = strings.Replace(s, ",", ".", 1)
		} else {
			s = strings.ReplaceAll(s, ",", "")
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}
