package nlp

import (
	"strings"
	"unicode"
)

// TokenKind classifies a token produced by Tokenize.
type TokenKind int

// Token kinds.
const (
	TokenWord TokenKind = iota + 1
	TokenHashtag
	TokenMention
	TokenURL
	TokenNumber
	TokenEmoticon
)

var tokenKindNames = map[TokenKind]string{
	TokenWord:     "word",
	TokenHashtag:  "hashtag",
	TokenMention:  "mention",
	TokenURL:      "url",
	TokenNumber:   "number",
	TokenEmoticon: "emoticon",
}

// String returns the kind name.
func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Token is one lexical unit of a post.
type Token struct {
	// Kind classifies the token.
	Kind TokenKind
	// Text is the normalized token text: lower-cased, with the leading
	// '#'/'@' sigil stripped for hashtags and mentions.
	Text string
	// Raw is the original surface form.
	Raw string
}

// emoticons recognized as standalone sentiment-bearing tokens.
var emoticons = map[string]bool{
	":)": true, ":-)": true, ":(": true, ":-(": true, ":D": true, ":-D": true,
	";)": true, ";-)": true, ":/": true, ":-/": true, ":P": true, ":-P": true,
	"<3": true, ":'(": true, "xD": true, "XD": true,
}

// Tokenize splits social-media text into tokens. It recognizes hashtags
// (#dpfdelete), mentions (@vendor), URLs (http/https), numbers (including
// decimal separators and currency-adjacent forms) and emoticons; every
// other maximal letter run becomes a word. Apostrophes and intra-word
// hyphens stay inside words ("don't", "anti-tamper").
func Tokenize(text string) []Token {
	var tokens []Token
	fields := strings.Fields(text)
	for _, f := range fields {
		if emoticons[f] {
			tokens = append(tokens, Token{Kind: TokenEmoticon, Text: f, Raw: f})
			continue
		}
		if strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://") {
			tokens = append(tokens, Token{Kind: TokenURL, Text: strings.ToLower(trimTrailingPunct(f)), Raw: f})
			continue
		}
		tokens = append(tokens, tokenizeField(f)...)
	}
	return tokens
}

// tokenizeField splits a whitespace-delimited field into tokens, handling
// sigils and punctuation boundaries.
func tokenizeField(f string) []Token {
	var tokens []Token
	runes := []rune(f)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == '#' || r == '@':
			j := i + 1
			for j < len(runes) && isTagRune(runes[j]) {
				j++
			}
			if j > i+1 {
				raw := string(runes[i:j])
				kind := TokenHashtag
				if r == '@' {
					kind = TokenMention
				}
				tokens = append(tokens, Token{
					Kind: kind,
					Text: strings.ToLower(string(runes[i+1 : j])),
					Raw:  raw,
				})
			}
			i = j // j ≥ i+1, so a lone sigil is skipped
		case unicode.IsDigit(r):
			j := i
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.' || runes[j] == ',') {
				j++
			}
			raw := string(runes[i:j])
			tokens = append(tokens, Token{Kind: TokenNumber, Text: strings.Trim(raw, ".,"), Raw: raw})
			i = j
		case unicode.IsLetter(r):
			j := i
			for j < len(runes) && isWordRune(runes, j) {
				j++
			}
			raw := string(runes[i:j])
			tokens = append(tokens, Token{Kind: TokenWord, Text: strings.ToLower(raw), Raw: raw})
			i = j
		default:
			i++
		}
	}
	return tokens
}

// isTagRune reports whether r may appear inside a hashtag or mention body.
func isTagRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isWordRune reports whether the rune at position j continues a word:
// letters always do; apostrophes and hyphens do when flanked by letters.
func isWordRune(runes []rune, j int) bool {
	r := runes[j]
	if unicode.IsLetter(r) {
		return true
	}
	if r == '\'' || r == '-' {
		return j+1 < len(runes) && unicode.IsLetter(runes[j+1]) && j > 0 && unicode.IsLetter(runes[j-1])
	}
	return false
}

// trimTrailingPunct removes sentence punctuation glued to a URL.
func trimTrailingPunct(s string) string {
	return strings.TrimRight(s, ".,;:!?)")
}

// Words returns the normalized text of all word tokens.
func Words(tokens []Token) []string {
	var out []string
	for _, t := range tokens {
		if t.Kind == TokenWord {
			out = append(out, t.Text)
		}
	}
	return out
}

// Hashtags returns the normalized text of all hashtag tokens (without the
// '#' sigil), preserving order and duplicates.
func Hashtags(tokens []Token) []string {
	var out []string
	for _, t := range tokens {
		if t.Kind == TokenHashtag {
			out = append(out, t.Text)
		}
	}
	return out
}
