package nlp

import (
	"math"
	"sort"
)

// TFIDF computes term-frequency / inverse-document-frequency scores over
// a corpus of pre-tokenized documents. It backs keyword extraction for
// the PSP auto-learning loop and the clustering of marketplace listings.
type TFIDF struct {
	docCount int
	// df counts the number of documents containing each term.
	df map[string]int
}

// NewTFIDF builds the model from a corpus: each document is a list of
// normalized terms.
func NewTFIDF(docs [][]string) *TFIDF {
	m := &TFIDF{docCount: len(docs), df: make(map[string]int)}
	for _, doc := range docs {
		seen := make(map[string]bool, len(doc))
		for _, t := range doc {
			if !seen[t] {
				seen[t] = true
				m.df[t]++
			}
		}
	}
	return m
}

// DocCount returns the number of documents the model was built from.
func (m *TFIDF) DocCount() int { return m.docCount }

// IDF returns the smoothed inverse document frequency of a term:
// ln((1+N)/(1+df)) + 1.
func (m *TFIDF) IDF(term string) float64 {
	return math.Log(float64(1+m.docCount)/float64(1+m.df[term])) + 1
}

// Score computes the TF-IDF weight of each term of a document. The term
// frequency is log-scaled: tf = 1 + ln(count).
func (m *TFIDF) Score(doc []string) map[string]float64 {
	counts := CountTerms(doc)
	scores := make(map[string]float64, len(counts))
	for t, c := range counts {
		scores[t] = (1 + math.Log(float64(c))) * m.IDF(t)
	}
	return scores
}

// Keyword is a scored term.
type Keyword struct {
	Term  string
	Score float64
}

// TopKeywords returns the k highest-scoring terms of a document, sorted
// by descending score (ties break lexicographically). Stop words and
// terms shorter than 3 runes are skipped.
func (m *TFIDF) TopKeywords(doc []string, k int) []Keyword {
	scores := m.Score(doc)
	out := make([]Keyword, 0, len(scores))
	for t, s := range scores {
		if IsStopword(t) || len([]rune(t)) < 3 {
			continue
		}
		out = append(out, Keyword{Term: t, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
