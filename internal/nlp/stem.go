package nlp

import "strings"

// Stem applies a light English suffix-stripping stemmer (a reduced Porter
// step-1/2 variant) sufficient to conflate the inflections that appear in
// tuning-scene posts: "deleted"/"deletes"/"deleting" → "delet",
// "removal"/"removals" → "remov", "tuners"/"tuner"/"tuning" → "tun".
// Words of four letters or fewer are returned unchanged.
func Stem(word string) string {
	w := word
	if len(w) <= 4 {
		return w
	}
	// Plural / verbal s-forms.
	switch {
	case strings.HasSuffix(w, "sses"):
		w = strings.TrimSuffix(w, "es")
	case strings.HasSuffix(w, "ies"):
		w = strings.TrimSuffix(w, "ies") + "i"
	case strings.HasSuffix(w, "ss"):
		// keep
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "us"):
		w = strings.TrimSuffix(w, "s")
	}
	// Participles and gerunds.
	switch {
	case strings.HasSuffix(w, "ied"):
		w = strings.TrimSuffix(w, "ied") + "i"
	case strings.HasSuffix(w, "eed"):
		// keep ("agreed" → "agreed"): avoids over-stripping
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		w = strings.TrimSuffix(w, "ed")
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		w = strings.TrimSuffix(w, "ing")
	}
	// Derivational endings common in the domain vocabulary.
	for _, suf := range []string{"ization", "isation", "ation", "ment", "ness", "ful", "al", "er", "or"} {
		if strings.HasSuffix(w, suf) && len(w)-len(suf) >= 3 {
			w = strings.TrimSuffix(w, suf)
			break
		}
	}
	// Undouble trailing consonants introduced by stripping ("stopp" → "stop").
	if len(w) >= 4 && w[len(w)-1] == w[len(w)-2] && !isVowel(w[len(w)-1]) && w[len(w)-1] != 'l' && w[len(w)-1] != 's' {
		w = w[:len(w)-1]
	}
	// Drop a final silent e so "deletes"/"deleted" and "tunes"/"tuned"
	// conflate.
	if strings.HasSuffix(w, "e") && len(w) >= 4 {
		w = strings.TrimSuffix(w, "e")
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// StemAll maps Stem over a word list.
func StemAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Stem(w)
	}
	return out
}
