package fault

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/obs"
)

// schedule runs n ops against a fresh injector built from cfg and
// returns which ops failed.
func schedule(cfg Config, n int) []bool {
	inj := New(cfg)
	out := make([]bool, n)
	for i := range out {
		out[i] = inj.Do(nil) != nil
	}
	return out
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3}
	a := schedule(cfg, 500)
	b := schedule(cfg, 500)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between two injectors with the same seed", i+1)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("ErrorRate 0.3 produced %d/%d failures; want a mix", fails, len(a))
	}
	c := schedule(Config{Seed: 43, ErrorRate: 0.3}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectorFailOps(t *testing.T) {
	got := schedule(Config{FailOps: []int{2, 5}}, 7)
	want := []bool{false, true, false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: fail=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestInjectorFailFrom(t *testing.T) {
	got := schedule(Config{FailFrom: 4}, 8)
	for i, fail := range got {
		want := i+1 >= 4
		if fail != want {
			t.Fatalf("op %d: fail=%v, want %v (FailFrom=4)", i+1, fail, want)
		}
	}
}

func TestInjectorCustomError(t *testing.T) {
	if err := New(Config{FailFrom: 1}).Do(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error = %v, want ErrInjected", err)
	}
	custom := errors.New("device on fire")
	if err := New(Config{FailFrom: 1, Err: custom}).Do(nil); !errors.Is(err, custom) {
		t.Fatalf("custom error = %v, want %v", err, custom)
	}
}

func TestInjectorLatencyCancellable(t *testing.T) {
	inj := New(Config{Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Do(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency injection ignored context cancellation")
	}

	// A short latency completes and still applies the fault decision.
	quick := New(Config{Latency: time.Millisecond, FailFrom: 1})
	if err := quick.Do(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("Do after latency = %v, want ErrInjected", err)
	}
}

func TestInjectorDisableEnable(t *testing.T) {
	inj := New(Config{FailFrom: 1})
	if err := inj.Do(nil); err == nil {
		t.Fatal("enabled injector did not fail")
	}
	inj.Disable()
	for i := 0; i < 3; i++ {
		if err := inj.Do(nil); err != nil {
			t.Fatalf("disabled injector failed: %v", err)
		}
	}
	if got := inj.Ops(); got != 4 {
		t.Fatalf("Ops = %d, want 4 (disabled ops still count)", got)
	}
	inj.Enable()
	if err := inj.Do(nil); err == nil {
		t.Fatal("re-enabled injector did not fail")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	inj.Disable()
	inj.Enable()
	if inj.Bind(nil) != nil {
		t.Fatal("nil Bind should return nil")
	}
	if got := inj.Ops(); got != 0 {
		t.Fatalf("nil Ops = %d", got)
	}
	if err := inj.Do(context.Background()); err != nil {
		t.Fatalf("nil Do = %v", err)
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	inj := New(Config{FailOps: []int{2}, Latency: time.Microsecond}).Bind(NewMetrics(reg, "test.point"))
	for i := 0; i < 3; i++ {
		inj.Do(nil)
	}
	m := NewMetrics(reg, "test.point") // same labeled series
	if got := m.Ops.Value(); got != 3 {
		t.Fatalf("psp_fault_ops_total = %d, want 3", got)
	}
	if got := m.Errors.Value(); got != 1 {
		t.Fatalf("psp_fault_errors_total = %d, want 1", got)
	}
	if got := m.Delays.Value(); got != 3 {
		t.Fatalf("psp_fault_delays_total = %d, want 3", got)
	}
}

func TestRoundTripperInjectsTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	client := &http.Client{Transport: &RoundTripper{Inj: New(Config{FailOps: []int{1}})}}
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("first request error = %v, want ErrInjected", err)
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := &FS{Write: New(Config{FailOps: []int{2}}), Torn: true}
	f, err := fs.OpenAppend(filepath.Join(dir, "seg"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := f.Write([]byte("efgh")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil { // Sync injector unset: passes through
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "seg"))
	if err != nil {
		t.Fatal(err)
	}
	// The failed write tore: its front half landed after the good write.
	if got, want := string(data), "abcdef"; got != want {
		t.Fatalf("on-disk bytes = %q, want %q (torn half-write)", got, want)
	}
}

func TestFSImplementsDurableFS(t *testing.T) {
	var _ durable.FS = &FS{}
	// Open faults apply to both OpenAppend and Create.
	fs := &FS{Open: New(Config{FailFrom: 1})}
	if _, err := fs.OpenAppend(filepath.Join(t.TempDir(), "x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("OpenAppend = %v, want ErrInjected", err)
	}
	if _, err := fs.Create(filepath.Join(t.TempDir(), "y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create = %v, want ErrInjected", err)
	}
}
