// Package fault provides deterministic, seedable fault injection for
// chaos testing the pipeline's resilience seams.
//
// The unit is the Injector: a decision point that, consulted once per
// operation via Do, either passes (nil) or injects a configured fault —
// an error, added latency, or both. Faults fire by seeded random rate
// (Config.ErrorRate), by exact 1-based operation index
// (Config.FailOps), or persistently from an index on
// (Config.FailFrom); the same seed always yields the same fault
// schedule, so chaos tests are reproducible and -race clean runs are
// repeatable. An Injector can be flapped at runtime with
// Disable/Enable to model a backend that goes away and comes back.
//
// Three adapters plug injectors into the seams the rest of the system
// already exposes:
//
//   - FS wraps a durable.FS so WAL segment writes and fsyncs fail on
//     command, optionally tearing the tail (Torn writes half the buffer
//     before failing) — exactly the damage the log's recovery scan is
//     contracted to survive.
//   - RoundTripper wraps an http.RoundTripper so the social Client sees
//     transport errors and latency without a misbehaving server.
//   - social.WithFault (in internal/social, which imports this package)
//     wraps a Searcher so Multi federation and the monitor loop see a
//     flaky backend.
//
// Bind attaches psp_fault_* counters (ops, injected errors, injected
// delays, labeled by injection point) to an obs.Registry so injected
// faults are visible in /v1/metrics next to the symptoms they cause.
//
// A nil *Injector is a no-op: every seam can keep its fault hook wired
// unconditionally and pay only a nil check in production.
package fault
