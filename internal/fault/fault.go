package fault

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

// ErrInjected is the default error an Injector returns when a fault
// fires and Config.Err is unset. Callers distinguish injected faults
// from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Config describes one injection point's fault schedule. The zero
// value injects nothing.
type Config struct {
	// Seed seeds the deterministic random source behind ErrorRate.
	Seed int64
	// ErrorRate is the probability (0..1) that any given operation
	// fails.
	ErrorRate float64
	// FailOps lists exact 1-based operation indices that fail: the
	// injector counts calls to Do, and fails the Nth call for each N
	// listed. Deterministic regardless of Seed.
	FailOps []int
	// FailFrom, when > 0, fails every operation with index >= FailFrom
	// — a persistent fault (e.g. a disk that dies and stays dead).
	FailFrom int
	// Latency is added to every operation before the error decision,
	// cancellable through the operation's context.
	Latency time.Duration
	// Err is the error injected when a fault fires (default
	// ErrInjected).
	Err error
}

// Metrics is the psp_fault_* recording surface of one injection point.
// A nil *Metrics (or nil fields) records nothing.
type Metrics struct {
	// Ops counts operations that consulted the injector.
	Ops *obs.Counter
	// Errors counts operations that received an injected error.
	Errors *obs.Counter
	// Delays counts operations that received injected latency.
	Delays *obs.Counter
}

// incOps/incErrors/incDelays record nil-safely: a nil *Metrics (and
// the nil counters inside one built without a registry) is a no-op.
func (m *Metrics) incOps() {
	if m != nil {
		m.Ops.Inc()
	}
}

func (m *Metrics) incErrors() {
	if m != nil {
		m.Errors.Inc()
	}
}

func (m *Metrics) incDelays() {
	if m != nil {
		m.Delays.Inc()
	}
}

// NewMetrics registers the psp_fault_* family labeled with the
// injection point name (e.g. "wal.sync", "http.transport") on reg.
// Nil-safe: a nil registry yields no-op metrics.
func NewMetrics(reg *obs.Registry, point string) *Metrics {
	l := obs.Label{Key: "point", Value: point}
	return &Metrics{
		Ops:    reg.Counter("psp_fault_ops_total", "Operations that consulted a fault injector.", l),
		Errors: reg.Counter("psp_fault_errors_total", "Operations that received an injected error.", l),
		Delays: reg.Counter("psp_fault_delays_total", "Operations that received injected latency.", l),
	}
}

// Injector is one deterministic fault-injection point. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops), so
// production code wires injectors unconditionally and passes nil.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	op       int
	disabled bool
	failOps  map[int]bool
	met      *Metrics
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	inj := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(cfg.FailOps) > 0 {
		inj.failOps = make(map[int]bool, len(cfg.FailOps))
		for _, n := range cfg.FailOps {
			inj.failOps[n] = true
		}
	}
	return inj
}

// Bind attaches metrics (see NewMetrics) and returns the injector for
// chaining.
func (inj *Injector) Bind(m *Metrics) *Injector {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	inj.met = m
	inj.mu.Unlock()
	return inj
}

// Disable suspends fault injection: operations still count (the op
// index keeps advancing, so FailOps schedules stay aligned with call
// counts) but no latency or errors are injected.
func (inj *Injector) Disable() {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.disabled = true
	inj.mu.Unlock()
}

// Enable resumes fault injection after Disable.
func (inj *Injector) Enable() {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.disabled = false
	inj.mu.Unlock()
}

// Ops returns how many operations have consulted the injector.
func (inj *Injector) Ops() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.op
}

// Do consults the injector for one operation: it applies configured
// latency (cancellable via ctx; a nil ctx never cancels), then returns
// the injected error if this operation is scheduled to fail, else nil.
func (inj *Injector) Do(ctx context.Context) error {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	inj.op++
	met := inj.met
	met.incOps()
	if inj.disabled {
		inj.mu.Unlock()
		return nil
	}
	delay := inj.cfg.Latency
	fail := inj.failOps[inj.op] ||
		(inj.cfg.FailFrom > 0 && inj.op >= inj.cfg.FailFrom) ||
		(inj.cfg.ErrorRate > 0 && inj.rng.Float64() < inj.cfg.ErrorRate)
	errv := inj.cfg.Err
	inj.mu.Unlock()

	if delay > 0 {
		met.incDelays()
		t := time.NewTimer(delay)
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-t.C:
		case <-done:
			t.Stop()
			return ctx.Err()
		}
	}
	if !fail {
		return nil
	}
	met.incErrors()
	if errv == nil {
		return ErrInjected
	}
	return errv
}
