package fault

import "net/http"

// RoundTripper is a fault-injecting http.RoundTripper: each request
// consults Inj before reaching Base, so an injected error surfaces to
// the caller exactly like a transport failure (connection refused,
// reset) and injected latency like a slow network. Install it as the
// http.Client Transport behind a social Client to chaos-test its
// retry/backoff policy without a misbehaving server.
type RoundTripper struct {
	// Base is the wrapped transport (nil uses http.DefaultTransport).
	Base http.RoundTripper
	// Inj decides each request's fate; latency cancellation follows the
	// request context.
	Inj *Injector
}

var _ http.RoundTripper = (*RoundTripper)(nil)

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := rt.Inj.Do(req.Context()); err != nil {
		return nil, err
	}
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
