package fault

import (
	"github.com/psp-framework/psp/internal/durable"
)

// FS is a fault-injecting durable.FS: it delegates to Base and
// consults the per-call injectors on the way through. Assign it to
// durable.LogOptions.FS (or social.DurableOptions.FS) to drive disk
// faults through the WAL's real commit path.
type FS struct {
	// Base is the wrapped filesystem (nil uses durable.OSFS).
	Base durable.FS
	// Open faults OpenAppend and Create calls.
	Open *Injector
	// Write faults File.Write calls.
	Write *Injector
	// Sync faults File.Sync calls.
	Sync *Injector
	// Torn makes an injected Write failure first write the front half
	// of the buffer to the underlying file — a genuine torn tail for
	// recovery scans to truncate, not just a clean error.
	Torn bool
}

var _ durable.FS = (*FS)(nil)

func (fs *FS) base() durable.FS {
	if fs.Base == nil {
		return durable.OSFS{}
	}
	return fs.Base
}

// OpenAppend implements durable.FS.
func (fs *FS) OpenAppend(path string) (durable.File, error) {
	if err := fs.Open.Do(nil); err != nil {
		return nil, err
	}
	f, err := fs.base().OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &file{base: f, fs: fs}, nil
}

// Create implements durable.FS.
func (fs *FS) Create(path string) (durable.File, error) {
	if err := fs.Open.Do(nil); err != nil {
		return nil, err
	}
	f, err := fs.base().Create(path)
	if err != nil {
		return nil, err
	}
	return &file{base: f, fs: fs}, nil
}

// file is one fault-wrapped segment file.
type file struct {
	base durable.File
	fs   *FS
}

func (f *file) Write(p []byte) (int, error) {
	if err := f.fs.Write.Do(nil); err != nil {
		if f.fs.Torn && len(p) > 1 {
			// Half the buffer lands before the "device" fails — the torn
			// tail the WAL's recovery contract exists for.
			f.base.Write(p[:len(p)/2])
		}
		return 0, err
	}
	return f.base.Write(p)
}

func (f *file) Sync() error {
	if err := f.fs.Sync.Do(nil); err != nil {
		return err
	}
	return f.base.Sync()
}

func (f *file) Close() error {
	return f.base.Close()
}
