package report

import (
	"fmt"
	"strings"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/tara"
)

// VectorTable renders an attack vector-based feasibility table in the
// layout of the paper's Fig. 5 / Fig. 9.
func VectorTable(t *tara.VectorTable) string {
	tbl := NewTable(t.Name, "Attack vector", "Attack feasibility rating")
	for _, v := range t.RankedVectors() {
		r, err := t.Rating(v)
		if err != nil {
			continue
		}
		tbl.AddRow(v.String(), r.String())
	}
	return tbl.Render()
}

// CALTable renders a CAL determination matrix in the layout of Fig. 6.
func CALTable(t *tara.CALTable) string {
	tbl := NewTable(t.Name, "Impact", "Physical", "Local", "Adjacent", "Network")
	for _, imp := range []tara.ImpactRating{
		tara.ImpactSevere, tara.ImpactMajor, tara.ImpactModerate, tara.ImpactNegligible,
	} {
		row := []string{imp.String()}
		for _, v := range tara.AllVectors() {
			c, err := t.Determine(imp, v)
			if err != nil {
				row = append(row, "?")
				continue
			}
			row = append(row, c.String())
		}
		tbl.AddRow(row...)
	}
	return tbl.Render()
}

// PotentialWeights renders the attack potential weight model of Fig. 3.
func PotentialWeights(w *tara.AttackPotentialWeights) string {
	tbl := NewTable(w.Name, "Parameter", "Level", "Weight")
	add := func(param, level string, weight int) {
		tbl.AddRow(param, level, fmt.Sprintf("%d", weight))
	}
	add("Elapsed Time", "≤ 1 day", w.ElapsedTime[tara.TimeOneDay])
	add("Elapsed Time", "≤ 1 week", w.ElapsedTime[tara.TimeOneWeek])
	add("Elapsed Time", "≤ 1 month", w.ElapsedTime[tara.TimeOneMonth])
	add("Elapsed Time", "≤ 6 months", w.ElapsedTime[tara.TimeSixMonths])
	add("Elapsed Time", "> 6 months", w.ElapsedTime[tara.TimeBeyondSixMonths])
	add("Specialist Expertise", "Layman", w.Expertise[tara.ExpertiseLayman])
	add("Specialist Expertise", "Proficient", w.Expertise[tara.ExpertiseProficient])
	add("Specialist Expertise", "Expert", w.Expertise[tara.ExpertiseExpert])
	add("Specialist Expertise", "Multiple experts", w.Expertise[tara.ExpertiseMultipleExperts])
	add("Knowledge of Item", "Public", w.Knowledge[tara.KnowledgePublic])
	add("Knowledge of Item", "Restricted", w.Knowledge[tara.KnowledgeRestricted])
	add("Knowledge of Item", "Confidential", w.Knowledge[tara.KnowledgeConfidential])
	add("Knowledge of Item", "Strictly confidential", w.Knowledge[tara.KnowledgeStrictlyConfidential])
	add("Window of Opportunity", "Unlimited", w.Window[tara.WindowUnlimited])
	add("Window of Opportunity", "Easy", w.Window[tara.WindowEasy])
	add("Window of Opportunity", "Moderate", w.Window[tara.WindowModerate])
	add("Window of Opportunity", "Difficult", w.Window[tara.WindowDifficult])
	add("Equipment", "Standard", w.Equipment[tara.EquipmentStandard])
	add("Equipment", "Specialized", w.Equipment[tara.EquipmentSpecialized])
	add("Equipment", "Bespoke", w.Equipment[tara.EquipmentBespoke])
	add("Equipment", "Multiple bespoke", w.Equipment[tara.EquipmentMultipleBespoke])
	return tbl.Render()
}

// SAIChart renders a Social Attraction Index as the bar chart of
// Fig. 12.
func SAIChart(idx *sai.Index, title string) (string, error) {
	labels := make([]string, 0, len(idx.Entries))
	values := make([]float64, 0, len(idx.Entries))
	for _, e := range idx.Entries {
		kind := "insider"
		if !e.Insider {
			kind = "outsider"
		}
		labels = append(labels, fmt.Sprintf("%s [%s, %d posts]", e.Topic, kind, e.Posts))
		values = append(values, e.Score)
	}
	return BarChart(title, labels, values, 50)
}

// SAITable renders a Social Attraction Index with probabilities.
func SAITable(idx *sai.Index, title string) string {
	tbl := NewTable(title, "Rank", "Attack", "SAI score", "Probability", "Class", "Posts")
	for i, e := range idx.Entries {
		kind := "insider"
		if !e.Insider {
			kind = "outsider"
		}
		tbl.AddRow(
			fmt.Sprintf("%d", i+1), e.Topic,
			fmt.Sprintf("%.1f", e.Score),
			fmt.Sprintf("%.3f", e.Probability),
			kind,
			fmt.Sprintf("%d", e.Posts),
		)
	}
	return tbl.Render()
}

// TuningComparison renders the Fig. 8 A/B juxtaposition: the outsider
// (standard) table next to the PSP-tuned insider table with its
// corrective factors.
func TuningComparison(outsider *tara.VectorTable, tuning *core.ThreatTuning) string {
	var b strings.Builder
	b.WriteString("A) Outsider threats — standard ISO/SAE 21434 weights:\n")
	b.WriteString(VectorTable(outsider))
	b.WriteString("\nB) Insider threats — PSP-tuned weights")
	fmt.Fprintf(&b, " (threat: %s, %d posts):\n", tuning.Threat.Name, tuning.Posts)
	b.WriteString(VectorTable(tuning.Table))
	b.WriteString("\nSAI corrective factors (share / uniform prior):\n")
	tbl := NewTable("", "Attack vector", "Share", "Factor")
	for _, v := range tara.AllVectors() {
		tbl.AddRow(v.String(),
			fmt.Sprintf("%.3f", tuning.VectorShares[v]),
			fmt.Sprintf("%.2f", tuning.Factors[v]))
	}
	b.WriteString(tbl.Render())
	return b.String()
}

// TrendChart renders a quarterly trend as a bar chart with the fitted
// direction.
func TrendChart(trend *sai.Trend, title string) (string, error) {
	labels := make([]string, len(trend.Points))
	values := make([]float64, len(trend.Points))
	for i, p := range trend.Points {
		labels[i] = fmt.Sprintf("%d-Q%d", p.Quarter.Year(), (int(p.Quarter.Month())-1)/3+1)
		values[i] = p.Attraction
	}
	chart, err := BarChart(title, labels, values, 40)
	if err != nil {
		return "", err
	}
	return chart + fmt.Sprintf("trend: %s (%.1f%% of mean attraction per quarter)\n",
		trend.Direction, trend.Slope*100), nil
}

// BEPDiagram renders a break-even curve as the Fig. 11 crossover
// diagram plus a numeric summary table.
func BEPDiagram(curve *finance.BEPCurve, title string) (string, error) {
	xs := make([]int, len(curve.Points))
	rev := make([]float64, len(curve.Points))
	cost := make([]float64, len(curve.Points))
	for i, p := range curve.Points {
		xs[i] = p.Units
		rev[i] = p.Revenue.Units()
		cost[i] = p.Cost.Units()
	}
	diagram, err := CrossoverDiagram(title, xs,
		LineSeries{Name: "revenue", Values: rev},
		LineSeries{Name: "cost", Values: cost}, 12)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(diagram)
	fmt.Fprintf(&b, "break-even point: %d units\n", curve.BreakEvenUnits)
	return b.String(), nil
}

// FinancialSummary renders the Fig. 10 outputs with the Equation 6/7
// quantities.
func FinancialSummary(res *core.FinancialResult, title string) string {
	tbl := NewTable(title, "Quantity", "Value")
	tbl.AddRow("Units basis (VS or MS)", fmt.Sprintf("%d", res.UnitsBasis))
	tbl.AddRow("PEA", fmt.Sprintf("%.1f%%", res.PEA*100))
	tbl.AddRow("PAE (Eq. 2)", fmt.Sprintf("%d", res.PAE))
	tbl.AddRow("PPIA (price survey)", res.PPIA.String())
	tbl.AddRow("VCU (component survey)", res.VCU.String())
	tbl.AddRow("Competitors n", fmt.Sprintf("%d", res.N))
	tbl.AddRow("MV (Eq. 1/6)", res.MV.String())
	tbl.AddRow("Security budget FC (Eq. 5/7)", res.SecurityBudget.String())
	tbl.AddRow("Adversary FC (Eq. 4)", res.AdversaryFC.String())
	tbl.AddRow("BEP (Eq. 3)", fmt.Sprintf("%d units", res.BEP))
	tbl.AddRow("Financial feasibility rating", res.Rating.String())
	return tbl.Render()
}
