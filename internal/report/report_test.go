package report

import (
	"strings"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/finance"
	"github.com/psp-framework/psp/internal/sai"
	"github.com/psp-framework/psp/internal/tara"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Col A", "Column B")
	tbl.AddRow("x", "yyyy")
	tbl.AddRow("longer cell") // short row padded
	out := tbl.Render()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| Col A") || !strings.Contains(out, "| x") {
		t.Errorf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + top sep + header + sep + 2 rows + bottom sep = 7 lines.
	if len(lines) != 7 {
		t.Errorf("rendered %d lines, want 7:\n%s", len(lines), out)
	}
	// All body lines equal width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows() = %d", tbl.Rows())
	}
}

func TestBarChart(t *testing.T) {
	out, err := BarChart("Chart", []string{"a", "bb"}, []float64{10, 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("bars missing:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
	if _, err := BarChart("x", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := BarChart("x", nil, nil, 20); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := BarChart("x", []string{"a"}, []float64{-1}, 20); err == nil {
		t.Error("negative value accepted")
	}
}

func TestVectorTableRender(t *testing.T) {
	out := VectorTable(tara.StandardVectorTable())
	for _, want := range []string{"Network", "High", "Physical", "Very Low"} {
		if !strings.Contains(out, want) {
			t.Errorf("G.9 rendering misses %q:\n%s", want, out)
		}
	}
	// Ranked order: Network row above Physical row.
	if strings.Index(out, "Network") > strings.Index(out, "Physical") {
		t.Errorf("ranking order wrong:\n%s", out)
	}
}

func TestCALTableRender(t *testing.T) {
	out := CALTable(tara.StandardCALTable())
	for _, want := range []string{"Severe", "CAL4", "CAL2", "Negligible"} {
		if !strings.Contains(out, want) {
			t.Errorf("CAL rendering misses %q:\n%s", want, out)
		}
	}
}

func TestPotentialWeightsRender(t *testing.T) {
	out := PotentialWeights(tara.StandardPotentialWeights())
	for _, want := range []string{"Elapsed Time", "Multiple experts", "19", "11"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 3 rendering misses %q:\n%s", want, out)
		}
	}
}

func TestSAIRenderers(t *testing.T) {
	idx := &sai.Index{Entries: []sai.Entry{
		{Topic: "DPF delete", Score: 100, Probability: 0.7, Insider: true, Posts: 42},
		{Topic: "Immobilizer bypass", Score: 40, Probability: 0.3, Insider: false, Posts: 9},
	}}
	chart, err := SAIChart(idx, "Fig. 12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "DPF delete") || !strings.Contains(chart, "outsider") {
		t.Errorf("SAI chart incomplete:\n%s", chart)
	}
	tbl := SAITable(idx, "SAI")
	if !strings.Contains(tbl, "0.700") || !strings.Contains(tbl, "insider") {
		t.Errorf("SAI table incomplete:\n%s", tbl)
	}
}

func TestBEPDiagramRender(t *testing.T) {
	curve, err := finance.ComputeBEPCurve(
		finance.FromUnits(145286, finance.EUR), 3,
		finance.FromUnits(360, finance.EUR), finance.FromUnits(50, finance.EUR),
		2812, 41)
	if err != nil {
		t.Fatal(err)
	}
	out, err := BEPDiagram(curve, "Fig. 11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "break-even point: 1406 units") {
		t.Errorf("BEP summary missing:\n%s", out)
	}
	if !strings.Contains(out, "R") || !strings.Contains(out, "C") {
		t.Errorf("series marks missing:\n%s", out)
	}
}

func TestCrossoverDiagramValidation(t *testing.T) {
	if _, err := CrossoverDiagram("x", nil, LineSeries{}, LineSeries{}, 10); err == nil {
		t.Error("empty diagram accepted")
	}
	if _, err := CrossoverDiagram("x", []int{1}, LineSeries{Values: []float64{1, 2}},
		LineSeries{Values: []float64{1}}, 10); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestTrendChartRender(t *testing.T) {
	trend := &sai.Trend{
		Points: []sai.TrendPoint{
			{Quarter: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), Attraction: 100, Posts: 10},
			{Quarter: time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC), Attraction: 150, Posts: 15},
		},
		Slope:     0.33,
		Direction: sai.TrendRising,
	}
	out, err := TrendChart(trend, "Trend")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2022-Q1", "2022-Q2", "trend: rising", "33.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend chart misses %q:\n%s", want, out)
		}
	}
}
