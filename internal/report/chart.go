package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// BarChart renders horizontal bars scaled to the maximum value. Labels
// and values must have equal length; width is the bar area in columns.
func BarChart(title string, labels []string, values []float64, width int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if len(labels) == 0 {
		return "", fmt.Errorf("report: empty chart")
	}
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	labelW := 0
	for i, v := range values {
		if v < 0 {
			return "", fmt.Errorf("report: negative bar value %f", v)
		}
		if v > maxVal {
			maxVal = v
		}
		if w := utf8.RuneCountInString(labels[i]); w > labelW {
			labelW = w
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %.1f\n", labelW, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String(), nil
}

// LineSeries is one labelled series of a diagram.
type LineSeries struct {
	Name   string
	Values []float64
}

// CrossoverDiagram renders two series against a shared x axis and marks
// the crossing region — the shape of the paper's Fig. 11 break-even
// diagram. xs labels the sample points.
func CrossoverDiagram(title string, xs []int, a, b LineSeries, height int) (string, error) {
	if len(xs) == 0 || len(a.Values) != len(xs) || len(b.Values) != len(xs) {
		return "", fmt.Errorf("report: series lengths %d/%d do not match %d x labels",
			len(a.Values), len(b.Values), len(xs))
	}
	if height < 5 {
		height = 5
	}
	maxVal := 0.0
	for i := range xs {
		if a.Values[i] > maxVal {
			maxVal = a.Values[i]
		}
		if b.Values[i] > maxVal {
			maxVal = b.Values[i]
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	plot := func(vals []float64, mark byte) {
		for i, v := range vals {
			row := height - 1 - int(v/maxVal*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			if grid[row][i] == ' ' {
				grid[row][i] = mark
			} else if grid[row][i] != mark {
				grid[row][i] = 'X' // crossing cell
			}
		}
	}
	plot(a.Values, 'R')
	plot(b.Values, 'C')
	var out strings.Builder
	if title != "" {
		out.WriteString(title)
		out.WriteByte('\n')
	}
	for _, row := range grid {
		out.WriteString("| ")
		out.Write(row)
		out.WriteByte('\n')
	}
	out.WriteString("+-")
	out.WriteString(strings.Repeat("-", len(xs)))
	out.WriteByte('\n')
	fmt.Fprintf(&out, "  x: %d .. %d units   R=%s C=%s X=crossing\n",
		xs[0], xs[len(xs)-1], a.Name, b.Name)
	return out.String(), nil
}
