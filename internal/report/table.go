// Package report renders the PSP framework's outputs as plain-text
// tables and charts: the regenerated figures and tables of the paper in
// a terminal-friendly form.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple text table with a header row.
type Table struct {
	// Title is printed above the table when non-empty.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteString("+")
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteString("+")
		}
		b.WriteByte('\n')
	}
	sep()
	writeRow(t.headers)
	sep()
	for _, row := range t.rows {
		writeRow(row)
	}
	sep()
	return b.String()
}
