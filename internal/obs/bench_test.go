package obs

import (
	"testing"
	"time"
)

// The recorder micro-benchmarks pin the per-event cost the store, WAL
// and monitor hot paths pay when instrumented: one atomic RMW for a
// counter, a bucket scan plus three atomics for a histogram. CI folds
// them into BENCH_7.json next to the instrumented-vs-bare store pair.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_events_total", "Benchmark counter.")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyBuckets, LatencyScale)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// A mid-range latency: the scan crosses half the buckets.
			h.Observe(int64(1500 * time.Microsecond))
		}
	})
}
