package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// safeBuilder is a minimal io.Writer accumulating into a string.
type safeBuilder struct{ b strings.Builder }

func (s *safeBuilder) Write(p []byte) (int, error) { return s.b.Write(p) }
func (s *safeBuilder) String() string              { return s.b.String() }

func containsLine(text, line string) bool {
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

// TestExpositionGolden pins the full exposition output for a small
// registry: family ordering, HELP/TYPE lines, label rendering,
// cumulative histogram buckets, sum/count.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta_total", "Last family by name.").Add(7)
	reg.Gauge("alpha_depth", "A gauge.").Set(2.5)
	reg.GaugeFunc("alpha_func", "A computed gauge.", func() float64 { return 3 })
	h := reg.Histogram("beta_seconds", "A histogram.", []int64{1000, 10000}, 1000)
	h.Observe(500)   // first bucket (0.5 scaled)
	h.Observe(5000)  // second bucket
	h.Observe(50000) // overflow
	c := reg.Counter("gamma_requests_total", "Labeled counter.",
		Label{"route", "/v1/posts"}, Label{"code", "2xx"})
	c.Add(3)
	reg.Counter("gamma_requests_total", "Labeled counter.",
		Label{"route", "/v1/posts"}, Label{"code", "5xx"}).Inc()

	var b safeBuilder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_depth A gauge.
# TYPE alpha_depth gauge
alpha_depth 2.5
# HELP alpha_func A computed gauge.
# TYPE alpha_func gauge
alpha_func 3
# HELP beta_seconds A histogram.
# TYPE beta_seconds histogram
beta_seconds_bucket{le="1"} 1
beta_seconds_bucket{le="10"} 2
beta_seconds_bucket{le="+Inf"} 3
beta_seconds_sum 55.5
beta_seconds_count 3
# HELP gamma_requests_total Labeled counter.
# TYPE gamma_requests_total counter
gamma_requests_total{code="2xx",route="/v1/posts"} 3
gamma_requests_total{code="5xx",route="/v1/posts"} 1
# HELP zeta_total Last family by name.
# TYPE zeta_total counter
zeta_total 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "escapes", Label{"v", "a\"b\\c\nd"}).Inc()
	var b safeBuilder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !containsLine(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaped exposition:\n%s", b.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("handler_hits_total", "hits").Inc()

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	if !containsLine(rec.Body.String(), "handler_hits_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}
