package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMiddlewareRecording: status classes and latency land in the
// right per-route series.
func TestMiddlewareRecording(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)

	okHandler := hm.Wrap("/v1/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.Write([]byte("hello"))
	}))
	failHandler := hm.Wrap("/v1/fail", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		okHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ok", nil))
		if rec.Code != 200 {
			t.Fatalf("ok status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	failHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/fail", nil))
	if rec.Code != 503 {
		t.Fatalf("fail status = %d", rec.Code)
	}

	ok2xx := reg.Counter("psp_http_requests_total", "",
		Label{"route", "/v1/ok"}, Label{"code", "2xx"})
	if got := ok2xx.Value(); got != 3 {
		t.Fatalf("2xx count = %d, want 3", got)
	}
	fail5xx := reg.Counter("psp_http_requests_total", "",
		Label{"route", "/v1/fail"}, Label{"code", "5xx"})
	if got := fail5xx.Value(); got != 1 {
		t.Fatalf("5xx count = %d, want 1", got)
	}
	lat := reg.Histogram("psp_http_request_seconds", "", DefaultLatencyBuckets, LatencyScale,
		Label{"route", "/v1/ok"})
	if got := lat.Count(); got != 3 {
		t.Fatalf("latency count = %d, want 3", got)
	}
	// The 2ms sleeps land in the (1ms, 2.5ms] bucket; interpolated p50
	// must fall inside it.
	if p50 := lat.Quantile(0.5); p50 <= 0.001 || p50 > 0.0025 {
		t.Fatalf("latency p50 = %v, want in (1ms, 2.5ms]", p50)
	}
}

// TestRequestIDPropagation: inbound IDs are honored, missing IDs are
// minted, the response always echoes one, and the handler sees both
// the ID and a request-scoped logger carrying it.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	hm := NewHTTPMetrics(NewRegistry(), logger)

	var seenID string
	h := hm.Wrap("/v1/echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestIDFrom(r.Context())
		LoggerFrom(r.Context()).Info("handled")
		w.WriteHeader(http.StatusNoContent)
	}))

	req := httptest.NewRequest("GET", "/v1/echo", nil)
	req.Header.Set(RequestIDHeader, "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenID != "upstream-42" {
		t.Fatalf("handler saw request_id %q, want upstream-42", seenID)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-42" {
		t.Fatalf("response request_id %q, want upstream-42", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=upstream-42") {
		t.Fatalf("handler log line missing request_id:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "msg=handled") {
		t.Fatalf("missing handler log line:\n%s", logBuf.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/echo", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" || minted == "upstream-42" {
		t.Fatalf("minted request_id = %q", minted)
	}
	if seenID != minted {
		t.Fatalf("handler saw %q, response carried %q", seenID, minted)
	}
}

// TestInstrumentDynamicRoute: the per-request route resolver shares
// series across requests with the same label.
func TestInstrumentDynamicRoute(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	h := hm.Instrument(func(r *http.Request) string {
		if strings.HasPrefix(r.URL.Path, "/v2/search") {
			return "/v2/search"
		}
		return "other"
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	for _, path := range []string{"/v2/search?q=a", "/v2/search?q=b", "/nope"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	if got := reg.Counter("psp_http_requests_total", "",
		Label{"route", "/v2/search"}, Label{"code", "2xx"}).Value(); got != 2 {
		t.Fatalf("/v2/search 2xx = %d, want 2", got)
	}
	if got := reg.Counter("psp_http_requests_total", "",
		Label{"route", "other"}, Label{"code", "2xx"}).Value(); got != 1 {
		t.Fatalf("other 2xx = %d, want 1", got)
	}
}

func TestPprofHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	PprofHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof cmdline status = %d", rec.Code)
	}
}
