package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterBuildInfo registers the standard process-identity gauges:
//
//	psp_build_info{version,go,revision} 1
//	psp_process_start_time_seconds      <unix start time>
//	psp_process_uptime_seconds          <seconds since start>
//
// version is the daemon's own version string ("devel" when empty);
// the VCS revision is taken from the embedded module build info when
// available. Safe to call more than once (GaugeFunc replaces).
func RegisterBuildInfo(reg *Registry, version string) {
	if reg == nil {
		return
	}
	if version == "" {
		version = "devel"
	}
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
				break
			}
		}
	}
	reg.GaugeFunc("psp_build_info",
		"Build identity; value is always 1, the labels carry the info.",
		func() float64 { return 1 },
		Label{"version", version},
		Label{"go", runtime.Version()},
		Label{"revision", revision})
	start := time.Now()
	reg.GaugeFunc("psp_process_start_time_seconds",
		"Unix time the process registered its observability surface.",
		func() float64 { return float64(start.Unix()) })
	reg.GaugeFunc("psp_process_uptime_seconds",
		"Seconds since the process registered its observability surface.",
		func() float64 { return time.Since(start).Seconds() })
}
