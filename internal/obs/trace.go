package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// SpanAttr is one key/value cost-attribution pair attached to a span.
// Values are strings so the wire schema stays uniform; use the typed
// Span setters rather than formatting at call sites.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is a point-in-time annotation inside a span — a breaker
// trip, a retry decision, a degraded-page verdict. Offset is relative
// to the span start.
type SpanEvent struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset"`
	Attrs  []SpanAttr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. Spans are cheap value
// carriers, not synchronization points: a span must only be mutated
// from the goroutine that owns it (hand child spans to child
// goroutines, never share one). All methods are nil-safe so
// "tracing off" needs no branches at call sites.
type Span struct {
	TraceID  string
	SpanID   string
	ParentID string
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []SpanAttr
	Events   []SpanEvent
	Err      string

	tracer  *Tracer
	sampled bool // head-based decision, constant across the trace
	forced  bool // record regardless of sampling (degraded/interesting)
	ended   atomic.Bool
}

// Recording reports whether attribute work is worth doing: the span
// exists and its trace was head-sampled (errors and slow spans are
// still captured either way, with whatever attrs were set).
func (s *Span) Recording() bool { return s != nil && s.sampled }

// Sampled reports whether the span's trace was head-sampled.
func (s *Span) Sampled() bool { return s != nil && (s.sampled || s.forced) }

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, SpanAttr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, SpanAttr{Key: key, Value: formatInt(v)})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	val := "false"
	if v {
		val = "true"
	}
	s.Attrs = append(s.Attrs, SpanAttr{Key: key, Value: val})
}

// Event records a point-in-time annotation (retry, breaker decision,
// timeout) at the current offset into the span.
func (s *Span) Event(name string, attrs ...SpanAttr) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{Name: name, Offset: time.Since(s.Start), Attrs: attrs})
}

// Fail marks the span as errored. Errored spans are always recorded
// and logged, regardless of the sampling decision.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// ForceSample marks the span for recording regardless of the
// head-based decision — used for degraded/partial results that must
// stay diagnosable at any sampling rate.
func (s *Span) ForceSample() {
	if s == nil {
		return
	}
	s.forced = true
}

// End stamps the duration and hands the span to its tracer, which
// decides whether it reaches the ring/logs. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tracer.finish(s)
}

func formatInt(v int64) string {
	// strconv-free hot path would be overkill; keep it simple.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

const ctxSpan ctxKey = 100

// ContextWithSpan attaches a span to ctx; child spans started from
// that ctx link to it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxSpan, s)
}

// SpanFrom returns the span attached to ctx, or nil. The nil span is
// a full no-op recorder, so call sites never nil-check.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxSpan).(*Span)
	return s
}

// TracerOptions configures a Tracer. The zero value is usable:
// capacity 4096, probabilistic sampling off (errors, slow and forced
// spans are still captured), 250ms slow threshold, no logs, no
// metrics.
type TracerOptions struct {
	// Capacity bounds the span ring buffer (rounded up to a power of
	// two). Old spans are overwritten; /v1/trace is a flight recorder,
	// not an archive. Default 4096.
	Capacity int
	// SampleRate is the head-based probability in [0,1] that a new
	// trace records its spans. Errored, slow and force-sampled spans
	// are recorded regardless. 0 disables probabilistic sampling
	// entirely; 1 samples every trace.
	SampleRate float64
	// SlowThreshold marks spans at least this long as slow: recorded
	// and logged even when the trace lost the sampling coin toss.
	// Zero means the 250ms default; negative disables slow capture.
	SlowThreshold time.Duration
	// Logger receives slow and errored spans as structured records.
	Logger *slog.Logger
	// Registry receives span-count/duration metrics (psp_trace_*) so
	// traces and /v1/metrics cross-reference.
	Registry *Registry
}

// DefaultSlowThreshold is the slow-span cutoff when none is given.
const DefaultSlowThreshold = 250 * time.Millisecond

// spanMetrics is the pre-resolved recording surface for one span name.
type spanMetrics struct {
	total    *Counter
	errors   *Counter
	duration *Histogram
}

// Tracer mints and records spans. Recording is lock-free: finished
// spans that pass the keep filter are published into a bounded ring of
// atomic pointers; readers snapshot without blocking writers. A nil
// *Tracer is a no-op (Start returns a nil span), matching the metrics
// core's nil-safety ethos.
type Tracer struct {
	ring     []atomic.Pointer[Span]
	mask     uint64
	widx     atomic.Uint64
	rate     uint64 // sample iff next PRNG value < rate (0 never, MaxUint64 always)
	slow     time.Duration
	logger   *slog.Logger
	reg      *Registry
	rng      atomic.Uint64
	recorded *Counter
	dropped  *Counter
	mu       sync.Mutex
	names    atomic.Pointer[map[string]*spanMetrics]
}

// NewTracer builds a tracer. See TracerOptions for defaults.
func NewTracer(opts TracerOptions) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	var threshold uint64
	switch rate := opts.SampleRate; {
	case rate >= 1:
		threshold = math.MaxUint64
	case rate <= 0:
		threshold = 0
	default:
		threshold = uint64(rate * float64(math.MaxUint64))
	}
	slow := opts.SlowThreshold
	if slow == 0 {
		slow = DefaultSlowThreshold
	}
	logger := opts.Logger
	if logger == nil {
		logger = NopLogger()
	}
	t := &Tracer{
		ring:   make([]atomic.Pointer[Span], size),
		mask:   uint64(size - 1),
		rate:   threshold,
		slow:   slow,
		logger: logger,
		reg:    opts.Registry,
	}
	var seed [8]byte
	crand.Read(seed[:])
	t.rng.Store(binary.LittleEndian.Uint64(seed[:]) | 1)
	t.names.Store(&map[string]*spanMetrics{})
	if opts.Registry != nil {
		t.recorded = opts.Registry.Counter("psp_trace_spans_recorded_total",
			"Finished spans kept in the trace ring (sampled, errored, slow or forced).")
		t.dropped = opts.Registry.Counter("psp_trace_spans_dropped_total",
			"Finished spans discarded by the head-based sampling decision.")
	}
	return t
}

// next steps the tracer's splitmix64 PRNG; cheap enough for the
// per-trace sampling decision and ID minting without a lock.
func (t *Tracer) next() uint64 {
	z := t.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

func (t *Tracer) newTraceID() string {
	buf := make([]byte, 0, 32)
	buf = appendHex64(buf, t.next())
	buf = appendHex64(buf, t.next())
	return string(buf)
}

func (t *Tracer) newSpanID() string {
	buf := make([]byte, 0, 16)
	buf = appendHex64(buf, t.next())
	return string(buf)
}

// Start begins a span named name. If ctx carries a span, the new span
// joins its trace as a child and inherits the sampling decision;
// otherwise a new trace starts and the head-based coin is tossed. The
// returned context carries the new span. A nil tracer returns
// (ctx, nil) — the nil span records nothing, at no cost.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{Name: name, Start: time.Now(), tracer: t, SpanID: t.newSpanID()}
	if parent := SpanFrom(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
		s.sampled = parent.sampled
	} else {
		s.TraceID = t.newTraceID()
		s.sampled = t.next() < t.rate
	}
	return ContextWithSpan(ctx, s), s
}

// StartRemote begins a span continuing the trace described by a W3C
// traceparent header value. An empty or malformed header starts a
// fresh local trace instead (same as Start on a bare context). Used
// by server middleware so a federated request stays one trace across
// the HTTP hop.
func (t *Tracer) StartRemote(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	traceID, parentID, sampled, ok := ParseTraceparent(traceparent)
	if !ok {
		return t.Start(ctx, name)
	}
	s := &Span{
		Name:     name,
		Start:    time.Now(),
		tracer:   t,
		SpanID:   t.newSpanID(),
		TraceID:  traceID,
		ParentID: parentID,
		sampled:  sampled,
	}
	return ContextWithSpan(ctx, s), s
}

// StartLink begins a span as a child of an already-finished span in
// another component's trace, identified by (traceID, parentID) — the
// monitor links its delta run back to the ingest span that triggered
// it this way. Invalid IDs fall back to a fresh trace. Linked spans
// are sampled: the referenced trace was recorded, so its continuation
// must be too.
func (t *Tracer) StartLink(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if !validHex(traceID, 32) || !validHex(parentID, 16) {
		return t.Start(ctx, name)
	}
	s := &Span{
		Name:     name,
		Start:    time.Now(),
		tracer:   t,
		SpanID:   t.newSpanID(),
		TraceID:  traceID,
		ParentID: parentID,
		sampled:  true,
	}
	return ContextWithSpan(ctx, s), s
}

// spanName get-or-creates the per-name metric surface (COW map, same
// shape as HTTPMetrics routes).
func (t *Tracer) spanName(name string) *spanMetrics {
	if sm, ok := (*t.names.Load())[name]; ok {
		return sm
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.names.Load()
	if sm, ok := cur[name]; ok {
		return sm
	}
	sm := &spanMetrics{
		total: t.reg.Counter("psp_trace_spans_total",
			"Finished spans by name, sampled or not.", Label{"span", name}),
		errors: t.reg.Counter("psp_trace_span_errors_total",
			"Finished spans that ended in error, by name.", Label{"span", name}),
		duration: t.reg.Histogram("psp_trace_span_seconds",
			"Span duration by name.", DefaultLatencyBuckets, LatencyScale, Label{"span", name}),
	}
	next := make(map[string]*spanMetrics, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = sm
	t.names.Store(&next)
	return sm
}

// finish applies the keep filter and publishes the span. Called once
// per span from End.
func (t *Tracer) finish(s *Span) {
	if t == nil {
		return
	}
	if t.reg != nil {
		sm := t.spanName(s.Name)
		sm.total.Inc()
		sm.duration.Observe(int64(s.Duration))
		if s.Err != "" {
			sm.errors.Inc()
		}
	}
	slow := t.slow > 0 && s.Duration >= t.slow
	if !s.sampled && !s.forced && s.Err == "" && !slow {
		t.dropped.Inc()
		return
	}
	t.recorded.Inc()
	idx := t.widx.Add(1) - 1
	t.ring[idx&t.mask].Store(s)
	if s.Err != "" || slow {
		level := slog.LevelWarn
		msg := "slow span"
		if s.Err != "" {
			level = slog.LevelError
			msg = "span error"
		}
		t.logger.Log(context.Background(), level, msg,
			slog.String("span", s.Name),
			slog.String("trace_id", s.TraceID),
			slog.String("span_id", s.SpanID),
			slog.Duration("duration", s.Duration),
			slog.String("error", s.Err))
	}
}

// Spans returns up to limit of the most recently recorded spans,
// newest first. limit <= 0 means the whole ring.
func (t *Tracer) Spans(limit int) []*Span {
	if t == nil {
		return nil
	}
	n := len(t.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	head := t.widx.Load()
	out := make([]*Span, 0, limit)
	for i := uint64(0); i < uint64(n) && len(out) < limit; i++ {
		// Walk backwards from the most recent slot.
		slot := (head - 1 - i) & t.mask
		s := t.ring[slot].Load()
		if s == nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TraceSpans returns every recorded span of one trace, ordered by
// start time (parents naturally precede children).
func (t *Tracer) TraceSpans(traceID string) []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.ring {
		if s := t.ring[i].Load(); s != nil && s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sortSpansByStart(out)
	return out
}

func sortSpansByStart(spans []*Span) {
	// Insertion sort: trace span counts are small and mostly ordered.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start.Before(spans[j-1].Start); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}
