package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a metric family. Immutable after
// registration (the value cells inside c/g/h are atomic).
type series struct {
	labels string // rendered, key-sorted: `k1="v1",k2="v2"`; "" if none
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name. Immutable;
// replaced copy-on-write by registration.
type family struct {
	name, help string
	kind       kind
	series     []*series // sorted by labels
}

func (f *family) find(labels string) *series {
	i := sort.Search(len(f.series), func(i int) bool { return f.series[i].labels >= labels })
	if i < len(f.series) && f.series[i].labels == labels {
		return f.series[i]
	}
	return nil
}

// withSeries returns a copy of the family with one series added or
// (same labels) replaced.
func (f *family) withSeries(s *series) *family {
	next := &family{name: f.name, help: f.help, kind: f.kind}
	next.series = make([]*series, 0, len(f.series)+1)
	for _, old := range f.series {
		if old.labels != s.labels {
			next.series = append(next.series, old)
		}
	}
	next.series = append(next.series, s)
	sort.Slice(next.series, func(i, j int) bool { return next.series[i].labels < next.series[j].labels })
	return next
}

// registrySet is the immutable registry snapshot: exposition and
// lock-free lookups read it with one atomic load.
type registrySet struct {
	families []*family // sorted by name
	index    map[string]*family
}

func (set *registrySet) withFamily(f *family) *registrySet {
	next := &registrySet{index: make(map[string]*family, len(set.index)+1)}
	for name, old := range set.index {
		next.index[name] = old
	}
	next.index[f.name] = f
	next.families = make([]*family, 0, len(next.index))
	for _, fam := range next.index {
		next.families = append(next.families, fam)
	}
	sort.Slice(next.families, func(i, j int) bool { return next.families[i].name < next.families[j].name })
	return next
}

// Registry collects metric families and renders them for scraping.
// Registration (the get-or-create constructors) takes a mutex and
// rebuilds an immutable snapshot copy-on-write; lookups of already
// registered series and WritePrometheus never lock. All methods are
// nil-safe: a nil *Registry hands out nil metrics, which are no-op
// recorders, so "observability off" needs no branches at call sites.
type Registry struct {
	mu  sync.Mutex
	set atomic.Pointer[registrySet]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.set.Store(&registrySet{index: map[string]*family{}})
	return r
}

// renderLabels normalizes labels into the canonical key-sorted series
// identity used both for lookup and exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lookup returns the registered series for (name, labels) if present,
// without locking.
func (r *Registry) lookup(name, labels string, k kind) *series {
	set := r.set.Load()
	f := set.index[name]
	if f == nil {
		return nil
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f.find(labels)
}

// register get-or-creates a series under the registry lock. build
// constructs the new series when absent (or, for replace, always).
func (r *Registry) register(name, help string, k kind, labels string, replace bool, build func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.set.Load()
	f := set.index[name]
	if f != nil {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
		}
		if s := f.find(labels); s != nil && !replace {
			return s
		}
	} else {
		f = &family{name: name, help: help, kind: k}
	}
	s := build()
	r.set.Store(set.withFamily(f.withSeries(s)))
	return s
}

// Counter get-or-creates a counter series. Counter names should end in
// "_total" by Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	if s := r.lookup(name, ls, kindCounter); s != nil {
		return s.c
	}
	return r.register(name, help, kindCounter, ls, false, func() *series {
		return &series{labels: ls, c: &Counter{}}
	}).c
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	if s := r.lookup(name, ls, kindGauge); s != nil {
		return s.g
	}
	return r.register(name, help, kindGauge, ls, false, func() *series {
		return &series{labels: ls, g: &Gauge{}}
	}).g
}

// GaugeFunc registers (or, when the series exists, replaces) a gauge
// whose value is computed by fn at exposition time. Replacement keeps
// re-wiring simple when a component is rebuilt against the same
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	ls := renderLabels(labels)
	r.register(name, help, kindGaugeFunc, ls, true, func() *series {
		return &series{labels: ls, fn: fn}
	})
}

// Histogram get-or-creates a histogram series with the given ascending
// int64 upper bounds and exposition scale divisor (see
// DefaultLatencyBuckets / LatencyScale).
func (r *Registry) Histogram(name, help string, bounds []int64, scale float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	if s := r.lookup(name, ls, kindHistogram); s != nil {
		return s.h
	}
	return r.register(name, help, kindHistogram, ls, false, func() *series {
		return &series{labels: ls, h: NewHistogram(bounds, scale)}
	}).h
}
