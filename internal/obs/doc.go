// Package obs is the framework's zero-dependency observability core:
// atomic counters, gauges and fixed-bucket latency histograms collected
// in a registry and exposed in Prometheus text format.
//
// The package follows the same lock-free ethos as the social store's
// read path. Every metric is a handful of machine words updated with
// atomic operations — no mutex, no allocation, no time formatting on
// the hot path — and the registry publishes an immutable, sorted
// snapshot of its metric families behind an atomic pointer
// (copy-on-write): registration takes a lock, but scraping and every
// Inc/Add/Observe never do. A nil metric is a valid no-op recorder, so
// instrumented code paths need no "is observability on?" branches
// beyond a single nil check, and packages can accept optional metrics
// structs without conditional wiring.
//
// Histograms use fixed int64 bucket upper bounds (typically
// nanoseconds) with a presentation-time scale divisor, so observing a
// latency is one bucket scan plus two atomic adds; quantiles (p50/p99)
// are extracted by linear interpolation inside the winning bucket.
// Concurrent scrapes see per-bucket counts and the sum/count pair
// without mutual consistency — standard for lock-free collectors and
// harmless at scrape granularity.
//
// HTTP handlers are instrumented with Middleware: per-route request
// counters split by status class, a per-route latency histogram, and
// X-Request-ID propagation — the middleware reads or generates a
// request ID, echoes it on the response, and stores both the ID and a
// request-scoped *slog.Logger (carrying the request_id attribute) in
// the request context for handlers to log through.
//
// Registry.WritePrometheus renders the text exposition format
// (version 0.0.4); Registry.Handler serves it, typically mounted at
// GET /v1/metrics. PprofHandler returns the standard net/http/pprof
// mux for opt-in mounting behind a flag.
package obs
