// Package obs is the framework's zero-dependency observability core:
// atomic counters, gauges and fixed-bucket latency histograms collected
// in a registry and exposed in Prometheus text format.
//
// The package follows the same lock-free ethos as the social store's
// read path. Every metric is a handful of machine words updated with
// atomic operations — no mutex, no allocation, no time formatting on
// the hot path — and the registry publishes an immutable, sorted
// snapshot of its metric families behind an atomic pointer
// (copy-on-write): registration takes a lock, but scraping and every
// Inc/Add/Observe never do. A nil metric is a valid no-op recorder, so
// instrumented code paths need no "is observability on?" branches
// beyond a single nil check, and packages can accept optional metrics
// structs without conditional wiring.
//
// Histograms use fixed int64 bucket upper bounds (typically
// nanoseconds) with a presentation-time scale divisor, so observing a
// latency is one bucket scan plus two atomic adds; quantiles (p50/p99)
// are extracted by linear interpolation inside the winning bucket.
// Concurrent scrapes see per-bucket counts and the sum/count pair
// without mutual consistency — standard for lock-free collectors and
// harmless at scrape granularity.
//
// HTTP handlers are instrumented with Middleware: per-route request
// counters split by status class, a per-route latency histogram, and
// X-Request-ID propagation — the middleware reads or generates a
// request ID, echoes it on the response, and stores both the ID and a
// request-scoped *slog.Logger (carrying the request_id attribute) in
// the request context for handlers to log through.
//
// Registry.WritePrometheus renders the text exposition format
// (version 0.0.4); Registry.Handler serves it, typically mounted at
// GET /v1/metrics. PprofHandler returns the standard net/http/pprof
// mux for opt-in mounting behind a flag.
//
// # Distributed tracing
//
// The package also carries a span tracer built on the same principles:
// zero dependencies, lock-free recording, nil-safe no-ops. A Tracer
// hands out Spans — trace ID, span ID, parent link, duration, string
// attrs, timestamped events, an error verdict — threaded through
// context.Context (Start creates a child of the context span or a new
// root; SpanFrom reads it back). Finished spans that pass the keep
// filter land in a bounded lock-free ring ([]atomic.Pointer[Span] with
// a power-of-two mask and an atomic write index): recording is a
// pointer store, readers snapshot without blocking writers, and the
// ring overwrites oldest-first so memory is bounded regardless of
// traffic. A nil *Tracer and a nil *Span no-op on every method, so
// "tracing off" needs no branches at instrumentation sites.
//
// # Sampling policy
//
// Sampling is head-based: the keep/drop coin is flipped once when a
// root span starts (TracerOptions.SampleRate, a probability in [0,1])
// and inherited by every child, so a trace is recorded whole or not at
// all. Three overrides force retention regardless of the coin: spans
// that Fail (error verdict), spans at least SlowThreshold long (the
// tail worth debugging), and spans explicitly ForceSample'd (e.g. a
// degraded federated page). Slow and failed spans are additionally
// logged through the tracer's slog.Logger. An unsampled span still
// feeds the psp_trace_* metrics — per-name span counts, error counts
// and latency histograms record every finished span — so aggregate
// cost attribution stays complete even at low sample rates.
//
// # Trace propagation
//
// Traces cross process boundaries via the W3C traceparent header
// (version 00: "00-<32 hex trace id>-<16 hex parent span id>-<2 hex
// flags>", sampled = flags bit 0). Traceparent renders a span's header
// value; ParseTraceparent validates strictly (length 55, lowercase
// hex, non-zero IDs). Server middleware continues an inbound header
// with StartRemote — the server span joins the caller's trace and
// inherits its sampled flag, which is how a rate-0 backend still
// records its slice of a frontend-sampled trace — and the HTTP client
// injects the current span's header on every attempt. Work that
// outlives the request that caused it links asynchronously: StartLink
// starts a span in an explicitly named trace (e.g. the monitor's
// debounced flush joining the ingest trace that triggered it), always
// sampled because the link was only published for kept traces.
//
// # Trace export
//
// Tracer.Handler serves the ring over HTTP (mounted at GET /v1/trace):
// "?limit=N" lists the newest N spans, "?trace_id=<32 hex>" returns
// one trace sorted by start time. The JSON schema per span:
// trace_id, span_id, parent_id, name, start (RFC 3339), duration_ms,
// error, attrs ([{key, value}]) and events ([{name, offset_ms,
// attrs}]). Known limitations, accepted by design: ForceSample on a
// parent does not retroactively record already-ended healthy children
// (head sampling decides at the root; forcing affects the span itself
// and spans not yet finished), and the store publishes only its last
// sampled ingest for async linking, so a debounce window covering
// several ingests links the flush to the latest one.
package obs
