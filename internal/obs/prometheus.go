package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// series by label set. It reads the registry's immutable snapshot with
// one atomic load — scraping never blocks registration or recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.set.Load().families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		writeSample(bw, f.name, "", s.labels, "", strconv.FormatUint(s.c.Value(), 10))
	case kindGauge:
		writeSample(bw, f.name, "", s.labels, "", formatFloat(s.g.Value()))
	case kindGaugeFunc:
		writeSample(bw, f.name, "", s.labels, "", formatFloat(s.fn()))
	case kindHistogram:
		writeHistogram(bw, f.name, s)
	}
}

// writeHistogram renders cumulative buckets, sum and count. The _count
// line equals the +Inf cumulative bucket by construction (both derive
// from one pass over the bucket cells), so the series stays internally
// consistent even while observations land concurrently.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.h
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) / h.scale)
		}
		writeSample(bw, name, "_bucket", s.labels, `le="`+le+`"`, strconv.FormatUint(cum, 10))
	}
	writeSample(bw, name, "_sum", s.labels, "", formatFloat(float64(h.sum.Load())/h.scale))
	writeSample(bw, name, "_count", s.labels, "", strconv.FormatUint(cum, 10))
}

// writeSample emits one `name[_suffix]{labels[,extra]} value` line.
func writeSample(bw *bufio.Writer, name, suffix, labels, extra, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the exposition over HTTP (mount at GET /v1/metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
