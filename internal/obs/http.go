package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the request correlation ID. The middleware
// honors an inbound value (so IDs propagate across services) or
// generates one, and always echoes it on the response.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxLogger
)

// ContextWithRequestID attaches a request ID to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// ContextWithLogger attaches a request-scoped logger to ctx.
func ContextWithLogger(ctx context.Context, lg *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxLogger, lg)
}

// LoggerFrom returns the request-scoped logger attached to ctx (which
// the middleware pre-loads with the request_id attribute), or a
// discard logger so call sites never nil-check.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if lg, ok := ctx.Value(ctxLogger).(*slog.Logger); ok && lg != nil {
		return lg
	}
	return NopLogger()
}

var nopLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// NopLogger returns a logger that discards everything.
func NopLogger() *slog.Logger { return nopLogger }

// routeMetrics is the pre-resolved recording surface for one route:
// one request counter per status class plus a latency histogram.
type routeMetrics struct {
	classes [6]*Counter // indexed by status/100 (1xx..5xx; 0 spare)
	latency *Histogram
}

// HTTPMetrics instruments HTTP handlers with per-route request counts
// (split by status class), latency histograms, X-Request-ID
// propagation and structured access logs. Route metric lookups read a
// copy-on-write map — the per-request path is atomics only after a
// route's first request.
type HTTPMetrics struct {
	reg      *Registry
	logger   *slog.Logger
	tracer   *Tracer
	mu       sync.Mutex
	routes   atomic.Pointer[map[string]*routeMetrics]
	idPrefix string
	idSeq    atomic.Uint64
}

// NewHTTPMetrics builds middleware recording into reg and logging
// through logger (nil for no access logs).
func NewHTTPMetrics(reg *Registry, logger *slog.Logger) *HTTPMetrics {
	if logger == nil {
		logger = NopLogger()
	}
	var seed [6]byte
	rand.Read(seed[:])
	hm := &HTTPMetrics{reg: reg, logger: logger, idPrefix: hex.EncodeToString(seed[:])}
	hm.routes.Store(&map[string]*routeMetrics{})
	return hm
}

// WithTracer makes the middleware open one server span per request:
// an inbound traceparent header is continued (so a federated call
// stays one trace across the hop), otherwise a fresh trace starts.
// Returns hm for chaining; nil-safe on both sides.
func (hm *HTTPMetrics) WithTracer(t *Tracer) *HTTPMetrics {
	if hm != nil {
		hm.tracer = t
	}
	return hm
}

// newRequestID mints a process-unique request ID: a random per-process
// prefix plus a sequence number.
func (hm *HTTPMetrics) newRequestID() string {
	return hm.idPrefix + "-" + strconv.FormatUint(hm.idSeq.Add(1), 16)
}

// route get-or-creates the recording surface for one route label.
func (hm *HTTPMetrics) route(route string) *routeMetrics {
	if rm, ok := (*hm.routes.Load())[route]; ok {
		return rm
	}
	hm.mu.Lock()
	defer hm.mu.Unlock()
	cur := *hm.routes.Load()
	if rm, ok := cur[route]; ok {
		return rm
	}
	rm := &routeMetrics{
		latency: hm.reg.Histogram("psp_http_request_seconds",
			"HTTP request latency by route.",
			DefaultLatencyBuckets, LatencyScale, Label{"route", route}),
	}
	for class := 1; class <= 5; class++ {
		rm.classes[class] = hm.reg.Counter("psp_http_requests_total",
			"HTTP requests by route and status class.",
			Label{"route", route}, Label{"code", strconv.Itoa(class) + "xx"})
	}
	next := make(map[string]*routeMetrics, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[route] = rm
	hm.routes.Store(&next)
	return rm
}

// Wrap instruments next under a fixed route label (resolved once, so
// the request path never touches the route map).
func (hm *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	if hm == nil {
		return next
	}
	rm := hm.route(route)
	return hm.instrument(func(*http.Request) string { return route }, func(*http.Request) *routeMetrics { return rm }, next)
}

// Instrument instruments next, deriving the route label per request —
// for handlers that multiplex several routes internally. Unbounded
// label values would bloat the registry; routeOf should normalize.
func (hm *HTTPMetrics) Instrument(routeOf func(*http.Request) string, next http.Handler) http.Handler {
	if hm == nil {
		return next
	}
	return hm.instrument(routeOf, func(r *http.Request) *routeMetrics { return hm.route(routeOf(r)) }, next)
}

func (hm *HTTPMetrics) instrument(routeOf func(*http.Request) string, metricsOf func(*http.Request) *routeMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 128 {
			id = hm.newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		lg := hm.logger.With(slog.String("request_id", id))
		ctx := ContextWithLogger(ContextWithRequestID(r.Context(), id), lg)
		var span *Span
		if hm.tracer != nil {
			route := routeOf(r)
			ctx, span = hm.tracer.StartRemote(ctx, "http.server "+route, r.Header.Get(TraceparentHeader))
			span.SetAttr("method", r.Method)
			span.SetAttr("route", route)
			span.SetAttr("request_id", id)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(t0)
		if span != nil {
			span.SetInt("status", int64(sw.status))
			if sw.status >= 500 {
				span.Fail(errServerStatus(sw.status))
			}
			span.End()
		}
		rm := metricsOf(r)
		rm.latency.Observe(int64(elapsed))
		class := sw.status / 100
		if class < 1 || class > 5 {
			class = 5
		}
		rm.classes[class].Inc()
		level := slog.LevelDebug
		switch {
		case sw.status >= 500:
			level = slog.LevelError
		case sw.status >= 400:
			level = slog.LevelWarn
		}
		lg.Log(ctx, level, "http request",
			slog.String("method", r.Method),
			slog.String("route", routeOf(r)),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed))
	})
}

// errServerStatus is the synthetic error recorded on server spans
// whose handler answered 5xx.
type errServerStatus int

func (e errServerStatus) Error() string { return "http status " + strconv.Itoa(int(e)) }

// statusWriter records the status code and body size of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes when the underlying writer supports
// them (SSE-style handlers).
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// PprofHandler returns the standard runtime profiling mux
// (net/http/pprof) for opt-in mounting under /debug/pprof/ behind a
// daemon flag — profiling endpoints expose internals and must never be
// on by default.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
