package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one
// histogram from many goroutines and checks the totals are exact —
// run under -race in CI.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_level", "level")
	h := reg.Histogram("test_latency_seconds", "latency", []int64{10, 100, 1000}, 1)

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 2000))
			}
		}(w)
	}
	// Concurrent registration of the same series must return the same
	// cells (exercises the COW get-or-create path under race).
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			if got := reg.Counter("test_ops_total", "ops"); got != c {
				t.Error("get-or-create returned a different counter cell")
			}
			reg.Counter("test_other_total", "other").Inc()
		}()
	}
	wg.Wait()
	rg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i % 2000)
	}
	wantSum *= workers
	if got := h.Sum(); got != float64(wantSum) {
		t.Fatalf("histogram sum = %v, want %d", got, wantSum)
	}
	if got := reg.Counter("test_other_total", "other").Value(); got != 4 {
		t.Fatalf("concurrent-registered counter = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40}, 1)
	// 10 observations in (0,10], 10 in (10,20], none above.
	for i := 1; i <= 10; i++ {
		h.Observe(int64(i))
		h.Observe(int64(10 + i))
	}
	if got := h.Count(); got != 20 {
		t.Fatalf("count = %d, want 20", got)
	}
	// p50 lands at the boundary of the first bucket, p99 inside the second.
	if p50 := h.Quantile(0.5); p50 != 10 {
		t.Fatalf("p50 = %v, want 10", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 10 || p99 > 20 {
		t.Fatalf("p99 = %v, want in (10, 20]", p99)
	}
	// Overflow observations report the top finite bound.
	h.Observe(1000)
	for i := 0; i < 100; i++ {
		h.Observe(999)
	}
	if q := h.Quantile(0.99); q != 40 {
		t.Fatalf("overflow p99 = %v, want 40 (top bound)", q)
	}
}

func TestHistogramScale(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets, LatencyScale)
	h.Observe(int64(50 * time.Millisecond))
	if got := h.Sum(); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("scaled sum = %v, want 0.05", got)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Mean != s.Sum {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 <= 0.025 || s.P50 > 0.05 {
		t.Fatalf("snapshot p50 = %v, want in (0.025, 0.05]", s.P50)
	}
}

// TestNilSafety: every recorder must be a no-op on nil receivers so a
// disabled metrics struct needs no call-site branches.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil recorders must read zero")
	}
	if got := r.Counter("x_total", "x"); got != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("y", "y", func() float64 { return 1 })
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
	var hm *HTTPMetrics
	if got := hm.Wrap("/x", nil); got != nil {
		t.Fatal("nil middleware must return next unchanged")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash_total", "clash")
	defer func() {
		if recover() == nil {
			t.Fatal("registering clash_total as a gauge should panic")
		}
	}()
	reg.Gauge("clash_total", "clash")
}

func TestGaugeFuncReplace(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("replace_me", "v", func() float64 { return 1 })
	reg.GaugeFunc("replace_me", "v", func() float64 { return 2 })
	var b safeBuilder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !containsLine(got, "replace_me 2") {
		t.Fatalf("exposition after replace:\n%s", got)
	}
}
