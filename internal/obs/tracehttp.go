package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// TraceparentHeader is the W3C Trace Context header carrying the
// trace ID, parent span ID and sampling flag across HTTP hops:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
const TraceparentHeader = "traceparent"

// Traceparent renders the W3C traceparent value announcing s as the
// parent of downstream work. Empty for a nil span.
func Traceparent(s *Span) string {
	if s == nil {
		return ""
	}
	flags := "-00"
	if s.sampled || s.forced {
		flags = "-01"
	}
	return "00-" + s.TraceID + "-" + s.SpanID + flags
}

// TraceparentFrom renders the traceparent value for the span carried
// by ctx, or "" when no span is attached — the form clients use when
// injecting outbound headers.
func TraceparentFrom(ctx context.Context) string {
	return Traceparent(SpanFrom(ctx))
}

// ParseTraceparent decodes a W3C traceparent header value. ok is
// false for anything malformed (wrong version, lengths, non-hex or
// all-zero IDs); callers fall back to starting a fresh trace.
func ParseTraceparent(h string) (traceID, parentID string, sampled bool, ok bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-yyyyyyyyyyyyyyyy-zz
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false, false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !validHex(traceID, 32) || !validHex(parentID, 16) {
		return "", "", false, false
	}
	f1, f2 := h[53], h[54]
	if !isHexByte(f1) || !isHexByte(f2) {
		return "", "", false, false
	}
	sampled = hexVal(f2)&1 == 1
	return traceID, parentID, sampled, true
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

func hexVal(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// wireSpan is the /v1/trace JSON shape of one span.
type wireSpan struct {
	TraceID    string      `json:"trace_id"`
	SpanID     string      `json:"span_id"`
	ParentID   string      `json:"parent_id,omitempty"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Error      string      `json:"error,omitempty"`
	Attrs      []SpanAttr  `json:"attrs,omitempty"`
	Events     []wireEvent `json:"events,omitempty"`
}

type wireEvent struct {
	Name     string     `json:"name"`
	OffsetMS float64    `json:"offset_ms"`
	Attrs    []SpanAttr `json:"attrs,omitempty"`
}

func toWire(s *Span) wireSpan {
	w := wireSpan{
		TraceID:    s.TraceID,
		SpanID:     s.SpanID,
		ParentID:   s.ParentID,
		Name:       s.Name,
		Start:      s.Start,
		DurationMS: float64(s.Duration) / float64(time.Millisecond),
		Error:      s.Err,
		Attrs:      s.Attrs,
	}
	for _, e := range s.Events {
		w.Events = append(w.Events, wireEvent{
			Name:     e.Name,
			OffsetMS: float64(e.Offset) / float64(time.Millisecond),
			Attrs:    e.Attrs,
		})
	}
	return w
}

// Handler serves the trace ring as JSON:
//
//	GET /v1/trace                  -> {"spans":[...]} newest first
//	GET /v1/trace?limit=N          -> at most N spans
//	GET /v1/trace?trace_id=<32hex> -> one trace, spans ordered by start
//
// The ring is a bounded flight recorder: spans evicted by newer
// traffic are gone, and only kept spans (sampled, errored, slow,
// forced) appear at all.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var spans []*Span
		if id := r.URL.Query().Get("trace_id"); id != "" {
			if !validHex(id, 32) {
				http.Error(w, "trace_id must be 32 lowercase hex chars", http.StatusBadRequest)
				return
			}
			spans = t.TraceSpans(id)
		} else {
			limit := 100
			if v := r.URL.Query().Get("limit"); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
					return
				}
				limit = n
			}
			spans = t.Spans(limit)
		}
		out := struct {
			Spans []wireSpan `json:"spans"`
			Count int        `json:"count"`
		}{Spans: make([]wireSpan, 0, len(spans)), Count: len(spans)}
		for _, s := range spans {
			out.Spans = append(out.Spans, toWire(s))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
