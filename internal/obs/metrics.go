package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops), so a
// nil *Counter is the no-op recorder.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down, stored as atomic
// bits. The zero value is ready; methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path
// metrics in this codebase, counters and histograms are).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are nanosecond upper bounds spanning 10µs–10s,
// for use with LatencyScale so expositions read in seconds.
var DefaultLatencyBuckets = []int64{
	int64(10 * time.Microsecond),
	int64(25 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(10 * time.Second),
}

// LatencyScale divides nanosecond observations into seconds at
// exposition time.
const LatencyScale = 1e9

// DefaultSizeBuckets are upper bounds for count-shaped distributions
// (batch sizes, delta sizes), used with scale 1.
var DefaultSizeBuckets = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram over int64 observations
// (typically nanoseconds). Buckets are cumulative at exposition time;
// scale divides observed values for presentation (e.g. LatencyScale
// renders nanoseconds as seconds). Observe is one linear bucket scan
// plus two atomic adds — no locks, no allocation. Methods are nil-safe
// no-ops so a nil *Histogram is the no-op recorder.
type Histogram struct {
	bounds []int64 // ascending upper bounds; implicit +Inf bucket after
	scale  float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram builds an unregistered histogram (the registry
// constructor is the usual entry point). Bounds must be ascending;
// scale <= 0 defaults to 1.
func NewHistogram(bounds []int64, scale float64) *Histogram {
	if scale <= 0 {
		scale = 1
	}
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, scale: scale, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the scaled sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / h.scale
}

// Quantile estimates the q-quantile (0 < q <= 1, e.g. 0.5, 0.99) in
// scaled units by linear interpolation inside the winning bucket. The
// overflow bucket reports the highest finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	var cum uint64
	var counts = make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	for i, n := range counts {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1]) / h.scale
			}
			lower := int64(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return (float64(lower) + frac*float64(h.bounds[i]-lower)) / h.scale
		}
		cum += n
	}
	return float64(h.bounds[len(h.bounds)-1]) / h.scale
}

// HistogramSnapshot is a point-in-time summary of a histogram in
// scaled units.
type HistogramSnapshot struct {
	Count uint64
	Sum   float64
	Mean  float64
	P50   float64
	P99   float64
}

// Snapshot summarizes the histogram for stats surfaces.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), P50: h.Quantile(0.5), P99: h.Quantile(0.99)}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}
