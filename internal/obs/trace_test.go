package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndParentLinks(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	ctx, root := tr.Start(context.Background(), "root")
	if root == nil || !root.Recording() {
		t.Fatalf("root span not recording at rate 1")
	}
	root.SetAttr("kind", "test")
	root.SetInt("count", 42)
	root.SetBool("ok", true)
	root.Event("checkpoint", SpanAttr{Key: "k", Value: "v"})

	_, child := tr.Start(ctx, "child")
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace %s != root trace %s", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Fatalf("child parent %s != root span %s", child.ParentID, root.SpanID)
	}
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Spans(0)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "root" || spans[1].Name != "child" {
		t.Fatalf("span order %s,%s; want root,child", spans[0].Name, spans[1].Name)
	}
	got := map[string]string{}
	for _, a := range spans[0].Attrs {
		got[a.Key] = a.Value
	}
	if got["kind"] != "test" || got["count"] != "42" || got["ok"] != "true" {
		t.Fatalf("root attrs = %v", got)
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Name != "checkpoint" {
		t.Fatalf("root events = %v", spans[0].Events)
	}

	byTrace := tr.TraceSpans(root.TraceID)
	if len(byTrace) != 2 || byTrace[0].Name != "root" {
		t.Fatalf("TraceSpans = %v, want [root child] by start", byTrace)
	}
}

func TestSamplingRateZeroKeepsErrorsSlowAndForced(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: 10 * time.Millisecond})

	_, healthy := tr.Start(context.Background(), "healthy")
	healthy.End()
	if n := len(tr.Spans(0)); n != 0 {
		t.Fatalf("healthy span recorded at rate 0 (%d spans)", n)
	}

	_, failed := tr.Start(context.Background(), "failed")
	failed.Fail(errors.New("boom"))
	failed.End()

	_, slow := tr.Start(context.Background(), "slow")
	slow.Start = slow.Start.Add(-time.Second) // fake a long duration
	slow.End()

	_, forced := tr.Start(context.Background(), "forced")
	forced.ForceSample()
	if !forced.Sampled() {
		t.Fatalf("forced span not Sampled")
	}
	forced.End()

	names := map[string]bool{}
	for _, s := range tr.Spans(0) {
		names[s.Name] = true
	}
	for _, want := range []string{"failed", "slow", "forced"} {
		if !names[want] {
			t.Fatalf("span %q not kept at rate 0 (got %v)", want, names)
		}
	}
}

func TestSamplingInheritedByChildren(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	if child.Recording() != root.Recording() {
		t.Fatalf("child sampling %v != root %v", child.Recording(), root.Recording())
	}
	child.End()
	root.End()
}

func TestRingWrapNewestFirst(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 4, SampleRate: 1})
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "span"+formatInt(int64(i)))
		s.End()
	}
	spans := tr.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, want := range []string{"span9", "span8", "span7", "span6"} {
		if spans[i].Name != want {
			t.Fatalf("spans[%d] = %s, want %s", i, spans[i].Name, want)
		}
	}
	if got := tr.Spans(2); len(got) != 2 || got[0].Name != "span9" {
		t.Fatalf("Spans(2) = %v", got)
	}
}

func TestNilTracerAndNilSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	if SpanFrom(ctx) != nil {
		t.Fatalf("nil span attached to context")
	}
	// All recorder methods must be safe on the nil span.
	s.SetAttr("k", "v")
	s.SetInt("k", 1)
	s.SetBool("k", true)
	s.Event("e")
	s.Fail(errors.New("x"))
	s.ForceSample()
	s.End()
	if s.Recording() || s.Sampled() {
		t.Fatalf("nil span claims to record")
	}
	if tr.Spans(0) != nil || tr.TraceSpans(strings.Repeat("a", 32)) != nil {
		t.Fatalf("nil tracer returned spans")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	_, s := tr.Start(context.Background(), "root")
	h := Traceparent(s)
	traceID, parentID, sampled, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q rejected", h)
	}
	if traceID != s.TraceID || parentID != s.SpanID || !sampled {
		t.Fatalf("round trip: got (%s,%s,%v) want (%s,%s,true)", traceID, parentID, sampled, s.TraceID, s.SpanID)
	}
	s.End()

	unsampled := NewTracer(TracerOptions{SampleRate: 0})
	_, u := unsampled.Start(context.Background(), "root")
	if _, _, sampled, ok := ParseTraceparent(Traceparent(u)); !ok || sampled {
		t.Fatalf("unsampled traceparent = %q, want valid with flag 00", Traceparent(u))
	}
	u.End()

	if Traceparent(nil) != "" {
		t.Fatalf("nil span traceparent = %q", Traceparent(nil))
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected")
	}
	bad := []string{
		"",
		"garbage",
		valid[:54],       // too short
		valid + "0",      // too long
		"01" + valid[2:], // unknown version
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",                 // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01", // all-zero parent
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",                // uppercase hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",                // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",                // bad flags
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("malformed header %q accepted", h)
		}
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0})
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, s := tr.StartRemote(context.Background(), "server", h)
	if s.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || s.ParentID != "00f067aa0ba902b7" {
		t.Fatalf("remote span (%s,%s) does not continue header", s.TraceID, s.ParentID)
	}
	if !s.Recording() {
		t.Fatalf("remote sampled flag not honored")
	}
	s.End()

	_, fresh := tr.StartRemote(context.Background(), "server", "garbage")
	if fresh.ParentID != "" || !validHex(fresh.TraceID, 32) {
		t.Fatalf("malformed header did not fall back to a fresh trace: %+v", fresh)
	}
	fresh.End()
}

func TestStartLink(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 0})
	traceID := strings.Repeat("ab", 16)
	parentID := strings.Repeat("cd", 8)
	_, s := tr.StartLink(context.Background(), "linked", traceID, parentID)
	if s.TraceID != traceID || s.ParentID != parentID || !s.Recording() {
		t.Fatalf("linked span %+v", s)
	}
	s.End()
	if got := tr.TraceSpans(traceID); len(got) != 1 {
		t.Fatalf("linked span not recorded: %v", got)
	}

	_, fallback := tr.StartLink(context.Background(), "linked", "nope", parentID)
	if fallback.TraceID == "nope" {
		t.Fatalf("invalid link IDs accepted")
	}
	fallback.End()
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.SetInt("scanned", 7)
	child.End()
	root.Fail(errors.New("partial"))
	root.End()
	_, other := tr.Start(context.Background(), "other")
	other.End()

	h := tr.Handler()
	type wire struct {
		Spans []struct {
			TraceID  string `json:"trace_id"`
			SpanID   string `json:"span_id"`
			ParentID string `json:"parent_id"`
			Name     string `json:"name"`
			Error    string `json:"error"`
			Attrs    []SpanAttr
		} `json:"spans"`
		Count int `json:"count"`
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("list: code %d, type %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var list wire
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if list.Count != 3 {
		t.Fatalf("list count = %d, want 3", list.Count)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?trace_id="+root.TraceID, nil))
	var one wire
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if one.Count != 2 || one.Spans[0].Name != "root" || one.Spans[1].ParentID != root.SpanID {
		t.Fatalf("trace lookup = %+v", one)
	}
	if one.Spans[0].Error != "partial" {
		t.Fatalf("error not serialized: %+v", one.Spans[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?limit=1", nil))
	var limited wire
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil {
		t.Fatalf("limit decode: %v", err)
	}
	if limited.Count != 1 {
		t.Fatalf("limit=1 returned %d spans", limited.Count)
	}

	for _, bad := range []string{"/v1/trace?trace_id=zz", "/v1/trace?limit=-1", "/v1/trace?limit=x"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Fatalf("%s: code %d, want 400", bad, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/trace", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: code %d, want 405", rec.Code)
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{SampleRate: 1, Registry: reg})
	_, ok := tr.Start(context.Background(), "op")
	ok.End()
	_, bad := tr.Start(context.Background(), "op")
	bad.Fail(errors.New("x"))
	bad.End()

	dropTr := NewTracer(TracerOptions{SampleRate: 0, Registry: reg})
	_, dropped := dropTr.Start(context.Background(), "op")
	dropped.End()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Both tracers share the registry; per-name metrics record every
	// finished span, dropped or not — so "op" counts all three.
	for _, want := range []string{
		`psp_trace_spans_total{span="op"} 3`,
		`psp_trace_span_errors_total{span="op"} 1`,
		`psp_trace_spans_recorded_total 2`,
		`psp_trace_spans_dropped_total 1`,
		`psp_trace_span_seconds`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBuildInfoMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "1.2.3")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `psp_build_info{`) || !strings.Contains(out, `version="1.2.3"`) {
		t.Fatalf("exposition missing build info:\n%s", out)
	}
	for _, want := range []string{"psp_process_start_time_seconds", "psp_process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Capacity: 64, SampleRate: 1, Registry: reg})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.SetInt("i", int64(i))
				child.End()
				root.End()
			}
		}(g)
	}
	// Concurrent readers must never block or tear.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, s := range tr.Spans(0) {
				if s.TraceID == "" {
					t.Error("torn span read")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}
