package vehicle

import "fmt"

// ReferenceArchitecture builds the simple vehicle architecture of Fig. 4:
// a central gateway bridging the powertrain, chassis, body, infotainment
// and communication domains, with the OBD port attached to the gateway
// and LIN sub-buses below the body domain.
//
// Surface classes follow the figure's colour coding:
//
//   - long-range (green): V2X connectivity, telematics (TCU), infotainment
//     head unit — reachable over the internet or cellular links;
//   - short-range (blue): units with Bluetooth / Wi-Fi / key-fob RF
//     reach (ICM, SCU, body access control);
//   - physical (red): powertrain and chassis units reachable only with
//     physical or OBD access.
func ReferenceArchitecture() (*Topology, error) {
	t := NewTopology("Fig.4 reference vehicle")

	ecus := []*ECU{
		// Communication domain.
		{ID: "GW", Name: "Central Gateway", Domain: DomainCommunication,
			Surfaces: []SurfaceClass{SurfacePhysical}},
		{ID: "TCU", Name: "Telematics Control Unit", Domain: DomainCommunication,
			Surfaces: []SurfaceClass{SurfaceLongRange, SurfaceShortRange, SurfacePhysical}},
		{ID: "V2X", Name: "V2X Communication Unit", Domain: DomainCommunication,
			Surfaces: []SurfaceClass{SurfaceLongRange, SurfaceShortRange, SurfacePhysical}},

		// Infotainment domain.
		{ID: "ICM", Name: "Infotainment Control Module", Domain: DomainInfotainment,
			Surfaces: []SurfaceClass{SurfaceLongRange, SurfaceShortRange, SurfacePhysical}},

		// On-board diagnostics.
		{ID: "OBD", Name: "OBD-II Port", Domain: DomainDiagnostics,
			Surfaces: []SurfaceClass{SurfacePhysical}},

		// Powertrain domain (hard real-time, safety critical).
		{ID: "ECM", Name: "Engine Control Module", Domain: DomainPowertrain,
			Surfaces: []SurfaceClass{SurfacePhysical}, SafetyCritical: true},
		{ID: "TCM", Name: "Transmission Control Module", Domain: DomainPowertrain,
			Surfaces: []SurfaceClass{SurfacePhysical}, SafetyCritical: true},
		{ID: "DEFC", Name: "Diesel Exhaust Fluid Controller", Domain: DomainPowertrain,
			Surfaces: []SurfaceClass{SurfacePhysical}, SafetyCritical: true},

		// Chassis domain.
		{ID: "BCU", Name: "Brake Control Unit", Domain: DomainChassis,
			Surfaces: []SurfaceClass{SurfacePhysical}, SafetyCritical: true},
		{ID: "SCU", Name: "Steering Control Unit", Domain: DomainChassis,
			Surfaces: []SurfaceClass{SurfaceShortRange, SurfacePhysical}, SafetyCritical: true},
		{ID: "DCU", Name: "Damping Control Unit", Domain: DomainChassis,
			Surfaces: []SurfaceClass{SurfacePhysical}},

		// Body domain.
		{ID: "BCM", Name: "Body Control Module", Domain: DomainBody,
			Surfaces: []SurfaceClass{SurfaceShortRange, SurfacePhysical}},
		{ID: "LCM", Name: "Light Control Module", Domain: DomainBody,
			Surfaces: []SurfaceClass{SurfacePhysical}},
		{ID: "SCM", Name: "Seat Control Module", Domain: DomainBody,
			Surfaces: []SurfaceClass{SurfacePhysical}},
		{ID: "WCU", Name: "Window Control Unit", Domain: DomainBody,
			Surfaces: []SurfaceClass{SurfacePhysical}},
	}
	for _, e := range ecus {
		if err := t.AddECU(e); err != nil {
			return nil, fmt.Errorf("reference architecture: %w", err)
		}
	}

	buses := []*Bus{
		{ID: "CAN-PT", Kind: BusCAN, ECUIDs: []string{"GW", "ECM", "TCM", "DEFC"}},
		{ID: "CAN-CH", Kind: BusCAN, ECUIDs: []string{"GW", "BCU", "SCU", "DCU"}},
		{ID: "CAN-BODY", Kind: BusCAN, ECUIDs: []string{"GW", "BCM"}},
		{ID: "LIN-BODY", Kind: BusLIN, ECUIDs: []string{"BCM", "LCM", "SCM", "WCU"}},
		{ID: "CAN-INFO", Kind: BusCAN, ECUIDs: []string{"GW", "ICM", "TCU", "V2X"}},
		{ID: "CAN-DIAG", Kind: BusCAN, ECUIDs: []string{"GW", "OBD"}},
	}
	for _, b := range buses {
		if err := t.AddBus(b); err != nil {
			return nil, fmt.Errorf("reference architecture: %w", err)
		}
	}
	return t, nil
}
