package vehicle

import (
	"testing"
	"testing/quick"
)

func mustReference(t *testing.T) *Topology {
	t.Helper()
	top, err := ReferenceArchitecture()
	if err != nil {
		t.Fatalf("ReferenceArchitecture(): %v", err)
	}
	return top
}

func TestReferenceArchitectureShape(t *testing.T) {
	top := mustReference(t)
	if got := len(top.ECUs()); got != 15 {
		t.Errorf("reference architecture has %d ECUs, want 15", got)
	}
	if got := len(top.Buses()); got != 6 {
		t.Errorf("reference architecture has %d buses, want 6", got)
	}
	if top.ECU("ECM") == nil || top.ECU("GW") == nil || top.ECU("OBD") == nil {
		t.Fatal("reference architecture misses a core ECU")
	}
	if top.ECU("GHOST") != nil {
		t.Error("unknown ECU lookup returned non-nil")
	}
}

func TestSurfaceClassificationFig4(t *testing.T) {
	top := mustReference(t)

	// Long-range (green in Fig. 4): connected units only.
	longRange := map[string]bool{}
	for _, e := range top.BySurface(SurfaceLongRange) {
		longRange[e.ID] = true
	}
	for _, id := range []string{"TCU", "V2X", "ICM"} {
		if !longRange[id] {
			t.Errorf("%s should be long-range reachable", id)
		}
	}
	for _, id := range []string{"ECM", "BCU", "OBD", "GW"} {
		if longRange[id] {
			t.Errorf("%s should NOT be long-range reachable", id)
		}
	}

	// Powertrain units are physical-only: the heart of the paper's
	// argument about misleading remote-biased feasibility models.
	for _, id := range []string{"ECM", "TCM", "DEFC"} {
		e := top.ECU(id)
		if !e.Reachable(SurfacePhysical) {
			t.Errorf("%s should be physically reachable", id)
		}
		if e.Reachable(SurfaceLongRange) || e.Reachable(SurfaceShortRange) {
			t.Errorf("%s should be reachable only physically", id)
		}
		if !e.SafetyCritical {
			t.Errorf("%s should be safety critical", id)
		}
	}

	// Every ECU is at least physically reachable.
	for _, e := range top.ECUs() {
		if !e.Reachable(SurfacePhysical) {
			t.Errorf("%s lacks the physical surface", e.ID)
		}
	}
}

func TestByDomain(t *testing.T) {
	top := mustReference(t)
	pt := top.ByDomain(DomainPowertrain)
	if len(pt) != 3 {
		t.Fatalf("powertrain domain has %d ECUs, want 3", len(pt))
	}
	// Sorted by ID.
	want := []string{"DEFC", "ECM", "TCM"}
	for i, e := range pt {
		if e.ID != want[i] {
			t.Errorf("ByDomain(Powertrain)[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestRouteOBDToECM(t *testing.T) {
	top := mustReference(t)
	hops, err := top.Route("OBD", "ECM")
	if err != nil {
		t.Fatal(err)
	}
	// OBD → GW on the diagnostic CAN, GW → ECM on the powertrain CAN.
	if len(hops) != 2 {
		t.Fatalf("Route(OBD, ECM) = %v, want 2 hops", hops)
	}
	if hops[0].From != "OBD" || hops[0].To != "GW" || hops[0].BusID != "CAN-DIAG" {
		t.Errorf("first hop = %+v, want OBD→GW via CAN-DIAG", hops[0])
	}
	if hops[1].From != "GW" || hops[1].To != "ECM" || hops[1].BusID != "CAN-PT" {
		t.Errorf("second hop = %+v, want GW→ECM via CAN-PT", hops[1])
	}
}

func TestRouteSameECU(t *testing.T) {
	top := mustReference(t)
	hops, err := top.Route("ECM", "ECM")
	if err != nil {
		t.Fatal(err)
	}
	if hops != nil {
		t.Errorf("Route(ECM, ECM) = %v, want nil", hops)
	}
}

func TestRouteErrors(t *testing.T) {
	top := mustReference(t)
	if _, err := top.Route("NOPE", "ECM"); err == nil {
		t.Error("Route from unknown ECU succeeded, want error")
	}
	if _, err := top.Route("ECM", "NOPE"); err == nil {
		t.Error("Route to unknown ECU succeeded, want error")
	}
	// A disconnected ECU has no route.
	iso := NewTopology("isolated")
	if err := iso.AddECU(&ECU{ID: "A", Domain: DomainBody, Surfaces: []SurfaceClass{SurfacePhysical}}); err != nil {
		t.Fatal(err)
	}
	if err := iso.AddECU(&ECU{ID: "B", Domain: DomainBody, Surfaces: []SurfaceClass{SurfacePhysical}}); err != nil {
		t.Fatal(err)
	}
	if _, err := iso.Route("A", "B"); err == nil {
		t.Error("Route between disconnected ECUs succeeded, want error")
	}
}

func TestAttackRoutesToECM(t *testing.T) {
	top := mustReference(t)
	routes, err := top.AttackRoutes(SurfaceLongRange, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	// All three long-range entry points can reach the ECM through the
	// gateway — but each route has ≥2 hops, i.e. remote attackers must
	// cross the gateway.
	if len(routes) != 3 {
		t.Fatalf("AttackRoutes(long-range, ECM) has %d entries, want 3: %v", len(routes), routes)
	}
	for entry, hops := range routes {
		if len(hops) < 2 {
			t.Errorf("entry %s reaches ECM in %d hops, want ≥2 (must cross gateway)", entry, len(hops))
		}
	}
	// Physical attackers include the ECM itself (0 hops: direct access).
	physRoutes, err := top.AttackRoutes(SurfacePhysical, "ECM")
	if err != nil {
		t.Fatal(err)
	}
	hops, ok := physRoutes["ECM"]
	if !ok {
		t.Fatal("physical attack routes miss the direct ECM entry")
	}
	if len(hops) != 0 {
		t.Errorf("direct ECM access has %d hops, want 0", len(hops))
	}
}

func TestAttackRoutesUnknownTarget(t *testing.T) {
	top := mustReference(t)
	if _, err := top.AttackRoutes(SurfacePhysical, "NOPE"); err == nil {
		t.Error("AttackRoutes to unknown target succeeded, want error")
	}
}

func TestAddECUValidation(t *testing.T) {
	top := NewTopology("t")
	tests := []struct {
		name string
		ecu  *ECU
	}{
		{"nil", nil},
		{"empty ID", &ECU{ID: " ", Domain: DomainBody, Surfaces: []SurfaceClass{SurfacePhysical}}},
		{"bad domain", &ECU{ID: "X", Domain: 0, Surfaces: []SurfaceClass{SurfacePhysical}}},
		{"no surfaces", &ECU{ID: "X", Domain: DomainBody}},
		{"bad surface", &ECU{ID: "X", Domain: DomainBody, Surfaces: []SurfaceClass{0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := top.AddECU(tt.ecu); err == nil {
				t.Error("AddECU succeeded, want error")
			}
		})
	}
	ok := &ECU{ID: "X", Domain: DomainBody, Surfaces: []SurfaceClass{SurfacePhysical}}
	if err := top.AddECU(ok); err != nil {
		t.Fatalf("AddECU(valid): %v", err)
	}
	if err := top.AddECU(ok); err == nil {
		t.Error("duplicate AddECU succeeded, want error")
	}
}

func TestAddBusValidation(t *testing.T) {
	top := NewTopology("t")
	for _, id := range []string{"A", "B"} {
		if err := top.AddECU(&ECU{ID: id, Domain: DomainBody, Surfaces: []SurfaceClass{SurfacePhysical}}); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		name string
		bus  *Bus
	}{
		{"nil", nil},
		{"empty ID", &Bus{ID: "", Kind: BusCAN, ECUIDs: []string{"A", "B"}}},
		{"bad kind", &Bus{ID: "X", Kind: 0, ECUIDs: []string{"A", "B"}}},
		{"single ECU", &Bus{ID: "X", Kind: BusCAN, ECUIDs: []string{"A"}}},
		{"unknown ECU", &Bus{ID: "X", Kind: BusCAN, ECUIDs: []string{"A", "Z"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := top.AddBus(tt.bus); err == nil {
				t.Error("AddBus succeeded, want error")
			}
		})
	}
	ok := &Bus{ID: "X", Kind: BusCAN, ECUIDs: []string{"A", "B"}}
	if err := top.AddBus(ok); err != nil {
		t.Fatalf("AddBus(valid): %v", err)
	}
	if err := top.AddBus(ok); err == nil {
		t.Error("duplicate AddBus succeeded, want error")
	}
}

// Property: every route returned by Route is well-formed — consecutive
// hops chain, endpoints match, and every hop's bus actually attaches both
// its ECUs.
func TestRouteWellFormedProperty(t *testing.T) {
	top := mustReference(t)
	all := top.ECUs()
	f := func(i, j uint8) bool {
		from := all[int(i)%len(all)]
		to := all[int(j)%len(all)]
		hops, err := top.Route(from.ID, to.ID)
		if err != nil {
			return false // reference architecture is fully connected
		}
		if from.ID == to.ID {
			return hops == nil
		}
		if len(hops) == 0 || hops[0].From != from.ID || hops[len(hops)-1].To != to.ID {
			return false
		}
		for k, h := range hops {
			if k > 0 && hops[k-1].To != h.From {
				return false
			}
			bus := top.Bus(h.BusID)
			if bus == nil {
				return false
			}
			attached := map[string]bool{}
			for _, id := range bus.ECUIDs {
				attached[id] = true
			}
			if !attached[h.From] || !attached[h.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumStrings(t *testing.T) {
	if DomainPowertrain.String() != "PowerTrain" {
		t.Errorf("DomainPowertrain.String() = %q", DomainPowertrain.String())
	}
	if Domain(99).String() != "Domain(99)" {
		t.Errorf("Domain(99).String() = %q", Domain(99).String())
	}
	if BusCAN.String() != "CAN" || BusKind(0).Valid() {
		t.Error("BusKind string/valid mismatch")
	}
	if SurfaceLongRange.String() != "Long-Range Attack" {
		t.Errorf("SurfaceLongRange.String() = %q", SurfaceLongRange.String())
	}
	if len(AllDomains()) != 6 {
		t.Errorf("AllDomains() = %d domains, want 6", len(AllDomains()))
	}
}
