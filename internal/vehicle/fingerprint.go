package vehicle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a stable content hash of the topology: same ECUs,
// buses and attachments (in any insertion order) yield the same
// fingerprint, and any structural edit changes it. Derivation layers use
// it to decide whether topology-derived artifacts (items, attack paths)
// are stale without diffing the graphs.
func (t *Topology) Fingerprint() string {
	var b strings.Builder
	b.WriteString("topology|")
	b.WriteString(t.name)
	for _, e := range t.ECUs() {
		fmt.Fprintf(&b, "\necu|%s|%s|%s|%v|", e.ID, e.Name, e.Domain, e.SafetyCritical)
		surfaces := make([]string, 0, len(e.Surfaces))
		for _, s := range e.Surfaces {
			surfaces = append(surfaces, s.String())
		}
		sort.Strings(surfaces)
		b.WriteString(strings.Join(surfaces, ","))
	}
	for _, bus := range t.Buses() {
		fmt.Fprintf(&b, "\nbus|%s|%s|", bus.ID, bus.Kind)
		ids := append([]string(nil), bus.ECUIDs...)
		sort.Strings(ids)
		b.WriteString(strings.Join(ids, ","))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}
