package vehicle

import "fmt"

// Domain is a functional domain of the vehicle architecture.
type Domain int

// Functional domains, following Fig. 4 of the paper.
const (
	DomainPowertrain Domain = iota + 1
	DomainChassis
	DomainBody
	DomainInfotainment
	DomainCommunication
	DomainDiagnostics
)

var domainNames = map[Domain]string{
	DomainPowertrain:    "PowerTrain",
	DomainChassis:       "Chassis",
	DomainBody:          "Body",
	DomainInfotainment:  "Infotainment",
	DomainCommunication: "Communication",
	DomainDiagnostics:   "On Board Diagnostic",
}

// String returns the domain name used in the paper's figure.
func (d Domain) String() string {
	if s, ok := domainNames[d]; ok {
		return s
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// Valid reports whether d is a defined domain.
func (d Domain) Valid() bool { return d >= DomainPowertrain && d <= DomainDiagnostics }

// AllDomains returns the six domains in declaration order.
func AllDomains() []Domain {
	return []Domain{
		DomainPowertrain, DomainChassis, DomainBody,
		DomainInfotainment, DomainCommunication, DomainDiagnostics,
	}
}

// BusKind is the technology of a communication bus segment.
type BusKind int

// Bus technologies present in the reference architecture.
const (
	BusCAN BusKind = iota + 1
	BusLIN
	BusEthernet
	BusWireless // V2X / cellular / Wi-Fi / Bluetooth attachment point
)

var busKindNames = map[BusKind]string{
	BusCAN:      "CAN",
	BusLIN:      "LIN",
	BusEthernet: "Ethernet",
	BusWireless: "Wireless",
}

// String returns the bus technology name.
func (k BusKind) String() string {
	if s, ok := busKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BusKind(%d)", int(k))
}

// Valid reports whether k is a defined bus technology.
func (k BusKind) Valid() bool { return k >= BusCAN && k <= BusWireless }

// SurfaceClass is the attack-surface classification of an ECU, matching
// the three attack types Upstream's reports distinguish and Fig. 4
// colour-codes (green = long-range, blue = short-range, red = physical).
type SurfaceClass int

// Surface classes.
const (
	SurfacePhysical SurfaceClass = iota + 1 // requires physical access
	SurfaceShortRange
	SurfaceLongRange
)

var surfaceNames = map[SurfaceClass]string{
	SurfacePhysical:   "Physical Attack",
	SurfaceShortRange: "Short-Range Attack",
	SurfaceLongRange:  "Long-Range Attack",
}

// String returns the surface class name.
func (s SurfaceClass) String() string {
	if n, ok := surfaceNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SurfaceClass(%d)", int(s))
}

// Valid reports whether s is a defined surface class.
func (s SurfaceClass) Valid() bool { return s >= SurfacePhysical && s <= SurfaceLongRange }
