package vehicle

import (
	"fmt"
	"sort"
	"strings"
)

// ECU is an electronic control unit in the vehicle architecture.
type ECU struct {
	// ID is the short mnemonic used in Fig. 4 (ECM, TCM, BCM, ...).
	ID string
	// Name is the full unit name.
	Name string
	// Domain is the functional domain hosting the ECU.
	Domain Domain
	// Surfaces lists the attack-surface classes through which the ECU is
	// directly reachable. Every ECU is at least physically reachable.
	Surfaces []SurfaceClass
	// SafetyCritical marks hard real-time safety relevance (powertrain /
	// chassis control units).
	SafetyCritical bool
}

// Reachable reports whether the ECU is directly reachable through the
// given surface class.
func (e *ECU) Reachable(s SurfaceClass) bool {
	for _, c := range e.Surfaces {
		if c == s {
			return true
		}
	}
	return false
}

// Bus is a communication segment connecting two or more ECUs.
type Bus struct {
	// ID names the bus segment (e.g. "CAN-PT").
	ID string
	// Kind is the bus technology.
	Kind BusKind
	// ECUIDs lists the attached units.
	ECUIDs []string
}

// Topology is the vehicle network: ECUs connected by buses, typically
// star-shaped around a central gateway.
type Topology struct {
	name  string
	ecus  map[string]*ECU
	buses map[string]*Bus
	// adjacency: ECU ID → neighbouring ECU IDs (via any shared bus).
	adj map[string]map[string]string // neighbour → bus ID used
}

// NewTopology returns an empty topology with the given name.
func NewTopology(name string) *Topology {
	return &Topology{
		name:  name,
		ecus:  make(map[string]*ECU),
		buses: make(map[string]*Bus),
		adj:   make(map[string]map[string]string),
	}
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// AddECU registers an ECU. Adding a duplicate or invalid ECU is an error.
func (t *Topology) AddECU(e *ECU) error {
	if e == nil || strings.TrimSpace(e.ID) == "" {
		return fmt.Errorf("vehicle: ECU with empty ID")
	}
	if !e.Domain.Valid() {
		return fmt.Errorf("vehicle: ECU %s: invalid domain %d", e.ID, int(e.Domain))
	}
	if len(e.Surfaces) == 0 {
		return fmt.Errorf("vehicle: ECU %s: no attack surfaces (every ECU is at least physically reachable)", e.ID)
	}
	for _, s := range e.Surfaces {
		if !s.Valid() {
			return fmt.Errorf("vehicle: ECU %s: invalid surface class %d", e.ID, int(s))
		}
	}
	if _, dup := t.ecus[e.ID]; dup {
		return fmt.Errorf("vehicle: duplicate ECU %s", e.ID)
	}
	t.ecus[e.ID] = e
	return nil
}

// AddBus registers a bus segment. All attached ECUs must already exist.
func (t *Topology) AddBus(b *Bus) error {
	if b == nil || strings.TrimSpace(b.ID) == "" {
		return fmt.Errorf("vehicle: bus with empty ID")
	}
	if !b.Kind.Valid() {
		return fmt.Errorf("vehicle: bus %s: invalid kind %d", b.ID, int(b.Kind))
	}
	if len(b.ECUIDs) < 2 {
		return fmt.Errorf("vehicle: bus %s: needs at least two attached ECUs", b.ID)
	}
	if _, dup := t.buses[b.ID]; dup {
		return fmt.Errorf("vehicle: duplicate bus %s", b.ID)
	}
	for _, id := range b.ECUIDs {
		if _, ok := t.ecus[id]; !ok {
			return fmt.Errorf("vehicle: bus %s attaches unknown ECU %s", b.ID, id)
		}
	}
	t.buses[b.ID] = b
	for _, a := range b.ECUIDs {
		for _, z := range b.ECUIDs {
			if a == z {
				continue
			}
			if t.adj[a] == nil {
				t.adj[a] = make(map[string]string)
			}
			if _, ok := t.adj[a][z]; !ok {
				t.adj[a][z] = b.ID
			}
		}
	}
	return nil
}

// ECU returns the ECU with the given ID, or nil.
func (t *Topology) ECU(id string) *ECU { return t.ecus[id] }

// Bus returns the bus with the given ID, or nil.
func (t *Topology) Bus(id string) *Bus { return t.buses[id] }

// ECUs returns all ECUs sorted by ID.
func (t *Topology) ECUs() []*ECU {
	out := make([]*ECU, 0, len(t.ecus))
	for _, e := range t.ecus {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Buses returns all buses sorted by ID.
func (t *Topology) Buses() []*Bus {
	out := make([]*Bus, 0, len(t.buses))
	for _, b := range t.buses {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByDomain returns the ECUs of a domain sorted by ID.
func (t *Topology) ByDomain(d Domain) []*ECU {
	var out []*ECU
	for _, e := range t.ECUs() {
		if e.Domain == d {
			out = append(out, e)
		}
	}
	return out
}

// BySurface returns the ECUs directly reachable through the given surface
// class, sorted by ID — the per-colour grouping of Fig. 4.
func (t *Topology) BySurface(s SurfaceClass) []*ECU {
	var out []*ECU
	for _, e := range t.ECUs() {
		if e.Reachable(s) {
			out = append(out, e)
		}
	}
	return out
}

// Hop is one traversal step of a network path.
type Hop struct {
	// From and To are ECU IDs; BusID is the segment traversed.
	From, To, BusID string
}

// Route returns one shortest bus-level path between two ECUs as a list of
// hops, using breadth-first search. It returns an error when either ECU is
// unknown or no path exists. Neighbour exploration is ordered for
// determinism.
func (t *Topology) Route(fromID, toID string) ([]Hop, error) {
	if _, ok := t.ecus[fromID]; !ok {
		return nil, fmt.Errorf("vehicle: route: unknown ECU %s", fromID)
	}
	if _, ok := t.ecus[toID]; !ok {
		return nil, fmt.Errorf("vehicle: route: unknown ECU %s", toID)
	}
	if fromID == toID {
		return nil, nil
	}
	type visit struct {
		id   string
		prev *visit
		bus  string
	}
	start := &visit{id: fromID}
	queue := []*visit{start}
	seen := map[string]bool{fromID: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		neighbours := make([]string, 0, len(t.adj[cur.id]))
		for n := range t.adj[cur.id] {
			neighbours = append(neighbours, n)
		}
		sort.Strings(neighbours)
		for _, n := range neighbours {
			if seen[n] {
				continue
			}
			seen[n] = true
			v := &visit{id: n, prev: cur, bus: t.adj[cur.id][n]}
			if n == toID {
				var hops []Hop
				for w := v; w.prev != nil; w = w.prev {
					hops = append(hops, Hop{From: w.prev.id, To: w.id, BusID: w.bus})
				}
				// Reverse into from→to order.
				for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
					hops[i], hops[j] = hops[j], hops[i]
				}
				return hops, nil
			}
			queue = append(queue, v)
		}
	}
	return nil, fmt.Errorf("vehicle: no route from %s to %s", fromID, toID)
}

// EntryPoints returns the ECUs reachable through the given surface class;
// these are the attack entry points for that attacker type.
func (t *Topology) EntryPoints(s SurfaceClass) []*ECU { return t.BySurface(s) }

// AttackRoutes enumerates, for each entry point of the given surface
// class, a shortest route to the target ECU. Entry points with no route
// are skipped. The result maps entry ECU ID → hops.
func (t *Topology) AttackRoutes(s SurfaceClass, targetID string) (map[string][]Hop, error) {
	if _, ok := t.ecus[targetID]; !ok {
		return nil, fmt.Errorf("vehicle: attack routes: unknown target ECU %s", targetID)
	}
	out := make(map[string][]Hop)
	for _, entry := range t.EntryPoints(s) {
		if entry.ID == targetID {
			out[entry.ID] = nil
			continue
		}
		hops, err := t.Route(entry.ID, targetID)
		if err != nil {
			continue // disconnected entry point: not a viable route
		}
		out[entry.ID] = hops
	}
	return out, nil
}
