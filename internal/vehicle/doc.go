// Package vehicle models the electrical/electronic architecture of a road
// vehicle: functional domains, ECUs, communication buses and the gateway
// topology sketched in Fig. 4 of the PSP paper.
//
// The model supports the item-definition and attack-path-analysis steps
// of a TARA: each ECU is reachable through a set of attack surfaces
// (long-range, short-range, physical), and the topology can enumerate the
// bus-level paths an attacker must traverse from an entry point to a
// target ECU.
package vehicle
