package monitor

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/social"
)

// Config wires a Monitor.
type Config struct {
	// Framework runs the social workflow (required).
	Framework *core.Framework
	// Store is the watched ingest store (required): posts added to it —
	// directly or through the API's ingest endpoint — drive incremental
	// re-assessment.
	Store *social.Store
	// Searcher is the platform the workflow queries; nil uses Store.
	// Set it to a federated Multi when the monitored store is only one
	// of several platforms.
	Searcher social.Searcher
	// Input parameterizes the monitored workflow run (application,
	// region, window, threat scenarios).
	Input core.SocialInput
	// Debounce is the quiet period after the last ingested batch before
	// re-assessment (default 200ms).
	Debounce time.Duration
	// MaxLag bounds how long a continuous ingest stream may defer
	// re-assessment (default 10× Debounce).
	MaxLag time.Duration
	// Now stamps assessments; nil uses time.Now. Injectable for tests.
	Now func() time.Time
	// State, when set, persists the monitor's warm-restart image (the
	// assessment, the listing-cache fill identities and the watched
	// store's durable cursor) after every publication, and restores it
	// at the next Run: a restarted monitor serves its last assessment
	// immediately and catches up with one incremental delta run instead
	// of a cold full workflow. Warm restore requires Store to be
	// durable (social.OpenStoreDir) — without a durable cursor the
	// state is saved with a nil cursor and ignored at restore time.
	State StateStore
	// Metrics, when set, records publication counts, debounce-to-publish
	// latency, delta sizes and failures (see NewMetrics); gauge-valued
	// readings (generation, assessment age, error age) register at
	// construction.
	Metrics *Metrics
	// Tracer, when set, records one "monitor.flush" span per
	// re-assessment with the delta's cost attribution (posts, cache
	// fills invalidated, dirty topics/threats, whether the workflow
	// re-ran). When the watched store is traced too (Store.SetTracer),
	// the flush span links into the trace of the ingest that triggered
	// it, so GET /v1/trace shows ingest → WAL → delta run end to end.
	Tracer *obs.Tracer
	// Logger receives the monitor's structured log lines; nil discards.
	Logger *slog.Logger
}

// Assessment is one immutable snapshot of the monitored risk picture:
// the latest SocialResult plus the freshness metadata a consumer needs
// to judge how current it is.
type Assessment struct {
	// Result is the cached workflow output (never nil).
	Result *core.SocialResult
	// Generation increments with every published snapshot.
	Generation uint64
	// UpdatedAt is the publication instant.
	UpdatedAt time.Time
	// CorpusSize is the watched store's post count at publication.
	CorpusSize int
	// Ingested counts posts observed on the changefeed since Run
	// started.
	Ingested int
	// FullRun marks the initial cold assessment.
	FullRun bool
	// Recomputed reports whether this generation re-ran the workflow;
	// false means the delta touched no cached query and the previous
	// result was re-published with fresh metadata.
	Recomputed bool
	// Restored marks an assessment served from persisted state after a
	// restart, before any workflow ran in this process. Its Generation
	// and UpdatedAt are the persisted ones, so pollers (and their
	// ETags) see continuity across the restart.
	Restored bool
	// Dirty summarizes which topics and threats the triggering delta
	// could affect (empty on the initial run).
	Dirty core.DirtySet
}

// Monitor schedules incremental re-assessment over a store changefeed.
// Create with New, drive with Run, read with Assessment or WaitFor.
type Monitor struct {
	cfg Config
	rc  *core.ResultCache

	mu         sync.Mutex
	cur        *Assessment
	notify     chan struct{} // closed and replaced on every publish
	ingested   int
	lastErr    error // most recent re-assessment failure
	persistErr error // most recent state-save failure (never retried by re-running the workflow)
	// lastErrAt marks when the monitor entered its current error state
	// (workflow or persistence); zero while healthy. Feeds the
	// last-error-age gauge and the health surface.
	lastErrAt time.Time
}

// New validates the configuration and builds a Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("monitor: Framework is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("monitor: Store is required")
	}
	if cfg.Searcher == nil {
		cfg.Searcher = cfg.Store
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 200 * time.Millisecond
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 10 * cfg.Debounce
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	m := &Monitor{
		cfg:    cfg,
		rc:     core.NewResultCache(cfg.Searcher),
		notify: make(chan struct{}),
	}
	m.registerGauges()
	return m, nil
}

// Run performs the initial assessment — warm from persisted state when
// Config.State holds a usable image (the restored snapshot publishes
// immediately and the catch-up is one incremental delta run over the
// posts the durable cursor has not seen), cold otherwise — then tails
// the store's changefeed and re-assesses incrementally until ctx is
// cancelled. Transient workflow failures are recorded (see LastError)
// and retried on the next delta; Run only returns on context
// cancellation or if the initial assessment fails.
func (m *Monitor) Run(ctx context.Context) error {
	// Subscribe before computing the restart delta: a post committed
	// after the subscription arrives live, one committed before it is
	// in the durable log the delta scan reads — either way it is seen
	// (possibly twice; invalidation is idempotent).
	feed := m.cfg.Store.Watch(ctx, social.WatchOptions{})

	if delta, ok := m.tryRestore(); ok {
		// Served warm. Catch up on whatever the persisted state had not
		// seen; an empty delta means the restored assessment is already
		// exact — keeping its generation (and its pollers' ETags) alive
		// across the restart.
		if len(delta) > 0 {
			m.flush(ctx, delta, time.Time{})
		}
	} else {
		cursor := m.cfg.Store.DurableCursor()
		res, err := m.cfg.Framework.RunSocialDelta(ctx, m.cfg.Input, m.rc)
		if err != nil {
			return fmt.Errorf("monitor: initial assessment: %w", err)
		}
		m.publish(res, core.DirtySet{}, true, true)
		m.persistState(cursor)
	}

	// Debounce: a quiet period of cfg.Debounce after the last batch
	// triggers the flush, while cfg.MaxLag bounds deferral under a
	// continuous stream. Nil timer channels block their select cases.
	var (
		pending []*social.Post
		// pendingSince marks when the current flush window opened (first
		// batch after a flush) — the start point of the published
		// debounce-to-publish latency. Zero on retry wake-ups.
		pendingSince time.Time
		debounceC    <-chan time.Time
		lagC         <-chan time.Time
		failStreak   uint
	)
	// A failed warm-restart catch-up must retry like any failed flush:
	// without this arm the loop would wait for the next ingested batch
	// while serving the stale restored assessment.
	if m.workflowError() != nil {
		debounceC = time.After(retryDelay(m.cfg.Debounce, 0))
		failStreak = 1
	}
	for {
		fired := false
		select {
		case <-ctx.Done():
			return ctx.Err()
		case batch, ok := <-feed:
			if !ok {
				return ctx.Err()
			}
			if len(pending) == 0 {
				lagC = time.After(m.cfg.MaxLag)
				pendingSince = time.Now()
			}
			pending = append(pending, batch...)
			debounceC = time.After(m.cfg.Debounce)
		case <-debounceC:
			fired = true
		case <-lagC:
			fired = true
		}
		if fired {
			// A timer firing with empty pending is a retry wake-up:
			// flush re-runs the workflow even with no new posts.
			m.flush(ctx, pending, pendingSince)
			pending = nil
			pendingSince = time.Time{}
			debounceC, lagC = nil, nil
			if m.workflowError() != nil && ctx.Err() == nil {
				// The workflow failed after its invalidations landed;
				// retry without waiting for the next delta, backing off
				// exponentially so a persistent platform outage is not
				// hammered on the bare debounce cadence. (Persist-only
				// failures do NOT arm this: re-running the workflow
				// cannot fix a disk error, and the generation churn
				// would invalidate every poller's ETag for nothing.)
				debounceC = time.After(retryDelay(m.cfg.Debounce, failStreak))
				failStreak++
			} else {
				failStreak = 0
			}
		}
	}
}

// retryDelay doubles the debounce per consecutive failure, capped at
// 30 s.
func retryDelay(debounce time.Duration, failStreak uint) time.Duration {
	const maxDelay = 30 * time.Second
	delay := debounce
	for i := uint(0); i < failStreak && delay < maxDelay; i++ {
		delay *= 2
	}
	if delay > maxDelay {
		delay = maxDelay
	}
	return delay
}

// flush runs one incremental re-assessment over the pending delta.
// pendingSince, when non-zero, is the instant the flush window opened;
// the publication records the window-to-publish latency from it.
func (m *Monitor) flush(ctx context.Context, pending []*social.Post, pendingSince time.Time) {
	var span *obs.Span
	if m.cfg.Tracer != nil {
		// Continue the triggering ingest's trace when there is one: the
		// debounce coalesces batches, so the link names the last traced
		// ingest of the flush window — the delta run still attributes to
		// one concrete trace a /v1/trace lookup can follow end to end.
		if traceID, spanID := m.cfg.Store.LastIngestTrace(); traceID != "" && len(pending) > 0 {
			ctx, span = m.cfg.Tracer.StartLink(ctx, "monitor.flush", traceID, spanID)
		} else {
			ctx, span = m.cfg.Tracer.Start(ctx, "monitor.flush")
		}
		span.SetInt("delta_posts", int64(len(pending)))
		defer span.End()
	}
	// The persisted cursor is captured before any cache work: the
	// cached fills about to be (re)built reflect the store at or after
	// this point, so a restart replays at most a little extra — and
	// invalidation is idempotent — never too little.
	cursor := m.cfg.Store.DurableCursor()

	met := m.cfg.Metrics
	if met != nil && len(pending) > 0 {
		met.DeltaPosts.Observe(int64(len(pending)))
	}
	observePublish := func() {
		if met != nil && !pendingSince.IsZero() {
			met.PublishLatency.ObserveSince(pendingSince)
		}
	}

	// Tokenize the delta once for both the invalidation and the
	// dirty-set pass.
	profiles := social.ProfilePosts(pending)
	dropped := m.rc.InvalidateProfiles(profiles)
	dirty := m.cfg.Framework.DirtyForProfiles(m.cfg.Input, profiles)
	if span != nil {
		span.SetInt("invalidated_fills", int64(dropped))
		span.SetInt("dirty_topics", int64(len(dirty.Topics)))
		span.SetInt("dirty_threats", int64(len(dirty.Threats)))
	}

	m.mu.Lock()
	m.ingested += len(pending)
	prev := m.cur
	retrying := m.lastErr != nil
	m.mu.Unlock()

	if dropped == 0 && prev != nil && !retrying {
		// The delta cannot appear in any cached listing: the previous
		// result is still exact. Publish fresh metadata without work.
		// After a failed flush this shortcut is unsound — that flush's
		// invalidations already landed, so prev may be stale even when
		// this delta drops nothing — hence the retry guard. The state
		// file is NOT rewritten here: result and fills are unchanged,
		// and a restart restoring the slightly older cursor just
		// replays a delta that invalidates nothing — cheaper than an
		// fsync per no-work tick.
		m.publish(prev.Result, dirty, false, false)
		observePublish()
		span.SetBool("recomputed", false)
		return
	}
	res, err := m.cfg.Framework.RunSocialDelta(ctx, m.cfg.Input, m.rc)
	span.SetBool("recomputed", true)
	if err != nil {
		span.Fail(err)
		m.mu.Lock()
		m.lastErr = err
		if m.lastErrAt.IsZero() {
			m.lastErrAt = m.cfg.Now()
		}
		m.mu.Unlock()
		if met != nil {
			met.Failures.Inc()
		}
		m.cfg.Logger.Warn("re-assessment failed", slog.Int("delta_posts", len(pending)), slog.Any("error", err))
		return
	}
	m.publish(res, dirty, false, true)
	observePublish()
	m.persistState(cursor)
}

// tryRestore loads persisted state and, when it is usable for the
// configured input and store, publishes the restored assessment and
// returns the catch-up delta (posts the persisted cursor has not
// seen). Any mismatch — no state, different input, non-durable store,
// cursor older than the WAL horizon, undecodable result — falls back
// to (nil, false): the cold path.
func (m *Monitor) tryRestore() ([]*social.Post, bool) {
	if m.cfg.State == nil {
		return nil, false
	}
	st, err := m.cfg.State.Load()
	if err != nil || st == nil || st.Result == nil || st.Cursor == nil {
		return nil, false
	}
	if st.InputSig != inputSignature(m.cfg.Input) {
		return nil, false
	}
	delta, err := m.cfg.Store.PostsSince(st.Cursor)
	if err != nil {
		return nil, false
	}
	res, err := core.RestoreResult(st.Result, m.cfg.Input.Threats)
	if err != nil {
		return nil, false
	}
	if m.rc.ImportFills(st.Fills, m.cfg.Store.Post) != len(st.Fills) {
		// A partially restored cache would make the "delta invalidated
		// nothing" shortcut unsound: a post matching a missing fill
		// would drop nothing yet change the true result. (Fills hold
		// store post IDs, so this fires when the fills came from a
		// different backend — e.g. a federated Multi — or the store
		// lost posts.) Start over with an empty cache, cold.
		m.rc = core.NewResultCache(m.cfg.Searcher)
		return nil, false
	}

	m.mu.Lock()
	m.cur = &Assessment{
		Result:     res,
		Generation: st.Generation,
		UpdatedAt:  st.UpdatedAt,
		CorpusSize: st.CorpusSize,
		FullRun:    false,
		Recomputed: false,
		Restored:   true,
	}
	close(m.notify)
	m.notify = make(chan struct{})
	m.mu.Unlock()
	if met := m.cfg.Metrics; met != nil {
		met.Generations.Inc()
	}
	m.cfg.Logger.Info("assessment restored from persisted state",
		slog.Uint64("generation", st.Generation),
		slog.Int("corpus", st.CorpusSize),
		slog.Int("catchup_posts", len(delta)))
	return delta, true
}

// persistState saves the current assessment, fills and cursor through
// the configured state store. Persistence failures are recorded like
// re-assessment failures (LastError / healthz) — the monitor keeps
// serving, it just will not restart warm.
func (m *Monitor) persistState(cursor social.DurableCursor) {
	if m.cfg.State == nil || cursor == nil {
		return
	}
	cur := m.Assessment()
	if cur == nil {
		return
	}
	rs, err := core.ExportResult(cur.Result)
	if err == nil {
		err = m.cfg.State.Save(&State{
			SavedAt:    m.cfg.Now(),
			InputSig:   inputSignature(m.cfg.Input),
			Generation: cur.Generation,
			UpdatedAt:  cur.UpdatedAt,
			CorpusSize: cur.CorpusSize,
			Cursor:     cursor,
			Result:     rs,
			Fills:      m.rc.ExportFills(),
		})
	}
	m.mu.Lock()
	if err != nil {
		m.persistErr = fmt.Errorf("monitor: persist state: %w", err)
		if m.lastErrAt.IsZero() {
			m.lastErrAt = m.cfg.Now()
		}
	} else {
		m.persistErr = nil
		if m.lastErr == nil {
			m.lastErrAt = time.Time{}
		}
	}
	m.mu.Unlock()
	if err != nil {
		m.cfg.Logger.Warn("persist state failed", slog.Any("error", err))
	}
}

// publish installs a new assessment snapshot and wakes waiters.
func (m *Monitor) publish(res *core.SocialResult, dirty core.DirtySet, full, recomputed bool) {
	m.mu.Lock()
	gen := uint64(1)
	if m.cur != nil {
		gen = m.cur.Generation + 1
	}
	cur := &Assessment{
		Result:     res,
		Generation: gen,
		UpdatedAt:  m.cfg.Now(),
		CorpusSize: m.cfg.Store.Len(),
		Ingested:   m.ingested,
		FullRun:    full,
		Recomputed: recomputed,
		Dirty:      dirty,
	}
	m.cur = cur
	m.lastErr = nil
	if m.persistErr == nil {
		m.lastErrAt = time.Time{}
	}
	close(m.notify)
	m.notify = make(chan struct{})
	m.mu.Unlock()
	if met := m.cfg.Metrics; met != nil {
		met.Generations.Inc()
		if recomputed {
			met.Recomputes.Inc()
		}
	}
	level := slog.LevelDebug
	if full {
		level = slog.LevelInfo
	}
	m.cfg.Logger.Log(context.Background(), level, "assessment published",
		slog.Uint64("generation", cur.Generation),
		slog.Int("corpus", cur.CorpusSize),
		slog.Bool("full", full),
		slog.Bool("recomputed", recomputed))
}

// Assessment returns the current snapshot, or nil before the initial
// run completes.
func (m *Monitor) Assessment() *Assessment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// LastError returns the most recent re-assessment failure (cleared by
// the next successful publication) or, absent one, the most recent
// state-persistence failure (cleared by the next successful save) — a
// monitor that serves fine but cannot restart warm still reports
// unhealthy.
func (m *Monitor) LastError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastErr != nil {
		return m.lastErr
	}
	return m.persistErr
}

// workflowError returns only re-assessment failures — the class a
// retry flush can actually fix.
func (m *Monitor) workflowError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// Store returns the watched ingest store.
func (m *Monitor) Store() *social.Store { return m.cfg.Store }

// WaitFor blocks until an assessment with Generation ≥ minGeneration is
// published or ctx ends, returning the snapshot that satisfied the
// wait.
func (m *Monitor) WaitFor(ctx context.Context, minGeneration uint64) (*Assessment, error) {
	for {
		m.mu.Lock()
		cur, wait := m.cur, m.notify
		m.mu.Unlock()
		if cur != nil && cur.Generation >= minGeneration {
			return cur, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wait:
		}
	}
}
