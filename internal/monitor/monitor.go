package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/social"
)

// Config wires a Monitor.
type Config struct {
	// Framework runs the social workflow (required).
	Framework *core.Framework
	// Store is the watched ingest store (required): posts added to it —
	// directly or through the API's ingest endpoint — drive incremental
	// re-assessment.
	Store *social.Store
	// Searcher is the platform the workflow queries; nil uses Store.
	// Set it to a federated Multi when the monitored store is only one
	// of several platforms.
	Searcher social.Searcher
	// Input parameterizes the monitored workflow run (application,
	// region, window, threat scenarios).
	Input core.SocialInput
	// Debounce is the quiet period after the last ingested batch before
	// re-assessment (default 200ms).
	Debounce time.Duration
	// MaxLag bounds how long a continuous ingest stream may defer
	// re-assessment (default 10× Debounce).
	MaxLag time.Duration
	// Now stamps assessments; nil uses time.Now. Injectable for tests.
	Now func() time.Time
}

// Assessment is one immutable snapshot of the monitored risk picture:
// the latest SocialResult plus the freshness metadata a consumer needs
// to judge how current it is.
type Assessment struct {
	// Result is the cached workflow output (never nil).
	Result *core.SocialResult
	// Generation increments with every published snapshot.
	Generation uint64
	// UpdatedAt is the publication instant.
	UpdatedAt time.Time
	// CorpusSize is the watched store's post count at publication.
	CorpusSize int
	// Ingested counts posts observed on the changefeed since Run
	// started.
	Ingested int
	// FullRun marks the initial cold assessment.
	FullRun bool
	// Recomputed reports whether this generation re-ran the workflow;
	// false means the delta touched no cached query and the previous
	// result was re-published with fresh metadata.
	Recomputed bool
	// Dirty summarizes which topics and threats the triggering delta
	// could affect (empty on the initial run).
	Dirty core.DirtySet
}

// Monitor schedules incremental re-assessment over a store changefeed.
// Create with New, drive with Run, read with Assessment or WaitFor.
type Monitor struct {
	cfg Config
	rc  *core.ResultCache

	mu       sync.Mutex
	cur      *Assessment
	notify   chan struct{} // closed and replaced on every publish
	ingested int
	lastErr  error
}

// New validates the configuration and builds a Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("monitor: Framework is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("monitor: Store is required")
	}
	if cfg.Searcher == nil {
		cfg.Searcher = cfg.Store
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 200 * time.Millisecond
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 10 * cfg.Debounce
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Monitor{
		cfg:    cfg,
		rc:     core.NewResultCache(cfg.Searcher),
		notify: make(chan struct{}),
	}, nil
}

// Run performs the initial cold assessment, then tails the store's
// changefeed and re-assesses incrementally until ctx is cancelled.
// Transient workflow failures are recorded (see LastError) and retried
// on the next delta; Run only returns on context cancellation or if
// the initial assessment fails.
func (m *Monitor) Run(ctx context.Context) error {
	feed := m.cfg.Store.Watch(ctx, social.WatchOptions{})

	res, err := m.cfg.Framework.RunSocialDelta(ctx, m.cfg.Input, m.rc)
	if err != nil {
		return fmt.Errorf("monitor: initial assessment: %w", err)
	}
	m.publish(res, core.DirtySet{}, true, true)

	// Debounce: a quiet period of cfg.Debounce after the last batch
	// triggers the flush, while cfg.MaxLag bounds deferral under a
	// continuous stream. Nil timer channels block their select cases.
	var (
		pending    []*social.Post
		debounceC  <-chan time.Time
		lagC       <-chan time.Time
		failStreak uint
	)
	for {
		fired := false
		select {
		case <-ctx.Done():
			return ctx.Err()
		case batch, ok := <-feed:
			if !ok {
				return ctx.Err()
			}
			if len(pending) == 0 {
				lagC = time.After(m.cfg.MaxLag)
			}
			pending = append(pending, batch...)
			debounceC = time.After(m.cfg.Debounce)
		case <-debounceC:
			fired = true
		case <-lagC:
			fired = true
		}
		if fired {
			// A timer firing with empty pending is a retry wake-up:
			// flush re-runs the workflow even with no new posts.
			m.flush(ctx, pending)
			pending = nil
			debounceC, lagC = nil, nil
			if m.LastError() != nil && ctx.Err() == nil {
				// The workflow failed after its invalidations landed;
				// retry without waiting for the next delta, backing off
				// exponentially so a persistent platform outage is not
				// hammered on the bare debounce cadence.
				debounceC = time.After(retryDelay(m.cfg.Debounce, failStreak))
				failStreak++
			} else {
				failStreak = 0
			}
		}
	}
}

// retryDelay doubles the debounce per consecutive failure, capped at
// 30 s.
func retryDelay(debounce time.Duration, failStreak uint) time.Duration {
	const maxDelay = 30 * time.Second
	delay := debounce
	for i := uint(0); i < failStreak && delay < maxDelay; i++ {
		delay *= 2
	}
	if delay > maxDelay {
		delay = maxDelay
	}
	return delay
}

// flush runs one incremental re-assessment over the pending delta.
func (m *Monitor) flush(ctx context.Context, pending []*social.Post) {
	// Tokenize the delta once for both the invalidation and the
	// dirty-set pass.
	profiles := social.ProfilePosts(pending)
	dropped := m.rc.InvalidateProfiles(profiles)
	dirty := m.cfg.Framework.DirtyForProfiles(m.cfg.Input, profiles)

	m.mu.Lock()
	m.ingested += len(pending)
	prev := m.cur
	retrying := m.lastErr != nil
	m.mu.Unlock()

	if dropped == 0 && prev != nil && !retrying {
		// The delta cannot appear in any cached listing: the previous
		// result is still exact. Publish fresh metadata without work.
		// After a failed flush this shortcut is unsound — that flush's
		// invalidations already landed, so prev may be stale even when
		// this delta drops nothing — hence the retry guard.
		m.publish(prev.Result, dirty, false, false)
		return
	}
	res, err := m.cfg.Framework.RunSocialDelta(ctx, m.cfg.Input, m.rc)
	if err != nil {
		m.mu.Lock()
		m.lastErr = err
		m.mu.Unlock()
		return
	}
	m.publish(res, dirty, false, true)
}

// publish installs a new assessment snapshot and wakes waiters.
func (m *Monitor) publish(res *core.SocialResult, dirty core.DirtySet, full, recomputed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := uint64(1)
	if m.cur != nil {
		gen = m.cur.Generation + 1
	}
	m.cur = &Assessment{
		Result:     res,
		Generation: gen,
		UpdatedAt:  m.cfg.Now(),
		CorpusSize: m.cfg.Store.Len(),
		Ingested:   m.ingested,
		FullRun:    full,
		Recomputed: recomputed,
		Dirty:      dirty,
	}
	m.lastErr = nil
	close(m.notify)
	m.notify = make(chan struct{})
}

// Assessment returns the current snapshot, or nil before the initial
// run completes.
func (m *Monitor) Assessment() *Assessment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// LastError returns the most recent re-assessment failure, cleared by
// the next successful publication.
func (m *Monitor) LastError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// Store returns the watched ingest store.
func (m *Monitor) Store() *social.Store { return m.cfg.Store }

// WaitFor blocks until an assessment with Generation ≥ minGeneration is
// published or ctx ends, returning the snapshot that satisfied the
// wait.
func (m *Monitor) WaitFor(ctx context.Context, minGeneration uint64) (*Assessment, error) {
	for {
		m.mu.Lock()
		cur, wait := m.cur, m.notify
		m.mu.Unlock()
		if cur != nil && cur.Generation >= minGeneration {
			return cur, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wait:
		}
	}
}
