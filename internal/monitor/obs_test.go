package monitor

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// TestAPIReadinessGate: /v1/readyz reports 503 with reasons until both
// the initial assessment and the initial TARA pass land, while
// /v1/healthz stays 200 throughout (liveness is not readiness).
func TestAPIReadinessGate(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m, err := New(Config{Framework: fw, Store: store, Input: in, Debounce: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	taraReg := tara.NewRegistry()
	genTenantFleet(t, taraReg, 2)
	tfw, err := core.New(core.Config{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTARAMonitor(TARAConfig{Framework: tfw, Registry: taraReg, Debounce: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m).WithTARA(tm).Handler())
	defer srv.Close()

	// Neither loop is running: unready, both reasons named.
	res, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before run = %d, want 503", res.StatusCode)
	}
	for _, want := range []string{"initial assessment pending", "initial TARA rating pass pending"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("readyz reasons missing %q: %s", want, body)
		}
	}
	res, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz before run = %d, want 200 (liveness)", res.StatusCode)
	}
	if h.Ready || len(h.Reasons) != 2 {
		t.Fatalf("healthz readiness before run = %+v", h)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)
	go tm.Run(ctx)
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if _, err := m.WaitFor(waitCtx, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range taraReg.Names() {
		if _, err := tm.WaitForTenant(waitCtx, name, 1); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err = http.Get(srv.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz stayed %d after initial runs", res.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = healthResponse{}
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !h.Ready || len(h.Reasons) != 0 {
		t.Fatalf("healthz readiness after run = %+v", h)
	}
	if h.Shards == 0 || h.Posts == 0 {
		t.Fatalf("healthz store detail missing: %+v", h)
	}
}

// TestAPIObservabilityEndToEnd: with a registry attached, requests get
// IDs, routes record under psp_http_*, and /v1/metrics exposes the
// monitor and TARA families alongside the gauge callbacks.
func TestAPIObservabilityEndToEnd(t *testing.T) {
	obsReg := obs.NewRegistry()
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m, err := New(Config{
		Framework: fw, Store: store, Input: in,
		Debounce: 20 * time.Millisecond,
		Metrics:  NewMetrics(obsReg),
	})
	if err != nil {
		t.Fatal(err)
	}
	taraReg := tara.NewRegistry()
	genTenantFleet(t, taraReg, 2)
	tfw, err := core.New(core.Config{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTARAMonitor(TARAConfig{
		Framework: tfw, Registry: taraReg,
		Debounce: 10 * time.Millisecond,
		Metrics:  NewTARAMetrics(obsReg),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)
	go tm.Run(ctx)
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if _, err := m.WaitFor(waitCtx, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range taraReg.Names() {
		if _, err := tm.WaitForTenant(waitCtx, name, 1); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(NewAPI(m).WithTARA(tm).
		WithObservability(obsReg, obs.NopLogger()).WithPprof().Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/v1/assessment")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("assessment = %d", res.StatusCode)
	}
	if res.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("no request ID minted")
	}

	res, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", res.StatusCode)
	}
	if got := res.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("metrics content type = %q", got)
	}
	for _, want := range []string{
		"psp_monitor_generations_total",
		"psp_monitor_publish_seconds_bucket",
		"psp_monitor_generation 1",
		"psp_tara_tenant_rates_total",
		"psp_tara_tenants 2",
		`psp_http_requests_total{code="2xx",route="/v1/assessment"} 1`,
		`psp_http_request_seconds_count{route="/v1/assessment"} 1`,
	} {
		if !strings.Contains(string(exp), want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}

	res, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", res.StatusCode)
	}
}
