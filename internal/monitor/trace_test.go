// Tracing integration: the monitor's delta flush must link into the
// ingest trace that triggered it, and the TARA fleet must attribute
// each tenant re-rate's cost in a "tara.rate" span.
package monitor

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

func attrMap(s *obs.Span) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for _, a := range s.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TestMonitorFlushLinksIngestTrace: an ingest under a traced context
// must yield store.add in the caller's trace, and the debounced
// monitor flush — running on its own goroutine, after the ingest
// returned — must join that same trace as a child of the ingest span,
// carrying the delta-size and invalidation cost attrs.
func TestMonitorFlushLinksIngestTrace(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	store.SetTracer(tr)

	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Framework: fw,
		Store:     store,
		Input:     core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}},
		Debounce:  20 * time.Millisecond,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(runCtx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("monitor did not stop after cancellation")
		}
	})
	waitCtx, waitCancel := context.WithTimeout(runCtx, 30*time.Second)
	defer waitCancel()
	first, err := m.WaitFor(waitCtx, 1)
	if err != nil {
		t.Fatalf("initial assessment: %v", err)
	}

	var delta []*social.Post
	for i := 0; i < 10; i++ {
		delta = append(delta, deltaPost(i, "hot new #chiptuning stage1 file"))
	}
	ctx, root := tr.Start(context.Background(), "test.ingest")
	if _, err := store.AddCountContext(ctx, delta...); err != nil {
		t.Fatal(err)
	}
	root.End()
	if _, err := m.WaitFor(waitCtx, first.Generation+1); err != nil {
		t.Fatal(err)
	}

	spans := tr.TraceSpans(root.TraceID)
	var add, flush *obs.Span
	for _, s := range spans {
		switch s.Name {
		case "store.add":
			add = s
		case "monitor.flush":
			flush = s
		}
	}
	if add == nil {
		t.Fatalf("no store.add span in the ingest trace (%d spans)", len(spans))
	}
	if flush == nil {
		t.Fatalf("monitor.flush did not join the ingest trace %s (%d spans)", root.TraceID, len(spans))
	}
	if flush.ParentID != add.SpanID {
		t.Fatalf("monitor.flush parent %s, want the ingest span %s", flush.ParentID, add.SpanID)
	}
	got := attrMap(flush)
	if got["delta_posts"] != "10" {
		t.Fatalf("flush delta_posts = %q, want 10 (attrs %v)", got["delta_posts"], got)
	}
	if got["recomputed"] != "true" {
		t.Fatalf("flush recomputed = %q, want true", got["recomputed"])
	}
	for _, key := range []string{"invalidated_fills", "dirty_topics", "dirty_threats"} {
		if got[key] == "" {
			t.Fatalf("flush attrs = %v, missing %q", got, key)
		}
	}
}

// TestTARARateSpansAttributeCost: the fleet's initial pass records one
// tara.rate span per tenant with the re-rate cost, and a mutation's
// incremental pass records the dirty-threat and rating-call deltas.
func TestTARARateSpansAttributeCost(t *testing.T) {
	reg := tara.NewRegistry()
	genTenantFleet(t, reg, 3)
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})

	fw, err := core.New(core.Config{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTARAMonitor(TARAConfig{
		Framework: fw,
		Registry:  reg,
		Debounce:  10 * time.Millisecond,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tm.Run(runCtx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("tara monitor did not stop after cancellation")
		}
	})
	waitCtx, waitCancel := context.WithTimeout(runCtx, 30*time.Second)
	defer waitCancel()
	for _, name := range reg.Names() {
		if _, err := tm.WaitForTenant(waitCtx, name, 1); err != nil {
			t.Fatalf("initial assessment of tenant %s: %v", name, err)
		}
	}

	perTenant := map[string]*obs.Span{}
	for _, s := range tr.Spans(0) {
		if s.Name == "tara.rate" {
			perTenant[attrMap(s)["tenant"]] = s
		}
	}
	for _, name := range reg.Names() {
		s, ok := perTenant[name]
		if !ok {
			t.Fatalf("no tara.rate span for tenant %s (got %v)", name, perTenant)
		}
		got := attrMap(s)
		if got["rerated"] != "true" {
			t.Fatalf("initial pass for %s rerated=%q, want true", name, got["rerated"])
		}
		for _, key := range []string{"dirty_threats", "rating_calls", "generation"} {
			if got[key] == "" {
				t.Fatalf("tara.rate attrs for %s = %v, missing %q", name, got, key)
			}
		}
	}

	// One mutation: the incremental pass attributes exactly the dirty
	// slice to the mutated tenant.
	target, _ := reg.Get("t01")
	genBefore := target.Assessment().Generation
	hot, err := tara.NewVectorTable("hot", map[tara.AttackVector]tara.FeasibilityRating{
		tara.VectorPhysical: tara.FeasibilityHigh, tara.VectorLocal: tara.FeasibilityHigh,
		tara.VectorAdjacent: tara.FeasibilityHigh, tara.VectorNetwork: tara.FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Mutate(func(a *tara.Analysis) (bool, error) {
		return a.SetThreatTable(a.Threats[0].ID, hot)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.WaitForTenant(waitCtx, "t01", genBefore+1); err != nil {
		t.Fatal(err)
	}

	var incremental *obs.Span
	for _, s := range tr.Spans(0) {
		if s.Name != "tara.rate" {
			continue
		}
		got := attrMap(s)
		if got["tenant"] == "t01" && got["generation"] == fmt.Sprint(genBefore+1) {
			incremental = s
		}
	}
	if incremental == nil {
		t.Fatal("no tara.rate span for the incremental re-rate")
	}
	got := attrMap(incremental)
	if got["rerated"] != "true" || got["dirty_threats"] != "1" {
		t.Fatalf("incremental tara.rate attrs = %v, want rerated with 1 dirty threat", got)
	}
}
