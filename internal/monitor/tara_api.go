package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/tara"
)

// WithTARA attaches a TARA monitor to the API, enabling the tenant
// routes:
//
//	GET    /v1/tara           — tenant directory
//	GET    /v1/tara/{tenant}  — current assessment (ETag/304, same
//	                            conditional contract as /v1/assessment)
//	PUT    /v1/tara/{tenant}  — create a tenant from an analysis document
//	POST   /v1/tara/{tenant}  — apply mutation ops (optimistic
//	                            concurrency via expect_version)
//	DELETE /v1/tara/{tenant}  — remove the tenant
//
// Mutations are versioned: every successful batch bumps the tenant
// version, and a POST carrying expect_version is rejected with 409 when
// the version moved. Re-rating is asynchronous (debounced); readers use
// version/generation metadata and the ETag to judge freshness.
func (a *API) WithTARA(tm *TARAMonitor) *API {
	a.tara = tm
	return a
}

func (a *API) handleTARAList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	reg := a.tara.Registry()
	type entry struct {
		Tenant     string     `json:"tenant"`
		Version    uint64     `json:"version"`
		Generation uint64     `json:"generation,omitempty"`
		UpdatedAt  *time.Time `json:"updated_at,omitempty"`
		Threats    int        `json:"threats"`
	}
	out := struct {
		Tenants []entry `json:"tenants"`
	}{Tenants: make([]entry, 0, reg.Len())}
	for _, name := range reg.Names() {
		ten, ok := reg.Get(name)
		if !ok {
			continue
		}
		e := entry{Tenant: name, Version: ten.Version()}
		if cur := ten.Assessment(); cur != nil {
			e.Generation = cur.Generation
			e.UpdatedAt = &cur.UpdatedAt
			e.Threats = cur.TotalThreats
		}
		out.Tenants = append(out.Tenants, e)
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleTARATenant(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/tara/")
	if name == "" || strings.Contains(name, "/") {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "tenant name required"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		a.handleTARAGet(w, r, name)
	case http.MethodPut:
		a.handleTARACreate(w, r, name)
	case http.MethodPost:
		a.handleTARAMutate(w, r, name)
	case http.MethodDelete:
		if !a.tara.Registry().Remove(name) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown tenant " + name})
			return
		}
		obs.LoggerFrom(r.Context()).Info("tenant removed", "tenant", name)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET, PUT, POST or DELETE"})
	}
}

// taraAssessmentResponse is the wire form of GET /v1/tara/{tenant}.
type taraAssessmentResponse struct {
	Tenant       string          `json:"tenant"`
	Version      uint64          `json:"version"`
	Generation   uint64          `json:"generation"`
	UpdatedAt    time.Time       `json:"updated_at"`
	RatedThreats int             `json:"rated_threats"`
	TotalThreats int             `json:"total_threats"`
	RatingCalls  uint64          `json:"rating_calls"`
	Results      []taraResultDoc `json:"results"`
	Goals        []taraGoalDoc   `json:"goals,omitempty"`
	Claims       []taraClaimDoc  `json:"claims,omitempty"`
}

type taraResultDoc struct {
	ThreatID       string `json:"threat_id"`
	ThreatName     string `json:"threat_name"`
	Impact         string `json:"impact"`
	Feasibility    string `json:"feasibility"`
	Risk           int    `json:"risk"`
	Treatment      string `json:"treatment"`
	CAL            string `json:"cal"`
	DominantVector string `json:"dominant_vector"`
}

type taraGoalDoc struct {
	ID        string `json:"id"`
	ThreatID  string `json:"threat_id"`
	Statement string `json:"statement"`
	CAL       string `json:"cal"`
	Risk      int    `json:"risk"`
}

type taraClaimDoc struct {
	ID        string `json:"id"`
	ThreatID  string `json:"threat_id"`
	Rationale string `json:"rationale"`
}

func renderTenantAssessment(cur *tara.TenantAssessment) taraAssessmentResponse {
	out := taraAssessmentResponse{
		Tenant:       cur.Tenant,
		Version:      cur.Version,
		Generation:   cur.Generation,
		UpdatedAt:    cur.UpdatedAt,
		RatedThreats: cur.RatedThreats,
		TotalThreats: cur.TotalThreats,
		RatingCalls:  cur.RatingCalls,
		Results:      make([]taraResultDoc, 0, len(cur.Results)),
	}
	for _, r := range cur.Results {
		out.Results = append(out.Results, taraResultDoc{
			ThreatID:       r.Threat.ID,
			ThreatName:     r.Threat.Name,
			Impact:         r.Impact.String(),
			Feasibility:    r.Feasibility.String(),
			Risk:           int(r.Risk),
			Treatment:      r.Treatment.String(),
			CAL:            r.CAL.String(),
			DominantVector: r.DominantVector.String(),
		})
	}
	if cur.Concept != nil {
		for _, g := range cur.Concept.Goals {
			out.Goals = append(out.Goals, taraGoalDoc{
				ID: g.ID, ThreatID: g.ThreatID, Statement: g.Statement,
				CAL: g.CAL.String(), Risk: int(g.Risk),
			})
		}
		for _, c := range cur.Concept.Claims {
			out.Claims = append(out.Claims, taraClaimDoc{
				ID: c.ID, ThreatID: c.ThreatID, Rationale: c.Rationale,
			})
		}
	}
	return out
}

func (a *API) handleTARAGet(w http.ResponseWriter, r *http.Request, name string) {
	ten, ok := a.tara.Registry().Get(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown tenant " + name})
		return
	}
	cur := ten.Assessment()
	if cur == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "assessment not ready; initial rating in progress"})
		return
	}
	// Like /v1/assessment's tag, the pair of rated version and
	// publication instant survives restarts: a fresh process re-rates
	// with a new timestamp, invalidating cached copies.
	etag := fmt.Sprintf(`"t%d.%d.%d"`, cur.Version, cur.Generation, cur.UpdatedAt.UnixNano())
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, renderTenantAssessment(cur))
}

func (a *API) handleTARACreate(w http.ResponseWriter, r *http.Request, name string) {
	analysis, err := tara.ReadJSON(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeJSON(w, bodyErrorStatus(err), errorResponse{Error: err.Error()})
		return
	}
	ten, err := a.tara.Registry().Create(name, analysis)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	obs.LoggerFrom(r.Context()).Info("tenant created", "tenant", name, "version", ten.Version())
	writeJSON(w, http.StatusCreated, struct {
		Tenant  string `json:"tenant"`
		Version uint64 `json:"version"`
	}{name, ten.Version()})
}

// taraMutateRequest is the wire form of POST /v1/tara/{tenant}.
type taraMutateRequest struct {
	// ExpectVersion, when non-zero, must match the tenant's current
	// version (optimistic concurrency).
	ExpectVersion uint64 `json:"expect_version,omitempty"`
	// Ops are applied in order; on failure the applied prefix stays.
	Ops []tara.Op `json:"ops"`
}

type taraMutateResponse struct {
	Tenant  string `json:"tenant"`
	Version uint64 `json:"version"`
	Applied int    `json:"applied"`
	Error   string `json:"error,omitempty"`
}

func (a *API) handleTARAMutate(w http.ResponseWriter, r *http.Request, name string) {
	ten, ok := a.tara.Registry().Get(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown tenant " + name})
		return
	}
	var req taraMutateRequest
	if err := decodeJSONBody(w, r, &req); err != nil {
		writeJSON(w, bodyErrorStatus(err), errorResponse{Error: err.Error()})
		return
	}
	if len(req.Ops) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no ops"})
		return
	}
	applied := 0
	var opErr error
	version, err := ten.MutateAt(req.ExpectVersion, func(an *tara.Analysis) (bool, error) {
		applied, opErr = tara.ApplyOps(an, req.Ops)
		return applied > 0, opErr
	})
	if errors.Is(err, tara.ErrVersionMismatch) {
		writeJSON(w, http.StatusConflict, taraMutateResponse{Tenant: name, Version: version, Error: err.Error()})
		return
	}
	resp := taraMutateResponse{Tenant: name, Version: version, Applied: applied}
	if err != nil {
		// Partial batch semantics, like POST /v1/posts: the applied
		// prefix is in effect (and will be re-rated), so report both.
		obs.LoggerFrom(r.Context()).Warn("tenant mutation failed partway",
			"tenant", name, "applied", applied, "version", version, "error", err)
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	obs.LoggerFrom(r.Context()).Debug("tenant mutated",
		"tenant", name, "applied", applied, "version", version)
	writeJSON(w, http.StatusOK, resp)
}

func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}
