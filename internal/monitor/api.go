package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// API serves a Monitor over HTTP:
//
//	POST /v1/posts      — ingest a JSON post or array of posts
//	GET  /v1/assessment — current cached assessment with freshness metadata
//	GET  /v1/healthz    — liveness (always 200) with readiness and store detail
//	GET  /v1/readyz     — readiness: 503 until the initial assessment (and,
//	                      with TARA attached, the initial rating pass) lands
//	GET  /v1/metrics    — Prometheus exposition (with WithObservability)
//
// Ingested posts land in the monitored store; the resulting assessment
// refresh is asynchronous (debounced), so readers use the generation
// and updated_at metadata to judge freshness.
//
// GET /v1/assessment supports conditional requests: every response
// carries an ETag keyed on the assessment generation, and a request
// whose If-None-Match matches it is answered 304 Not Modified without
// a body — fleet dashboards poll for free between rating changes. A
// warm-restarted daemon resumes the persisted generation, so cached
// ETags stay valid across the restart.
type API struct {
	m *Monitor
	// tara, when set via WithTARA, enables the /v1/tara tenant routes.
	tara *TARAMonitor
	// obsReg/httpMet, when set via WithObservability, enable /v1/metrics
	// and per-route instrumentation; pprof mounts /debug/pprof.
	obsReg  *obs.Registry
	httpMet *obs.HTTPMetrics
	// tracer, when set via WithTracing, enables GET /v1/trace and makes
	// the middleware open one server span per request.
	tracer *obs.Tracer
	pprof  bool
}

// NewAPI wraps a monitor.
func NewAPI(m *Monitor) *API { return &API{m: m} }

// WithObservability attaches a metrics registry to the API: every route
// is wrapped with request-ID/status/latency middleware (recorded under
// psp_http_*), handlers log through the request-scoped logger, and
// GET /v1/metrics serves the registry's Prometheus exposition.
func (a *API) WithObservability(reg *obs.Registry, logger *slog.Logger) *API {
	a.obsReg = reg
	a.httpMet = obs.NewHTTPMetrics(reg, logger)
	return a
}

// WithTracing attaches a span tracer: the request middleware (from
// WithObservability, which must be attached too for per-request server
// spans) continues inbound traceparent headers or starts fresh traces,
// and GET /v1/trace serves the recorded span ring (see obs.Tracer).
func (a *API) WithTracing(t *obs.Tracer) *API {
	a.tracer = t
	a.httpMet.WithTracer(t)
	return a
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — opt-in, for
// profiling a live daemon.
func (a *API) WithPprof() *API {
	a.pprof = true
	return a
}

// Handler returns the HTTP handler implementing the API.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/posts", a.route("/v1/posts", http.HandlerFunc(a.handleIngest)))
	mux.Handle("/v1/assessment", a.route("/v1/assessment", http.HandlerFunc(a.handleAssessment)))
	mux.Handle("/v1/healthz", a.route("/v1/healthz", http.HandlerFunc(a.handleHealth)))
	mux.Handle("/v1/readyz", a.route("/v1/readyz", http.HandlerFunc(a.handleReady)))
	if a.tara != nil {
		mux.Handle("/v1/tara", a.route("/v1/tara", http.HandlerFunc(a.handleTARAList)))
		mux.Handle("/v1/tara/", a.route("/v1/tara/{tenant}", http.HandlerFunc(a.handleTARATenant)))
	}
	if a.obsReg != nil {
		mux.Handle("/v1/metrics", a.route("/v1/metrics", a.obsReg.Handler()))
	}
	if a.tracer != nil {
		mux.Handle("/v1/trace", a.route("/v1/trace", a.tracer.Handler()))
	}
	if a.pprof {
		mux.Handle("/debug/pprof/", obs.PprofHandler())
	}
	return mux
}

// route wraps a handler with the HTTP middleware when observability is
// attached, and passes it through untouched otherwise.
func (a *API) route(name string, h http.Handler) http.Handler {
	if a.httpMet == nil {
		return h
	}
	return a.httpMet.Wrap(name, h)
}

type errorResponse struct {
	Error string `json:"error"`
}

// bodyErrorStatus maps a request-body read failure to its status: 413
// when MaxBytesReader tripped the size cap, 400 otherwise.
func bodyErrorStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

type ingestResponse struct {
	Added      int `json:"added"`
	CorpusSize int `json:"corpus_size"`
}

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeJSON(w, bodyErrorStatus(err), errorResponse{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	var posts []*social.Post
	if err := json.Unmarshal(body, &posts); err != nil {
		var one social.Post
		if err := json.Unmarshal(body, &one); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be a post object or an array of posts"})
			return
		}
		posts = []*social.Post{&one}
	}
	store := a.m.Store()
	added, addErr := store.AddCountContext(r.Context(), posts...)
	if addErr != nil {
		if errors.Is(addErr, social.ErrDegraded) {
			// Read-only degraded mode (persistent WAL failure): the
			// refusal is not the client's fault and not permanent —
			// a restarted or repaired daemon accepts again.
			obs.LoggerFrom(r.Context()).Warn("ingest refused, store degraded", "error", addErr)
			w.Header().Set("Retry-After", "30")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: addErr.Error()})
			return
		}
		// Batch semantics: posts ahead of the offender are stored (and
		// already published to the changefeed), so report both.
		obs.LoggerFrom(r.Context()).Warn("ingest rejected",
			"added", added, "submitted", len(posts), "error", addErr)
		writeJSON(w, http.StatusBadRequest, struct {
			ingestResponse
			errorResponse
		}{ingestResponse{Added: added, CorpusSize: store.Len()}, errorResponse{Error: addErr.Error()}})
		return
	}
	obs.LoggerFrom(r.Context()).Debug("posts ingested", "added", added, "corpus", store.Len())
	writeJSON(w, http.StatusAccepted, ingestResponse{Added: added, CorpusSize: store.Len()})
}

// assessmentResponse is the wire form of GET /v1/assessment.
type assessmentResponse struct {
	Generation          uint64              `json:"generation"`
	UpdatedAt           time.Time           `json:"updated_at"`
	FullRun             bool                `json:"full_run"`
	Recomputed          bool                `json:"recomputed"`
	Restored            bool                `json:"restored,omitempty"`
	CorpusSize          int                 `json:"corpus_size"`
	Ingested            int                 `json:"ingested"`
	Dirty               core.DirtySet       `json:"dirty"`
	Since               *time.Time          `json:"since,omitempty"`
	Until               *time.Time          `json:"until,omitempty"`
	Index               []indexEntry        `json:"index"`
	Learned             map[string][]string `json:"learned,omitempty"`
	InauthenticFiltered int                 `json:"inauthentic_filtered"`
	Tunings             []tuningSummary     `json:"tunings"`
}

type indexEntry struct {
	Topic       string   `json:"topic"`
	Tags        []string `json:"tags"`
	Posts       int      `json:"posts"`
	Score       float64  `json:"score"`
	Probability float64  `json:"probability"`
	Insider     bool     `json:"insider"`
}

type tuningSummary struct {
	ThreatID   string             `json:"threat_id"`
	ThreatName string             `json:"threat_name"`
	Insider    bool               `json:"insider"`
	Posts      int                `json:"posts"`
	Table      string             `json:"table"`
	Ratings    map[string]string  `json:"ratings"`
	Factors    map[string]float64 `json:"factors,omitempty"`
}

// renderAssessment flattens an assessment into its wire form.
func renderAssessment(cur *Assessment) assessmentResponse {
	res := cur.Result
	out := assessmentResponse{
		Generation:          cur.Generation,
		UpdatedAt:           cur.UpdatedAt,
		FullRun:             cur.FullRun,
		Recomputed:          cur.Recomputed,
		Restored:            cur.Restored,
		CorpusSize:          cur.CorpusSize,
		Ingested:            cur.Ingested,
		Dirty:               cur.Dirty,
		Learned:             res.Learned,
		InauthenticFiltered: res.InauthenticFiltered,
		Index:               make([]indexEntry, 0, len(res.Index.Entries)),
		Tunings:             make([]tuningSummary, 0, len(res.Tunings)),
	}
	if !res.Since.IsZero() {
		out.Since = &res.Since
	}
	if !res.Until.IsZero() {
		out.Until = &res.Until
	}
	for _, e := range res.Index.Entries {
		out.Index = append(out.Index, indexEntry{
			Topic:       e.Topic,
			Tags:        e.Tags,
			Posts:       e.Posts,
			Score:       e.Score,
			Probability: e.Probability,
			Insider:     e.Insider,
		})
	}
	for _, tuning := range res.Tunings {
		ts := tuningSummary{
			ThreatID:   tuning.Threat.ID,
			ThreatName: tuning.Threat.Name,
			Insider:    tuning.Insider,
			Posts:      tuning.Posts,
			Table:      tuning.Table.Name,
			Ratings:    make(map[string]string, 4),
		}
		for _, v := range tara.AllVectors() {
			if rating, err := tuning.Table.Rating(v); err == nil {
				ts.Ratings[v.String()] = rating.String()
			}
		}
		if len(tuning.Factors) > 0 {
			ts.Factors = make(map[string]float64, len(tuning.Factors))
			for v, f := range tuning.Factors {
				ts.Factors[v.String()] = f
			}
		}
		out.Tunings = append(out.Tunings, ts)
	}
	return out
}

func (a *API) handleAssessment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	cur := a.m.Assessment()
	if cur == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "assessment not ready; initial run in progress"})
		return
	}
	// The tag pairs the generation with its publication instant:
	// generations alone restart from 1 after a cold restart (no
	// persisted state), and a stale cached copy must not survive that.
	etag := fmt.Sprintf(`"g%d.%d"`, cur.Generation, cur.UpdatedAt.UnixNano())
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, renderAssessment(cur))
}

// etagMatches implements the If-None-Match comparison for a single
// current tag: a comma-separated candidate list, "*", and weak
// validators (the weak comparison is allowed for GET).
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

type healthResponse struct {
	Status     string `json:"status"`
	Posts      int    `json:"posts"`
	Generation uint64 `json:"generation"`
	LastError  string `json:"last_error,omitempty"`
	// StoreError reports a failing background snapshot compaction on a
	// durable store (the WAL keeps growing until it clears).
	StoreError string `json:"store_error,omitempty"`
	// Degraded reports the store's read-only degraded mode (persistent
	// WAL failure: ingest refused with 503, reads keep serving);
	// DegradedCause is the triggering failure.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Ready mirrors /v1/readyz (healthz itself stays 200 — it is the
	// liveness probe); Reasons lists what readiness is waiting on.
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
	// Store detail: shard count, durability, WAL floors per stripe and
	// the changefeed's unsent backlog across subscribers.
	Shards                int                  `json:"shards"`
	Durable               bool                 `json:"durable"`
	WALFloors             social.DurableCursor `json:"wal_floors,omitempty"`
	ChangefeedSubscribers int                  `json:"changefeed_subscribers"`
	ChangefeedBacklog     int                  `json:"changefeed_backlog"`
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := a.m.Store().Stats()
	h := healthResponse{
		Status:                "ok",
		Posts:                 st.Posts,
		Shards:                st.Shards,
		Durable:               st.Durable,
		WALFloors:             st.WALFloors,
		ChangefeedSubscribers: st.ChangefeedSubscribers,
		ChangefeedBacklog:     st.ChangefeedBacklog,
	}
	if cur := a.m.Assessment(); cur != nil {
		h.Generation = cur.Generation
	}
	if err := a.m.LastError(); err != nil {
		h.LastError = err.Error()
	}
	if err := a.m.Store().CompactionError(); err != nil {
		h.StoreError = err.Error()
	}
	if st.Degraded {
		h.Degraded = true
		h.DegradedCause = st.DegradedCause
	}
	h.Ready, h.Reasons = a.readiness()
	writeJSON(w, http.StatusOK, h)
}

// readiness evaluates the readiness gate: the initial assessment must
// have published (on a warm restart, restoring persisted state counts)
// and, when a TARA fleet is attached, its initial rating pass must have
// completed.
func (a *API) readiness() (bool, []string) {
	var reasons []string
	if a.m.Assessment() == nil {
		reasons = append(reasons, "initial assessment pending")
	}
	if a.tara != nil && !a.tara.Ready() {
		reasons = append(reasons, "initial TARA rating pass pending")
	}
	if err := a.m.Store().Degraded(); err != nil {
		reasons = append(reasons, fmt.Sprintf("store degraded (read-only): %v", err))
	}
	return len(reasons) == 0, reasons
}

func (a *API) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, reasons := a.readiness()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status  string   `json:"status"`
			Reasons []string `json:"reasons"`
		}{"unready", reasons})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
