// Chaos tests: the monitor converging through a flapping platform, and
// the ingest API mapping a degraded (read-only) store onto 503 +
// Retry-After with the health surfaces reporting it.
package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/fault"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// TestChaosMonitorConvergesThroughFlap: a platform outage mid-stream
// must not poison the monitor — the stale assessment keeps serving and
// the failure is reported, then the built-in retry converges once the
// platform heals, without any extra ingest.
func TestChaosMonitorConvergesThroughFlap(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Config{FailFrom: 1})
	inj.Disable() // healthy until the flap

	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m, err := New(Config{
		Framework: fw,
		Store:     store,
		Searcher:  social.WithFault(store, inj),
		Input:     in,
		Debounce:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("monitor did not stop after cancellation")
		}
	}()

	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	first, err := m.WaitFor(waitCtx, 1)
	if err != nil {
		t.Fatalf("initial assessment: %v", err)
	}

	// Platform goes down; a delta that invalidates cached listings
	// arrives, so the re-assessment must hit the (now failing) platform.
	inj.Enable()
	var delta []*social.Post
	for i := 0; i < 10; i++ {
		delta = append(delta, deltaPost(i, "fresh #chiptuning stage1 remap"))
	}
	if err := store.Add(delta...); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for m.LastError() == nil {
		if time.Now().After(deadline) {
			t.Fatal("re-assessment never failed despite the platform outage")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The stale-but-valid picture keeps serving.
	if cur := m.Assessment(); cur == nil || cur.Generation != first.Generation {
		t.Fatalf("assessment during outage = %+v, want generation %d intact", cur, first.Generation)
	}

	// Platform heals: the monitor's own retry (no new ingest) converges.
	inj.Disable()
	cur, err := m.WaitFor(waitCtx, first.Generation+1)
	if err != nil {
		t.Fatalf("monitor did not converge after the platform healed: %v", err)
	}
	if m.LastError() != nil {
		t.Fatalf("LastError after convergence = %v, want nil", m.LastError())
	}
	if !cur.Recomputed {
		t.Fatalf("converged assessment was not recomputed: %+v", cur)
	}
	if cur.Ingested < len(delta) {
		t.Fatalf("converged assessment saw %d ingested posts, want >= %d", cur.Ingested, len(delta))
	}
}

// TestChaosIngestDegraded503: once a persistent WAL failure flips the
// store read-only, POST /v1/posts must answer 503 + Retry-After, and
// healthz/readyz must surface the degradation.
func TestChaosIngestDegraded503(t *testing.T) {
	fs := &fault.FS{Sync: fault.New(fault.Config{FailFrom: 3})}
	store, err := social.OpenStoreDir(t.TempDir(), social.DurableOptions{
		Shards: 1, CompactEvery: -1, CompactRecords: -1, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Framework: fw,
		Store:     store,
		Input:     core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m).Handler())
	defer srv.Close()

	post := func(i int) *http.Response {
		t.Helper()
		body, err := json.Marshal([]*social.Post{{
			ID:        fmt.Sprintf("chaos-%03d", i),
			Author:    "bot",
			Text:      "ingest under a dying disk",
			CreatedAt: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i),
			Region:    social.RegionEurope,
		}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/posts", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Drive ingest until the injected fsync failure degrades the store,
	// then once more for the fast-path refusal.
	degradedAt := -1
	for i := 0; i < 20; i++ {
		if resp := post(i); resp.StatusCode != http.StatusAccepted {
			degradedAt = i
			break
		}
	}
	if degradedAt < 1 {
		t.Fatalf("ingest never failed (degradedAt=%d); the fault schedule is vacuous", degradedAt)
	}
	resp := post(100)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while degraded = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want \"30\"", got)
	}

	// Health surfaces: healthz reports the degradation, readyz gates.
	hr, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Degraded      bool   `json:"degraded"`
		DegradedCause string `json:"degraded_cause"`
		Ready         bool   `json:"ready"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !health.Degraded || health.DegradedCause == "" {
		t.Fatalf("healthz = %+v, want degraded with a cause", health)
	}
	if health.Ready {
		t.Fatal("healthz reports ready despite degradation")
	}

	rr, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rbody := new(bytes.Buffer)
	rbody.ReadFrom(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", rr.StatusCode)
	}
	if !strings.Contains(rbody.String(), "degraded") {
		t.Fatalf("readyz reasons = %s, want a degraded reason", rbody.String())
	}
}
