package monitor

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// ListenAndServe runs an HTTP server until ctx is cancelled, then
// drains in-flight requests with http.Server.Shutdown bounded by
// drainTimeout (≤ 0 means 5 s). It returns nil after a clean drain —
// the graceful SIGINT/SIGTERM path shared by the pspd and sociald
// daemons — or the first listen/serve error.
func ListenAndServe(ctx context.Context, srv *http.Server, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 5 * time.Second
	}
	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		// Surface a serve-side failure over a drain timeout if both
		// raced; ErrServerClosed is the expected shutdown signal.
		if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		return err
	}
}
