package monitor

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// benchStore64k builds the reference corpus padded to ~64k posts with
// background chatter, mirroring the scaling fixture of the top-level
// benchmarks: the monitored deployment watches a large mixed feed of
// which the attack topics are a small slice.
var (
	bench64kOnce  sync.Once
	bench64kPosts []*social.Post
	bench64kErr   error
)

func bench64kCorpus(b *testing.B) []*social.Post {
	b.Helper()
	bench64kOnce.Do(func() {
		posts, err := social.Generate(social.DefaultCorpusSpec(42))
		if err != nil {
			bench64kErr = err
			return
		}
		filler := 64000 - len(posts)
		pad, err := social.Generate(social.GeneratorSpec{
			Seed:      43,
			FirstYear: 2019,
			LastYear:  2023,
			Topics: []social.TopicSpec{{
				Key:          "filler-chatter",
				Tags:         []string{"fillerchatter"},
				Applications: []string{"car", "truck"},
				YearlyVolume: map[int]int{
					2019: filler / 5, 2020: filler / 5, 2021: filler / 5,
					2022: filler / 5, 2023: filler - 4*(filler/5),
				},
				VectorMix: map[string]float64{
					social.VectorKeyAdjacent: 0.5, social.VectorKeyNetwork: 0.5,
				},
			}},
		})
		if err != nil {
			bench64kErr = err
			return
		}
		// Re-ID the padding so it cannot collide with the base corpus.
		for i, p := range pad {
			p.ID = fmt.Sprintf("pad%06d", i)
		}
		bench64kPosts = append(posts, pad...)
	})
	if bench64kErr != nil {
		b.Fatal(bench64kErr)
	}
	return bench64kPosts
}

func newBench64kStore(b *testing.B) *social.Store {
	b.Helper()
	store := social.NewStore()
	if err := store.Add(bench64kCorpus(b)...); err != nil {
		b.Fatal(err)
	}
	return store
}

func benchInput() core.SocialInput {
	return core.SocialInput{Threats: []*tara.ThreatScenario{{
		ID: "TS-ECM", Name: "ECM reprogramming",
		DamageIDs: []string{"DS-01"},
		Property:  tara.PropertyIntegrity,
		STRIDE:    tara.Tampering,
		Profiles:  []tara.AttackerProfile{tara.ProfileInsider},
		Vector:    tara.VectorPhysical,
		Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1"},
	}}}
}

// benchDeltaSeq keeps delta IDs unique across benchmark re-invocations
// over a shared store.
var benchDeltaSeq atomic.Int64

// benchDelta builds a 100-post delta touching one low-volume keyword
// topic — the steady-trickle shape continuous monitoring exists for.
func benchDelta(iter int) []*social.Post {
	seq := benchDeltaSeq.Add(1)
	delta := make([]*social.Post, 0, 100)
	for i := 0; i < 100; i++ {
		delta = append(delta, &social.Post{
			ID:        fmt.Sprintf("bench-delta-%d-%d-%03d", seq, iter, i),
			Author:    fmt.Sprintf("trickle%d", i%7),
			Text:      "fitted a #gpsblocker sleeve in the cab",
			CreatedAt: time.Date(2023, 4, 1, iter%24, i%60, i/60, 0, time.UTC),
			Region:    social.RegionEurope,
			Metrics:   social.Metrics{Views: 90 + i, Likes: 4},
		})
	}
	return delta
}

// newLatencyServer exposes a store over the HTTP search API with a
// fixed per-request delay, modelling the WAN round trip to a public
// platform.
func newLatencyServer(b *testing.B, store *social.Store, d time.Duration) string {
	b.Helper()
	inner := social.NewServer(store, nil).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		inner.ServeHTTP(w, r)
	}))
	b.Cleanup(srv.Close)
	return srv.URL
}

// BenchmarkRunSocialCold64k is the baseline: a full Fig. 7 run over the
// 64k-post corpus, the cost the batch deployment pays for every
// refresh.
func BenchmarkRunSocialCold64k(b *testing.B) {
	store := newBench64kStore(b)
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		b.Fatal(err)
	}
	in := benchInput()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fw.RunSocial(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Index.Entries) == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkIncrementalDelta64k measures one monitoring step: ingest a
// 100-post delta into the 64k corpus, invalidate, re-assess through the
// result cache. Acceptance target: ≥ 5× faster than the cold run above
// (only the touched topic re-drains, re-tokenizes and re-scores; every
// other slice is served from memos).
func BenchmarkIncrementalDelta64k(b *testing.B) {
	store := newBench64kStore(b)
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		b.Fatal(err)
	}
	in := benchInput()
	ctx := context.Background()
	rc := core.NewResultCache(store)
	if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		delta := benchDelta(i)
		b.StartTimer()
		if err := store.Add(delta...); err != nil {
			b.Fatal(err)
		}
		rc.Invalidate(delta...)
		res, err := fw.RunSocialDelta(ctx, in, rc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Index.Entries) == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkIncrementalDelta64kRemote repeats the comparison in the
// remote deployment shape (HTTP platform with a simulated 5 ms round
// trip): the cache also eliminates the paged drains, so the incremental
// advantage widens with platform latency.
func BenchmarkIncrementalDelta64kRemote(b *testing.B) {
	store := newBench64kStore(b)
	srv := newLatencyServer(b, store, 5*time.Millisecond)
	client := social.NewClient(srv, nil)
	fw, err := core.New(core.Config{Searcher: client})
	if err != nil {
		b.Fatal(err)
	}
	in := benchInput()
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fw.RunSocial(ctx, in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		rc := core.NewResultCache(client)
		if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			delta := benchDelta(1000 + i)
			b.StartTimer()
			if err := store.Add(delta...); err != nil {
				b.Fatal(err)
			}
			rc.Invalidate(delta...)
			if _, err := fw.RunSocialDelta(ctx, in, rc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
