package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

func ecmThreat() *tara.ThreatScenario {
	return &tara.ThreatScenario{
		ID: "TS-ECM-01", Name: "ECM reprogramming",
		DamageIDs: []string{"DS-01"},
		Property:  tara.PropertyIntegrity,
		STRIDE:    tara.Tampering,
		Profiles:  []tara.AttackerProfile{tara.ProfileInsider},
		Vector:    tara.VectorPhysical,
		Keywords:  []string{"chiptuning", "ecutune", "remap", "stage1"},
	}
}

func deltaPost(i int, text string) *social.Post {
	return &social.Post{
		ID:        fmt.Sprintf("delta-%03d", i),
		Author:    fmt.Sprintf("newuser%d", i),
		Text:      text,
		CreatedAt: time.Date(2023, 3, 1, 12, i%60, i/60, 0, time.UTC),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: 150 + i, Likes: 12},
	}
}

// startMonitor builds a monitor over a seeded store and runs it until
// the test ends, returning the monitor and its first assessment.
func startMonitor(t *testing.T, store *social.Store, in core.SocialInput) *Monitor {
	t.Helper()
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Framework: fw,
		Store:     store,
		Input:     in,
		Debounce:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("monitor did not stop after cancellation")
		}
	})
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	if _, err := m.WaitFor(waitCtx, 1); err != nil {
		t.Fatalf("initial assessment: %v", err)
	}
	return m
}

// TestMonitorIncrementalMatchesColdRun is the subsystem acceptance
// test: after ingesting a delta through the changefeed, the published
// assessment is byte-identical to a cold full RunSocial over the merged
// corpus — both structurally (DeepEqual) and through the JSON wire
// rendering.
func TestMonitorIncrementalMatchesColdRun(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m := startMonitor(t, store, in)
	first := m.Assessment()
	if !first.FullRun || first.Generation != 1 {
		t.Fatalf("first assessment metadata: %+v", first)
	}

	var delta []*social.Post
	for i := 0; i < 40; i++ {
		text := "hot new #chiptuning stage1 file"
		if i%4 == 1 {
			text = "#dpfdelete pipe fitted to the excavator"
		}
		delta = append(delta, deltaPost(i, text))
	}
	if err := store.Add(delta...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cur, err := m.WaitFor(ctx, first.Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	if cur.FullRun || !cur.Recomputed {
		t.Errorf("incremental assessment metadata: FullRun=%v Recomputed=%v", cur.FullRun, cur.Recomputed)
	}
	if len(cur.Dirty.Topics) == 0 || len(cur.Dirty.Threats) == 0 {
		t.Errorf("dirty summary empty: %+v", cur.Dirty)
	}
	if cur.Ingested != len(delta) {
		t.Errorf("ingested = %d, want %d", cur.Ingested, len(delta))
	}

	// Cold reference: a fresh framework over the merged corpus.
	coldFW, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldFW.RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cur.Result, cold) {
		t.Fatalf("incremental assessment diverged from cold run\nincremental: %+v\ncold: %+v",
			cur.Result.Index.Entries, cold.Index.Entries)
	}
	// Byte-level equivalence through the wire rendering, normalizing
	// only the freshness metadata the cold run does not carry.
	coldView := *cur
	coldView.Result = cold
	a, err := json.Marshal(renderAssessment(cur))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(renderAssessment(&coldView))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("wire renderings differ:\n%s\n%s", a, b)
	}
	// And the refresh must not be vacuous.
	if reflect.DeepEqual(first.Result.Index, cur.Result.Index) {
		t.Error("delta did not move the index; equivalence test is vacuous")
	}
}

// TestMonitorShardedStoreMatchesColdRun drives the monitor over a
// lock-striped store with concurrent writers targeting distinct time
// buckets (= distinct stripes): the cross-shard changefeed sequencer
// must feed every ingested post to the scheduler exactly once, so the
// incremental assessment still converges to a cold run over the merged
// corpus.
func TestMonitorShardedStoreMatchesColdRun(t *testing.T) {
	store, err := social.DefaultStoreShards(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m := startMonitor(t, store, in)
	first := m.Assessment()

	const writers, perWriter = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := &social.Post{
					ID:     fmt.Sprintf("shard-delta-%d-%02d", w, i),
					Author: fmt.Sprintf("writer%d", w),
					Text:   "hot new #chiptuning stage1 file",
					// One day bucket per writer keeps concurrent Adds on
					// distinct stripes of the 4-shard store.
					CreatedAt: time.Date(2023, 3, 10+w, 12, i, 0, 0, time.UTC),
					Region:    social.RegionEurope,
					Metrics:   social.Metrics{Views: 200 + i, Likes: 9},
				}
				if err := store.Add(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cur, err := m.WaitFor(ctx, first.Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	for cur.Ingested < writers*perWriter {
		if cur, err = m.WaitFor(ctx, cur.Generation+1); err != nil {
			t.Fatalf("monitor never observed the full delta: %v", err)
		}
	}

	coldFW, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldFW.RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cur.Result, cold) {
		t.Fatalf("sharded incremental assessment diverged from cold run\nincremental: %+v\ncold: %+v",
			cur.Result.Index.Entries, cold.Index.Entries)
	}
	if reflect.DeepEqual(first.Result.Index, cur.Result.Index) {
		t.Error("delta did not move the index; sharded equivalence test is vacuous")
	}
}

// TestMonitorMetadataOnlyRefresh: a delta matching no monitored query
// publishes a new generation without recomputing, reusing the result.
func TestMonitorMetadataOnlyRefresh(t *testing.T) {
	store, err := social.DefaultStore(7)
	if err != nil {
		t.Fatal(err)
	}
	m := startMonitor(t, store, core.SocialInput{})
	first := m.Assessment()
	if err := store.Add(deltaPost(900, "completely #offtopic chatter")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cur, err := m.WaitFor(ctx, first.Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Recomputed {
		t.Error("irrelevant delta triggered a recompute")
	}
	if cur.Result != first.Result {
		t.Error("metadata-only refresh replaced the result")
	}
	if cur.CorpusSize != first.CorpusSize+1 {
		t.Errorf("corpus size = %d, want %d", cur.CorpusSize, first.CorpusSize+1)
	}
}

// TestMonitorDebounceCoalesces: a burst of single-post Adds lands in
// one re-assessment generation rather than one per post.
func TestMonitorDebounceCoalesces(t *testing.T) {
	store, err := social.DefaultStore(11)
	if err != nil {
		t.Fatal(err)
	}
	m := startMonitor(t, store, core.SocialInput{})
	first := m.Assessment()
	const burst = 12
	for i := 0; i < burst; i++ {
		if err := store.Add(deltaPost(i, "#gpsblocker sleeve works")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cur, err := m.WaitFor(ctx, first.Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Ingested != burst {
		// The burst may split across at most a couple of flushes under
		// scheduler jitter, but it must not take one flush per post.
		final, err := m.WaitFor(ctx, cur.Generation+1)
		if err == nil {
			cur = final
		}
	}
	if cur.Generation > first.Generation+3 {
		t.Errorf("burst of %d posts took %d generations", burst, cur.Generation-first.Generation)
	}
}

// flakySearcher fails every Search while tripped.
type flakySearcher struct {
	inner social.Searcher
	fail  atomic.Bool
}

func (f *flakySearcher) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	if f.fail.Load() {
		return nil, fmt.Errorf("injected platform outage")
	}
	return f.inner.Search(ctx, q)
}

// TestMonitorRetriesAfterFailedFlush: a flush that fails after its
// invalidations landed must not let a later no-op delta republish the
// stale result; the monitor retries until the workflow succeeds and
// converges to the cold run.
func TestMonitorRetriesAfterFailedFlush(t *testing.T) {
	store, err := social.DefaultStore(21)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakySearcher{inner: store}
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{}
	m, err := New(Config{
		Framework: fw,
		Store:     store,
		Searcher:  flaky,
		Input:     in,
		Debounce:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	first, err := m.WaitFor(waitCtx, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Trip the platform, ingest a topical post: the flush invalidates
	// and then fails.
	flaky.fail.Store(true)
	if err := store.Add(deltaPost(700, "outage-time #chiptuning remap")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.LastError() == nil {
		if time.Now().After(deadline) {
			t.Fatal("flush failure never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal the platform; the retry loop must converge without another
	// delta, and the published result must include the outage-time post
	// (no stale republish).
	flaky.fail.Store(false)
	cur, err := m.WaitFor(waitCtx, first.Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Recomputed {
		t.Error("retry published without recomputing")
	}
	cold, err := fw.RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cur.Result.Index, cold.Index) {
		t.Error("post-retry result diverged from cold run (stale republish?)")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Error("monitor did not stop")
	}
}

// TestAPIEndpoints drives ingest → assessment → health over HTTP.
func TestAPIEndpoints(t *testing.T) {
	store, err := social.DefaultStore(3)
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m := startMonitor(t, store, in)
	srv := httptest.NewServer(NewAPI(m).Handler())
	defer srv.Close()

	// Health reports the corpus and generation.
	var health healthResponse
	getJSON(t, srv.URL+"/v1/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Generation == 0 || health.Posts == 0 {
		t.Errorf("health = %+v", health)
	}

	// Ingest an array of posts.
	posts := []*social.Post{
		deltaPost(1, "api #chiptuning ingest"),
		deltaPost(2, "api #dpfdelete ingest"),
	}
	body, _ := json.Marshal(posts)
	resp, err := http.Post(srv.URL+"/v1/posts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestResponse
	decodeBody(t, resp, http.StatusAccepted, &ing)
	if ing.Added != 2 {
		t.Errorf("ingest added = %d, want 2", ing.Added)
	}

	// A single object body works too.
	one, _ := json.Marshal(deltaPost(3, "single #chiptuning post"))
	resp, err = http.Post(srv.URL+"/v1/posts", "application/json", bytes.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, http.StatusAccepted, &ing)
	if ing.Added != 1 {
		t.Errorf("single ingest added = %d, want 1", ing.Added)
	}

	// Invalid post → 400 with an error payload.
	bad, _ := json.Marshal(&social.Post{ID: "bad", Text: ""})
	resp, err = http.Post(srv.URL+"/v1/posts", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid post status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The assessment eventually reflects the ingested generation.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.WaitFor(ctx, 2); err != nil {
		t.Fatal(err)
	}
	var got assessmentResponse
	getJSON(t, srv.URL+"/v1/assessment", http.StatusOK, &got)
	if got.Generation < 2 || len(got.Index) == 0 || len(got.Tunings) != 1 {
		t.Errorf("assessment = generation %d, %d index entries, %d tunings",
			got.Generation, len(got.Index), len(got.Tunings))
	}
	if got.Tunings[0].ThreatID != "TS-ECM-01" || len(got.Tunings[0].Ratings) != 4 {
		t.Errorf("tuning summary = %+v", got.Tunings[0])
	}
	if got.CorpusSize != store.Len() {
		t.Errorf("assessment corpus = %d, store = %d", got.CorpusSize, store.Len())
	}
}

// TestAPINotReady: before the first run completes, the assessment
// endpoint reports 503.
func TestAPINotReady(t *testing.T) {
	store, err := social.DefaultStore(9)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Framework: fw, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(m).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/assessment")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("not-ready status = %d, want 503", resp.StatusCode)
	}
}

// TestListenAndServeGracefulShutdown: cancellation drains and returns
// nil, and the listener actually stops.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, srv, time.Second) }()

	// Wait for the server to come up.
	url := "http://" + srv.Addr + "/ping"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still serving after shutdown")
	}
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, wantStatus, v)
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var raw strings.Builder
		_ = json.NewDecoder(resp.Body).Decode(&raw)
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
