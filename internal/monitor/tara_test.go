package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// startTARAMonitor runs a TARA monitor over the registry until the test
// ends and waits for every pre-registered tenant's first assessment.
func startTARAMonitor(t *testing.T, reg *tara.Registry, soc *Monitor) *TARAMonitor {
	t.Helper()
	fw, err := core.New(core.Config{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTARAMonitor(TARAConfig{
		Framework: fw,
		Registry:  reg,
		Social:    soc,
		Debounce:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tm.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("tara monitor did not stop after cancellation")
		}
	})
	waitCtx, waitCancel := context.WithTimeout(ctx, 30*time.Second)
	defer waitCancel()
	for _, name := range reg.Names() {
		if _, err := tm.WaitForTenant(waitCtx, name, 1); err != nil {
			t.Fatalf("initial assessment of tenant %s: %v", name, err)
		}
	}
	return tm
}

func genTenantFleet(t *testing.T, reg *tara.Registry, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a, err := tara.GenerateAnalysis(tara.GenSpec{
			Name:   fmt.Sprintf("variant-%02d", i),
			Assets: 6, Damages: 8, Threats: 10, PathsPerThreat: 1, Seed: int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Create(fmt.Sprintf("t%02d", i), a); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTARAMonitorReratesOnlyMutatedTenant is the multi-tenant acceptance
// test: across a 12-tenant fleet, a mutation to one tenant re-rates only
// that tenant's dirty threats — every other tenant keeps its published
// assessment untouched, and the mutated tenant's rating-call counter
// advances by exactly the dirty count.
func TestTARAMonitorReratesOnlyMutatedTenant(t *testing.T) {
	reg := tara.NewRegistry()
	genTenantFleet(t, reg, 12)
	tm := startTARAMonitor(t, reg, nil)

	before := map[string]*tara.TenantAssessment{}
	for _, name := range reg.Names() {
		ten, _ := reg.Get(name)
		cur := ten.Assessment()
		if cur == nil || cur.RatedThreats != cur.TotalThreats {
			t.Fatalf("tenant %s initial assessment not a full pass: %+v", name, cur)
		}
		before[name] = cur
	}

	// Mutate one tenant: a hot override on a single threat.
	target, _ := reg.Get("t05")
	hot, err := tara.NewVectorTable("hot", map[tara.AttackVector]tara.FeasibilityRating{
		tara.VectorPhysical: tara.FeasibilityHigh, tara.VectorLocal: tara.FeasibilityHigh,
		tara.VectorAdjacent: tara.FeasibilityHigh, tara.VectorNetwork: tara.FeasibilityHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	var threatID string
	if _, err := target.Mutate(func(a *tara.Analysis) (bool, error) {
		threatID = a.Threats[3].ID
		return a.SetThreatTable(threatID, hot)
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cur, err := tm.WaitForTenant(ctx, "t05", before["t05"].Generation+1)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != before["t05"].Version+1 {
		t.Fatalf("version = %d, want %d", cur.Version, before["t05"].Version+1)
	}
	if cur.RatedThreats != 1 {
		t.Fatalf("re-rated %d threats, want 1 (only %s was dirty)", cur.RatedThreats, threatID)
	}
	if got := cur.RatingCalls - before["t05"].RatingCalls; got != 1 {
		t.Fatalf("rating calls advanced by %d, want 1", got)
	}
	if cur.TotalThreats != before["t05"].TotalThreats {
		t.Fatalf("total threats changed: %d → %d", before["t05"].TotalThreats, cur.TotalThreats)
	}

	// Every other tenant's published assessment is the same snapshot:
	// not re-rated, not even re-published.
	for _, name := range reg.Names() {
		if name == "t05" {
			continue
		}
		ten, _ := reg.Get(name)
		if got := ten.Assessment(); got != before[name] {
			t.Fatalf("tenant %s was re-published: generation %d → %d, calls %d → %d",
				name, before[name].Generation, got.Generation, before[name].RatingCalls, got.RatingCalls)
		}
	}
}

// TestTARAMonitorSocialBridge checks the feed-to-fleet path: when the
// social monitor publishes threat tunings, only tenants containing the
// tuned threat are mutated and re-rated.
func TestTARAMonitorSocialBridge(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	soc := startMonitor(t, store, core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}})
	if res := soc.Assessment().Result; len(res.Tunings) == 0 {
		t.Fatal("social assessment published no tunings; fixture corpus changed?")
	}

	// Tenant "ecm" contains the socially monitored threat; "plain" does
	// not and must stay clean.
	reg := tara.NewRegistry()
	ecm, err := tara.GenerateAnalysis(tara.GenSpec{
		Name: "ecm", Assets: 4, Damages: 5, Threats: 6, PathsPerThreat: 1, Seed: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ecmThreat()
	th.DamageIDs = []string{ecm.Damages[0].ID}
	th.AssetIDs = nil
	if err := ecm.UpsertThreat(th); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("ecm", ecm); err != nil {
		t.Fatal(err)
	}
	plain, err := tara.GenerateAnalysis(tara.GenSpec{
		Name: "plain", Assets: 4, Damages: 5, Threats: 6, PathsPerThreat: 1, Seed: 501,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("plain", plain); err != nil {
		t.Fatal(err)
	}
	tm := startTARAMonitor(t, reg, soc)

	// The tuning lands as a version-2 mutation on the ecm tenant; the
	// bridge may have applied it before or after the initial pass, so
	// poll for the assessment that covers version ≥ 2.
	ecmTen, _ := reg.Get("ecm")
	deadline := time.Now().Add(30 * time.Second)
	var cur *tara.TenantAssessment
	for {
		cur = ecmTen.Assessment()
		if cur != nil && cur.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ecm tenant never re-rated from social tunings (last: %+v, lastErr: %v)", cur, tm.LastError())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cur.RatedThreats >= cur.TotalThreats && cur.Generation > 1 {
		t.Fatalf("tuning pass re-rated %d/%d threats, want an incremental pass", cur.RatedThreats, cur.TotalThreats)
	}

	plainTen, _ := reg.Get("plain")
	if got := plainTen.Assessment(); got.Version != 1 {
		t.Fatalf("tenant without the monitored threat was mutated to version %d", got.Version)
	}
	if err := tm.LastError(); err != nil {
		t.Fatalf("last error: %v", err)
	}
}

// TestTARAAPIEndpoints exercises the /v1/tara surface end to end:
// directory, conditional GET, optimistic-concurrency mutation with ETag
// advance within a debounce interval, create, delete.
func TestTARAAPIEndpoints(t *testing.T) {
	store, err := social.DefaultStore(7)
	if err != nil {
		t.Fatal(err)
	}
	m := startMonitor(t, store, core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}})
	reg := tara.NewRegistry()
	genTenantFleet(t, reg, 1)
	tm := startTARAMonitor(t, reg, nil)

	srv := httptest.NewServer(NewAPI(m).WithTARA(tm).Handler())
	defer srv.Close()

	// Directory.
	var dir struct {
		Tenants []struct {
			Tenant  string `json:"tenant"`
			Version uint64 `json:"version"`
		} `json:"tenants"`
	}
	getJSON(t, srv.URL+"/v1/tara", http.StatusOK, &dir)
	if len(dir.Tenants) != 1 || dir.Tenants[0].Tenant != "t00" {
		t.Fatalf("directory = %+v", dir)
	}

	// Conditional GET.
	res, err := http.Get(srv.URL + "/v1/tara/t00")
	if err != nil {
		t.Fatal(err)
	}
	var got taraAssessmentResponse
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	etag := res.Header.Get("ETag")
	if res.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("GET tenant: status %d etag %q", res.StatusCode, etag)
	}
	if got.Version != 1 || got.TotalThreats != 10 || len(got.Results) != 10 {
		t.Fatalf("assessment = %+v", got)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/tara/t00", nil)
	req.Header.Set("If-None-Match", etag)
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: status %d, want 304", res2.StatusCode)
	}

	// Stale optimistic-concurrency token → 409, version untouched.
	ops := []tara.Op{{Kind: tara.OpUpsertAsset, Asset: &tara.Asset{
		ID: "A-NEW", Name: "aftermarket dongle",
		Properties: []tara.SecurityProperty{tara.PropertyIntegrity},
	}}}
	opsBody, err := json.Marshal(struct {
		ExpectVersion uint64    `json:"expect_version"`
		Ops           []tara.Op `json:"ops"`
	}{ExpectVersion: 99, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := http.Post(srv.URL+"/v1/tara/t00", "application/json", bytes.NewReader(opsBody))
	if err != nil {
		t.Fatal(err)
	}
	res3.Body.Close()
	if res3.StatusCode != http.StatusConflict {
		t.Fatalf("stale POST: status %d, want 409", res3.StatusCode)
	}

	// Valid mutation at the current version → 200 and, within a
	// debounce interval, a fresh assessment under a new ETag.
	opsBody, _ = json.Marshal(struct {
		ExpectVersion uint64    `json:"expect_version"`
		Ops           []tara.Op `json:"ops"`
	}{ExpectVersion: 1, Ops: ops})
	var mres taraMutateResponse
	res4, err := http.Post(srv.URL+"/v1/tara/t00", "application/json", bytes.NewReader(opsBody))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res4.Body).Decode(&mres); err != nil {
		t.Fatal(err)
	}
	res4.Body.Close()
	if res4.StatusCode != http.StatusOK || mres.Version != 2 || mres.Applied != 1 {
		t.Fatalf("POST ops: status %d body %+v", res4.StatusCode, mres)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := tm.WaitForTenant(ctx, "t00", got.Generation+1); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v1/tara/t00", nil)
	req.Header.Set("If-None-Match", etag)
	res5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var fresh taraAssessmentResponse
	if err := json.NewDecoder(res5.Body).Decode(&fresh); err != nil {
		t.Fatal(err)
	}
	res5.Body.Close()
	if res5.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation GET: status %d, want 200 (ETag must advance)", res5.StatusCode)
	}
	if res5.Header.Get("ETag") == etag {
		t.Fatal("ETag did not advance after mutation")
	}
	if fresh.Version != 2 {
		t.Fatalf("fresh assessment at version %d, want 2", fresh.Version)
	}

	// Create a tenant over the wire, wait for its rating, delete it.
	newA, err := tara.GenerateAnalysis(tara.GenSpec{
		Name: "loader", Assets: 3, Damages: 3, Threats: 4, PathsPerThreat: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := newA.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/tara/loader", &doc)
	res6, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res6.Body.Close()
	if res6.StatusCode != http.StatusCreated {
		t.Fatalf("PUT create: status %d, want 201", res6.StatusCode)
	}
	if _, err := tm.WaitForTenant(ctx, "loader", 1); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/tara/loader", nil)
	res7, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res7.Body.Close()
	if res7.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, want 204", res7.StatusCode)
	}
	res8, err := http.Get(srv.URL + "/v1/tara/loader")
	if err != nil {
		t.Fatal(err)
	}
	res8.Body.Close()
	if res8.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted tenant: status %d, want 404", res8.StatusCode)
	}
}
