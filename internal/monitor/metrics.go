package monitor

import (
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

// Metrics is the social monitor's recording surface. All fields are
// obs recorders (atomic, nil-safe); nil *Metrics disables recording.
type Metrics struct {
	// Generations counts published assessments; Recomputes the subset
	// that actually re-ran the workflow (the rest re-published the
	// previous result because the delta invalidated nothing).
	Generations *obs.Counter
	Recomputes  *obs.Counter
	// PublishLatency is the debounce-to-publish latency: first pending
	// batch of a flush window → assessment published.
	PublishLatency *obs.Histogram
	// DeltaPosts is the per-flush delta size distribution.
	DeltaPosts *obs.Histogram
	// Failures counts failed re-assessment flushes (retried with
	// backoff).
	Failures *obs.Counter

	reg *obs.Registry
}

// NewMetrics registers the psp_monitor_* family in reg and returns the
// recording surface for one Monitor. Gauge-valued readings
// (generation, assessment age, last-error age) register as
// exposition-time callbacks when the monitor is constructed.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Generations: reg.Counter("psp_monitor_generations_total", "Assessments published."),
		Recomputes: reg.Counter("psp_monitor_recomputes_total",
			"Published assessments that re-ran the workflow."),
		PublishLatency: reg.Histogram("psp_monitor_publish_seconds",
			"Debounce-to-publish latency: first batch of a flush window to assessment publication.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		DeltaPosts: reg.Histogram("psp_monitor_delta_posts", "Posts per re-assessment delta.",
			obs.DefaultSizeBuckets, 1),
		Failures: reg.Counter("psp_monitor_failures_total", "Failed re-assessment flushes."),
		reg:      reg,
	}
}

// registerGauges binds the monitor-state callbacks into the registry.
func (m *Monitor) registerGauges() {
	met := m.cfg.Metrics
	if met == nil || met.reg == nil {
		return
	}
	met.reg.GaugeFunc("psp_monitor_generation", "Current assessment generation (0 before the initial run).",
		func() float64 {
			if cur := m.Assessment(); cur != nil {
				return float64(cur.Generation)
			}
			return 0
		})
	met.reg.GaugeFunc("psp_monitor_assessment_age_seconds",
		"Seconds since the current assessment was published (-1 before the initial run).",
		func() float64 {
			if cur := m.Assessment(); cur != nil {
				return time.Since(cur.UpdatedAt).Seconds()
			}
			return -1
		})
	met.reg.GaugeFunc("psp_monitor_last_error_age_seconds",
		"Seconds since the monitor entered its current error state (0 = healthy).",
		func() float64 {
			m.mu.Lock()
			at := m.lastErrAt
			m.mu.Unlock()
			if at.IsZero() {
				return 0
			}
			return time.Since(at).Seconds()
		})
}

// TARAMetrics is the TARA fleet monitor's recording surface.
type TARAMetrics struct {
	// TenantRates counts successful per-tenant rating passes;
	// RateLatency times them.
	TenantRates *obs.Counter
	RateLatency *obs.Histogram
	// RatingCalls accumulates engine rating calls made by monitor
	// passes — the delta of TenantAssessment.RatingCalls across
	// publications, so it grows with dirty threats, not model size.
	RatingCalls *obs.Counter
	// DirtyThreats is the threats-re-rated-per-pass distribution.
	DirtyThreats *obs.Histogram
	// Failures counts failed per-tenant passes (re-marked dirty and
	// retried with backoff).
	Failures *obs.Counter

	reg *obs.Registry
}

// NewTARAMetrics registers the psp_tara_* family in reg.
func NewTARAMetrics(reg *obs.Registry) *TARAMetrics {
	return &TARAMetrics{
		TenantRates: reg.Counter("psp_tara_tenant_rates_total", "Successful per-tenant rating passes."),
		RateLatency: reg.Histogram("psp_tara_rate_seconds", "Per-tenant re-rate latency.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		RatingCalls: reg.Counter("psp_tara_rating_calls_total",
			"Engine rating calls made by monitor passes (grows with dirty threats, not model size)."),
		DirtyThreats: reg.Histogram("psp_tara_rated_threats", "Threats re-rated per tenant pass.",
			obs.DefaultSizeBuckets, 1),
		Failures: reg.Counter("psp_tara_failures_total", "Failed per-tenant rating passes."),
		reg:      reg,
	}
}

// registerGauges binds registry-state callbacks: fleet size and dirty
// backlog.
func (tm *TARAMonitor) registerGauges() {
	met := tm.cfg.Metrics
	if met == nil || met.reg == nil {
		return
	}
	reg := tm.cfg.Registry
	met.reg.GaugeFunc("psp_tara_tenants", "Tenants in the TARA registry.",
		func() float64 { return float64(reg.Len()) })
	met.reg.GaugeFunc("psp_tara_dirty_tenants", "Tenants awaiting re-rating.",
		func() float64 { return float64(reg.Stats().DirtyTenants) })
}
