package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/social"
)

// State is a monitor's persisted warm-restart image: the published
// assessment (serialized through the core export surface), the listing
// cache's fill identities, and the durable store cursor the state was
// taken at. A restarted daemon that loads a State serves its assessment
// immediately and catches up with PostsSince(Cursor) — an incremental
// delta run — instead of a cold full workflow.
type State struct {
	// SavedAt is the persistence instant.
	SavedAt time.Time `json:"saved_at"`
	// InputSig fingerprints the monitored input (application, region,
	// window, threat scenarios, flags). A state whose signature does not
	// match the configured input is discarded: it describes a different
	// monitoring question.
	InputSig string `json:"input_sig"`
	// Generation, UpdatedAt and CorpusSize mirror the persisted
	// assessment's metadata, so the restored snapshot reports the same
	// freshness (and the same ETag) it did before the restart.
	Generation uint64    `json:"generation"`
	UpdatedAt  time.Time `json:"updated_at"`
	CorpusSize int       `json:"corpus_size"`
	// Cursor is the watched store's durable WAL position at (or
	// conservatively before) the state capture; posts above it form the
	// restart delta.
	Cursor social.DurableCursor `json:"cursor"`
	// Result is the serialized assessment payload.
	Result *core.ResultState `json:"result"`
	// Fills are the listing cache's entries, by post ID.
	Fills []core.FillState `json:"fills,omitempty"`
}

// StateStore persists monitor state. Load returns (nil, nil) when no
// state exists yet; a Load error is treated as "no usable state" (the
// monitor runs cold), a Save error is surfaced through
// Monitor.LastError.
type StateStore interface {
	Load() (*State, error)
	Save(*State) error
}

// FileStateStore keeps the state in one JSON file, replaced atomically
// on every save so a crash mid-save can never leave a torn state for
// the next start to trip over.
type FileStateStore struct {
	Path string
}

// NewFileStateStore persists monitor state at path.
func NewFileStateStore(path string) *FileStateStore { return &FileStateStore{Path: path} }

// Load reads the state file; a missing file is (nil, nil).
func (f *FileStateStore) Load() (*State, error) {
	data, err := os.ReadFile(f.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("monitor: read state: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("monitor: parse state %s: %w", f.Path, err)
	}
	return &st, nil
}

// Save atomically replaces the state file.
func (f *FileStateStore) Save(st *State) error {
	return durable.WriteFileAtomic(f.Path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	})
}

// inputSignature fingerprints the monitored input. JSON over a
// normalized struct: threat scenarios serialize whole, so editing a
// scenario's keywords (which changes its platform queries) invalidates
// persisted state just like changing the application filter does.
func inputSignature(in core.SocialInput) string {
	data, err := json.Marshal(in)
	if err != nil {
		// SocialInput is plain data; an unmarshalable value still yields
		// a stable non-matching signature.
		return fmt.Sprintf("unmarshalable: %v", err)
	}
	return string(data)
}
