// Package monitor implements the continuous monitoring subsystem that
// turns the paper's one-shot Fig. 7 batch workflow into the ongoing
// cybersecurity monitoring activity ISO/SAE 21434 Clause 8 requires:
// TARA ratings refreshed as new threat intelligence arrives, not once
// per analysis campaign.
//
// The pipeline is changefeed → scheduler → cached assessment:
//
//   - the Monitor tails a social.Store changefeed (Store.Watch), so
//     every ingested post is observed exactly once;
//   - incoming posts are debounced, matched against the keyword
//     database and threat scenarios to summarize the dirty slice
//     (core.DirtySet), and fed to the result cache's exact
//     invalidation;
//   - the scheduler re-runs the social workflow through the result
//     cache (core.Framework.RunSocialDelta), which recomputes only the
//     invalidated slices — a delta matching one keyword topic re-drains
//     one listing and rebuilds one SAI entry, while everything else is
//     served from memos;
//   - each refresh publishes an immutable Assessment snapshot carrying
//     the SocialResult plus freshness metadata (generation, update
//     time, corpus size, dirty slice, whether a recompute happened).
//
// Incremental refreshes are provably equivalent to a cold RunSocial
// over the merged corpus (the package tests pin byte-identical
// results); a delta that matches no cached query publishes a
// metadata-only generation without touching the workflow at all.
//
// The API type serves the assessment over HTTP — POST /v1/posts for
// ingest, GET /v1/assessment for the current cached result (with an
// ETag keyed on the assessment generation; If-None-Match polling costs
// a 304 and no body between rating changes), and GET /v1/healthz — and
// ListenAndServe hosts any http.Server with graceful shutdown on
// context cancellation, shared by the pspd and sociald daemons.
//
// # Warm restart
//
// With Config.State set (FileStateStore behind pspd's -data-dir), the
// monitor persists a State after every publication: the assessment
// serialized through core's export surface, the listing cache's fill
// identities as post IDs, and the watched durable store's WAL cursor,
// all replaced atomically. The next Run restores it — provided the
// input signature still matches and the cursor is still within the
// WAL's truncation horizon — publishes the restored Assessment
// immediately (Restored=true, the persisted generation, zero platform
// queries), and asks the store for PostsSince(cursor): the posts the
// persisted state never saw. A non-empty catch-up delta runs through
// the normal incremental flush; an empty one keeps the restored
// generation alive, so pollers' cached ETags stay valid across the
// restart. Any mismatch falls back to a cold initial run.
//
// # Multi-tenant TARA
//
// TARAMonitor runs assessment-as-a-service over a tara.Registry: it
// tails tenant change notifications plus the social Monitor's
// assessment stream, debounces, and re-rates only the dirty tenants —
// and within each tenant, only the dirty threats — on the shared worker
// pool. Social threat tunings are bridged tenant-selectively: a new
// assessment generation mutates exactly the tenants whose analyses
// carry a tuned threat, so an unrelated tenant's published snapshot
// stays pointer-identical. The API serves the fleet under /v1/tara:
// GET /v1/tara lists tenants with versions; GET /v1/tara/{tenant}
// returns the current assessment with an ETag covering model version,
// rating generation and publication time (If-None-Match → 304);
// POST /v1/tara/{tenant} applies a JSON op batch with optional
// expect_version optimistic concurrency (mismatch → 409); PUT creates
// a tenant from an uploaded analysis document and DELETE retires it.
package monitor
