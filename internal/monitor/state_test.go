package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// tapSearcher counts platform queries so warm-restart tests can prove
// an assessment was served without running the workflow.
type tapSearcher struct {
	inner social.Searcher
	calls atomic.Int64
}

func (c *tapSearcher) Search(ctx context.Context, q social.Query) (*social.Page, error) {
	c.calls.Add(1)
	return c.inner.Search(ctx, q)
}

// openSeededDurableStore builds a durable store in dir seeded with the
// reference corpus (only on first open — a reopened dir recovers
// instead).
func openSeededDurableStore(t *testing.T, dir string) *social.Store {
	t.Helper()
	store, err := social.OpenStoreDir(dir, social.DurableOptions{Shards: 4, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		posts, err := social.Generate(social.DefaultCorpusSpec(42))
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(posts...); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// runMonitor starts a monitor and returns it with an idempotent stop.
func runMonitor(t *testing.T, cfg Config) (*Monitor, func()) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("monitor did not stop after cancellation")
		}
	}
	t.Cleanup(stop)
	return m, stop
}

// waitGen waits for an assessment generation with a test timeout.
func waitGen(t *testing.T, m *Monitor, gen uint64) *Assessment {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cur, err := m.WaitFor(ctx, gen)
	if err != nil {
		t.Fatalf("waiting for generation %d: %v", gen, err)
	}
	return cur
}

// TestMonitorWarmRestart is the subsystem acceptance test: a monitor
// over a durable store persists its state; a restarted monitor serves
// its first assessment from that state without a single platform
// query, resumes the generation sequence, then catches up with an
// incremental delta run whose output is byte-identical to a cold run
// over the merged corpus.
func TestMonitorWarmRestart(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "monitor.json")
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}

	// First life: cold run, one incremental delta, state persisted.
	store1 := openSeededDurableStore(t, filepath.Join(dir, "store"))
	fw1, err := core.New(core.Config{Searcher: store1})
	if err != nil {
		t.Fatal(err)
	}
	m1, stop1 := runMonitor(t, Config{
		Framework: fw1,
		Store:     store1,
		Input:     in,
		Debounce:  20 * time.Millisecond,
		State:     NewFileStateStore(statePath),
	})
	first := waitGen(t, m1, 1)
	if !first.FullRun || first.Restored {
		t.Fatalf("first life should start cold: %+v", first)
	}
	for i := 0; i < 10; i++ {
		if err := store1.Add(deltaPost(i, "hot new #chiptuning stage1 file")); err != nil {
			t.Fatal(err)
		}
	}
	persisted := waitGen(t, m1, first.Generation+1)
	stop1()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the store recovers, posts arrive before the monitor
	// is back (the crash-gap delta), and the monitor restarts warm.
	store2 := openSeededDurableStore(t, filepath.Join(dir, "store"))
	if store2.Len() != store1.Len() {
		t.Fatalf("store recovered %d posts, want %d", store2.Len(), store1.Len())
	}
	var gap []*social.Post
	for i := 100; i < 110; i++ {
		gap = append(gap, deltaPost(i, "another #chiptuning remap drop"))
	}
	if err := store2.Add(gap...); err != nil {
		t.Fatal(err)
	}
	tap := &tapSearcher{inner: store2}
	fw2, err := core.New(core.Config{Searcher: tap})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := Config{
		Framework: fw2,
		Store:     store2,
		Searcher:  tap,
		Input:     in,
		Debounce:  20 * time.Millisecond,
		State:     NewFileStateStore(statePath),
	}

	// Probe the restore step synchronously first: the assessment must be
	// up before a single platform query runs.
	probe, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok := probe.tryRestore()
	if !ok {
		t.Fatal("persisted state not restored")
	}
	if len(delta) != len(gap) {
		t.Fatalf("restart delta has %d posts, want the %d-post crash gap", len(delta), len(gap))
	}
	restored := probe.Assessment()
	if restored == nil || !restored.Restored {
		t.Fatalf("first post-restart assessment not served from persisted state: %+v", restored)
	}
	if restored.Generation != persisted.Generation || !restored.UpdatedAt.Equal(persisted.UpdatedAt) {
		t.Fatalf("restored metadata diverged: gen %d at %v, want gen %d at %v",
			restored.Generation, restored.UpdatedAt, persisted.Generation, persisted.UpdatedAt)
	}
	if got := tap.calls.Load(); got != 0 {
		t.Fatalf("restored assessment cost %d platform queries, want 0", got)
	}
	// The persisted payload rendered identically to what the first life
	// served.
	a, _ := json.Marshal(renderAssessment(persisted).Index)
	b, _ := json.Marshal(renderAssessment(restored).Index)
	if !bytes.Equal(a, b) {
		t.Fatal("restored index rendering differs from the persisted one")
	}

	// Now the full Run path: a fresh monitor restores, catches up on the
	// crash-gap delta as one incremental run (the restored fills keep
	// untouched queries off the platform), and converges to a cold run.
	tap.calls.Store(0)
	m2, stop2 := runMonitor(t, cfg2)
	caught := waitGen(t, m2, persisted.Generation+1)
	if caught.FullRun || caught.Restored {
		t.Fatalf("catch-up ran cold: %+v", caught)
	}
	warmQueries := tap.calls.Load()

	// Cold reference over the merged corpus: byte-identical rendering,
	// and strictly more platform queries than the warm catch-up.
	coldTap := &tapSearcher{inner: store2}
	coldFW, err := core.New(core.Config{Searcher: coldTap})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldFW.RunSocial(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(caught.Result, cold) {
		t.Fatal("warm catch-up diverged from a cold run over the merged corpus")
	}
	coldView := *caught
	coldView.Result = cold
	ar, _ := json.Marshal(renderAssessment(caught))
	br, _ := json.Marshal(renderAssessment(&coldView))
	if !bytes.Equal(ar, br) {
		t.Fatalf("wire renderings differ:\n%s\n%s", ar, br)
	}
	if coldQueries := coldTap.calls.Load(); warmQueries >= coldQueries {
		t.Errorf("warm catch-up used %d queries, cold run %d — the restored cache saved nothing", warmQueries, coldQueries)
	}
	stop2()
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorStateInputMismatch: persisted state for a different
// monitored input is discarded — the restarted monitor runs cold
// rather than serving an answer to the wrong question.
func TestMonitorStateInputMismatch(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "monitor.json")
	store := openSeededDurableStore(t, filepath.Join(dir, "store"))
	defer store.Close()
	fw, err := core.New(core.Config{Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	m1, stop1 := runMonitor(t, Config{
		Framework: fw,
		Store:     store,
		Input:     core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}},
		Debounce:  20 * time.Millisecond,
		State:     NewFileStateStore(statePath),
	})
	waitGen(t, m1, 1)
	stop1()
	if st, err := NewFileStateStore(statePath).Load(); err != nil || st == nil {
		t.Fatalf("no persisted state to mismatch against (err %v)", err)
	}

	m2, _ := runMonitor(t, Config{
		Framework: fw,
		Store:     store,
		Input:     core.SocialInput{Application: "excavator", Threats: []*tara.ThreatScenario{ecmThreat()}},
		Debounce:  20 * time.Millisecond,
		State:     NewFileStateStore(statePath),
	})
	first := waitGen(t, m2, 1)
	if first.Restored || !first.FullRun {
		t.Fatalf("mismatched input restored stale state: %+v", first)
	}
}

// TestAssessmentETag: GET /v1/assessment carries an ETag keyed on the
// assessment generation, and If-None-Match answers 304 without a body
// until the generation moves.
func TestAssessmentETag(t *testing.T) {
	store, err := social.DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	in := core.SocialInput{Threats: []*tara.ThreatScenario{ecmThreat()}}
	m := startMonitor(t, store, in)
	srv := httptest.NewServer(NewAPI(m).Handler())
	defer srv.Close()

	get := func(inm string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/assessment", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := get("")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET: %d with %d bytes", resp.StatusCode, len(body))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on assessment response")
	}
	if resp, body := get(etag); resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("matching If-None-Match: %d with %d bytes, want 304 empty", resp.StatusCode, len(body))
	}
	// Weak validators and lists match too; a stale tag does not.
	if resp, _ := get("W/" + etag + `, "other"`); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak/list If-None-Match: %d, want 304", resp.StatusCode)
	}
	if resp, _ := get(`"g0.0"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: %d, want 200", resp.StatusCode)
	}
	if resp, _ := get("*"); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard If-None-Match: %d, want 304", resp.StatusCode)
	}

	// A new generation invalidates the cached copy.
	gen := m.Assessment().Generation
	if err := store.Add(deltaPost(900, "fresh #chiptuning chatter")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.WaitFor(ctx, gen+1); err != nil {
		t.Fatal(err)
	}
	resp, body = get(etag)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("after generation change: %d with %d bytes, want fresh 200", resp.StatusCode, len(body))
	}
	if newTag := resp.Header.Get("ETag"); newTag == etag {
		t.Fatal("ETag did not change with the generation")
	}
}
