package monitor

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psp-framework/psp/internal/core"
	"github.com/psp-framework/psp/internal/obs"
	"github.com/psp-framework/psp/internal/tara"
)

// TARAConfig configures a TARAMonitor.
type TARAConfig struct {
	// Framework supplies the worker pool (and, transitively, the shared
	// keyword DB and SAI the tenants' social tunings come from).
	Framework *core.Framework
	// Registry holds the tenants. Required; usually pre-populated, but
	// tenants created later are picked up through the dirty signal.
	Registry *tara.Registry
	// Social optionally bridges a social monitor: every published social
	// generation's ThreatTuning deltas are applied to all tenants,
	// marking exactly the affected threat IDs dirty.
	Social *Monitor
	// Debounce batches dirty-tenant signals before a rating pass.
	// Defaults to 100ms.
	Debounce time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
	// Metrics, when set, records per-tenant rate latency, rating-call
	// deltas and dirty-threat counts (see NewTARAMetrics).
	Metrics *TARAMetrics
	// Tracer, when set, records one "tara.rate" span per tenant
	// re-rate, attributing the pass's cost (dirty threats re-rated,
	// rating calls spent) to the tenant.
	Tracer *obs.Tracer
	// Logger receives the fleet monitor's structured log lines; nil
	// discards.
	Logger *slog.Logger
}

// TARAMonitor continuously re-rates the dirty tenants of a registry: it
// tails the registry's dirty signal (debounced) and, when bridged, the
// social monitor's assessment stream, so a product line of vehicle
// variants is re-assessed within one debounce interval of a model
// mutation or threat-feed change — re-rating only the dirty threats of
// the dirty tenants.
type TARAMonitor struct {
	cfg TARAConfig

	// initialDone flips after the startup pass over every tenant — the
	// fleet's readiness signal (see Ready).
	initialDone atomic.Bool

	mu      sync.Mutex
	lastErr error
	// notify is closed and replaced on every publication, broadcasting
	// to WaitForTenant pollers.
	notify chan struct{}
}

// NewTARAMonitor validates the configuration.
func NewTARAMonitor(cfg TARAConfig) (*TARAMonitor, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("monitor: tara: nil framework")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("monitor: tara: nil registry")
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	tm := &TARAMonitor{cfg: cfg, notify: make(chan struct{})}
	tm.registerGauges()
	return tm, nil
}

// Registry returns the tenant registry.
func (tm *TARAMonitor) Registry() *tara.Registry { return tm.cfg.Registry }

// LastError returns the most recent rating failure, cleared by the next
// successful pass.
func (tm *TARAMonitor) LastError() error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.lastErr
}

// Run drives the rating loop until the context is cancelled: an initial
// pass over every tenant, then debounced incremental passes over dirty
// tenants. Failed tenants are re-marked dirty and retried with the
// monitor's exponential backoff.
func (tm *TARAMonitor) Run(ctx context.Context) error {
	if tm.cfg.Social != nil {
		go tm.tailSocial(ctx)
	}
	// Initial pass: every tenant present at startup. Dirty marks are
	// deliberately not drained here — re-rating a clean tenant is a
	// no-op (its published assessment is kept), so a concurrent mark is
	// never lost and a duplicate one costs nothing.
	tm.ratePass(ctx, tm.cfg.Registry.Names())
	tm.initialDone.Store(true)

	var debounceC <-chan time.Time
	var failStreak uint
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tm.cfg.Registry.Notify():
			if debounceC == nil {
				debounceC = time.After(retryDelay(tm.cfg.Debounce, failStreak))
			}
		case <-debounceC:
			debounceC = nil
			if ok := tm.ratePass(ctx, tm.cfg.Registry.TakeDirty()); ok {
				failStreak = 0
			} else if failStreak < 16 {
				failStreak++
			}
		}
	}
}

// ratePass rates the named tenants, re-marking failed ones dirty.
// Reports whether every tenant succeeded.
func (tm *TARAMonitor) ratePass(ctx context.Context, names []string) bool {
	met := tm.cfg.Metrics
	ok := true
	for _, name := range names {
		if ctx.Err() != nil {
			return false
		}
		ten, found := tm.cfg.Registry.Get(name)
		if !found {
			continue
		}
		prev := ten.Assessment()
		var prevCalls uint64
		if met != nil || tm.cfg.Tracer != nil {
			prevCalls = ten.RatingCalls()
		}
		_, span := tm.cfg.Tracer.Start(ctx, "tara.rate")
		span.SetAttr("tenant", name)
		t0 := time.Now()
		cur, err := ten.Rate(tm.cfg.Now(), func(p *tara.Plan) ([]*tara.ThreatResult, error) {
			return tm.cfg.Framework.RatePlan(ctx, p)
		})
		tm.mu.Lock()
		tm.lastErr = err
		tm.mu.Unlock()
		if err != nil {
			ok = false
			if met != nil {
				met.Failures.Inc()
			}
			span.Fail(err)
			span.End()
			tm.cfg.Logger.Warn("tenant rating failed", "tenant", name, "error", err)
			tm.cfg.Registry.MarkDirty(name)
			continue
		}
		if met != nil {
			met.TenantRates.Inc()
			met.RateLatency.ObserveSince(t0)
			// Rate keeps the previous assessment when nothing is dirty —
			// only an actual re-rate advances the call and threat counters.
			if cur != prev {
				met.RatingCalls.Add(ten.RatingCalls() - prevCalls)
				met.DirtyThreats.Observe(int64(cur.RatedThreats))
			}
		}
		if span != nil {
			if cur != prev {
				span.SetBool("rerated", true)
				span.SetInt("dirty_threats", int64(cur.RatedThreats))
				span.SetInt("rating_calls", int64(ten.RatingCalls()-prevCalls))
				span.SetInt("generation", int64(cur.Generation))
			} else {
				span.SetBool("rerated", false)
			}
			span.End()
		}
		if cur != prev {
			tm.cfg.Logger.Debug("tenant rated",
				"tenant", name, "generation", cur.Generation,
				"rated_threats", cur.RatedThreats, "total_threats", cur.TotalThreats)
		}
		tm.broadcast()
	}
	return ok
}

// Ready reports whether the initial pass over every startup tenant has
// completed — the fleet half of the daemon's readiness gate.
func (tm *TARAMonitor) Ready() bool { return tm.initialDone.Load() }

func (tm *TARAMonitor) broadcast() {
	tm.mu.Lock()
	close(tm.notify)
	tm.notify = make(chan struct{})
	tm.mu.Unlock()
}

// tailSocial follows the social monitor's published assessments and
// applies each generation's threat tunings to every tenant. Tenants
// whose effective tables do not change stay clean — repeated identical
// learning outcomes cause no re-rating.
func (tm *TARAMonitor) tailSocial(ctx context.Context) {
	var gen uint64
	for {
		cur, err := tm.cfg.Social.WaitFor(ctx, gen+1)
		if err != nil {
			return
		}
		gen = cur.Generation
		if cur.Result == nil || len(cur.Result.Tunings) == 0 {
			continue
		}
		for _, name := range tm.cfg.Registry.Names() {
			ten, found := tm.cfg.Registry.Get(name)
			if !found {
				continue
			}
			_, err := ten.Mutate(func(a *tara.Analysis) (bool, error) {
				changed, err := core.ApplyTunings(a, cur.Result.Tunings)
				return len(changed) > 0, err
			})
			if err != nil {
				tm.mu.Lock()
				tm.lastErr = fmt.Errorf("monitor: tara: apply tunings to tenant %s: %w", name, err)
				tm.mu.Unlock()
			}
		}
	}
}

// WaitForTenant blocks until the named tenant has published an
// assessment with at least the given generation, or the context ends.
func (tm *TARAMonitor) WaitForTenant(ctx context.Context, name string, minGeneration uint64) (*tara.TenantAssessment, error) {
	for {
		tm.mu.Lock()
		ch := tm.notify
		tm.mu.Unlock()
		if ten, ok := tm.cfg.Registry.Get(name); ok {
			if cur := ten.Assessment(); cur != nil && cur.Generation >= minGeneration {
				return cur, nil
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}
