package canbus

// PeriodicSender transmits a fixed frame every Period slots, retrying
// until each instance is delivered (a simplified transmit queue of depth
// one: a new period overwrites an undelivered frame, which counts as a
// deadline miss).
type PeriodicSender struct {
	name   string
	frame  Frame
	period int

	queued    bool
	generated int
	delivered int
	misses    int
}

// NewPeriodicSender builds a sender for one frame every period slots.
func NewPeriodicSender(name string, frame Frame, period int) *PeriodicSender {
	if period < 1 {
		period = 1
	}
	return &PeriodicSender{name: name, frame: frame, period: period}
}

// Name implements Node.
func (s *PeriodicSender) Name() string { return s.name }

// Pending implements Node: a new frame instance is generated at every
// period boundary; an undelivered previous instance is dropped and
// counted as a deadline miss.
func (s *PeriodicSender) Pending(slot int) (Frame, bool) {
	if slot%s.period == 0 {
		if s.queued {
			s.misses++
		}
		s.queued = true
		s.generated++
	}
	if !s.queued {
		return Frame{}, false
	}
	return s.frame, true
}

// Sent implements Node.
func (s *PeriodicSender) Sent(int) {
	s.queued = false
	s.delivered = s.delivered + 1
}

// Receive implements Node (periodic senders ignore traffic).
func (s *PeriodicSender) Receive(int, Frame) {}

// Stats returns generated, delivered and missed frame counts.
func (s *PeriodicSender) Stats() (generated, delivered, misses int) {
	return s.generated, s.delivered, s.misses
}

// DeliveryRate returns delivered/generated (1.0 when nothing was
// generated yet).
func (s *PeriodicSender) DeliveryRate() float64 {
	if s.generated == 0 {
		return 1
	}
	return float64(s.delivered) / float64(s.generated)
}

// Flooder transmits a frame every slot — the signal-extinction style
// denial of service: with a lower identifier than the victim it wins
// every arbitration round and starves the victim completely.
type Flooder struct {
	name  string
	frame Frame
	sent  int
	// Active can be toggled to start/stop the attack mid-simulation.
	Active bool
}

// NewFlooder builds an attacker flooding the given frame.
func NewFlooder(name string, frame Frame) *Flooder {
	return &Flooder{name: name, frame: frame, Active: true}
}

// Name implements Node.
func (f *Flooder) Name() string { return f.name }

// Pending implements Node.
func (f *Flooder) Pending(int) (Frame, bool) {
	if !f.Active {
		return Frame{}, false
	}
	return f.frame, true
}

// Sent implements Node.
func (f *Flooder) Sent(int) { f.sent++ }

// Receive implements Node.
func (f *Flooder) Receive(int, Frame) {}

// SentCount returns how many frames the flooder delivered.
func (f *Flooder) SentCount() int { return f.sent }

// Monitor records every delivered frame matching a filter.
type Monitor struct {
	name   string
	filter func(Frame) bool
	seen   []Delivery
}

// NewMonitor builds a passive listener; a nil filter records everything.
func NewMonitor(name string, filter func(Frame) bool) *Monitor {
	if filter == nil {
		filter = func(Frame) bool { return true }
	}
	return &Monitor{name: name, filter: filter}
}

// Name implements Node.
func (m *Monitor) Name() string { return m.name }

// Pending implements Node (monitors never transmit).
func (m *Monitor) Pending(int) (Frame, bool) { return Frame{}, false }

// Sent implements Node.
func (m *Monitor) Sent(int) {}

// Receive implements Node.
func (m *Monitor) Receive(slot int, f Frame) {
	if m.filter(f) {
		m.seen = append(m.seen, Delivery{Slot: slot, Frame: f})
	}
}

// Seen returns the recorded deliveries.
func (m *Monitor) Seen() []Delivery { return m.seen }
