package canbus

import (
	"bytes"
	"fmt"
)

// UDS-style service identifiers (subset).
const (
	SvcSessionControl  byte = 0x10
	SvcSecurityAccess  byte = 0x27
	SvcRequestDownload byte = 0x34
	SvcTransferData    byte = 0x36
	SvcTransferExit    byte = 0x37

	// positiveOffset turns a request SID into its positive response SID.
	positiveOffset byte = 0x40
	// negativeSID marks a negative response.
	negativeSID byte = 0x7F
)

// Negative response codes (subset).
const (
	NRCSubFunction     byte = 0x12
	NRCIncorrectLength byte = 0x13
	NRCRequestSequence byte = 0x24
	NRCSecurityDenied  byte = 0x33
	NRCInvalidKey      byte = 0x35
	NRCWrongSession    byte = 0x7E
)

// Sessions.
const (
	SessionDefault     byte = 0x01
	SessionProgramming byte = 0x02
)

// ECU is a diagnostic server on the bus: it listens for single-frame
// service requests on its request identifier and answers on its response
// identifier. Reprogramming requires the programming session and a
// successful seed/key security access — the mechanism whose bypass via
// leaked seed/key secrets makes OBD reprogramming a *local*, not
// network, attack in the PSP analysis.
type ECU struct {
	name   string
	reqID  uint16
	respID uint16
	secret []byte

	session   byte
	unlocked  bool
	lastSeed  []byte
	seedState uint32

	downloadActive bool
	expectedSeq    byte
	buffer         []byte

	// Firmware is the currently installed image.
	Firmware []byte
	// FlashCount counts completed reprogramming cycles.
	FlashCount int

	outbox []Frame
}

// NewECU builds a diagnostic server. secret is the seed/key secret;
// firmware is the installed image.
func NewECU(name string, reqID, respID uint16, secret, firmware []byte) *ECU {
	return &ECU{
		name: name, reqID: reqID, respID: respID,
		secret:    append([]byte(nil), secret...),
		session:   SessionDefault,
		seedState: 0x1F2E3D4C,
		Firmware:  append([]byte(nil), firmware...),
	}
}

// Name implements Node.
func (e *ECU) Name() string { return e.name }

// Session returns the active diagnostic session.
func (e *ECU) Session() byte { return e.session }

// Unlocked reports whether security access succeeded.
func (e *ECU) Unlocked() bool { return e.unlocked }

// Pending implements Node: queued responses drain one per slot.
func (e *ECU) Pending(int) (Frame, bool) {
	if len(e.outbox) == 0 {
		return Frame{}, false
	}
	return e.outbox[0], true
}

// Sent implements Node.
func (e *ECU) Sent(int) { e.outbox = e.outbox[1:] }

// Receive implements Node: frames on the request identifier are service
// requests.
func (e *ECU) Receive(_ int, f Frame) {
	if f.ID != e.reqID || len(f.Data) == 0 {
		return
	}
	resp := e.handle(f.Data)
	e.outbox = append(e.outbox, Frame{ID: e.respID, Data: resp})
}

func (e *ECU) negative(sid, nrc byte) []byte { return []byte{negativeSID, sid, nrc} }

func (e *ECU) handle(req []byte) []byte {
	sid := req[0]
	switch sid {
	case SvcSessionControl:
		if len(req) != 2 {
			return e.negative(sid, NRCIncorrectLength)
		}
		switch req[1] {
		case SessionDefault, SessionProgramming:
			e.session = req[1]
			// Session transitions reset security state, per UDS.
			e.unlocked = false
			e.downloadActive = false
			return []byte{sid + positiveOffset, req[1]}
		default:
			return e.negative(sid, NRCSubFunction)
		}
	case SvcSecurityAccess:
		if len(req) < 2 {
			return e.negative(sid, NRCIncorrectLength)
		}
		switch req[1] {
		case 0x01: // request seed
			e.lastSeed = e.nextSeed()
			return append([]byte{sid + positiveOffset, 0x01}, e.lastSeed...)
		case 0x02: // send key
			if e.lastSeed == nil {
				return e.negative(sid, NRCRequestSequence)
			}
			want := ComputeKey(e.lastSeed, e.secret)
			if !bytes.Equal(req[2:], want) {
				e.lastSeed = nil
				return e.negative(sid, NRCInvalidKey)
			}
			e.unlocked = true
			e.lastSeed = nil
			return []byte{sid + positiveOffset, 0x02}
		default:
			return e.negative(sid, NRCSubFunction)
		}
	case SvcRequestDownload:
		if e.session != SessionProgramming {
			return e.negative(sid, NRCWrongSession)
		}
		if !e.unlocked {
			return e.negative(sid, NRCSecurityDenied)
		}
		e.downloadActive = true
		e.expectedSeq = 1
		e.buffer = nil
		return []byte{sid + positiveOffset}
	case SvcTransferData:
		if !e.downloadActive {
			return e.negative(sid, NRCRequestSequence)
		}
		if len(req) < 2 {
			return e.negative(sid, NRCIncorrectLength)
		}
		if req[1] != e.expectedSeq {
			return e.negative(sid, NRCRequestSequence)
		}
		e.buffer = append(e.buffer, req[2:]...)
		e.expectedSeq++
		return []byte{sid + positiveOffset, req[1]}
	case SvcTransferExit:
		if !e.downloadActive || len(e.buffer) == 0 {
			return e.negative(sid, NRCRequestSequence)
		}
		e.Firmware = append([]byte(nil), e.buffer...)
		e.FlashCount++
		e.downloadActive = false
		e.buffer = nil
		return []byte{sid + positiveOffset}
	default:
		return e.negative(sid, NRCSubFunction)
	}
}

// nextSeed draws a 2-byte seed from a deterministic LCG.
func (e *ECU) nextSeed() []byte {
	e.seedState = e.seedState*1664525 + 1013904223
	return []byte{byte(e.seedState >> 24), byte(e.seedState >> 16)}
}

// ComputeKey derives the security-access key from a seed and the shared
// secret: key[i] = seed[i] XOR secret[i mod len(secret)]. Deliberately
// weak — the point of the PSP argument is that such algorithms leak into
// the tuning scene, turning reprogramming into a routine local attack.
func ComputeKey(seed, secret []byte) []byte {
	if len(secret) == 0 {
		return append([]byte(nil), seed...)
	}
	key := make([]byte, len(seed))
	for i, s := range seed {
		key[i] = s ^ secret[i%len(secret)]
	}
	return key
}

// TesterStep builds the next request from the responses received so far;
// it returns false when the tester should stop scripting.
type TesterStep func(responses []Frame) (Frame, bool)

// Tester is a diagnostic client (an OBD flashing tool) walking a step
// script: send a request, wait for the ECU response, compute the next
// request.
type Tester struct {
	name   string
	respID uint16
	steps  []TesterStep

	idx       int
	awaiting  bool
	responses []Frame
	failedNRC byte
	done      bool
}

// NewTester builds a tester listening for responses on respID.
func NewTester(name string, respID uint16, steps []TesterStep) *Tester {
	return &Tester{name: name, respID: respID, steps: steps}
}

// Name implements Node.
func (t *Tester) Name() string { return t.name }

// Pending implements Node.
func (t *Tester) Pending(int) (Frame, bool) {
	if t.done || t.awaiting || t.idx >= len(t.steps) {
		return Frame{}, false
	}
	f, ok := t.steps[t.idx](t.responses)
	if !ok {
		t.done = true
		return Frame{}, false
	}
	return f, true
}

// Sent implements Node.
func (t *Tester) Sent(int) { t.awaiting = true }

// Receive implements Node.
func (t *Tester) Receive(_ int, f Frame) {
	if f.ID != t.respID || !t.awaiting {
		return
	}
	t.awaiting = false
	t.responses = append(t.responses, f.Clone())
	if len(f.Data) >= 3 && f.Data[0] == negativeSID {
		t.failedNRC = f.Data[2]
		t.done = true
		return
	}
	t.idx++
	if t.idx >= len(t.steps) {
		t.done = true
	}
}

// Done reports whether the script completed or aborted.
func (t *Tester) Done() bool { return t.done && !t.awaiting }

// Failed returns the negative response code that aborted the script
// (0 when none).
func (t *Tester) Failed() byte { return t.failedNRC }

// Responses returns the received responses.
func (t *Tester) Responses() []Frame { return t.responses }

// FlashScript builds the full reprogramming sequence: programming
// session, seed request, key (computed from the seed with the given
// secret), download request, firmware transfer in 6-byte chunks, and
// transfer exit. reqID is the ECU's request identifier.
func FlashScript(reqID uint16, secret, firmware []byte) []TesterStep {
	fixed := func(data ...byte) TesterStep {
		return func([]Frame) (Frame, bool) {
			return Frame{ID: reqID, Data: data}, true
		}
	}
	steps := []TesterStep{
		fixed(SvcSessionControl, SessionProgramming),
		fixed(SvcSecurityAccess, 0x01),
		func(responses []Frame) (Frame, bool) {
			if len(responses) == 0 {
				return Frame{}, false
			}
			last := responses[len(responses)-1]
			if len(last.Data) < 3 || last.Data[0] != SvcSecurityAccess+positiveOffset {
				return Frame{}, false
			}
			seed := last.Data[2:]
			key := ComputeKey(seed, secret)
			return Frame{ID: reqID, Data: append([]byte{SvcSecurityAccess, 0x02}, key...)}, true
		},
		fixed(SvcRequestDownload),
	}
	seq := byte(1)
	for off := 0; off < len(firmware); off += 6 {
		end := off + 6
		if end > len(firmware) {
			end = len(firmware)
		}
		chunk := firmware[off:end]
		data := append([]byte{SvcTransferData, seq}, chunk...)
		steps = append(steps, fixed(data...))
		seq++
	}
	steps = append(steps, fixed(SvcTransferExit))
	return steps
}

// RunUntilDone steps the bus until the tester finishes or maxSlots pass.
// It returns the slots consumed.
func RunUntilDone(bus *Bus, tester *Tester, maxSlots int) (int, error) {
	for i := 0; i < maxSlots; i++ {
		if tester.Done() {
			return i, nil
		}
		if _, err := bus.Step(); err != nil {
			return i, err
		}
	}
	if !tester.Done() {
		return maxSlots, fmt.Errorf("canbus: tester %s not done after %d slots", tester.Name(), maxSlots)
	}
	return maxSlots, nil
}
