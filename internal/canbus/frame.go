package canbus

import (
	"fmt"
)

// MaxStandardID is the highest 11-bit CAN identifier.
const MaxStandardID = 0x7FF

// Frame is a classic CAN data frame with an 11-bit identifier.
type Frame struct {
	// ID is the 11-bit arbitration identifier; lower wins arbitration.
	ID uint16
	// Data is the payload; len(Data) ≤ 8.
	Data []byte
}

// Validate checks identifier range and payload length.
func (f Frame) Validate() error {
	if f.ID > MaxStandardID {
		return fmt.Errorf("canbus: identifier 0x%X exceeds 11 bits", f.ID)
	}
	if len(f.Data) > 8 {
		return fmt.Errorf("canbus: payload of %d bytes exceeds 8", len(f.Data))
	}
	return nil
}

// DLC returns the data length code.
func (f Frame) DLC() int { return len(f.Data) }

// String renders the frame as "ID#HEXDATA".
func (f Frame) String() string {
	return fmt.Sprintf("0x%03X#%X", f.ID, f.Data)
}

// Clone deep-copies the frame so receivers cannot alias sender buffers.
func (f Frame) Clone() Frame {
	return Frame{ID: f.ID, Data: append([]byte(nil), f.Data...)}
}
