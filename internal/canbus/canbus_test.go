package canbus

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 0x100, Data: []byte{1, 2}}).Validate(); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	if err := (Frame{ID: 0x800}).Validate(); err == nil {
		t.Error("12-bit identifier accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Error("9-byte payload accepted")
	}
	f := Frame{ID: 0x123, Data: []byte{0xAB}}
	if f.String() != "0x123#AB" {
		t.Errorf("String() = %q", f.String())
	}
	cl := f.Clone()
	cl.Data[0] = 0
	if f.Data[0] != 0xAB {
		t.Error("Clone aliases payload")
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	bus := NewBus()
	hi := NewPeriodicSender("hi", Frame{ID: 0x100, Data: []byte{1}}, 1)
	lo := NewPeriodicSender("lo", Frame{ID: 0x200, Data: []byte{2}}, 1)
	if err := bus.Attach(hi, lo); err != nil {
		t.Fatal(err)
	}
	if err := bus.Run(10); err != nil {
		t.Fatal(err)
	}
	// The 0x100 sender wins every slot; 0x200 never transmits.
	if got := bus.DeliveredCount(0x100); got != 10 {
		t.Errorf("high-priority deliveries = %d, want 10", got)
	}
	if got := bus.DeliveredCount(0x200); got != 0 {
		t.Errorf("low-priority deliveries = %d, want 0", got)
	}
	if _, _, misses := lo.Stats(); misses == 0 {
		t.Error("starved sender recorded no deadline misses")
	}
}

func TestBusInterleavesDifferentPeriods(t *testing.T) {
	bus := NewBus()
	fast := NewPeriodicSender("fast", Frame{ID: 0x100}, 2)
	slow := NewPeriodicSender("slow", Frame{ID: 0x200}, 4)
	if err := bus.Attach(fast, slow); err != nil {
		t.Fatal(err)
	}
	if err := bus.Run(40); err != nil {
		t.Fatal(err)
	}
	// fast generates every 2 slots, slow every 4; the bus has capacity
	// for both, so both achieve full delivery.
	if fast.DeliveryRate() < 0.95 {
		t.Errorf("fast delivery rate = %.2f", fast.DeliveryRate())
	}
	if slow.DeliveryRate() < 0.95 {
		t.Errorf("slow delivery rate = %.2f (stats %v)", slow.DeliveryRate(), bus.DeliveredCount(0x200))
	}
}

func TestAttachRejectsDuplicates(t *testing.T) {
	bus := NewBus()
	a := NewPeriodicSender("a", Frame{ID: 1}, 1)
	b := NewPeriodicSender("a", Frame{ID: 2}, 1)
	if err := bus.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach(b); err == nil {
		t.Error("duplicate node name accepted")
	}
}

func TestStepRejectsInvalidFrames(t *testing.T) {
	bus := NewBus()
	bad := NewPeriodicSender("bad", Frame{ID: 0x900}, 1)
	if err := bus.Attach(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Step(); err == nil {
		t.Error("invalid frame transmitted")
	}
}

func TestSignalExtinctionDoS(t *testing.T) {
	// The paper's powertrain DoS: a flooding attacker with a
	// top-priority identifier starves the torque frame completely.
	bus := NewBus()
	torque := NewPeriodicSender("ECM-torque", Frame{ID: 0x0C0, Data: []byte{0x10, 0x27}}, 2)
	attacker := NewFlooder("attacker", Frame{ID: 0x000})
	monitor := NewMonitor("monitor", func(f Frame) bool { return f.ID == 0x0C0 })
	if err := bus.Attach(torque, attacker, monitor); err != nil {
		t.Fatal(err)
	}
	if err := bus.Run(100); err != nil {
		t.Fatal(err)
	}
	if rate := torque.DeliveryRate(); rate > 0.03 {
		t.Errorf("torque delivery rate under attack = %.3f, want ≈0", rate)
	}
	if len(monitor.Seen()) != 0 {
		t.Errorf("monitor saw %d torque frames under attack", len(monitor.Seen()))
	}
	if attacker.SentCount() != 100 {
		t.Errorf("attacker sent %d frames, want 100", attacker.SentCount())
	}

	// Stopping the attack restores delivery.
	attacker.Active = false
	genBefore, delBefore, _ := torque.Stats()
	if err := bus.Run(100); err != nil {
		t.Fatal(err)
	}
	genAfter, delAfter, _ := torque.Stats()
	recovered := float64(delAfter-delBefore) / float64(genAfter-genBefore)
	if recovered < 0.95 {
		t.Errorf("post-attack delivery rate = %.2f, want ≈1", recovered)
	}
	if len(monitor.Seen()) == 0 {
		t.Error("monitor saw no torque frames after the attack stopped")
	}
}

func TestUDSFlashHappyPath(t *testing.T) {
	// The local/OBD reprogramming attack: a tester with the leaked
	// seed/key secret reflashes the ECM through the diagnostic session.
	secret := []byte{0xA5, 0x5A}
	oldFW := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	newFW := []byte("TUNED-CALIBRATION-v2")
	bus := NewBus()
	ecm := NewECU("ECM", 0x7E0, 0x7E8, secret, oldFW)
	tool := NewTester("obd-tool", 0x7E8, FlashScript(0x7E0, secret, newFW))
	if err := bus.Attach(ecm, tool); err != nil {
		t.Fatal(err)
	}
	slots, err := RunUntilDone(bus, tool, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Failed() != 0 {
		t.Fatalf("flash aborted with NRC 0x%02X", tool.Failed())
	}
	if !bytes.Equal(ecm.Firmware, newFW) {
		t.Errorf("firmware = %q, want %q", ecm.Firmware, newFW)
	}
	if ecm.FlashCount != 1 {
		t.Errorf("FlashCount = %d, want 1", ecm.FlashCount)
	}
	if ecm.Session() != SessionProgramming || !ecm.Unlocked() {
		t.Error("ECU state inconsistent after flash")
	}
	if slots == 0 || slots >= 1000 {
		t.Errorf("flash took %d slots", slots)
	}
}

func TestUDSWrongKeyRejected(t *testing.T) {
	secret := []byte{0xA5, 0x5A}
	wrongSecret := []byte{0x00, 0x00}
	bus := NewBus()
	ecm := NewECU("ECM", 0x7E0, 0x7E8, secret, []byte{1})
	tool := NewTester("obd-tool", 0x7E8, FlashScript(0x7E0, wrongSecret, []byte("EVIL")))
	if err := bus.Attach(ecm, tool); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntilDone(bus, tool, 1000); err != nil {
		t.Fatal(err)
	}
	if tool.Failed() != NRCInvalidKey {
		t.Errorf("NRC = 0x%02X, want invalidKey (0x35)", tool.Failed())
	}
	if ecm.Unlocked() {
		t.Error("wrong key unlocked the ECU")
	}
	if ecm.FlashCount != 0 || bytes.Equal(ecm.Firmware, []byte("EVIL")) {
		t.Error("firmware modified despite failed security access")
	}
}

func TestUDSDownloadRequiresProgrammingSession(t *testing.T) {
	bus := NewBus()
	ecm := NewECU("ECM", 0x7E0, 0x7E8, []byte{1}, []byte{1})
	// Script skipping session control: straight to download.
	steps := []TesterStep{
		func([]Frame) (Frame, bool) {
			return Frame{ID: 0x7E0, Data: []byte{SvcRequestDownload}}, true
		},
	}
	tool := NewTester("rogue", 0x7E8, steps)
	if err := bus.Attach(ecm, tool); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntilDone(bus, tool, 100); err != nil {
		t.Fatal(err)
	}
	if tool.Failed() != NRCWrongSession {
		t.Errorf("NRC = 0x%02X, want wrongSession (0x7E)", tool.Failed())
	}
}

func TestUDSSequenceErrors(t *testing.T) {
	bus := NewBus()
	ecm := NewECU("ECM", 0x7E0, 0x7E8, []byte{0x42}, []byte{1})
	fixed := func(data ...byte) TesterStep {
		return func([]Frame) (Frame, bool) { return Frame{ID: 0x7E0, Data: data}, true }
	}
	// Key before seed → request sequence error.
	tool := NewTester("t1", 0x7E8, []TesterStep{
		fixed(SvcSessionControl, SessionProgramming),
		fixed(SvcSecurityAccess, 0x02, 0x00, 0x00),
	})
	if err := bus.Attach(ecm, tool); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntilDone(bus, tool, 100); err != nil {
		t.Fatal(err)
	}
	if tool.Failed() != NRCRequestSequence {
		t.Errorf("NRC = 0x%02X, want requestSequence (0x24)", tool.Failed())
	}
	// Transfer data without download → sequence error.
	bus2 := NewBus()
	ecm2 := NewECU("ECM", 0x7E0, 0x7E8, []byte{0x42}, []byte{1})
	tool2 := NewTester("t2", 0x7E8, []TesterStep{
		fixed(SvcTransferData, 0x01, 0xFF),
	})
	if err := bus2.Attach(ecm2, tool2); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntilDone(bus2, tool2, 100); err != nil {
		t.Fatal(err)
	}
	if tool2.Failed() != NRCRequestSequence {
		t.Errorf("NRC = 0x%02X, want requestSequence", tool2.Failed())
	}
}

func TestUDSUnknownService(t *testing.T) {
	ecm := NewECU("ECM", 0x7E0, 0x7E8, []byte{1}, []byte{1})
	resp := ecm.handle([]byte{0x99})
	if len(resp) != 3 || resp[0] != negativeSID || resp[2] != NRCSubFunction {
		t.Errorf("unknown service response = %v", resp)
	}
}

func TestComputeKey(t *testing.T) {
	seed := []byte{0x12, 0x34}
	secret := []byte{0xFF}
	key := ComputeKey(seed, secret)
	if !bytes.Equal(key, []byte{0xED, 0xCB}) {
		t.Errorf("key = %X", key)
	}
	if !bytes.Equal(ComputeKey(seed, nil), seed) {
		t.Error("empty secret should return the seed")
	}
}

// Property: the flash sequence round-trips arbitrary firmware payloads.
func TestUDSFlashRoundTripProperty(t *testing.T) {
	f := func(fw []byte, s1, s2 byte) bool {
		if len(fw) == 0 {
			fw = []byte{0x01}
		}
		if len(fw) > 64 {
			fw = fw[:64]
		}
		secret := []byte{s1, s2}
		bus := NewBus()
		ecm := NewECU("ECM", 0x7E0, 0x7E8, secret, []byte{0})
		tool := NewTester("tool", 0x7E8, FlashScript(0x7E0, secret, fw))
		if err := bus.Attach(ecm, tool); err != nil {
			return false
		}
		if _, err := RunUntilDone(bus, tool, 5000); err != nil {
			return false
		}
		return tool.Failed() == 0 && bytes.Equal(ecm.Firmware, fw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every traced delivery carries a valid frame and slots are
// strictly increasing.
func TestTraceWellFormedProperty(t *testing.T) {
	bus := NewBus()
	a := NewPeriodicSender("a", Frame{ID: 0x10, Data: []byte{1}}, 3)
	b := NewPeriodicSender("b", Frame{ID: 0x20, Data: []byte{2}}, 5)
	if err := bus.Attach(a, b); err != nil {
		t.Fatal(err)
	}
	if err := bus.Run(200); err != nil {
		t.Fatal(err)
	}
	trace := bus.Trace()
	for i, d := range trace {
		if err := d.Frame.Validate(); err != nil {
			t.Fatalf("trace[%d] invalid: %v", i, err)
		}
		if i > 0 && trace[i-1].Slot >= d.Slot {
			t.Fatalf("trace slots not increasing at %d", i)
		}
	}
}
