package canbus

import "testing"

// BenchmarkBusArbitration measures raw slot throughput with four
// contending periodic senders.
func BenchmarkBusArbitration(b *testing.B) {
	bus := NewBus()
	bus.TraceLimit = 1 // avoid unbounded trace growth during the bench
	senders := []*PeriodicSender{
		NewPeriodicSender("a", Frame{ID: 0x0C0, Data: []byte{1, 2}}, 2),
		NewPeriodicSender("b", Frame{ID: 0x1A0, Data: []byte{3}}, 3),
		NewPeriodicSender("c", Frame{ID: 0x2F0, Data: []byte{4, 5, 6}}, 5),
		NewPeriodicSender("d", Frame{ID: 0x3B0, Data: []byte{7}}, 7),
	}
	for _, s := range senders {
		if err := bus.Attach(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignalExtinctionDoS measures the DoS scenario end to end.
func BenchmarkSignalExtinctionDoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bus := NewBus()
		bus.TraceLimit = 1
		victim := NewPeriodicSender("victim", Frame{ID: 0x0C0}, 2)
		attacker := NewFlooder("attacker", Frame{ID: 0x000})
		if err := bus.Attach(victim, attacker); err != nil {
			b.Fatal(err)
		}
		if err := bus.Run(200); err != nil {
			b.Fatal(err)
		}
		if victim.DeliveryRate() > 0.05 {
			b.Fatalf("DoS ineffective: %.2f", victim.DeliveryRate())
		}
	}
}

// BenchmarkUDSFlash measures a full reprogramming session.
func BenchmarkUDSFlash(b *testing.B) {
	secret := []byte{0xA5, 0x5A}
	firmware := make([]byte, 256)
	for i := range firmware {
		firmware[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus := NewBus()
		bus.TraceLimit = 1
		ecm := NewECU("ECM", 0x7E0, 0x7E8, secret, []byte{0})
		tool := NewTester("tool", 0x7E8, FlashScript(0x7E0, secret, firmware))
		if err := bus.Attach(ecm, tool); err != nil {
			b.Fatal(err)
		}
		if _, err := RunUntilDone(bus, tool, 10000); err != nil {
			b.Fatal(err)
		}
		if tool.Failed() != 0 {
			b.Fatalf("flash failed: NRC 0x%02X", tool.Failed())
		}
	}
}
