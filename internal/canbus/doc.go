// Package canbus is a discrete-time CAN bus simulator: the substrate
// behind the paper's powertrain argument that "the primary communication
// occurs on the CAN bus, and external access is available through the
// OBD port" and that the dominant attacks there are physical or local.
//
// The simulator models standard 11-bit-identifier frames, priority-based
// arbitration (lowest identifier wins each bus slot), periodic sender
// nodes and attacker nodes. Two attacks from the paper's references are
// implemented:
//
//   - the signal-extinction style denial of service (Lee & Woo, ref [22]
//     of the paper): a flooding node with a top-priority identifier
//     starves the victim's torque frames, exercising the Severe-impact /
//     CAL2-capped scenario of Fig. 6; and
//   - ECU reprogramming through a UDS-style diagnostic session
//     (DiagnosticSessionControl, SecurityAccess seed/key,
//     RequestDownload, TransferData, TransferExit), the local/OBD attack
//     path whose feasibility the PSP framework re-rates.
//
// Time is a slot counter, not wall-clock: simulations are exactly
// reproducible.
package canbus
