package canbus

import (
	"fmt"
	"sort"
)

// Node is a bus participant. Each slot the bus collects every node's
// pending frame, arbitrates, delivers the winner to all nodes and
// notifies the winner.
type Node interface {
	// Name identifies the node in traces.
	Name() string
	// Pending returns the frame the node wants to transmit this slot,
	// or false when idle. The bus clones the frame before delivery.
	Pending(slot int) (Frame, bool)
	// Sent tells the node its pending frame won arbitration this slot.
	Sent(slot int)
	// Receive delivers the slot winner to every node (including the
	// sender, matching CAN's broadcast nature).
	Receive(slot int, f Frame)
}

// Delivery records one delivered frame.
type Delivery struct {
	Slot   int
	Sender string
	Frame  Frame
}

// Bus is a discrete-time CAN segment.
type Bus struct {
	nodes []Node
	slot  int
	trace []Delivery
	// TraceLimit caps the retained trace (0 = unlimited).
	TraceLimit int
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach adds nodes to the bus; duplicate names are rejected.
func (b *Bus) Attach(nodes ...Node) error {
	for _, n := range nodes {
		for _, existing := range b.nodes {
			if existing.Name() == n.Name() {
				return fmt.Errorf("canbus: duplicate node %q", n.Name())
			}
		}
		b.nodes = append(b.nodes, n)
	}
	return nil
}

// Slot returns the current slot counter.
func (b *Bus) Slot() int { return b.slot }

// Trace returns the recorded deliveries.
func (b *Bus) Trace() []Delivery { return b.trace }

// Step advances one bus slot: arbitration among pending frames (lowest
// identifier wins; ties break by node attachment order, standing in for
// bit-level arbitration of identical identifiers) and broadcast of the
// winner. It reports whether any frame was delivered.
func (b *Bus) Step() (bool, error) {
	slot := b.slot
	b.slot++
	type contender struct {
		node  Node
		frame Frame
		order int
	}
	var contenders []contender
	for i, n := range b.nodes {
		f, ok := n.Pending(slot)
		if !ok {
			continue
		}
		if err := f.Validate(); err != nil {
			return false, fmt.Errorf("node %s: %w", n.Name(), err)
		}
		contenders = append(contenders, contender{node: n, frame: f.Clone(), order: i})
	}
	if len(contenders) == 0 {
		return false, nil
	}
	sort.Slice(contenders, func(i, j int) bool {
		if contenders[i].frame.ID != contenders[j].frame.ID {
			return contenders[i].frame.ID < contenders[j].frame.ID
		}
		return contenders[i].order < contenders[j].order
	})
	winner := contenders[0]
	winner.node.Sent(slot)
	for _, n := range b.nodes {
		n.Receive(slot, winner.frame)
	}
	if b.TraceLimit == 0 || len(b.trace) < b.TraceLimit {
		b.trace = append(b.trace, Delivery{Slot: slot, Sender: winner.node.Name(), Frame: winner.frame})
	}
	return true, nil
}

// Run advances n slots.
func (b *Bus) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := b.Step(); err != nil {
			return err
		}
	}
	return nil
}

// DeliveredCount counts trace deliveries with the given identifier.
func (b *Bus) DeliveredCount(id uint16) int {
	n := 0
	for _, d := range b.trace {
		if d.Frame.ID == id {
			n++
		}
	}
	return n
}
