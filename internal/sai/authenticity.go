package sai

import (
	"fmt"
	"strings"

	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/social"
)

// The paper's roadmap names a "filtering strategy for messages to ensure
// we process only authentic posts and prevent attackers from poisoning
// the data". This file implements that strategy with three transparent
// heuristics:
//
//   - copypasta campaigns: the same normalized text repeated beyond a
//     threshold keeps only its first few instances;
//   - author bursts: one handle posting more than a daily budget keeps
//     only the budgeted prefix;
//   - engagement anomalies: posts with large view counts but virtually
//     no interactions look like bought reach and are dropped.

// AuthenticityConfig tunes the poisoning filter.
type AuthenticityConfig struct {
	// MaxDuplicateTexts is how many posts with identical normalized text
	// are kept (default 3).
	MaxDuplicateTexts int
	// MaxPerAuthorDay is the per-author daily post budget (default 5).
	MaxPerAuthorDay int
	// HighViewsFloor is the view count from which the engagement-anomaly
	// check applies (default 5000).
	HighViewsFloor int
	// MinInteractionRate is the minimum interactions/views ratio a
	// high-view post must show (default 0.0005).
	MinInteractionRate float64
}

// DefaultAuthenticityConfig returns the default thresholds.
func DefaultAuthenticityConfig() AuthenticityConfig {
	return AuthenticityConfig{
		MaxDuplicateTexts:  3,
		MaxPerAuthorDay:    5,
		HighViewsFloor:     5000,
		MinInteractionRate: 0.0005,
	}
}

// Validate rejects non-positive thresholds.
func (c AuthenticityConfig) Validate() error {
	if c.MaxDuplicateTexts < 1 || c.MaxPerAuthorDay < 1 ||
		c.HighViewsFloor < 1 || c.MinInteractionRate < 0 {
		return fmt.Errorf("sai: invalid authenticity config %+v", c)
	}
	return nil
}

// AuthenticityReport is the outcome of filtering a post set.
type AuthenticityReport struct {
	// Clean are the posts that passed, in input order.
	Clean []*social.Post
	// Flagged are the rejected posts, in input order.
	Flagged []*social.Post
	// Reasons maps post ID → the heuristic that rejected it.
	Reasons map[string]string
}

// FilterAuthentic applies the poisoning heuristics to a post set.
func FilterAuthentic(posts []*social.Post, cfg AuthenticityConfig) (*AuthenticityReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	report := &AuthenticityReport{Reasons: make(map[string]string)}
	textCount := make(map[string]int)
	authorDay := make(map[string]int)
	for _, p := range posts {
		if reason := classifyPost(p, cfg, textCount, authorDay); reason != "" {
			report.Flagged = append(report.Flagged, p)
			report.Reasons[p.ID] = reason
			continue
		}
		report.Clean = append(report.Clean, p)
	}
	return report, nil
}

// classifyPost returns a rejection reason, or "" for authentic posts. It
// updates the running duplicate and author-burst counters.
func classifyPost(p *social.Post, cfg AuthenticityConfig,
	textCount, authorDay map[string]int) string {

	// Engagement anomaly first: it is per-post and campaign-independent.
	if p.Metrics.Views >= cfg.HighViewsFloor {
		rate := float64(p.Metrics.Interactions()) / float64(p.Metrics.Views)
		if rate < cfg.MinInteractionRate {
			return "engagement-anomaly"
		}
	}
	key := canonicalText(p.Text)
	textCount[key]++
	if textCount[key] > cfg.MaxDuplicateTexts {
		return "duplicate-text"
	}
	dayKey := p.Author + "@" + p.CreatedAt.UTC().Format("2006-01-02")
	authorDay[dayKey]++
	if authorDay[dayKey] > cfg.MaxPerAuthorDay {
		return "author-burst"
	}
	return ""
}

// canonicalText folds case and whitespace so trivial mutations do not
// evade duplicate detection.
func canonicalText(text string) string {
	words := strings.Fields(strings.ToLower(text))
	for i, w := range words {
		words[i] = nlp.Normalize(w)
	}
	return strings.Join(words, " ")
}
