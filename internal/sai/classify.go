package sai

import (
	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// vectorKeywords maps method vocabulary to attack vectors. The buckets
// are lexically disjoint so a single strong hit is decisive; ties resolve
// toward the physically closer vector (the conservative choice for an
// insider-dominated domain).
var vectorKeywords = map[tara.AttackVector][]string{
	tara.VectorPhysical: {
		"bench", "solder", "soldered", "desolder", "bdm", "jtag", "boot",
		"clamp", "clamped", "teardown", "eeprom", "probe", "hotwired",
		"harness", "desoldered",
	},
	tara.VectorLocal: {
		"obd", "obd2", "dongle", "diagnostic", "connector", "plug-in",
		"cab-port", "seat",
	},
	tara.VectorAdjacent: {
		"bluetooth", "wifi", "wireless", "paired", "relay", "fob",
		"keyfob", "bridged",
	},
	tara.VectorNetwork: {
		"ota", "remote", "cloud", "telematics", "sim", "internet",
		"server", "backend",
	},
}

// VectorClassifier assigns posts to ISO-21434 attack vectors from their
// method vocabulary.
type VectorClassifier struct {
	index map[string]tara.AttackVector
}

// NewVectorClassifier returns a classifier with the built-in vocabulary.
func NewVectorClassifier() *VectorClassifier {
	idx := make(map[string]tara.AttackVector)
	for v, words := range vectorKeywords {
		for _, w := range words {
			idx[w] = v
		}
	}
	return &VectorClassifier{index: idx}
}

// Classify returns the attack vector of a post and whether any method
// vocabulary was found. Scoring counts keyword hits per vector; ties
// resolve toward the closer (lower-valued) vector.
func (c *VectorClassifier) Classify(p *social.Post) (tara.AttackVector, bool) {
	counts := map[tara.AttackVector]int{}
	for _, tok := range nlp.Tokenize(p.Text) {
		if tok.Kind != nlp.TokenWord && tok.Kind != nlp.TokenHashtag {
			continue
		}
		if v, ok := c.index[nlp.Normalize(tok.Text)]; ok {
			counts[v]++
		}
	}
	best, bestCount := tara.AttackVector(0), 0
	for _, v := range tara.AllVectors() { // ascending: closer vectors win ties
		if counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	if bestCount == 0 {
		return 0, false
	}
	return best, true
}

// insider/outsider vocabulary. Outsider markers describe theft and
// covert compromise and weigh double: a single theft marker outvotes a
// generic ownership marker.
var (
	insiderMarkers = []string{
		"my", "gains", "install", "installed", "kit", "delete", "removal",
		"emulator", "tune", "tuning", "savings", "remap", "flashed",
		"upgrade", "own",
	}
	outsiderMarkers = []string{
		"stolen", "stole", "theft", "thief", "relay", "cloned", "clone",
		"fob", "hotwired", "jammer", "blocker", "tracker", "broke",
	}
	outsiderWeight = 2
)

// OwnerClassifier separates insider (owner-approved) from outsider
// (owner-oblivious) posts — Fig. 7 blocks 8–9. The paper's definition:
// insiders are all attacks the owner knows about and approves, even when
// third parties execute them.
type OwnerClassifier struct {
	insider  map[string]bool
	outsider map[string]bool
}

// NewOwnerClassifier returns a classifier with the built-in vocabulary.
func NewOwnerClassifier() *OwnerClassifier {
	in := make(map[string]bool, len(insiderMarkers))
	for _, w := range insiderMarkers {
		in[w] = true
	}
	out := make(map[string]bool, len(outsiderMarkers))
	for _, w := range outsiderMarkers {
		out[w] = true
	}
	return &OwnerClassifier{insider: in, outsider: out}
}

// IsInsider classifies one post. Ties resolve to insider, matching the
// paper's observation that most threat scenarios on social media are
// insider.
func (c *OwnerClassifier) IsInsider(p *social.Post) bool {
	inScore, outScore := 0, 0
	for _, tok := range nlp.Tokenize(p.Text) {
		if tok.Kind != nlp.TokenWord && tok.Kind != nlp.TokenHashtag {
			continue
		}
		w := nlp.Normalize(tok.Text)
		if c.insider[w] {
			inScore++
		}
		if c.outsider[w] {
			outScore += outsiderWeight
		}
	}
	return inScore >= outScore
}

// MajorityInsider classifies a post set: it reports whether insider
// posts form the (weak) majority.
func (c *OwnerClassifier) MajorityInsider(posts []*social.Post) bool {
	in := 0
	for _, p := range posts {
		if c.IsInsider(p) {
			in++
		}
	}
	return in*2 >= len(posts)
}
