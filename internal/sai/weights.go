package sai

import (
	"fmt"

	"github.com/psp-framework/psp/internal/tara"
)

// RatingBands maps a vector's attraction share onto an ISO-21434
// feasibility rating when regenerating the G.9 table: share ≥ High rates
// High, ≥ Medium rates Medium, ≥ Low rates Low, anything smaller rates
// Very Low.
type RatingBands struct {
	High   float64
	Medium float64
	Low    float64
}

// DefaultRatingBands returns the default share → rating bands. With four
// vectors a uniform share is 0.25; a vector carrying ≥ 45% of the
// observed attraction dominates the threat (High), ≥ 22% is a solid
// secondary channel (Medium), ≥ 8% is marginal (Low).
func DefaultRatingBands() RatingBands {
	return RatingBands{High: 0.45, Medium: 0.22, Low: 0.08}
}

// Validate checks band ordering.
func (b RatingBands) Validate() error {
	if b.Low <= 0 || b.Medium <= b.Low || b.High <= b.Medium || b.High > 1 {
		return fmt.Errorf("sai: invalid rating bands %+v", b)
	}
	return nil
}

// Rating maps one share onto a feasibility rating.
func (b RatingBands) Rating(share float64) tara.FeasibilityRating {
	switch {
	case share >= b.High:
		return tara.FeasibilityHigh
	case share >= b.Medium:
		return tara.FeasibilityMedium
	case share >= b.Low:
		return tara.FeasibilityLow
	default:
		return tara.FeasibilityVeryLow
	}
}

// CorrectiveFactors expresses how far each vector's observed share
// deviates from the uniform prior (0.25): factor > 1 means the social
// signal sees more activity on that vector than a neutral model would.
// These are the "corrective factors derived from SAI" of the paper.
func CorrectiveFactors(shares map[tara.AttackVector]float64) map[tara.AttackVector]float64 {
	const uniform = 0.25
	out := make(map[tara.AttackVector]float64, 4)
	for _, v := range tara.AllVectors() {
		out[v] = shares[v] / uniform
	}
	return out
}

// GenerateVectorTable regenerates the attack vector-based feasibility
// table from observed attraction shares (Fig. 7 block 12). Every vector
// gets the rating of its share band; vectors absent from the shares map
// rate Very Low.
func GenerateVectorTable(name string, shares map[tara.AttackVector]float64, bands RatingBands) (*tara.VectorTable, error) {
	if err := bands.Validate(); err != nil {
		return nil, err
	}
	ratings := make(map[tara.AttackVector]tara.FeasibilityRating, 4)
	for _, v := range tara.AllVectors() {
		share := shares[v]
		if share < 0 || share > 1 {
			return nil, fmt.Errorf("sai: share %f for vector %s outside [0,1]", share, v)
		}
		ratings[v] = bands.Rating(share)
	}
	return tara.NewVectorTable(name, ratings)
}
