package sai

import (
	"math"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

func post(id, text string, views, likes int) *social.Post {
	return &social.Post{
		ID: id, Author: "u", Text: text,
		CreatedAt: time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: views, Likes: likes},
	}
}

func mustScorer(t *testing.T, w Weights) *Scorer {
	t.Helper()
	s, err := NewScorer(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Errorf("default weights invalid: %v", err)
	}
	bad := []Weights{
		{Views: -1, Interactions: 1, Popularity: 1},
		{},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid weights accepted: %+v", i, w)
		}
	}
}

func TestAttractionMonotoneInEngagement(t *testing.T) {
	s := mustScorer(t, Weights{Views: 1, Interactions: 2, Popularity: 10})
	low := s.Attraction(post("a", "neutral spec text", 100, 2))
	high := s.Attraction(post("b", "neutral spec text", 10000, 300))
	if high <= low {
		t.Errorf("attraction not monotone: low %.2f, high %.2f", low, high)
	}
	zero := s.Attraction(post("c", "neutral spec text", 0, 0))
	if zero != 0 {
		t.Errorf("zero-engagement attraction = %.4f, want 0", zero)
	}
}

func TestSentimentGateModulates(t *testing.T) {
	gated := mustScorer(t, DefaultWeights())
	plain := mustScorer(t, Weights{Views: 1, Interactions: 2, Popularity: 10})
	posText := "awesome kit, huge gains, totally recommend"
	negText := "total scam, bricked my unit, waste of money"
	pPos, pNeg := post("p", posText, 1000, 30), post("n", negText, 1000, 30)
	if gated.Attraction(pPos) <= plain.Attraction(pPos) {
		t.Error("positive post not amplified by gate")
	}
	if gated.Attraction(pNeg) >= plain.Attraction(pNeg) {
		t.Error("negative post not dampened by gate")
	}
}

func TestVectorClassifier(t *testing.T) {
	c := NewVectorClassifier()
	tests := []struct {
		text string
		want tara.AttackVector
		ok   bool
	}{
		{"bench flashed it with a bdm probe on my car", tara.VectorPhysical, true},
		{"flashed through the obd port in minutes", tara.VectorLocal, true},
		{"paired over bluetooth from the cab", tara.VectorAdjacent, true},
		{"remote ota push via the telematics account", tara.VectorNetwork, true},
		{"wireless link bridged from ten meters away", tara.VectorAdjacent, true},
		{"just a nice day at the quarry", 0, false},
	}
	for _, tt := range tests {
		got, ok := c.Classify(post("x", tt.text, 1, 0))
		if ok != tt.ok || got != tt.want {
			t.Errorf("Classify(%q) = %v,%v want %v,%v", tt.text, got, ok, tt.want, tt.ok)
		}
	}
}

func TestVectorClassifierTieBreaksToCloserVector(t *testing.T) {
	c := NewVectorClassifier()
	// One physical hit and one network hit: the closer vector wins.
	v, ok := c.Classify(post("x", "bench work after the ota push", 1, 0))
	if !ok || v != tara.VectorPhysical {
		t.Errorf("tie broke to %v, want Physical", v)
	}
}

func TestOwnerClassifier(t *testing.T) {
	c := NewOwnerClassifier()
	tests := []struct {
		text string
		want bool
	}{
		{"huge gains on my excavator, best kit ever", true},
		{"installed the emulator myself, great savings", true},
		{"gone in under a minute, relay kit straight through the door", false},
		{"stolen off the yard overnight, tracker went dark", false},
		{"they cloned the fob and drove it away", false},
		{"completely unrelated text", true}, // tie → insider
	}
	for _, tt := range tests {
		if got := c.IsInsider(post("x", tt.text, 1, 0)); got != tt.want {
			t.Errorf("IsInsider(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestBuilderIndexRankingAndProbability(t *testing.T) {
	b, err := NewBuilder(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := []TopicPosts{
		{Topic: "DPF delete", Tags: []string{"dpfdelete"}, Posts: []*social.Post{
			post("d1", "best #dpfdelete kit, huge gains on my excavator — flashed through the obd port", 5000, 200),
			post("d2", "#dpfdelete done, great savings on my excavator — bench flashed it with a bdm probe", 4000, 150),
		}},
		{Topic: "EGR removal", Tags: []string{"egrremoval"}, Posts: []*social.Post{
			post("e1", "#egrremoval on my tractor, works great — flashed through the obd port", 800, 20),
		}},
		{Topic: "Ghost topic", Tags: []string{"ghost"}, Posts: nil},
	}
	idx, err := b.Build(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(idx.Entries))
	}
	top, err := idx.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Topic != "DPF delete" {
		t.Errorf("top entry = %s, want DPF delete", top.Topic)
	}
	// Probabilities sum to 1 and are ordered with scores.
	var sum float64
	for _, e := range idx.Entries {
		sum += e.Probability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %.6f", sum)
	}
	if idx.Entries[2].Topic != "Ghost topic" || idx.Entries[2].Score != 0 {
		t.Errorf("empty topic not last with zero score: %+v", idx.Entries[2])
	}
	// All sample posts are insider-phrased.
	for _, e := range idx.Entries[:2] {
		if !e.Insider {
			t.Errorf("entry %s classified outsider", e.Topic)
		}
	}
	if _, err := b.Build(nil); err == nil {
		t.Error("empty groups accepted")
	}
}

func TestVectorSharesSumToOne(t *testing.T) {
	b, err := NewBuilder(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	posts := []*social.Post{
		post("1", "bench flashed it with a bdm probe on my truck #chiptuning", 1000, 30),
		post("2", "flashed through the obd port on my car #chiptuning", 1000, 30),
		post("3", "remote ota push via the telematics account #chiptuning", 500, 10),
		post("4", "no method words here at all", 100, 1),
	}
	shares := b.VectorShares(posts)
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("vector shares sum to %.6f, want 1", sum)
	}
	if shares[tara.VectorPhysical] == 0 || shares[tara.VectorLocal] == 0 || shares[tara.VectorNetwork] == 0 {
		t.Errorf("expected non-zero shares: %v", shares)
	}
	if len(b.VectorShares(nil)) != 0 {
		t.Error("empty post set should yield empty shares")
	}
}

func TestRatingBands(t *testing.T) {
	bands := DefaultRatingBands()
	tests := []struct {
		share float64
		want  tara.FeasibilityRating
	}{
		{0.60, tara.FeasibilityHigh},
		{0.45, tara.FeasibilityHigh},
		{0.30, tara.FeasibilityMedium},
		{0.22, tara.FeasibilityMedium},
		{0.10, tara.FeasibilityLow},
		{0.08, tara.FeasibilityLow},
		{0.05, tara.FeasibilityVeryLow},
		{0, tara.FeasibilityVeryLow},
	}
	for _, tt := range tests {
		if got := bands.Rating(tt.share); got != tt.want {
			t.Errorf("Rating(%.2f) = %v, want %v", tt.share, got, tt.want)
		}
	}
	if err := (RatingBands{High: 0.4, Medium: 0.5, Low: 0.1}).Validate(); err == nil {
		t.Error("inverted bands accepted")
	}
}

func TestGenerateVectorTableInversion(t *testing.T) {
	// The ECM-reprogramming shape of Fig. 9-B: physical dominates.
	shares := map[tara.AttackVector]float64{
		tara.VectorPhysical: 0.49,
		tara.VectorLocal:    0.37,
		tara.VectorAdjacent: 0.09,
		tara.VectorNetwork:  0.05,
	}
	tbl, err := GenerateVectorTable("PSP insider (all time)", shares, DefaultRatingBands())
	if err != nil {
		t.Fatal(err)
	}
	expect := map[tara.AttackVector]tara.FeasibilityRating{
		tara.VectorPhysical: tara.FeasibilityHigh,
		tara.VectorLocal:    tara.FeasibilityMedium,
		tara.VectorAdjacent: tara.FeasibilityLow,
		tara.VectorNetwork:  tara.FeasibilityVeryLow,
	}
	for v, want := range expect {
		got, err := tbl.Rating(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("rating(%s) = %v, want %v", v, got, want)
		}
	}
	// The PSP table must differ from the static G.9 (the paper's point).
	if tbl.Equal(tara.StandardVectorTable()) {
		t.Error("PSP table equals static G.9 despite inverted shares")
	}
	// Invalid share rejected.
	if _, err := GenerateVectorTable("x", map[tara.AttackVector]float64{
		tara.VectorPhysical: 1.5,
	}, DefaultRatingBands()); err == nil {
		t.Error("share > 1 accepted")
	}
}

func TestCorrectiveFactors(t *testing.T) {
	shares := map[tara.AttackVector]float64{
		tara.VectorPhysical: 0.5,
		tara.VectorLocal:    0.25,
		tara.VectorAdjacent: 0.15,
		tara.VectorNetwork:  0.10,
	}
	f := CorrectiveFactors(shares)
	if f[tara.VectorPhysical] != 2.0 {
		t.Errorf("physical factor = %v, want 2.0", f[tara.VectorPhysical])
	}
	if f[tara.VectorLocal] != 1.0 {
		t.Errorf("local factor = %v, want 1.0", f[tara.VectorLocal])
	}
	if f[tara.VectorNetwork] >= 1 {
		t.Errorf("network factor = %v, want < 1", f[tara.VectorNetwork])
	}
}

func TestLearner(t *testing.T) {
	l := NewLearner()
	var posts []*social.Post
	for i := 0; i < 6; i++ {
		posts = append(posts, post(
			string(rune('a'+i)),
			"great kit #dpfdelete #dpfoff on my excavator", 100, 5))
	}
	posts = append(posts,
		post("x1", "#egrremoval #egroff done", 100, 5),
		post("x2", "#dpfdelete #weekendvibes", 100, 5),
	)
	l.Observe(posts)
	learned, err := l.Learn([]string{"dpfdelete", "egrremoval"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tag := range learned {
		if tag == "dpfoff" {
			found = true
		}
		if tag == "weekendvibes" {
			t.Error("low-support noise tag learned")
		}
	}
	if !found {
		t.Errorf("dpfoff not learned: %v", learned)
	}
	// Blocklist suppresses tags.
	l.Block("dpfoff")
	learned2, err := l.Learn([]string{"dpfdelete"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range learned2 {
		if tag == "dpfoff" {
			t.Error("blocklisted tag learned")
		}
	}
	// Attribution maps dpfoff to the DPF group.
	attr := l.Attribute([]string{"dpfoff"}, map[string][]string{
		"DPF delete":  {"dpfdelete"},
		"EGR removal": {"egrremoval"},
	})
	if len(attr["DPF delete"]) != 1 || attr["DPF delete"][0] != "dpfoff" {
		t.Errorf("attribution = %v", attr)
	}
	// Error paths.
	if _, err := l.Learn(nil, 5); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := l.Learn([]string{"x"}, 0); err == nil {
		t.Error("maxNew=0 accepted")
	}
}
