package sai

import (
	"fmt"
	"math"

	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/social"
)

// Weights controls the attraction mix of views, interactions and
// popularity — the three post properties the paper names as SAI inputs.
type Weights struct {
	// Views weighs passive reach, log-compressed.
	Views float64
	// Interactions weighs active engagement (likes, reposts, replies),
	// log-compressed.
	Interactions float64
	// Popularity weighs the engagement rate (interactions per view),
	// which rewards resonance independent of reach.
	Popularity float64
	// SentimentGate, when true, modulates attraction by sentiment:
	// positive posts amplify the signal, negative posts dampen it.
	// Disabling the gate is ablation A2.
	SentimentGate bool
}

// DefaultWeights returns the default attraction mix: interactions count
// double the views term, popularity is a strong tiebreaker, and the
// sentiment gate is on.
func DefaultWeights() Weights {
	return Weights{Views: 1, Interactions: 2, Popularity: 10, SentimentGate: true}
}

// Validate rejects negative weight components and an all-zero mix.
func (w Weights) Validate() error {
	if w.Views < 0 || w.Interactions < 0 || w.Popularity < 0 {
		return fmt.Errorf("sai: negative attraction weight: %+v", w)
	}
	if w.Views == 0 && w.Interactions == 0 && w.Popularity == 0 {
		return fmt.Errorf("sai: all-zero attraction weights")
	}
	return nil
}

// sentiment gate multipliers.
const (
	gatePositive = 1.2
	gateNeutral  = 1.0
	gateNegative = 0.5
)

// Scorer computes post attraction. It holds a sentiment analyzer so the
// gate does not re-tokenize repeatedly.
type Scorer struct {
	weights  Weights
	analyzer *nlp.Analyzer
}

// NewScorer builds a Scorer; a nil analyzer uses the default lexicon.
func NewScorer(w Weights, analyzer *nlp.Analyzer) (*Scorer, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if analyzer == nil {
		analyzer = nlp.NewAnalyzer(nil)
	}
	return &Scorer{weights: w, analyzer: analyzer}, nil
}

// Weights returns the scorer's attraction mix.
func (s *Scorer) Weights() Weights { return s.weights }

// Attraction scores one post. The score is non-negative; zero-engagement
// posts still contribute a small floor so volume matters.
func (s *Scorer) Attraction(p *social.Post) float64 {
	views := float64(p.Metrics.Views)
	inter := float64(p.Metrics.Interactions())
	popularity := 0.0
	if views > 0 {
		popularity = inter / views
	}
	score := s.weights.Views*math.Log1p(views) +
		s.weights.Interactions*math.Log1p(inter) +
		s.weights.Popularity*popularity
	if s.weights.SentimentGate {
		switch s.analyzer.Score(p.Text).Label {
		case nlp.SentimentPositive:
			score *= gatePositive
		case nlp.SentimentNegative:
			score *= gateNegative
		default:
			score *= gateNeutral
		}
	}
	return score
}

// Total sums the attraction of a post set.
func (s *Scorer) Total(posts []*social.Post) float64 {
	var total float64
	for _, p := range posts {
		total += s.Attraction(p)
	}
	return total
}
