package sai

import (
	"fmt"
	"sort"

	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/social"
)

// Learner implements the auto-learning strategy of Fig. 7 block 5: new
// attack hashtags are discovered through co-occurrence with the known
// keyword set, so future runs have no hashtag deficiencies.
type Learner struct {
	graph *nlp.CooccurrenceGraph
	// MinSupport filters candidate tags seen fewer than this many times
	// alongside seeds (default 3).
	MinSupport int
	// MinScore filters candidates whose summed conditional probability
	// against the seed set is below this value (default 0.05).
	MinScore float64
	// Blocklist holds tags never to learn (noise, poisoning defence).
	Blocklist map[string]bool
}

// NewLearner returns a Learner with default thresholds.
func NewLearner() *Learner {
	return &Learner{
		graph:      nlp.NewCooccurrenceGraph(),
		MinSupport: 3,
		MinScore:   0.05,
		Blocklist:  make(map[string]bool),
	}
}

// Observe feeds the hashtag sets of posts into the co-occurrence graph.
func (l *Learner) Observe(posts []*social.Post) {
	for _, p := range posts {
		l.graph.Observe(p.Hashtags())
	}
}

// ObserveGraph merges a pre-built co-occurrence graph into the learner —
// count-exact, so observing per-group graphs is indistinguishable from
// observing the groups' posts directly. The incremental workflow keeps
// one graph per keyword group and re-tokenizes only the groups whose
// posts changed.
func (l *Learner) ObserveGraph(g *nlp.CooccurrenceGraph) {
	l.graph.Merge(g)
}

// BuildGroupGraph tokenizes one post group into its own co-occurrence
// graph, suitable for ObserveGraph.
func BuildGroupGraph(posts []*social.Post) *nlp.CooccurrenceGraph {
	g := nlp.NewCooccurrenceGraph()
	for _, p := range posts {
		g.Observe(p.Hashtags())
	}
	return g
}

// Block adds tags to the blocklist (the paper's poisoning-resilience
// roadmap item).
func (l *Learner) Block(tags ...string) {
	for _, t := range tags {
		l.Blocklist[nlp.Normalize(t)] = true
	}
}

// Learn proposes up to maxNew new keywords associated with the seed set,
// strongest association first. Seeds and blocklisted tags never appear.
func (l *Learner) Learn(seeds []string, maxNew int) ([]string, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sai: no seed keywords to learn from")
	}
	if maxNew <= 0 {
		return nil, fmt.Errorf("sai: maxNew %d must be positive", maxNew)
	}
	assocs := l.graph.Associates(seeds, l.MinSupport)
	var out []string
	for _, a := range assocs {
		if a.Score < l.MinScore || l.Blocklist[a.Tag] {
			continue
		}
		out = append(out, a.Tag)
		if len(out) == maxNew {
			break
		}
	}
	return out, nil
}

// Attribute assigns each learned tag to the seed group it co-occurs with
// most. groups maps a group name to its seed tags; the result maps group
// name to its attributed new tags, sorted for determinism.
func (l *Learner) Attribute(learned []string, groups map[string][]string) map[string][]string {
	out := make(map[string][]string)
	for _, tag := range learned {
		bestGroup, bestCount := "", -1
		names := make([]string, 0, len(groups))
		for name := range groups {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			count := 0
			for _, seed := range groups[name] {
				count += l.graph.Count(tag, seed)
			}
			if count > bestCount {
				bestGroup, bestCount = name, count
			}
		}
		if bestGroup != "" && bestCount > 0 {
			out[bestGroup] = append(out[bestGroup], tag)
		}
	}
	for name := range out {
		sort.Strings(out[name])
	}
	return out
}
