package sai

import (
	"fmt"
	"sort"
	"time"

	"github.com/psp-framework/psp/internal/social"
)

// The paper lists "historical trend" among the customizable search
// parameters and builds its Fig. 9 argument on a trend inversion. This
// file quantifies trends: attraction is bucketed per quarter and a
// least-squares slope classifies the topic as rising, stable or falling.

// TrendDirection classifies a fitted slope.
type TrendDirection int

// Trend directions.
const (
	TrendFalling TrendDirection = iota + 1
	TrendStable
	TrendRising
)

// String returns the direction name.
func (d TrendDirection) String() string {
	switch d {
	case TrendFalling:
		return "falling"
	case TrendStable:
		return "stable"
	case TrendRising:
		return "rising"
	}
	return "unknown"
}

// TrendPoint is one quarterly sample.
type TrendPoint struct {
	// Quarter is the first day of the quarter (UTC).
	Quarter time.Time
	// Attraction is the summed attraction of the quarter's posts.
	Attraction float64
	// Posts is the quarter's post count.
	Posts int
}

// Trend is a fitted topic trend.
type Trend struct {
	// Points are the quarterly samples, ascending.
	Points []TrendPoint
	// Slope is the least-squares slope of attraction per quarter,
	// normalized by the mean attraction (a relative growth rate).
	Slope float64
	// Direction classifies Slope against the stability band.
	Direction TrendDirection
}

// stabilityBand is the |slope| below which a trend counts as stable
// (±2% of mean attraction per quarter, ≈ ±8% per year).
const stabilityBand = 0.02

// ComputeTrend buckets posts per quarter and fits the attraction series.
// At least two non-empty quarters are required.
func (b *Builder) ComputeTrend(posts []*social.Post) (*Trend, error) {
	if len(posts) == 0 {
		return nil, fmt.Errorf("sai: no posts to compute a trend from")
	}
	buckets := make(map[time.Time]*TrendPoint)
	for _, p := range posts {
		q := quarterStart(p.CreatedAt)
		tp, ok := buckets[q]
		if !ok {
			tp = &TrendPoint{Quarter: q}
			buckets[q] = tp
		}
		tp.Attraction += b.scorer.Attraction(p)
		tp.Posts++
	}
	if len(buckets) < 2 {
		return nil, fmt.Errorf("sai: need at least two quarters of data, have %d", len(buckets))
	}
	trend := &Trend{Points: make([]TrendPoint, 0, len(buckets))}
	for _, tp := range buckets {
		trend.Points = append(trend.Points, *tp)
	}
	sort.Slice(trend.Points, func(i, j int) bool {
		return trend.Points[i].Quarter.Before(trend.Points[j].Quarter)
	})

	// Least-squares slope over (index, attraction).
	n := float64(len(trend.Points))
	var sumX, sumY, sumXY, sumXX float64
	for i, tp := range trend.Points {
		x := float64(i)
		sumX += x
		sumY += tp.Attraction
		sumXY += x * tp.Attraction
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return nil, fmt.Errorf("sai: degenerate trend series")
	}
	slope := (n*sumXY - sumX*sumY) / denom
	mean := sumY / n
	if mean > 0 {
		trend.Slope = slope / mean
	}
	switch {
	case trend.Slope > stabilityBand:
		trend.Direction = TrendRising
	case trend.Slope < -stabilityBand:
		trend.Direction = TrendFalling
	default:
		trend.Direction = TrendStable
	}
	return trend, nil
}

// quarterStart truncates a time to the first day of its quarter (UTC).
func quarterStart(t time.Time) time.Time {
	t = t.UTC()
	month := time.Month((int(t.Month())-1)/3*3 + 1)
	return time.Date(t.Year(), month, 1, 0, 0, 0, 0, time.UTC)
}
