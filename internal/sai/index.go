package sai

import (
	"fmt"
	"sort"

	"github.com/psp-framework/psp/internal/social"
	"github.com/psp-framework/psp/internal/tara"
)

// Entry is one row of the Social Attraction Index: an attack topic with
// its attraction score, estimated attack probability and classification.
type Entry struct {
	// Topic names the attack ("DPF delete").
	Topic string
	// Tags are the hashtags that selected the topic's posts.
	Tags []string
	// Posts is the number of matched posts.
	Posts int
	// Score is the summed attraction of the matched posts.
	Score float64
	// Probability is the attack-probability estimation of Fig. 7
	// block 7: the topic's share of the total attraction across all
	// entries, in [0, 1].
	Probability float64
	// Insider reports the owner classification of the topic.
	Insider bool
	// VectorShares is the attraction share per attack vector across the
	// topic's classified posts.
	VectorShares map[tara.AttackVector]float64
}

// Index is a sorted Social Attraction Index list.
type Index struct {
	// Entries are sorted by descending score (ties by topic).
	Entries []Entry
}

// Builder computes Index values from grouped posts.
type Builder struct {
	scorer  *Scorer
	vectors *VectorClassifier
	owners  *OwnerClassifier
}

// NewBuilder wires a Builder; nil components use defaults.
func NewBuilder(scorer *Scorer, vectors *VectorClassifier, owners *OwnerClassifier) (*Builder, error) {
	if scorer == nil {
		var err error
		scorer, err = NewScorer(DefaultWeights(), nil)
		if err != nil {
			return nil, err
		}
	}
	if vectors == nil {
		vectors = NewVectorClassifier()
	}
	if owners == nil {
		owners = NewOwnerClassifier()
	}
	return &Builder{scorer: scorer, vectors: vectors, owners: owners}, nil
}

// Scorer returns the builder's attraction scorer.
func (b *Builder) Scorer() *Scorer { return b.scorer }

// TopicPosts groups the posts of one attack topic.
type TopicPosts struct {
	Topic string
	Tags  []string
	Posts []*social.Post
}

// Build computes the SAI over topic groups. Topics with no posts still
// appear with zero score so coverage gaps stay visible.
func (b *Builder) Build(groups []TopicPosts) (*Index, error) {
	entries := make([]Entry, 0, len(groups))
	for _, g := range groups {
		entries = append(entries, b.BuildEntry(g))
	}
	return AssembleIndex(entries)
}

// BuildEntry scores one topic group in isolation: everything but the
// Probability, which is a global normalization over all entries (see
// AssembleIndex). Entries are pure functions of their group's posts, so
// the incremental re-assessment path memoizes them per topic and only
// rebuilds the groups whose query results changed.
func (b *Builder) BuildEntry(g TopicPosts) Entry {
	e := Entry{
		Topic: g.Topic,
		Tags:  append([]string(nil), g.Tags...),
		Posts: len(g.Posts),
	}
	e.Score = b.scorer.Total(g.Posts)
	e.Insider = b.owners.MajorityInsider(g.Posts)
	e.VectorShares = b.VectorShares(g.Posts)
	return e
}

// AssembleIndex normalizes per-topic entries into a sorted index:
// probabilities are each entry's share of the total attraction, summed
// in input order so the result is bit-identical however the entries
// were produced (fresh or memoized).
func AssembleIndex(entries []Entry) (*Index, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("sai: no topic groups")
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	var totalScore float64
	for i := range out {
		out[i].Probability = 0
		totalScore += out[i].Score
	}
	if totalScore > 0 {
		for i := range out {
			out[i].Probability = out[i].Score / totalScore
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Topic < out[j].Topic
	})
	return &Index{Entries: out}, nil
}

// VectorShares computes the attraction share of each attack vector over
// the classified posts of a set. Posts without method vocabulary are
// excluded. The shares sum to 1 when any post classifies.
func (b *Builder) VectorShares(posts []*social.Post) map[tara.AttackVector]float64 {
	weights := make(map[tara.AttackVector]float64, 4)
	var total float64
	for _, p := range posts {
		v, ok := b.vectors.Classify(p)
		if !ok {
			continue
		}
		a := b.scorer.Attraction(p)
		weights[v] += a
		total += a
	}
	shares := make(map[tara.AttackVector]float64, 4)
	if total == 0 {
		return shares
	}
	for v, w := range weights {
		shares[v] = w / total
	}
	return shares
}

// Top returns the highest-scoring entry, or an error for an empty index.
func (idx *Index) Top() (Entry, error) {
	if len(idx.Entries) == 0 {
		return Entry{}, fmt.Errorf("sai: empty index")
	}
	return idx.Entries[0], nil
}

// Insiders returns the insider entries in index order — the subset the
// weight retuning applies to (retuning outsider entries "does not make
// sense" per the paper).
func (idx *Index) Insiders() []Entry {
	var out []Entry
	for _, e := range idx.Entries {
		if e.Insider {
			out = append(out, e)
		}
	}
	return out
}
