package sai

import (
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/social"
)

func authPost(id, author, text string, views, likes int, day int) *social.Post {
	return &social.Post{
		ID: id, Author: author, Text: text,
		CreatedAt: time.Date(2022, 6, day, 10, 0, 0, 0, time.UTC),
		Region:    social.RegionEurope,
		Metrics:   social.Metrics{Views: views, Likes: likes},
	}
}

func TestFilterAuthenticDuplicates(t *testing.T) {
	cfg := DefaultAuthenticityConfig()
	var posts []*social.Post
	for i := 0; i < 8; i++ {
		posts = append(posts, authPost(
			string(rune('a'+i)), "bot"+string(rune('0'+i%3)),
			"identical shill text #dpfdelete", 100, 5, 1+i%5))
	}
	report, err := FilterAuthentic(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Clean) != cfg.MaxDuplicateTexts {
		t.Errorf("clean = %d, want %d", len(report.Clean), cfg.MaxDuplicateTexts)
	}
	for _, p := range report.Flagged {
		if report.Reasons[p.ID] != "duplicate-text" {
			t.Errorf("post %s reason = %s", p.ID, report.Reasons[p.ID])
		}
	}
}

func TestFilterAuthenticDuplicatesSurviveCaseMutation(t *testing.T) {
	// Trivial case/whitespace mutations must not evade detection.
	posts := []*social.Post{
		authPost("a", "u1", "Great KIT for you", 100, 5, 1),
		authPost("b", "u2", "great   kit for you", 100, 5, 1),
		authPost("c", "u3", "GREAT kit FOR you", 100, 5, 1),
		authPost("d", "u4", "great kit for you!", 100, 5, 1),
	}
	cfg := DefaultAuthenticityConfig()
	cfg.MaxDuplicateTexts = 2
	report, err := FilterAuthentic(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Flagged) < 1 {
		t.Errorf("mutated duplicates evaded detection: %d flagged", len(report.Flagged))
	}
}

func TestFilterAuthenticAuthorBurst(t *testing.T) {
	cfg := DefaultAuthenticityConfig()
	var posts []*social.Post
	// One author, 9 distinct posts on the same day.
	for i := 0; i < 9; i++ {
		posts = append(posts, authPost(
			string(rune('a'+i)), "spammer",
			"unique text number "+string(rune('0'+i)), 100, 5, 1))
	}
	// Same author on another day: fresh budget.
	posts = append(posts, authPost("z", "spammer", "next day post", 100, 5, 2))
	report, err := FilterAuthentic(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantFlagged := 9 - cfg.MaxPerAuthorDay
	if len(report.Flagged) != wantFlagged {
		t.Errorf("flagged = %d, want %d", len(report.Flagged), wantFlagged)
	}
	for _, p := range report.Flagged {
		if report.Reasons[p.ID] != "author-burst" {
			t.Errorf("post %s reason = %s", p.ID, report.Reasons[p.ID])
		}
	}
	// The next-day post survives.
	for _, p := range report.Flagged {
		if p.ID == "z" {
			t.Error("next-day post flagged")
		}
	}
}

func TestFilterAuthenticEngagementAnomaly(t *testing.T) {
	cfg := DefaultAuthenticityConfig()
	posts := []*social.Post{
		authPost("organic", "u1", "real post with real reach", 50000, 900, 1),
		authPost("bought", "u2", "bot post with bought views", 80000, 0, 1),
		authPost("small", "u3", "tiny post, zero likes is normal", 200, 0, 1),
	}
	report, err := FilterAuthentic(posts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Flagged) != 1 || report.Flagged[0].ID != "bought" {
		t.Fatalf("flagged = %v", report.Reasons)
	}
	if report.Reasons["bought"] != "engagement-anomaly" {
		t.Errorf("reason = %s", report.Reasons["bought"])
	}
}

func TestFilterAuthenticConfigValidation(t *testing.T) {
	if _, err := FilterAuthentic(nil, AuthenticityConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	report, err := FilterAuthentic(nil, DefaultAuthenticityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Clean) != 0 || len(report.Flagged) != 0 {
		t.Error("empty input should yield empty report")
	}
}
