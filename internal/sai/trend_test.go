package sai

import (
	"context"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/social"
)

func trendPost(id string, when time.Time, views int) *social.Post {
	return &social.Post{
		ID: id, Author: "u", Text: "plain post with no method words",
		CreatedAt: when, Region: social.RegionEurope,
		Metrics: social.Metrics{Views: views, Likes: views / 50},
	}
}

func mustBuilder(t *testing.T) *Builder {
	t.Helper()
	b, err := NewBuilder(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestComputeTrendRising(t *testing.T) {
	b := mustBuilder(t)
	var posts []*social.Post
	// Quarterly volume doubling across 2022: unmistakably rising.
	for q := 0; q < 4; q++ {
		when := time.Date(2022, time.Month(1+q*3), 15, 0, 0, 0, 0, time.UTC)
		for i := 0; i < (q+1)*(q+1); i++ {
			posts = append(posts, trendPost(
				time.Month(q).String()+string(rune('a'+i)), when, 1000))
		}
	}
	trend, err := b.ComputeTrend(posts)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Direction != TrendRising {
		t.Errorf("direction = %v (slope %.3f), want rising", trend.Direction, trend.Slope)
	}
	if len(trend.Points) != 4 {
		t.Errorf("points = %d, want 4", len(trend.Points))
	}
	for i := 1; i < len(trend.Points); i++ {
		if !trend.Points[i-1].Quarter.Before(trend.Points[i].Quarter) {
			t.Error("points not chronologically sorted")
		}
	}
}

func TestComputeTrendFallingAndStable(t *testing.T) {
	b := mustBuilder(t)
	var falling []*social.Post
	for q := 0; q < 4; q++ {
		when := time.Date(2022, time.Month(1+q*3), 15, 0, 0, 0, 0, time.UTC)
		for i := 0; i < (4-q)*(4-q); i++ {
			falling = append(falling, trendPost(
				"f"+time.Month(q).String()+string(rune('a'+i)), when, 1000))
		}
	}
	trend, err := b.ComputeTrend(falling)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Direction != TrendFalling {
		t.Errorf("direction = %v (slope %.3f), want falling", trend.Direction, trend.Slope)
	}

	var stable []*social.Post
	for q := 0; q < 4; q++ {
		when := time.Date(2022, time.Month(1+q*3), 15, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 5; i++ {
			stable = append(stable, trendPost(
				"s"+time.Month(q).String()+string(rune('a'+i)), when, 1000))
		}
	}
	trend, err = b.ComputeTrend(stable)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Direction != TrendStable {
		t.Errorf("direction = %v (slope %.3f), want stable", trend.Direction, trend.Slope)
	}
}

func TestComputeTrendErrors(t *testing.T) {
	b := mustBuilder(t)
	if _, err := b.ComputeTrend(nil); err == nil {
		t.Error("empty posts accepted")
	}
	one := []*social.Post{trendPost("x", time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC), 100)}
	if _, err := b.ComputeTrend(one); err == nil {
		t.Error("single quarter accepted")
	}
}

func TestQuarterStart(t *testing.T) {
	tests := []struct {
		in   time.Time
		want time.Time
	}{
		{time.Date(2022, 2, 20, 13, 0, 0, 0, time.UTC), time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)},
		{time.Date(2022, 6, 30, 0, 0, 0, 0, time.UTC), time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)},
		{time.Date(2022, 12, 31, 0, 0, 0, 0, time.UTC), time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, tt := range tests {
		if got := quarterStart(tt.in); !got.Equal(tt.want) {
			t.Errorf("quarterStart(%s) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

// The reference corpus encodes the paper's shift: OBD-method ECM posts
// rise over the corpus lifetime.
func TestCorpusLocalMethodTrendRises(t *testing.T) {
	store, err := social.DefaultStore(31)
	if err != nil {
		t.Fatal(err)
	}
	posts, err := social.SearchAll(testCtx(), store, social.Query{
		AnyTags: []string{"chiptuning", "ecutune", "remap", "stage1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := mustBuilder(t)
	classifier := NewVectorClassifier()
	var localPosts []*social.Post
	for _, p := range posts {
		if v, ok := classifier.Classify(p); ok && v.String() == "Local" {
			localPosts = append(localPosts, p)
		}
	}
	trend, err := b.ComputeTrend(localPosts)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Direction != TrendRising {
		t.Errorf("local-method trend = %v (slope %.3f), want rising", trend.Direction, trend.Slope)
	}
}

func testCtx() context.Context { return context.Background() }
