// Package sai implements the Social Attraction Index engine of the PSP
// framework (Fig. 7 of the paper, blocks 2 and 5–12):
//
//   - post attraction scoring from views, interactions and popularity,
//     gated by sentiment;
//   - SAI entries with attack-probability estimation (blocks 6–7);
//   - insider/outsider classification of threat entries (blocks 8–9);
//   - attack-vector classification of posts, from which per-vector
//     attraction shares are derived;
//   - generation of updated ISO/SAE 21434 attack-vector feasibility
//     tables with SAI-derived corrective factors (block 12, Fig. 8-B and
//     Fig. 9-B/C); and
//   - hashtag auto-learning to extend the attack keyword database
//     (block 5).
package sai
