// Package standards models the contribution graph of Fig. 1 of the PSP
// paper: the standards ISO/SAE 21434 was developed from, each linked with
// a strong or medium relationship. The graph supports provenance queries
// ("which cybersecurity standards shaped clause X's worldview") used in
// reports and documentation tooling.
package standards

import (
	"fmt"
	"sort"
	"strings"
)

// Strength classifies a contribution edge.
type Strength int

// Relationship strengths, per the figure's legend.
const (
	Medium Strength = iota + 1
	Strong
)

// String returns the strength name.
func (s Strength) String() string {
	switch s {
	case Medium:
		return "Medium"
	case Strong:
		return "Strong"
	}
	return fmt.Sprintf("Strength(%d)", int(s))
}

// Domain classifies what field a contributing standard comes from — the
// paper's point being that many contributors are IT-security standards,
// which biases the TARA models toward enterprise-IT assumptions.
type Domain int

// Contributor domains.
const (
	DomainAutomotive Domain = iota + 1
	DomainITSecurity
	DomainQuality
	DomainSoftware
	DomainFunctionalSafety
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case DomainAutomotive:
		return "Automotive"
	case DomainITSecurity:
		return "IT Security"
	case DomainQuality:
		return "Quality"
	case DomainSoftware:
		return "Software Engineering"
	case DomainFunctionalSafety:
		return "Functional Safety"
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// Contribution is one edge of the graph: a standard contributing to
// ISO/SAE 21434.
type Contribution struct {
	// Standard is the contributor's designation ("ISO/IEC 18045").
	Standard string
	// Strength is the relationship strength.
	Strength Strength
	// Domain is the contributor's field.
	Domain Domain
}

// Graph is the contribution graph around a target standard.
type Graph struct {
	// Target is the standard being contributed to.
	Target        string
	contributions map[string]Contribution
}

// NewGraph returns an empty graph for a target standard.
func NewGraph(target string) *Graph {
	return &Graph{Target: target, contributions: make(map[string]Contribution)}
}

// Add inserts a contribution edge; duplicates are rejected.
func (g *Graph) Add(c Contribution) error {
	if strings.TrimSpace(c.Standard) == "" {
		return fmt.Errorf("standards: contribution with empty standard name")
	}
	if c.Strength != Medium && c.Strength != Strong {
		return fmt.Errorf("standards: %s: invalid strength %d", c.Standard, int(c.Strength))
	}
	if _, dup := g.contributions[c.Standard]; dup {
		return fmt.Errorf("standards: duplicate contribution %s", c.Standard)
	}
	g.contributions[c.Standard] = c
	return nil
}

// Len returns the number of contributions.
func (g *Graph) Len() int { return len(g.contributions) }

// ByStrength returns the contributors of a strength, sorted by name.
func (g *Graph) ByStrength(s Strength) []Contribution {
	var out []Contribution
	for _, c := range g.contributions {
		if c.Strength == s {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Standard < out[j].Standard })
	return out
}

// ByDomain returns the contributors of a domain, sorted by name.
func (g *Graph) ByDomain(d Domain) []Contribution {
	var out []Contribution
	for _, c := range g.contributions {
		if c.Domain == d {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Standard < out[j].Standard })
	return out
}

// All returns every contribution sorted by (descending strength, name).
func (g *Graph) All() []Contribution {
	out := make([]Contribution, 0, len(g.contributions))
	for _, c := range g.contributions {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strength != out[j].Strength {
			return out[i].Strength > out[j].Strength
		}
		return out[i].Standard < out[j].Standard
	})
	return out
}

// ITShare returns the fraction of contributors from the IT-security
// domain — the quantitative form of the paper's observation that
// "many of the standards used in its creation are not solely related to
// the automotive industry, particularly those related to cybersecurity".
func (g *Graph) ITShare() float64 {
	if len(g.contributions) == 0 {
		return 0
	}
	n := 0
	for _, c := range g.contributions {
		if c.Domain == DomainITSecurity {
			n++
		}
	}
	return float64(n) / float64(len(g.contributions))
}

// ISO21434Graph returns the Fig. 1 graph: the standards contributing to
// ISO/SAE 21434:2021 with their relationship strengths.
func ISO21434Graph() (*Graph, error) {
	g := NewGraph("ISO/SAE 21434:2021")
	contributions := []Contribution{
		// Strong relationships.
		{Standard: "SAE J3061", Strength: Strong, Domain: DomainAutomotive},
		{Standard: "ISO 26262:2018", Strength: Strong, Domain: DomainFunctionalSafety},
		{Standard: "ISO/IEC 18045", Strength: Strong, Domain: DomainITSecurity},
		{Standard: "ISO/IEC 27000:2018", Strength: Strong, Domain: DomainITSecurity},
		{Standard: "IATF 16949", Strength: Strong, Domain: DomainQuality},
		{Standard: "ISO 9001", Strength: Strong, Domain: DomainQuality},
		{Standard: "ISO 10007", Strength: Strong, Domain: DomainQuality},
		{Standard: "ISO/IEC/IEEE 15288", Strength: Strong, Domain: DomainSoftware},
		{Standard: "MISRA C 2012", Strength: Strong, Domain: DomainSoftware},
		{Standard: "ISO/IEC 27001", Strength: Strong, Domain: DomainITSecurity},
		{Standard: "ASPICE", Strength: Strong, Domain: DomainAutomotive},
		{Standard: "SEI CERT C", Strength: Strong, Domain: DomainSoftware},
		// Medium relationships.
		{Standard: "ISO 9000:2015", Strength: Medium, Domain: DomainQuality},
		{Standard: "ISO/TR 4804", Strength: Medium, Domain: DomainAutomotive},
		{Standard: "ISO/IEC/IEEE 12207", Strength: Medium, Domain: DomainSoftware},
		{Standard: "ISO 29147", Strength: Medium, Domain: DomainITSecurity},
		{Standard: "ISO/IEC/IEEE 26511", Strength: Medium, Domain: DomainSoftware},
		{Standard: "IEC 31010", Strength: Medium, Domain: DomainQuality},
		{Standard: "ISO/IEC 33001", Strength: Medium, Domain: DomainSoftware},
		{Standard: "IEC 61508-7", Strength: Medium, Domain: DomainFunctionalSafety},
		{Standard: "IEC 62443", Strength: Medium, Domain: DomainITSecurity},
	}
	for _, c := range contributions {
		if err := g.Add(c); err != nil {
			return nil, err
		}
	}
	return g, nil
}
