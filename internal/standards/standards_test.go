package standards

import "testing"

func mustGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := ISO21434Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestISO21434GraphShape(t *testing.T) {
	g := mustGraph(t)
	if g.Target != "ISO/SAE 21434:2021" {
		t.Errorf("Target = %q", g.Target)
	}
	if g.Len() != 21 {
		t.Errorf("Len() = %d, want 21 contributors (Fig. 1)", g.Len())
	}
	strong := g.ByStrength(Strong)
	medium := g.ByStrength(Medium)
	if len(strong) != 12 || len(medium) != 9 {
		t.Errorf("strong/medium = %d/%d, want 12/9", len(strong), len(medium))
	}
	if len(strong)+len(medium) != g.Len() {
		t.Error("strength partition incomplete")
	}
}

func TestITSecurityInfluence(t *testing.T) {
	// The paper's premise: a meaningful share of 21434's ancestry is
	// enterprise IT security, explaining the remote-attack bias.
	g := mustGraph(t)
	it := g.ByDomain(DomainITSecurity)
	if len(it) < 4 {
		t.Errorf("IT-security contributors = %d, want ≥4", len(it))
	}
	share := g.ITShare()
	if share <= 0.15 || share >= 0.5 {
		t.Errorf("ITShare() = %.3f, want a meaningful minority share", share)
	}
	found := false
	for _, c := range it {
		if c.Standard == "ISO/IEC 18045" && c.Strength == Strong {
			found = true
		}
	}
	if !found {
		t.Error("ISO/IEC 18045 (source of the attack-potential model) must be a strong IT-security contributor")
	}
}

func TestAllSortedByStrengthThenName(t *testing.T) {
	g := mustGraph(t)
	all := g.All()
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if prev.Strength < cur.Strength {
			t.Fatalf("All() not sorted by strength at %d: %v before %v", i, prev, cur)
		}
		if prev.Strength == cur.Strength && prev.Standard > cur.Standard {
			t.Fatalf("All() not name-sorted within strength at %d", i)
		}
	}
}

func TestAddValidation(t *testing.T) {
	g := NewGraph("X")
	if err := g.Add(Contribution{Standard: "", Strength: Strong, Domain: DomainQuality}); err == nil {
		t.Error("empty standard accepted")
	}
	if err := g.Add(Contribution{Standard: "A", Strength: 0, Domain: DomainQuality}); err == nil {
		t.Error("invalid strength accepted")
	}
	if err := g.Add(Contribution{Standard: "A", Strength: Strong, Domain: DomainQuality}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Contribution{Standard: "A", Strength: Medium, Domain: DomainQuality}); err == nil {
		t.Error("duplicate accepted")
	}
	if g.ITShare() != 0 {
		t.Error("ITShare without IT contributors should be 0")
	}
	if NewGraph("Y").ITShare() != 0 {
		t.Error("ITShare on empty graph should be 0")
	}
}

func TestEnumStrings(t *testing.T) {
	if Strong.String() != "Strong" || Medium.String() != "Medium" {
		t.Error("strength strings wrong")
	}
	if DomainITSecurity.String() != "IT Security" {
		t.Error("domain string wrong")
	}
	if Strength(9).String() == "" || Domain(9).String() == "" {
		t.Error("fallback strings empty")
	}
}
