package social

import (
	"sync"
	"time"
)

// RateLimiter is a token bucket: Allow consumes one token when available.
// It mirrors the request quotas of the public search APIs the paper's
// prototype depended on, so clients exercise the back-off path.
type RateLimiter struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	refill   float64 // tokens per second
	last     time.Time
	now      func() time.Time
}

// NewRateLimiter builds a bucket holding capacity tokens refilled at
// refillPerSecond. A nil clock uses time.Now.
func NewRateLimiter(capacity int, refillPerSecond float64, clock func() time.Time) *RateLimiter {
	if clock == nil {
		clock = time.Now
	}
	return &RateLimiter{
		capacity: float64(capacity),
		tokens:   float64(capacity),
		refill:   refillPerSecond,
		last:     clock(),
		now:      clock,
	}
}

// Allow consumes a token if available and reports whether the request may
// proceed. When it returns false, retryAfter suggests how long to wait.
func (r *RateLimiter) Allow() (ok bool, retryAfter time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	elapsed := now.Sub(r.last).Seconds()
	if elapsed > 0 {
		r.tokens += elapsed * r.refill
		if r.tokens > r.capacity {
			r.tokens = r.capacity
		}
		r.last = now
	}
	if r.tokens >= 1 {
		r.tokens--
		return true, 0
	}
	if r.refill <= 0 {
		return false, time.Hour
	}
	need := 1 - r.tokens
	return false, time.Duration(need / r.refill * float64(time.Second))
}
