package social

import (
	"context"
	"fmt"
	"testing"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	store, err := DefaultStore(42)
	if err != nil {
		b.Fatal(err)
	}
	return store
}

func BenchmarkGenerateCorpus(b *testing.B) {
	spec := DefaultCorpusSpec(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posts, err := Generate(spec)
		if err != nil || len(posts) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreAddBatch(b *testing.B) {
	posts, err := Generate(DefaultCorpusSpec(42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if err := s.Add(posts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAddBatchShards loads the reference corpus batch-wise
// at several stripe counts: batch ingest splits into one index merge
// per touched shard, so the sweep shows what striping costs (or saves)
// on the bulk-load path as opposed to the concurrent mixed workload.
func BenchmarkStoreAddBatchShards(b *testing.B) {
	posts, err := Generate(DefaultCorpusSpec(42))
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewStoreShards(shards)
				if err := s.Add(posts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreSearchByTag(b *testing.B) {
	store := benchStore(b)
	ctx := context.Background()
	q := Query{AnyTags: []string{"dpfdelete", "dpfoff"}, MustTerms: []string{"excavator"}, Region: RegionEurope}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := store.Search(ctx, q)
		if err != nil || page.TotalMatches == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchAllPaginated(b *testing.B) {
	store := benchStore(b)
	ctx := context.Background()
	q := Query{AnyTags: []string{"chiptuning"}, MaxResults: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posts, err := SearchAll(ctx, store, q)
		if err != nil || len(posts) == 0 {
			b.Fatal(err)
		}
	}
}
