package social

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestMultiFederatesPlatforms(t *testing.T) {
	twitter := NewStore()
	if err := twitter.Add(&Post{
		ID: "t1", Author: "u1", Text: "#dpfdelete on my excavator",
		CreatedAt: ts(2022, 3, 1), Region: RegionEurope,
		Metrics: Metrics{Views: 100},
	}); err != nil {
		t.Fatal(err)
	}
	instagram := NewStore()
	if err := instagram.Add(&Post{
		ID: "i1", Author: "u2", Text: "#dpfdelete reel from the quarry excavator",
		CreatedAt: ts(2022, 4, 1), Region: RegionEurope,
		Metrics: Metrics{Views: 900, Likes: 40},
	}); err != nil {
		t.Fatal(err)
	}
	multi, err := NewMulti(
		PlatformSource{Name: "twitter", Searcher: twitter},
		PlatformSource{Name: "instagram", Searcher: instagram},
	)
	if err != nil {
		t.Fatal(err)
	}
	page, err := multi.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 2 {
		t.Fatalf("federated search returned %d posts", len(page.Posts))
	}
	// Namespaced IDs, chronological order.
	if page.Posts[0].ID != "twitter:t1" || page.Posts[1].ID != "instagram:i1" {
		t.Errorf("ids = %s, %s", page.Posts[0].ID, page.Posts[1].ID)
	}
	// Filters propagate to every backend.
	windowed, err := multi.Search(context.Background(), Query{
		AnyTags: []string{"dpfdelete"},
		Since:   time.Date(2022, 3, 15, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed.Posts) != 1 || !strings.HasPrefix(windowed.Posts[0].ID, "instagram:") {
		t.Errorf("windowed = %v", ids(windowed.Posts))
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := NewMulti(PlatformSource{Name: "", Searcher: NewStore()}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewMulti(PlatformSource{Name: "x", Searcher: nil}); err == nil {
		t.Error("nil searcher accepted")
	}
	if _, err := NewMulti(
		PlatformSource{Name: "x", Searcher: NewStore()},
		PlatformSource{Name: "x", Searcher: NewStore()},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	m, err := NewMulti(PlatformSource{Name: "x", Searcher: NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	// Malformed tokens and retired offset tokens are rejected;
	// well-formed keyset tokens are not.
	if _, err := m.Search(context.Background(), Query{PageToken: "garbage"}); err == nil {
		t.Error("malformed page token accepted by federated search")
	}
	if _, err := m.Search(context.Background(), Query{PageToken: "o5"}); err == nil {
		t.Error("retired offset token accepted by federated search")
	}
	tok := EncodeCursor(Cursor{CreatedAt: ts(2022, 1, 1), ID: "x:p"})
	if _, err := m.Search(context.Background(), Query{PageToken: tok}); err != nil {
		t.Errorf("keyset token rejected by federated search: %v", err)
	}
}

func TestMultiMaxResultsPagination(t *testing.T) {
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(PlatformSource{Name: "p", Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	page, err := m.Search(context.Background(), Query{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 4 {
		t.Errorf("capped page = %d posts (total %d)", len(page.Posts), page.TotalMatches)
	}
	if page.NextToken == "" {
		t.Fatal("capped federated page lost its continuation token")
	}
	rest, err := m.Search(context.Background(), Query{MaxResults: 2, PageToken: page.NextToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest.Posts) != 2 || rest.NextToken != "" {
		t.Errorf("second page = %d posts, token %q", len(rest.Posts), rest.NextToken)
	}
}

// Regression: SearchAll over a Multi with a capped query used to stop
// after one page because Multi.Search honoured MaxResults without ever
// emitting a NextToken — the listing silently truncated.
func TestMultiSearchAllNoTruncation(t *testing.T) {
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(PlatformSource{Name: "p", Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), m, Query{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("SearchAll over Multi returned %d posts, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].CreatedAt.After(all[i].CreatedAt) {
			t.Fatalf("federated listing out of order at %d: %v", i, ids(all))
		}
	}
}

// countingSearcher counts Search calls reaching a backend.
type countingSearcher struct {
	inner Searcher
	calls int
}

func (c *countingSearcher) Search(ctx context.Context, q Query) (*Page, error) {
	c.calls++
	return c.inner.Search(ctx, q)
}

// TestMultiNoRedrainPerPage pins the cost model of federated paging:
// each page issues one bounded request per backend past the cursor,
// instead of re-draining every backend's full listing per page (the
// behaviour keyset cursors retired).
func TestMultiNoRedrainPerPage(t *testing.T) {
	a, b := NewStore(), NewStore()
	for i := 0; i < 30; i++ {
		store, name := a, "a"
		if i%2 == 1 {
			store, name = b, "b"
		}
		if err := store.Add(&Post{
			ID:        fmt.Sprintf("%s-%02d", name, i),
			Author:    "u",
			Text:      "#dpfdelete post",
			CreatedAt: time.Date(2022, 1, 1, 0, i, 0, 0, time.UTC),
			Metrics:   Metrics{Views: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ca, cb := &countingSearcher{inner: a}, &countingSearcher{inner: b}
	m, err := NewMulti(
		PlatformSource{Name: "a", Searcher: ca},
		PlatformSource{Name: "b", Searcher: cb},
	)
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), m, Query{AnyTags: []string{"dpfdelete"}, MaxResults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 30 {
		t.Fatalf("federated drain returned %d posts, want 30", len(all))
	}
	for i := 1; i < len(all); i++ {
		if postLess(all[i], all[i-1]) {
			t.Fatalf("federated listing out of order at %d", i)
		}
	}
	// 30 posts at 5/page = 6 pages (+1 empty tail at most). Each backend
	// holds 15 matches, so one bounded fetch per page stays ≤ ~2 backend
	// calls; the retired re-drain issued 3 full-listing calls per page
	// (≥18 per backend).
	if ca.calls > 14 || cb.calls > 14 {
		t.Errorf("backend re-drained: a=%d b=%d calls for 6 pages", ca.calls, cb.calls)
	}
}

// TestMultiTiedTimestamps exercises cross-backend ties: posts sharing an
// instant order by namespaced ID and survive pagination intact.
func TestMultiTiedTimestamps(t *testing.T) {
	a, b := NewStore(), NewStore()
	at := ts(2022, 6, 1)
	for i := 0; i < 4; i++ {
		if err := a.Add(&Post{ID: fmt.Sprintf("p%d", i), Author: "u", Text: "#x tie", CreatedAt: at, Metrics: Metrics{Views: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(&Post{ID: fmt.Sprintf("p%d", i), Author: "u", Text: "#x tie", CreatedAt: at, Metrics: Metrics{Views: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMulti(
		PlatformSource{Name: "alpha", Searcher: a},
		PlatformSource{Name: "beta", Searcher: b},
	)
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), m, Query{AnyTags: []string{"x"}, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("tied federated drain returned %d posts, want 8: %v", len(all), ids(all))
	}
	seen := map[string]bool{}
	for i, p := range all {
		if seen[p.ID] {
			t.Fatalf("duplicate %s in tied listing", p.ID)
		}
		seen[p.ID] = true
		if i > 0 && postLess(p, all[i-1]) {
			t.Fatalf("tied listing out of order at %d: %v", i, ids(all))
		}
	}
}

// A failing backend aborts the whole federated search and cancels the
// remaining backends' context.
type failingSearcher struct{}

func (failingSearcher) Search(context.Context, Query) (*Page, error) {
	return nil, context.DeadlineExceeded
}

func TestMultiBackendErrorPropagates(t *testing.T) {
	m, err := NewMulti(
		PlatformSource{Name: "ok", Searcher: NewStore()},
		PlatformSource{Name: "bad", Searcher: failingSearcher{}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Search(context.Background(), Query{}); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("backend failure not attributed: %v", err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	posts, err := Generate(DefaultCorpusSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	posts = posts[:200]
	var buf bytes.Buffer
	if err := WritePosts(&buf, posts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPosts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(posts) {
		t.Fatalf("round trip: %d posts, want %d", len(back), len(posts))
	}
	for i := range posts {
		if posts[i].ID != back[i].ID || posts[i].Text != back[i].Text ||
			!posts[i].CreatedAt.Equal(back[i].CreatedAt) ||
			posts[i].Metrics != back[i].Metrics || posts[i].Region != back[i].Region {
			t.Fatalf("post %d mutated in round trip:\n%+v\n%+v", i, posts[i], back[i])
		}
	}
	// LoadStore builds a searchable store.
	var buf2 bytes.Buffer
	if err := WritePosts(&buf2, posts); err != nil {
		t.Fatal(err)
	}
	store, err := LoadStore(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(posts) {
		t.Errorf("store has %d posts, want %d", store.Len(), len(posts))
	}
}

func TestReadPostsRejectsGarbage(t *testing.T) {
	if _, err := ReadPosts(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON, invalid post.
	if _, err := ReadPosts(strings.NewReader(`{"id":"","text":"x"}` + "\n")); err == nil {
		t.Error("invalid post accepted")
	}
}

func TestWritePostsRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePosts(&buf, []*Post{{ID: ""}}); err == nil {
		t.Error("invalid post written")
	}
}
