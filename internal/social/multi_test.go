package social

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestMultiFederatesPlatforms(t *testing.T) {
	twitter := NewStore()
	if err := twitter.Add(&Post{
		ID: "t1", Author: "u1", Text: "#dpfdelete on my excavator",
		CreatedAt: ts(2022, 3, 1), Region: RegionEurope,
		Metrics: Metrics{Views: 100},
	}); err != nil {
		t.Fatal(err)
	}
	instagram := NewStore()
	if err := instagram.Add(&Post{
		ID: "i1", Author: "u2", Text: "#dpfdelete reel from the quarry excavator",
		CreatedAt: ts(2022, 4, 1), Region: RegionEurope,
		Metrics: Metrics{Views: 900, Likes: 40},
	}); err != nil {
		t.Fatal(err)
	}
	multi, err := NewMulti(
		PlatformSource{Name: "twitter", Searcher: twitter},
		PlatformSource{Name: "instagram", Searcher: instagram},
	)
	if err != nil {
		t.Fatal(err)
	}
	page, err := multi.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 2 {
		t.Fatalf("federated search returned %d posts", len(page.Posts))
	}
	// Namespaced IDs, chronological order.
	if page.Posts[0].ID != "twitter:t1" || page.Posts[1].ID != "instagram:i1" {
		t.Errorf("ids = %s, %s", page.Posts[0].ID, page.Posts[1].ID)
	}
	// Filters propagate to every backend.
	windowed, err := multi.Search(context.Background(), Query{
		AnyTags: []string{"dpfdelete"},
		Since:   time.Date(2022, 3, 15, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed.Posts) != 1 || !strings.HasPrefix(windowed.Posts[0].ID, "instagram:") {
		t.Errorf("windowed = %v", ids(windowed.Posts))
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := NewMulti(PlatformSource{Name: "", Searcher: NewStore()}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewMulti(PlatformSource{Name: "x", Searcher: nil}); err == nil {
		t.Error("nil searcher accepted")
	}
	if _, err := NewMulti(
		PlatformSource{Name: "x", Searcher: NewStore()},
		PlatformSource{Name: "x", Searcher: NewStore()},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	m, err := NewMulti(PlatformSource{Name: "x", Searcher: NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	// Malformed tokens are rejected; well-formed offset tokens are not.
	if _, err := m.Search(context.Background(), Query{PageToken: "garbage"}); err == nil {
		t.Error("malformed page token accepted by federated search")
	}
	if _, err := m.Search(context.Background(), Query{PageToken: "o5"}); err != nil {
		t.Errorf("offset token rejected by federated search: %v", err)
	}
}

func TestMultiMaxResultsPagination(t *testing.T) {
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(PlatformSource{Name: "p", Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	page, err := m.Search(context.Background(), Query{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 4 {
		t.Errorf("capped page = %d posts (total %d)", len(page.Posts), page.TotalMatches)
	}
	if page.NextToken == "" {
		t.Fatal("capped federated page lost its continuation token")
	}
	rest, err := m.Search(context.Background(), Query{MaxResults: 2, PageToken: page.NextToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest.Posts) != 2 || rest.NextToken != "" {
		t.Errorf("second page = %d posts, token %q", len(rest.Posts), rest.NextToken)
	}
}

// Regression: SearchAll over a Multi with a capped query used to stop
// after one page because Multi.Search honoured MaxResults without ever
// emitting a NextToken — the listing silently truncated.
func TestMultiSearchAllNoTruncation(t *testing.T) {
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(PlatformSource{Name: "p", Searcher: store})
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), m, Query{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("SearchAll over Multi returned %d posts, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].CreatedAt.After(all[i].CreatedAt) {
			t.Fatalf("federated listing out of order at %d: %v", i, ids(all))
		}
	}
}

// A failing backend aborts the whole federated search and cancels the
// remaining backends' context.
type failingSearcher struct{}

func (failingSearcher) Search(context.Context, Query) (*Page, error) {
	return nil, context.DeadlineExceeded
}

func TestMultiBackendErrorPropagates(t *testing.T) {
	m, err := NewMulti(
		PlatformSource{Name: "ok", Searcher: NewStore()},
		PlatformSource{Name: "bad", Searcher: failingSearcher{}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Search(context.Background(), Query{}); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("backend failure not attributed: %v", err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	posts, err := Generate(DefaultCorpusSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	posts = posts[:200]
	var buf bytes.Buffer
	if err := WritePosts(&buf, posts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPosts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(posts) {
		t.Fatalf("round trip: %d posts, want %d", len(back), len(posts))
	}
	for i := range posts {
		if posts[i].ID != back[i].ID || posts[i].Text != back[i].Text ||
			!posts[i].CreatedAt.Equal(back[i].CreatedAt) ||
			posts[i].Metrics != back[i].Metrics || posts[i].Region != back[i].Region {
			t.Fatalf("post %d mutated in round trip:\n%+v\n%+v", i, posts[i], back[i])
		}
	}
	// LoadStore builds a searchable store.
	var buf2 bytes.Buffer
	if err := WritePosts(&buf2, posts); err != nil {
		t.Fatal(err)
	}
	store, err := LoadStore(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(posts) {
		t.Errorf("store has %d posts, want %d", store.Len(), len(posts))
	}
}

func TestReadPostsRejectsGarbage(t *testing.T) {
	if _, err := ReadPosts(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON, invalid post.
	if _, err := ReadPosts(strings.NewReader(`{"id":"","text":"x"}` + "\n")); err == nil {
		t.Error("invalid post accepted")
	}
}

func TestWritePostsRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePosts(&buf, []*Post{{ID: ""}}); err == nil {
		t.Error("invalid post written")
	}
}
