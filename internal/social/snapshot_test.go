package social

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// lowerCompactThreshold shrinks the delta-generation bound so small
// test corpora exercise snapshot compaction, restoring it afterwards.
func lowerCompactThreshold(t *testing.T, n int) {
	t.Helper()
	old := shardCompactThreshold
	shardCompactThreshold = n
	t.Cleanup(func() { shardCompactThreshold = old })
}

// TestSearchLockFreeUnderHeldWriterLocks pins the tentpole contract
// directly: a Search must complete while every shard writer lock is
// held — the situation where the PR 3 store deadlocked a reader behind
// a committing (or stalled) writer. Post and Len live on the striped ID
// registry and must be equally unaffected.
func TestSearchLockFreeUnderHeldWriterLocks(t *testing.T) {
	s := NewStoreShards(4)
	if err := s.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	done := make(chan error, 1)
	go func() {
		page, err := s.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
		if err == nil && len(page.Posts) != 2 {
			err = fmt.Errorf("got %d posts, want 2", len(page.Posts))
		}
		if err == nil && s.Post("p1") == nil {
			err = fmt.Errorf("Post(p1) = nil under held writer locks")
		}
		if err == nil && s.Len() != 4 {
			err = fmt.Errorf("Len() = %d under held writer locks", s.Len())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Search blocked behind shard writer locks; reads are not lock-free")
	}
}

// TestSnapshotReaderCoherentUnderWriterBurst drains a keyset listing
// page by page while writers commit multi-stripe bursts (small enough
// pages that the drain straddles many commits, with the compaction
// threshold lowered so base generations are republished mid-drain).
// The snapshot contract: every page is internally sorted and
// duplicate-free, the drained listing never repeats a post, and every
// post present when the drain started is delivered. Run with -race.
func TestSnapshotReaderCoherentUnderWriterBurst(t *testing.T) {
	lowerCompactThreshold(t, 8)
	s := NewStoreShards(4)
	const initial = 120
	for i := 0; i < initial; i++ {
		if err := s.Add(dayPost(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Each burst spans four consecutive days — four distinct
				// stripes — so commits tear across shards if they can.
				burst := make([]*Post, 4)
				for j := range burst {
					burst[j] = &Post{
						ID:        fmt.Sprintf("burst-w%d-%04d-%d", w, i, j),
						Author:    "burst",
						Text:      "fresh #dpfdelete burst on the excavator",
						CreatedAt: time.Date(2023, 7, 1, 10, 0, 0, 0, time.UTC).AddDate(0, 0, (i*4+j)%120),
						Metrics:   Metrics{Views: 1},
					}
				}
				if err := s.Add(burst...); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	seen := make(map[string]bool)
	q := Query{MaxResults: 7}
	for pages := 0; ; pages++ {
		if pages > maxSearchPages {
			t.Fatal("drain did not terminate")
		}
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range page.Posts {
			if j > 0 && !postLess(page.Posts[j-1], p) {
				t.Fatalf("page %d out of order at %d: %s !< %s", pages, j, page.Posts[j-1].ID, p.ID)
			}
			if seen[p.ID] {
				t.Fatalf("post %s delivered twice across the drain", p.ID)
			}
			seen[p.ID] = true
		}
		if page.NextToken == "" {
			break
		}
		q.PageToken = page.NextToken
	}
	close(stop)
	wg.Wait()

	for i := 0; i < initial; i++ {
		if id := fmt.Sprintf("day-%03d", i); !seen[id] {
			t.Errorf("post %s was present at drain start but never delivered", id)
		}
	}
}

// prunedQueries exercises the window→stripe pruning paths: windows
// narrower than the stripe count (pruned), wider (unpruned), half-open
// and empty, combined with tag/term/region filters.
func prunedQueries() []Query {
	day := func(d int) time.Time { return time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d) }
	return []Query{
		{MaxResults: 7, Since: day(10), Until: day(11)},                                       // 1-day window
		{MaxResults: 5, Since: day(10).Add(6 * time.Hour), Until: day(11).Add(6 * time.Hour)}, // straddles a bucket boundary
		{MaxResults: 5, Since: day(3), Until: day(8)},                                         // 5-day window
		{MaxResults: 7, Since: day(0), Until: day(300)},                                       // wider than any stripe count
		{MaxResults: 7, Since: day(5)},                                                        // half-open: no pruning possible
		{MaxResults: 7, Until: day(20)},                                                       // half-open: no pruning possible
		{MaxResults: 7, Since: day(12), Until: day(12)},                                       // empty window
		{AnyTags: []string{"dpfdelete", "chiptuning"}, MaxResults: 4, Since: day(7), Until: day(9)},
		{MustTerms: []string{"excavator"}, MaxResults: 3, Since: day(2), Until: day(4), Region: RegionEurope},
	}
}

// TestSearchAllEquivalenceWithPruning pins pruning to the unpruned
// baseline: page-by-page listings — posts, keyset tokens and totals —
// must be byte-identical at 1, 4 and 16 shards. At one shard every
// window maps to the single stripe (pruning is a no-op); at 16 the
// narrow windows skip most stripes, so any post hiding in a wrongly
// skipped stripe diffs the rendering.
func TestSearchAllEquivalenceWithPruning(t *testing.T) {
	posts, err := Generate(DefaultCorpusSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	queries := prunedQueries()
	var baseline [][]byte
	for _, shards := range []int{1, 4, 16} {
		s := NewStoreShards(shards)
		if err := s.Add(posts...); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			got := renderListing(t, s, q)
			if shards == 1 {
				baseline = append(baseline, got)
				continue
			}
			if !bytes.Equal(got, baseline[qi]) {
				t.Errorf("query %d: %d-shard listing differs from single-shard baseline\n1:  %.200s\n%d: %.200s",
					qi, shards, baseline[qi], shards, got)
			}
		}
	}
	nonEmpty := 0
	for _, b := range baseline {
		if string(b) != "[]" && len(b) > 80 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d pruned queries matched posts; equivalence test is near-vacuous", nonEmpty)
	}
}

// TestWindowPruningVisitsOnlyStripeSet verifies the ≥5× fan-out
// reduction by counter: on a 90-day corpus at 16 shards, a 1-day window
// must visit at most 2 stripes (a day window can straddle one bucket
// boundary) while an unbounded query visits all 16.
func TestWindowPruningVisitsOnlyStripeSet(t *testing.T) {
	s := NewStoreShards(16)
	for i := 0; i < 90; i++ {
		if err := s.Add(dayPost(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	before := s.SearchShardVisits()
	page, err := s.Search(ctx, Query{})
	if err != nil || page.TotalMatches != 90 {
		t.Fatalf("unbounded search: %v (total %d)", err, page.TotalMatches)
	}
	if got := s.SearchShardVisits() - before; got != 16 {
		t.Errorf("unbounded query visited %d stripes, want 16", got)
	}

	day30 := dayPost(30).CreatedAt.Truncate(24 * time.Hour)
	before = s.SearchShardVisits()
	page, err = s.Search(ctx, Query{Since: day30, Until: day30.AddDate(0, 0, 1)})
	if err != nil || page.TotalMatches != 1 || page.Posts[0].ID != "day-030" {
		t.Fatalf("1-day window search: %+v, %v", page, err)
	}
	if got := s.SearchShardVisits() - before; got > 2 {
		t.Errorf("1-day window visited %d stripes, want ≤ 2", got)
	}

	// An empty window visits nothing at all.
	before = s.SearchShardVisits()
	if _, err := s.Search(ctx, Query{Since: day30, Until: day30}); err != nil {
		t.Fatal(err)
	}
	if got := s.SearchShardVisits() - before; got != 0 {
		t.Errorf("empty window visited %d stripes, want 0", got)
	}
}

// TestStripesFor covers the pruning rule's edges directly.
func TestStripesFor(t *testing.T) {
	s := NewStoreShards(8)
	day := func(d int) time.Time { return time.Unix(0, int64(d)*shardBucketNanos).UTC() }
	if got := s.stripesFor(time.Time{}, day(3)); got != nil {
		t.Errorf("half-open window pruned to %v", got)
	}
	if got := s.stripesFor(day(3), time.Time{}); got != nil {
		t.Errorf("half-open window pruned to %v", got)
	}
	if got := s.stripesFor(day(0), day(8)); got != nil {
		t.Errorf("full-round window pruned to %v", got)
	}
	if got := s.stripesFor(day(5), day(5)); got == nil || len(got) != 0 {
		t.Errorf("empty window → %v, want []", got)
	}
	if got := s.stripesFor(day(6), day(5)); got == nil || len(got) != 0 {
		t.Errorf("inverted window → %v, want []", got)
	}
	// Three buckets starting at bucket 6 on 8 stripes wrap to {6, 7, 0}.
	got := s.stripesFor(day(6), day(9))
	if len(got) != 3 || got[0] != 6 || got[1] != 7 || got[2] != 0 {
		t.Errorf("wrapping window → %v, want [6 7 0]", got)
	}
	// An until exactly on a bucket boundary excludes that bucket.
	if got := s.stripesFor(day(2), day(3)); len(got) != 1 || got[0] != 2 {
		t.Errorf("boundary-exclusive window → %v, want [2]", got)
	}
	// Pre-1970 windows prune into well-defined stripes too.
	if got := s.stripesFor(day(-3), day(-2)); len(got) != 1 || got[0] != 5 {
		t.Errorf("pre-1970 window → %v, want [5]", got)
	}
	// Bounds outside the int64-nanosecond range (the usual open-end
	// sentinels, remotely suppliable via the HTTP since/until params)
	// must fall back to the unpruned fan-out, not overflow. Regression:
	// a year-9999 until used to panic Search with a negative makeslice
	// cap.
	farFuture := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	farPast := time.Date(1, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := s.stripesFor(day(0), farFuture); got != nil {
		t.Errorf("far-future until pruned to %v, want nil", got)
	}
	if got := s.stripesFor(farPast, day(3)); got != nil {
		t.Errorf("far-past since pruned to %v, want nil", got)
	}
}

// TestSearchSentinelWindowBounds pins the end-to-end behaviour of
// out-of-range window sentinels: the query must return its matches
// instead of panicking or pruning them away.
func TestSearchSentinelWindowBounds(t *testing.T) {
	s := newTestStore(t)
	page, err := s.Search(context.Background(), Query{
		Since: ts(2020, 1, 1),
		Until: time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil || page.TotalMatches != 4 {
		t.Fatalf("far-future until: %+v, %v (want all 4 posts)", page, err)
	}
	page, err = s.Search(context.Background(), Query{
		Since: time.Date(1, 1, 1, 0, 0, 0, 0, time.UTC),
		Until: ts(2022, 1, 1),
	})
	if err != nil || page.TotalMatches != 1 {
		t.Fatalf("far-past since: %+v, %v (want 1 post)", page, err)
	}
}

// TestCompactionEquivalence forces many base-generation folds and pins
// the result to a batch-loaded store: one-at-a-time ingest through a
// tiny compaction threshold must yield byte-identical listings.
func TestCompactionEquivalence(t *testing.T) {
	lowerCompactThreshold(t, 3)
	posts, err := Generate(DefaultCorpusSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	posts = posts[:200]
	incremental := NewStoreShards(4)
	for _, p := range posts {
		if err := incremental.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	batch := NewStoreShards(4)
	if err := batch.Add(posts...); err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{MaxResults: 9},
		{AnyTags: []string{"dpfdelete", "chiptuning"}, MaxResults: 5},
		{MustTerms: []string{"excavator"}, MaxResults: 4},
	} {
		a, b := renderListing(t, incremental, q), renderListing(t, batch, q)
		if !bytes.Equal(a, b) {
			t.Errorf("query %+v: compacted listing differs from batch-loaded baseline\ninc:   %.200s\nbatch: %.200s", q, a, b)
		}
	}
	if got := incremental.SnapshotPosts(); len(got) != len(posts) {
		t.Errorf("SnapshotPosts() = %d posts, want %d", len(got), len(posts))
	}
}

// TestWatchExactlyOnceAcrossCOWCommits floods a striped store with
// multi-stripe batches (each spans four day buckets) under a lowered
// compaction threshold, with one subscriber registered up front and one
// attaching mid-flood: every post must arrive exactly once at both, and
// each batch must arrive as one unit even though its snapshot swaps
// land stripe by stripe. Run with -race.
func TestWatchExactlyOnceAcrossCOWCommits(t *testing.T) {
	lowerCompactThreshold(t, 16)
	s := NewStoreShards(8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	zero := Cursor{}
	feed := s.Watch(ctx, WatchOptions{After: &zero, Buffer: 2})

	const writers, burstsPerWriter, burstLen = 6, 30, 4
	var wg sync.WaitGroup
	lateFeeds := make(chan (<-chan []*Post), 1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < burstsPerWriter; i++ {
				batch := make([]*Post, burstLen)
				for j := range batch {
					batch[j] = &Post{
						ID:        fmt.Sprintf("cow-w%d-%03d-%d", w, i, j),
						Author:    fmt.Sprintf("writer%d", w),
						Text:      "flood #dpfdelete",
						CreatedAt: time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, (w*burstsPerWriter+i+j)%32),
						Metrics:   Metrics{Views: 1},
					}
				}
				if err := s.Add(batch...); err != nil {
					t.Error(err)
					return
				}
				if w == 0 && i == burstsPerWriter/2 {
					lateFeeds <- s.Watch(ctx, WatchOptions{After: &zero, Buffer: 2})
				}
			}
		}(w)
	}
	late := <-lateFeeds
	wg.Wait()

	want := writers * burstsPerWriter * burstLen
	for name, f := range map[string]<-chan []*Post{"registered-first": feed, "registered-mid-flood": late} {
		got := collectFeed(t, f, want)
		seen := make(map[string]bool, len(got))
		for _, id := range got {
			if seen[id] {
				t.Fatalf("%s subscriber: post %s delivered twice", name, id)
			}
			seen[id] = true
		}
		if len(seen) != want {
			t.Errorf("%s subscriber: %d distinct posts, want %d", name, len(seen), want)
		}
	}
}

// TestSkipTotal pins the SkipTotal contract across Store, server/client
// and Multi: identical posts and tokens, totals skipped on request.
func TestSkipTotal(t *testing.T) {
	s := newTestStore(t)
	ctx := context.Background()
	q := Query{AnyTags: []string{"dpfdelete"}, MaxResults: 1}

	full, err := s.Search(ctx, q)
	if err != nil || full.TotalMatches != 2 {
		t.Fatalf("full search: %+v, %v", full, err)
	}
	q.SkipTotal = true
	skipped, err := s.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if skipped.TotalMatches != 0 {
		t.Errorf("SkipTotal page carries TotalMatches %d", skipped.TotalMatches)
	}
	if len(skipped.Posts) != 1 || skipped.Posts[0].ID != full.Posts[0].ID || skipped.NextToken != full.NextToken {
		t.Errorf("SkipTotal changed the page: %+v vs %+v", skipped, full)
	}

	// SkipTotal must not leak into the cache key: both variants select
	// the same posts.
	if c1, c2 := full.Posts[0], skipped.Posts[0]; c1 != c2 {
		t.Errorf("post identity differs: %v vs %v", c1, c2)
	}
	qq := q
	qq.SkipTotal = false
	if a, b := q.Canonical(), qq.Canonical(); fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("Canonical differs on SkipTotal: %+v vs %+v", a, b)
	}

	// The HTTP pair round-trips the flag.
	srv := httptest.NewServer(NewServer(s, nil).Handler())
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	remote, err := client.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if remote.TotalMatches != 0 || len(remote.Posts) != 1 || remote.Posts[0].ID != full.Posts[0].ID {
		t.Errorf("remote SkipTotal page: %+v", remote)
	}
	qf := q
	qf.SkipTotal = false
	remoteFull, err := client.Search(ctx, qf)
	if err != nil || remoteFull.TotalMatches != 2 {
		t.Errorf("remote full page: %+v, %v", remoteFull, err)
	}

	// Federated pass-through.
	m, err := NewMulti(PlatformSource{Name: "tw", Searcher: s})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := m.Search(ctx, q)
	if err != nil || fed.TotalMatches != 0 || len(fed.Posts) != 1 {
		t.Errorf("federated SkipTotal page: %+v, %v", fed, err)
	}

	// A malformed skip_total is rejected at the API edge.
	resp, err := srv.Client().Get(srv.URL + "/v2/search?skip_total=maybe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("skip_total=maybe → status %d, want 400", resp.StatusCode)
	}
}

// TestIDRegistryStriping hammers the striped duplicate detection:
// concurrent Adds of the same ID admit exactly one post, and distinct
// IDs across stripes all land. Run with -race.
func TestIDRegistryStriping(t *testing.T) {
	s := NewStoreShards(4)
	const contenders, uniques = 16, 200
	var wg sync.WaitGroup
	var dupErrs, wins sync.Map
	for c := 0; c < contenders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := &Post{
				ID: "contested", Author: fmt.Sprintf("c%d", c), Text: "#dpfdelete race",
				CreatedAt: ts(2022, 4, 1), Metrics: Metrics{Views: c},
			}
			if err := s.Add(p); err != nil {
				dupErrs.Store(c, err)
			} else {
				wins.Store(c, true)
			}
			for i := 0; i < uniques/contenders; i++ {
				u := &Post{
					ID: fmt.Sprintf("u-%d-%d", c, i), Author: "u", Text: "#dpfdelete unique",
					CreatedAt: ts(2022, 1+i%12, 1+c), Metrics: Metrics{Views: 1},
				}
				if err := s.Add(u); err != nil {
					t.Error(err)
				}
			}
		}(c)
	}
	wg.Wait()
	winners := 0
	wins.Range(func(_, _ any) bool { winners++; return true })
	if winners != 1 {
		t.Errorf("%d Adds of the contested ID succeeded, want exactly 1", winners)
	}
	if got, want := s.Len(), 1+(uniques/contenders)*contenders; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}
	if s.Post("contested") == nil {
		t.Error("contested post missing from registry")
	}
	// The winner is searchable exactly once.
	page, err := s.Search(context.Background(), Query{MustTerms: []string{"race"}})
	if err != nil || page.TotalMatches != 1 {
		t.Errorf("contested post searchable %d times: %v", page.TotalMatches, err)
	}
}

// TestWriteStoreSnapshot round-trips a store through the lock-free
// JSON Lines dump while a writer keeps committing.
func TestWriteStoreSnapshot(t *testing.T) {
	s := NewStoreShards(4)
	for i := 0; i < 40; i++ {
		if err := s.Add(dayPost(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := dayPost(100 + i%50)
			p.ID = fmt.Sprintf("live-%04d", i)
			if err := s.Add(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var buf bytes.Buffer
	if err := WriteStore(&buf, s); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	back, err := LoadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() < 40 {
		t.Errorf("round-tripped store has %d posts, want ≥ 40", back.Len())
	}
	for i := 0; i < 40; i++ {
		if back.Post(fmt.Sprintf("day-%03d", i)) == nil {
			t.Errorf("day-%03d lost in snapshot round trip", i)
		}
	}
}
