package social

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Cursor is a keyset pagination position: a listing resumes strictly
// after the (CreatedAt, ID) key it names. Unlike the retired offset
// tokens, a cursor stays anchored to a post key while the store grows,
// so pages drained concurrently with ingest neither skip nor duplicate
// the posts that were present when the drain started.
type Cursor struct {
	// CreatedAt is the timestamp component of the key.
	CreatedAt time.Time
	// ID is the tie-breaking post ID; it may be empty, in which case the
	// cursor sorts before every post carrying the same timestamp (post
	// IDs are never empty).
	ID string
}

// CursorOf returns the cursor that resumes a listing immediately after
// the post.
func CursorOf(p *Post) Cursor {
	return Cursor{CreatedAt: p.CreatedAt, ID: p.ID}
}

// Before reports whether the post sorts strictly after the cursor in
// (CreatedAt, ID) order — i.e. whether a listing resumed at the cursor
// still delivers the post.
func (c Cursor) Before(p *Post) bool {
	if !p.CreatedAt.Equal(c.CreatedAt) {
		return p.CreatedAt.After(c.CreatedAt)
	}
	return p.ID > c.ID
}

// cursorPrefix marks keyset continuation tokens.
const cursorPrefix = "k"

// EncodeCursor renders a cursor as an opaque continuation token:
// "k<unix-nanoseconds>.<base64url(post ID)>". Timestamps are compared at
// nanosecond resolution, matching the store's key order.
func EncodeCursor(c Cursor) string {
	return cursorPrefix + strconv.FormatInt(c.CreatedAt.UnixNano(), 10) +
		"." + base64.RawURLEncoding.EncodeToString([]byte(c.ID))
}

// ParseCursor parses a keyset continuation token. Parsing is strict:
// malformed tokens are rejected rather than silently truncated, and the
// retired "o<offset>" tokens of earlier releases are reported as
// deprecated.
func ParseCursor(token string) (Cursor, error) {
	rest, ok := strings.CutPrefix(token, cursorPrefix)
	if !ok {
		if strings.HasPrefix(token, "o") {
			return Cursor{}, fmt.Errorf("social: offset page token %q is no longer supported; restart the listing to obtain keyset tokens", token)
		}
		return Cursor{}, fmt.Errorf("social: invalid page token %q", token)
	}
	nanos, id, ok := strings.Cut(rest, ".")
	if !ok || nanos == "" {
		return Cursor{}, fmt.Errorf("social: invalid page token %q", token)
	}
	n, err := strconv.ParseInt(nanos, 10, 64)
	if err != nil {
		return Cursor{}, fmt.Errorf("social: invalid page token %q", token)
	}
	raw, err := base64.RawURLEncoding.DecodeString(id)
	if err != nil {
		return Cursor{}, fmt.Errorf("social: invalid page token %q", token)
	}
	return Cursor{CreatedAt: time.Unix(0, n).UTC(), ID: string(raw)}, nil
}

// resolvePageSize applies the shared page-size default and ceiling.
func resolvePageSize(maxResults int) int {
	size := maxResults
	if size <= 0 {
		size = DefaultPageSize
	}
	if size > MaxPageSize {
		size = MaxPageSize
	}
	return size
}

// PagePosts cuts one page out of a full (CreatedAt, ID)-ordered match
// list, applying the shared page-size defaults and keyset-token
// continuation. It is the paging primitive behind Store, Multi and the
// workflow result cache, so every Searcher in the package pages — and
// tokenizes — identically.
func PagePosts(matches []*Post, maxResults int, pageToken string) (*Page, error) {
	start := 0
	if pageToken != "" {
		c, err := ParseCursor(pageToken)
		if err != nil {
			return nil, err
		}
		start = sort.Search(len(matches), func(i int) bool { return c.Before(matches[i]) })
	}
	size := resolvePageSize(maxResults)
	page := &Page{TotalMatches: len(matches)}
	if start >= len(matches) {
		return page, nil
	}
	end := start + size
	if end > len(matches) {
		end = len(matches)
	}
	page.Posts = append(page.Posts, matches[start:end]...)
	if end < len(matches) {
		page.NextToken = EncodeCursor(CursorOf(matches[end-1]))
	}
	return page, nil
}
