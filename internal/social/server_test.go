package social

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T, limiter *RateLimiter) (*httptest.Server, *Store) {
	t.Helper()
	store := NewStore()
	if err := store.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, limiter).Handler())
	t.Cleanup(srv.Close)
	return srv, store
}

func TestClientSearchRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := NewClient(srv.URL, srv.Client())
	page, err := c.Search(context.Background(), Query{
		AnyTags:   []string{"dpfdelete"},
		MustTerms: []string{"excavator"},
		Region:    RegionEurope,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 2 {
		t.Fatalf("remote search = %v (total %d), want 2 posts", ids(page.Posts), page.TotalMatches)
	}
	// Field fidelity across the wire.
	p := page.Posts[0]
	if p.ID != "p1" || p.Region != RegionEurope || p.Metrics.Views != 1000 {
		t.Errorf("post lost fields across the wire: %+v", p)
	}
	if !p.CreatedAt.Equal(ts(2021, 3, 1)) {
		t.Errorf("timestamp skewed: %s", p.CreatedAt)
	}
}

func TestClientPaginationViaSearchAll(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := NewClient(srv.URL, srv.Client())
	posts, err := SearchAll(context.Background(), c, Query{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 4 {
		t.Fatalf("SearchAll over HTTP returned %d posts, want 4", len(posts))
	}
}

func TestClientTimeWindowOverWire(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := NewClient(srv.URL, srv.Client())
	page, err := c.Search(context.Background(), Query{
		Since: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Until: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 {
		t.Fatalf("windowed remote search = %v, want 2 posts", ids(page.Posts))
	}
}

func TestClientRateLimitRetry(t *testing.T) {
	// Bucket with a single token and fast refill: the first call eats
	// the token, the second must back off once and then succeed.
	clock := time.Now
	limiter := NewRateLimiter(1, 100, clock)
	srv, _ := newTestServer(t, limiter)
	c := NewClient(srv.URL, srv.Client())
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		time.Sleep(15 * time.Millisecond) // real refill at 100 tok/s
		return nil
	}
	if _, err := c.Search(context.Background(), Query{}); err != nil {
		t.Fatalf("first search: %v", err)
	}
	if _, err := c.Search(context.Background(), Query{}); err != nil {
		t.Fatalf("second search should retry and succeed: %v", err)
	}
	if len(slept) == 0 {
		t.Error("client never backed off despite 429")
	}
}

func TestClientRateLimitExhaustsRetries(t *testing.T) {
	limiter := NewRateLimiter(1, 0, nil) // never refills
	srv, _ := newTestServer(t, limiter)
	c := NewClient(srv.URL, srv.Client())
	c.MaxRetries = 1
	c.sleep = func(context.Context, time.Duration) error { return nil }
	if _, err := c.Search(context.Background(), Query{}); err != nil {
		t.Fatalf("first search: %v", err)
	}
	if _, err := c.Search(context.Background(), Query{}); err == nil {
		t.Error("exhausted retries should fail")
	}
}

func TestServerRejectsBadInputs(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	for _, path := range []string{
		"/v2/search?since=not-a-time",
		"/v2/search?until=also-bad",
		"/v2/search?max_results=-3",
		"/v2/search?max_results=abc",
		"/v2/search?next_token=bogus",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s → status %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v2/search", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST → status %d, want 405", resp.StatusCode)
	}
}

func TestServerHealth(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := NewClient(srv.URL, srv.Client())
	if err := c.Health(context.Background()); err != nil {
		t.Errorf("Health(): %v", err)
	}
}

func TestClientErrorStatusSurfaced(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	if _, err := c.Search(context.Background(), Query{}); err == nil {
		t.Error("500 response should surface as error")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	rl := NewRateLimiter(2, 1, clock)
	for i := 0; i < 2; i++ {
		if ok, _ := rl.Allow(); !ok {
			t.Fatalf("token %d should be available", i)
		}
	}
	ok, retry := rl.Allow()
	if ok {
		t.Fatal("bucket should be empty")
	}
	if retry <= 0 || retry > 2*time.Second {
		t.Errorf("retry hint = %s", retry)
	}
	now = now.Add(1500 * time.Millisecond)
	if ok, _ := rl.Allow(); !ok {
		t.Error("refilled token not granted")
	}
}
