package social

import (
	"context"
	"fmt"
	"sync"
)

// PlatformSource is one named platform backend of a federated search —
// the paper's roadmap expands PSP "to other social media platforms like
// Instagram", and outsider analysis may later add deep-web sources.
type PlatformSource struct {
	// Name identifies the platform ("twitter", "instagram", ...).
	Name string
	// Searcher is the platform backend. It must honour the package's
	// keyset continuation tokens (Store, Client and nested Multi all
	// do), because federated pages resume every backend from a shared
	// (CreatedAt, ID) position.
	Searcher Searcher
}

// Multi federates several platforms behind the Searcher interface. Each
// page queries every backend concurrently for just one page of posts
// past the shared keyset cursor — the pre-cursor listing is never
// re-drained, so paging a federated listing costs one bounded request
// per backend per page instead of a full drain of every backend.
// Results merge into one (CreatedAt, ID)-ordered listing with post IDs
// namespaced by platform name ("twitter:p1") to avoid collisions, and
// pages carry the same keyset tokens the Store emits, so a listing
// stays stable under concurrent ingest on any backend. Callers wanting
// the whole listing must follow NextToken (or use SearchAll).
// Query.SkipTotal passes through to every backend, so a federated page
// that does not need the summed total skips the count on all of them.
type Multi struct {
	sources []PlatformSource
}

var _ Searcher = (*Multi)(nil)

// NewMulti builds a federated searcher; at least one source is required
// and names must be unique and non-empty.
func NewMulti(sources ...PlatformSource) (*Multi, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("social: federated search needs at least one source")
	}
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if s.Name == "" || s.Searcher == nil {
			return nil, fmt.Errorf("social: federated source with empty name or nil searcher")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("social: duplicate federated source %q", s.Name)
		}
		seen[s.Name] = true
	}
	return &Multi{sources: sources}, nil
}

// Search implements Searcher: every backend contributes one page of
// posts past the cursor, the heads merge, and the page carries the
// keyset cursor of its last post.
func (m *Multi) Search(ctx context.Context, q Query) (*Page, error) {
	var after *Cursor
	if q.PageToken != "" {
		c, err := ParseCursor(q.PageToken)
		if err != nil {
			return nil, err
		}
		after = &c
	}
	size := resolvePageSize(q.MaxResults)

	base := q
	base.MaxResults = size
	base.PageToken = ""

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]backendSlice, len(m.sources))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, src := range m.sources {
		wg.Add(1)
		go func(i int, src PlatformSource) {
			defer wg.Done()
			slice, err := fetchAfter(gctx, src, base, after, size)
			if err != nil {
				// First failure wins; sibling errors caused by the
				// cancellation below are not the root cause.
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("platform %s: %w", src.Name, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			results[i] = slice
		}(i, src)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var (
		merged []*Post
		total  int
		more   bool
	)
	for _, slice := range results {
		merged = mergeSorted(merged, slice.posts)
		total += slice.total
		more = more || slice.more
	}
	page := &Page{TotalMatches: total}
	if len(merged) == 0 {
		return page, nil
	}
	if len(merged) > size {
		merged, more = merged[:size], true
	}
	page.Posts = merged
	if more {
		page.NextToken = EncodeCursor(CursorOf(merged[len(merged)-1]))
	}
	return page, nil
}

// backendSlice is one backend's contribution to a federated page: up to
// `size` namespaced posts past the shared cursor, in (CreatedAt, ID)
// order.
type backendSlice struct {
	posts []*Post
	total int  // backend's total query matches, cursor-independent
	more  bool // backend has matches beyond posts
}

// fetchAfter collects up to need posts from one backend whose namespaced
// keys sort strictly after the federated cursor. The backend resumes at
// the cursor timestamp (an empty-ID keyset token admits ties), so only
// same-instant ties are refetched and dropped — never the pre-cursor
// listing.
func fetchAfter(ctx context.Context, src PlatformSource, base Query, after *Cursor, need int) (backendSlice, error) {
	bq := base
	if after != nil {
		bq.PageToken = EncodeCursor(Cursor{CreatedAt: after.CreatedAt})
	}
	var out backendSlice
	for pages := 0; ; pages++ {
		if pages >= maxSearchPages {
			return out, fmt.Errorf("social: pagination exceeded %d pages", maxSearchPages)
		}
		page, err := src.Searcher.Search(ctx, bq)
		if err != nil {
			return out, err
		}
		out.total = page.TotalMatches
		for _, p := range page.Posts {
			cp := *p
			cp.ID = src.Name + ":" + p.ID
			if after != nil && !after.Before(&cp) {
				continue
			}
			out.posts = append(out.posts, &cp)
		}
		if len(out.posts) >= need {
			out.more = len(out.posts) > need || page.NextToken != ""
			out.posts = out.posts[:need]
			return out, nil
		}
		if page.NextToken == "" {
			return out, nil
		}
		bq.PageToken = page.NextToken
	}
}
