package social

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

// PlatformSource is one named platform backend of a federated search —
// the paper's roadmap expands PSP "to other social media platforms like
// Instagram", and outsider analysis may later add deep-web sources.
type PlatformSource struct {
	// Name identifies the platform ("twitter", "instagram", ...).
	Name string
	// Searcher is the platform backend. It must honour the package's
	// keyset continuation tokens (Store, Client and nested Multi all
	// do), because federated pages resume every backend from a shared
	// (CreatedAt, ID) position.
	Searcher Searcher
}

// ErrBackendSkipped marks a backend that was not queried because its
// circuit breaker is open (fail-fast). It appears wrapped in strict-mode
// errors and in BackendStatus.Err.
var ErrBackendSkipped = errors.New("social: backend skipped (circuit open)")

// MultiOptions tunes a federated searcher's resilience seams. The zero
// value reproduces the bare all-or-nothing federation: no timeouts, no
// breaker, one failing backend fails the page.
type MultiOptions struct {
	// BackendTimeout bounds each backend's share of a federated page
	// (the whole fetchAfter drain, not one HTTP call). 0 means no
	// per-backend bound beyond the caller's context.
	BackendTimeout time.Duration
	// Partial opts into partial-results mode: a page failing on some
	// backends still returns the healthy backends' posts, annotated
	// with Degraded and per-backend health (Page.Backends — populated
	// only on degraded pages), instead of failing outright. Only when
	// every backend fails does Search return an error. TotalMatches
	// then sums healthy backends only, a degraded page with posts
	// always carries a NextToken (so a recovered backend can rejoin
	// the listing), and the rejoin happens from the current cursor on
	// — posts the backend would have contributed to earlier pages are
	// not replayed (keyset cursors never go backwards).
	Partial bool
	// BreakerThreshold, when > 0, arms a per-backend circuit breaker:
	// after this many consecutive failures the backend is skipped
	// (fail-fast) until BreakerCooldown elapses, then a single half-open
	// probe decides between re-closing and re-opening.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay (default 30s).
	BreakerCooldown time.Duration
	// Metrics, when set, records federated pages, degraded pages, and
	// per-backend failures/skips/breaker state (psp_multi_*).
	Metrics *MultiMetrics
	// Tracer, when set, opens one "multi.search" span per federated
	// page with a "multi.backend" child span per backend (latency,
	// posts contributed, breaker state), recording breaker skips,
	// retries and the degraded verdict as span events. Degraded pages
	// are force-sampled so partial failures stay diagnosable at any
	// sampling rate.
	Tracer *obs.Tracer

	// now is the breaker clock, injectable for deterministic tests.
	now func() time.Time
}

// MultiMetrics is the federated searcher's recording surface
// (psp_multi_*). Per-backend series are registered at construction.
type MultiMetrics struct {
	// Pages counts federated Search calls that returned a page.
	Pages *obs.Counter
	// DegradedPages counts pages served degraded (partial mode, at
	// least one backend failed or was skipped).
	DegradedPages *obs.Counter

	reg *obs.Registry
}

// NewMultiMetrics registers the psp_multi_* families in reg. A nil
// registry yields an all-no-op surface.
func NewMultiMetrics(reg *obs.Registry) *MultiMetrics {
	return &MultiMetrics{
		Pages: reg.Counter("psp_multi_pages_total", "Federated search pages served."),
		DegradedPages: reg.Counter("psp_multi_degraded_pages_total",
			"Federated pages served degraded (some backends failed or were skipped)."),
		reg: reg,
	}
}

// BackendStatus is one backend's health on a federated page.
type BackendStatus struct {
	// Name is the platform name.
	Name string `json:"name"`
	// Healthy reports whether the backend contributed to the page.
	Healthy bool `json:"healthy"`
	// Err is the failure (or skip) reason when unhealthy.
	Err string `json:"error,omitempty"`
	// Breaker is the backend's breaker state after the page ("closed",
	// "open", "half-open"); empty when no breaker is armed.
	Breaker string `json:"breaker,omitempty"`
}

// multiBackend is one federated backend plus its resilience state.
type multiBackend struct {
	src PlatformSource
	brk *breaker // nil when no breaker is armed

	// failures/skips are per-backend psp_multi_* counters (nil-safe).
	failures *obs.Counter
	skips    *obs.Counter
}

// Multi federates several platforms behind the Searcher interface. Each
// page queries every backend concurrently for just one page of posts
// past the shared keyset cursor — the pre-cursor listing is never
// re-drained, so paging a federated listing costs one bounded request
// per backend per page instead of a full drain of every backend.
// Results merge into one (CreatedAt, ID)-ordered listing with post IDs
// namespaced by platform name ("twitter:p1") to avoid collisions, and
// pages carry the same keyset tokens the Store emits, so a listing
// stays stable under concurrent ingest on any backend. Callers wanting
// the whole listing must follow NextToken (or use SearchAll).
// Query.SkipTotal passes through to every backend, so a federated page
// that does not need the summed total skips the count on all of them.
//
// Failure policy is set by MultiOptions: by default a page is
// all-or-nothing (one failing backend fails it); with Partial set the
// page degrades gracefully instead, and with BreakerThreshold set a
// persistently failing backend is skipped outright until it recovers
// (see MultiOptions).
type Multi struct {
	backends []*multiBackend
	opts     MultiOptions
}

var _ Searcher = (*Multi)(nil)

// NewMulti builds a bare federated searcher (zero MultiOptions); at
// least one source is required and names must be unique and non-empty.
func NewMulti(sources ...PlatformSource) (*Multi, error) {
	return NewMultiOptions(MultiOptions{}, sources...)
}

// NewMultiOptions builds a federated searcher with resilience options.
func NewMultiOptions(opts MultiOptions, sources ...PlatformSource) (*Multi, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("social: federated search needs at least one source")
	}
	if opts.BreakerThreshold > 0 && opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	seen := make(map[string]bool, len(sources))
	m := &Multi{opts: opts, backends: make([]*multiBackend, 0, len(sources))}
	for _, s := range sources {
		if s.Name == "" || s.Searcher == nil {
			return nil, fmt.Errorf("social: federated source with empty name or nil searcher")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("social: duplicate federated source %q", s.Name)
		}
		seen[s.Name] = true
		b := &multiBackend{src: s}
		if met := opts.Metrics; met != nil && met.reg != nil {
			l := obs.Label{Key: "backend", Value: s.Name}
			b.failures = met.reg.Counter("psp_multi_backend_failures_total",
				"Backend failures on federated pages.", l)
			b.skips = met.reg.Counter("psp_multi_backend_skips_total",
				"Backends skipped fail-fast by an open circuit breaker.", l)
		}
		if opts.BreakerThreshold > 0 {
			var gauge *obs.Gauge
			if met := opts.Metrics; met != nil && met.reg != nil {
				gauge = met.reg.Gauge("psp_multi_backend_state",
					"Backend circuit-breaker state: 0 closed, 1 open, 2 half-open.",
					obs.Label{Key: "backend", Value: s.Name})
			}
			b.brk = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.now, gauge)
		}
		m.backends = append(m.backends, b)
	}
	return m, nil
}

// BackendState returns a backend's breaker state by platform name
// (BreakerClosed when the backend is unknown or no breaker is armed).
func (m *Multi) BackendState(name string) BreakerState {
	for _, b := range m.backends {
		if b.src.Name == name && b.brk != nil {
			return b.brk.State()
		}
	}
	return BreakerClosed
}

// backendOutcome is one backend's result on a federated page.
type backendOutcome struct {
	slice   backendSlice
	err     error // nil on success; ErrBackendSkipped when the breaker said no
	skipped bool
}

// Search implements Searcher: every backend contributes one page of
// posts past the cursor, the heads merge, and the page carries the
// keyset cursor of its last post. The failure policy is set by the
// Multi's options (see MultiOptions).
func (m *Multi) Search(ctx context.Context, q Query) (*Page, error) {
	ctx, span := m.opts.Tracer.Start(ctx, "multi.search")
	span.SetInt("backends", int64(len(m.backends)))
	page, err := m.search(ctx, q, span)
	if err != nil {
		span.Fail(err)
	} else {
		span.SetInt("posts", int64(len(page.Posts)))
	}
	span.End()
	return page, err
}

func (m *Multi) search(ctx context.Context, q Query, span *obs.Span) (*Page, error) {
	var after *Cursor
	if q.PageToken != "" {
		c, err := ParseCursor(q.PageToken)
		if err != nil {
			return nil, err
		}
		after = &c
	}
	size := resolvePageSize(q.MaxResults)

	base := q
	base.MaxResults = size
	base.PageToken = ""

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One deadline serves every backend: the fetches start together, so
	// a page-level timer bounds each backend's share exactly like a
	// per-backend one would — without paying one runtime timer per
	// backend per page.
	bctx := gctx
	if m.opts.BackendTimeout > 0 {
		var bcancel context.CancelFunc
		bctx, bcancel = context.WithTimeout(gctx, m.opts.BackendTimeout)
		defer bcancel()
	}
	outcomes := make([]backendOutcome, len(m.backends))
	var wg sync.WaitGroup
	for i, b := range m.backends {
		wg.Add(1)
		go func(i int, b *multiBackend) {
			defer wg.Done()
			outcomes[i] = m.fetchBackend(bctx, cancel, b, base, after, size)
		}(i, b)
	}
	wg.Wait()

	if m.opts.Partial {
		return m.assemblePartial(outcomes, size, span)
	}
	// All-or-nothing: any failure fails the page. Prefer a root-cause
	// error over the context.Canceled noise of siblings the group
	// cancellation interrupted.
	var firstErr error
	for _, out := range outcomes {
		if out.err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = out.err
		}
		if !errors.Is(out.err, context.Canceled) {
			firstErr = out.err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	page := mergeOutcomes(outcomes, size)
	if met := m.opts.Metrics; met != nil {
		met.Pages.Inc()
	}
	return page, nil
}

// fetchBackend runs one backend's share of a federated page: breaker
// admission, the deadline-bounded fetch, and breaker/metrics
// bookkeeping. In all-or-nothing mode a failure cancels the group
// (strict semantics: the page fails anyway, stop the siblings).
func (m *Multi) fetchBackend(bctx context.Context, cancel context.CancelFunc, b *multiBackend, base Query, after *Cursor, size int) backendOutcome {
	bctx, bspan := m.opts.Tracer.Start(bctx, "multi.backend")
	bspan.SetAttr("backend", b.src.Name)
	defer bspan.End()
	if b.brk != nil && !b.brk.Allow() {
		b.skips.Inc()
		if !m.opts.Partial {
			cancel()
		}
		err := fmt.Errorf("platform %s: %w", b.src.Name, ErrBackendSkipped)
		bspan.Event("breaker_skip", obs.SpanAttr{Key: "state", Value: b.brk.State().String()})
		bspan.Fail(err)
		return backendOutcome{err: err, skipped: true}
	}
	slice, err := fetchAfter(bctx, b.src, base, after, size)
	if err == nil {
		if b.brk != nil {
			b.brk.Success()
			bspan.SetAttr("breaker", b.brk.State().String())
		}
		bspan.SetInt("posts", int64(len(slice.posts)))
		bspan.SetInt("total", int64(slice.total))
		return backendOutcome{slice: slice}
	}
	// A context.Canceled failure is someone else's doing — the caller
	// gave up or (all-or-nothing mode) a sibling failed first and
	// cancelled the group. Neither says anything about this backend's
	// health, so neither the breaker nor the failure counter records
	// it. A per-backend timeout surfaces as DeadlineExceeded and does
	// count.
	if !errors.Is(err, context.Canceled) {
		if b.brk != nil {
			b.brk.Failure()
		}
		b.failures.Inc()
		event := "backend_failure"
		if errors.Is(err, context.DeadlineExceeded) {
			event = "backend_timeout"
		}
		if b.brk != nil {
			bspan.Event(event, obs.SpanAttr{Key: "breaker", Value: b.brk.State().String()})
		} else {
			bspan.Event(event)
		}
	}
	if !m.opts.Partial {
		cancel()
	}
	wrapped := fmt.Errorf("platform %s: %w", b.src.Name, err)
	bspan.Fail(wrapped)
	return backendOutcome{err: wrapped}
}

// assemblePartial builds a partial-mode page: healthy backends merge,
// failures become annotations. Only a page with zero healthy backends
// fails.
func (m *Multi) assemblePartial(outcomes []backendOutcome, size int, span *obs.Span) (*Page, error) {
	healthy := 0
	for _, out := range outcomes {
		if out.err == nil {
			healthy++
		}
	}
	if healthy == len(outcomes) {
		// Fully healthy: no annotations to build — the hot path pays
		// nothing for the degradation machinery it did not use.
		page := mergeOutcomes(outcomes, size)
		if met := m.opts.Metrics; met != nil {
			met.Pages.Inc()
		}
		return page, nil
	}
	if healthy == 0 {
		for _, out := range outcomes {
			if out.err != nil && !out.skipped {
				return nil, fmt.Errorf("social: all federated backends failed: %w", out.err)
			}
		}
		return nil, fmt.Errorf("social: all federated backends failed: %w", outcomes[0].err)
	}
	statuses := make([]BackendStatus, len(outcomes))
	for i, out := range outcomes {
		st := BackendStatus{Name: m.backends[i].src.Name, Healthy: out.err == nil}
		if out.err != nil {
			st.Err = out.err.Error()
		}
		if brk := m.backends[i].brk; brk != nil {
			st.Breaker = brk.State().String()
		}
		statuses[i] = st
	}
	page := mergeOutcomes(outcomes, size)
	page.Degraded = true
	page.Backends = statuses
	// A degraded page is exactly what traces exist to explain: record
	// it whatever the sampling coin said, and note the verdict.
	span.ForceSample()
	span.SetBool("degraded", true)
	span.Event("degraded_page",
		obs.SpanAttr{Key: "healthy", Value: strconv.Itoa(healthy)},
		obs.SpanAttr{Key: "backends", Value: strconv.Itoa(len(outcomes))})
	if len(page.Posts) > 0 && page.NextToken == "" {
		// A failed backend may hold posts past this page even when the
		// healthy ones are drained. Keep the listing alive — the cursor
		// anchors at the last served post, so a recovered backend can
		// rejoin on the next page instead of the listing silently
		// terminating short. (A degraded page with zero posts has no
		// cursor to advance and must end the listing; it stays annotated
		// Degraded so callers know it may be incomplete.)
		page.NextToken = EncodeCursor(CursorOf(page.Posts[len(page.Posts)-1]))
	}
	if met := m.opts.Metrics; met != nil {
		met.Pages.Inc()
		if page.Degraded {
			met.DegradedPages.Inc()
		}
	}
	return page, nil
}

// mergeOutcomes merges the successful outcomes' slices into one page of
// up to size posts (failed outcomes carry empty slices).
func mergeOutcomes(outcomes []backendOutcome, size int) *Page {
	var (
		merged []*Post
		total  int
		more   bool
	)
	for _, out := range outcomes {
		if out.err != nil {
			continue
		}
		merged = mergeSorted(merged, out.slice.posts)
		total += out.slice.total
		more = more || out.slice.more
	}
	page := &Page{TotalMatches: total}
	if len(merged) == 0 {
		return page
	}
	if len(merged) > size {
		merged, more = merged[:size], true
	}
	page.Posts = merged
	if more {
		page.NextToken = EncodeCursor(CursorOf(merged[len(merged)-1]))
	}
	return page
}

// backendSlice is one backend's contribution to a federated page: up to
// `size` namespaced posts past the shared cursor, in (CreatedAt, ID)
// order.
type backendSlice struct {
	posts []*Post
	total int  // backend's total query matches, cursor-independent
	more  bool // backend has matches beyond posts
}

// fetchAfter collects up to need posts from one backend whose namespaced
// keys sort strictly after the federated cursor. The backend resumes at
// the cursor timestamp (an empty-ID keyset token admits ties), so only
// same-instant ties are refetched and dropped — never the pre-cursor
// listing.
func fetchAfter(ctx context.Context, src PlatformSource, base Query, after *Cursor, need int) (backendSlice, error) {
	bq := base
	if after != nil {
		bq.PageToken = EncodeCursor(Cursor{CreatedAt: after.CreatedAt})
	}
	var out backendSlice
	for pages := 0; ; pages++ {
		if pages >= maxSearchPages {
			return out, fmt.Errorf("social: pagination exceeded %d pages", maxSearchPages)
		}
		page, err := src.Searcher.Search(ctx, bq)
		if err != nil {
			return out, err
		}
		out.total = page.TotalMatches
		for _, p := range page.Posts {
			cp := *p
			cp.ID = src.Name + ":" + p.ID
			if after != nil && !after.Before(&cp) {
				continue
			}
			out.posts = append(out.posts, &cp)
		}
		if len(out.posts) >= need {
			out.more = len(out.posts) > need || page.NextToken != ""
			out.posts = out.posts[:need]
			return out, nil
		}
		if page.NextToken == "" {
			return out, nil
		}
		bq.PageToken = page.NextToken
	}
}
