package social

import (
	"context"
	"fmt"
	"sync"
)

// PlatformSource is one named platform backend of a federated search —
// the paper's roadmap expands PSP "to other social media platforms like
// Instagram", and outsider analysis may later add deep-web sources.
type PlatformSource struct {
	// Name identifies the platform ("twitter", "instagram", ...).
	Name string
	// Searcher is the platform backend.
	Searcher Searcher
}

// Multi federates several platforms behind the Searcher interface. Each
// Search drains every backend concurrently, merges the results into one
// (CreatedAt, ID)-ordered listing, and pages it exactly like the Store:
// one page per call (MaxResults posts, default 100, ceiling 500) with
// the same "o<offset>" continuation tokens — so SearchAll over a Multi
// with a capped MaxResults sees every result instead of one silently
// truncated page. Callers wanting the whole listing in one call must
// follow NextToken (or use SearchAll); a single Search no longer
// returns an unbounded merged page. Cross-platform cursors are not
// comparable, so the token addresses the merged listing; it stays valid
// while the backends are unchanged. Post IDs are namespaced with the
// platform name to avoid collisions.
type Multi struct {
	sources []PlatformSource
}

var _ Searcher = (*Multi)(nil)

// NewMulti builds a federated searcher; at least one source is required
// and names must be unique and non-empty.
func NewMulti(sources ...PlatformSource) (*Multi, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("social: federated search needs at least one source")
	}
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if s.Name == "" || s.Searcher == nil {
			return nil, fmt.Errorf("social: federated source with empty name or nil searcher")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("social: duplicate federated source %q", s.Name)
		}
		seen[s.Name] = true
	}
	return &Multi{sources: sources}, nil
}

// Search implements Searcher by draining all backends concurrently and
// paging the merged listing.
func (m *Multi) Search(ctx context.Context, q Query) (*Page, error) {
	drainQuery := q
	drainQuery.MaxResults = 0
	drainQuery.PageToken = ""

	// Fail fast on a malformed token before any backend work.
	if q.PageToken != "" {
		if _, err := parsePageToken(q.PageToken); err != nil {
			return nil, err
		}
	}

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([][]*Post, len(m.sources))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, src := range m.sources {
		wg.Add(1)
		go func(i int, src PlatformSource) {
			defer wg.Done()
			posts, err := SearchAll(gctx, src.Searcher, drainQuery)
			if err != nil {
				// First failure wins; sibling errors caused by the
				// cancellation below are not the root cause.
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("platform %s: %w", src.Name, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			namespaced := make([]*Post, len(posts))
			for j, p := range posts {
				cp := *p
				cp.ID = src.Name + ":" + p.ID
				namespaced[j] = &cp
			}
			results[i] = namespaced
		}(i, src)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var merged []*Post
	for _, posts := range results {
		merged = mergeSorted(merged, posts)
	}
	return pageOf(merged, q.MaxResults, q.PageToken)
}
