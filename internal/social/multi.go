package social

import (
	"context"
	"fmt"
	"sort"
)

// PlatformSource is one named platform backend of a federated search —
// the paper's roadmap expands PSP "to other social media platforms like
// Instagram", and outsider analysis may later add deep-web sources.
type PlatformSource struct {
	// Name identifies the platform ("twitter", "instagram", ...).
	Name string
	// Searcher is the platform backend.
	Searcher Searcher
}

// Multi federates several platforms behind the Searcher interface. Each
// Search drains every backend fully and returns one merged page: the
// result has no continuation token, because cross-platform cursors are
// not comparable. Post IDs are namespaced with the platform name to
// avoid collisions.
type Multi struct {
	sources []PlatformSource
}

var _ Searcher = (*Multi)(nil)

// NewMulti builds a federated searcher; at least one source is required
// and names must be unique and non-empty.
func NewMulti(sources ...PlatformSource) (*Multi, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("social: federated search needs at least one source")
	}
	seen := make(map[string]bool, len(sources))
	for _, s := range sources {
		if s.Name == "" || s.Searcher == nil {
			return nil, fmt.Errorf("social: federated source with empty name or nil searcher")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("social: duplicate federated source %q", s.Name)
		}
		seen[s.Name] = true
	}
	return &Multi{sources: sources}, nil
}

// Search implements Searcher by draining all backends and merging.
func (m *Multi) Search(ctx context.Context, q Query) (*Page, error) {
	if q.PageToken != "" {
		return nil, fmt.Errorf("social: federated search does not support page tokens")
	}
	drainQuery := q
	drainQuery.MaxResults = 0
	var merged []*Post
	for _, src := range m.sources {
		posts, err := SearchAll(ctx, src.Searcher, drainQuery)
		if err != nil {
			return nil, fmt.Errorf("platform %s: %w", src.Name, err)
		}
		for _, p := range posts {
			cp := *p
			cp.ID = src.Name + ":" + p.ID
			merged = append(merged, &cp)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].CreatedAt.Equal(merged[j].CreatedAt) {
			return merged[i].CreatedAt.Before(merged[j].CreatedAt)
		}
		return merged[i].ID < merged[j].ID
	})
	page := &Page{Posts: merged, TotalMatches: len(merged)}
	if q.MaxResults > 0 && len(merged) > q.MaxResults {
		// Honour the page-size hint but stay token-free: federated
		// callers use SearchAll semantics anyway.
		page.Posts = merged[:q.MaxResults]
	}
	return page, nil
}
