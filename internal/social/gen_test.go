package social

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultCorpusSpec(42)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Text != b[i].Text ||
			!a[i].CreatedAt.Equal(b[i].CreatedAt) || a[i].Metrics != b[i].Metrics {
			t.Fatalf("post %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// A different seed must change the corpus.
	c, err := Generate(DefaultCorpusSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if i < len(c) && a[i].Text != c[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateVolumeAndValidity(t *testing.T) {
	spec := DefaultCorpusSpec(1)
	posts, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	for _, topic := range spec.Topics {
		for _, n := range topic.YearlyVolume {
			wantTotal += n
		}
	}
	if len(posts) != wantTotal {
		t.Errorf("corpus size = %d, want %d", len(posts), wantTotal)
	}
	seen := map[string]bool{}
	for _, p := range posts {
		if err := p.Validate(); err != nil {
			t.Fatalf("generated invalid post: %v", err)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate generated ID %s", p.ID)
		}
		seen[p.ID] = true
		if y := p.CreatedAt.Year(); y < spec.FirstYear || y > spec.LastYear {
			t.Fatalf("post %s outside year range: %s", p.ID, p.CreatedAt)
		}
		if p.CreatedAt.Year() == spec.LastYear && spec.FinalYearMonths > 0 {
			if int(p.CreatedAt.Month()) > spec.FinalYearMonths {
				t.Fatalf("post %s beyond final-year month cap: %s", p.ID, p.CreatedAt)
			}
		}
	}
}

func TestGenerateTrendInversion(t *testing.T) {
	// The corpus must encode the paper's ECM-reprogramming trend: the
	// share of physical-method posts drops after the 2022 switch, the
	// local share rises.
	store, err := DefaultStore(7)
	if err != nil {
		t.Fatal(err)
	}
	count := func(since, until time.Time, marker string) (n, total int) {
		posts, err := SearchAll(context.Background(), store, Query{
			AnyTags: []string{"chiptuning", "ecutune", "remap", "stage1"},
			Since:   since, Until: until,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			total++
			if strings.Contains(p.Text, marker) {
				n++
			}
		}
		return n, total
	}
	cut := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	benchBefore, totalBefore := count(time.Time{}, cut, "bench")
	benchAfter, totalAfter := count(cut, time.Time{}, "bench")
	obdBefore, _ := count(time.Time{}, cut, "obd")
	obdAfter, _ := count(cut, time.Time{}, "obd")
	if totalBefore == 0 || totalAfter == 0 {
		t.Fatal("corpus missing ECM posts in one of the windows")
	}
	shareBefore := float64(benchBefore) / float64(totalBefore)
	shareAfter := float64(benchAfter) / float64(totalAfter)
	if shareAfter >= shareBefore {
		t.Errorf("bench-method share did not drop: before %.3f, after %.3f", shareBefore, shareAfter)
	}
	obdShareBefore := float64(obdBefore) / float64(totalBefore)
	obdShareAfter := float64(obdAfter) / float64(totalAfter)
	if obdShareAfter <= obdShareBefore {
		t.Errorf("obd-method share did not rise: before %.3f, after %.3f", obdShareBefore, obdShareAfter)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GeneratorSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := DefaultCorpusSpec(1)
	bad.Topics[0].VectorMix = map[string]float64{"teleport": 1}
	if _, err := Generate(bad); err == nil {
		t.Error("unknown vector key accepted")
	}
	bad2 := DefaultCorpusSpec(1)
	bad2.Topics[0].Tags = nil
	if _, err := Generate(bad2); err == nil {
		t.Error("topic without tags accepted")
	}
	bad3 := DefaultCorpusSpec(1)
	bad3.FirstYear, bad3.LastYear = 2023, 2019
	if _, err := Generate(bad3); err == nil {
		t.Error("inverted year range accepted")
	}
}

func TestSeedKeywordsMatchPaper(t *testing.T) {
	// The paper lists these seeds verbatim (Section III).
	want := map[string]bool{
		"dpfdelete": true, "egrremoval": true, "egrdelete": true,
		"egroff": true, "dieselpower": true, "chiptuning": true,
	}
	got := SeedKeywords()
	if len(got) != len(want) {
		t.Fatalf("SeedKeywords() = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("unexpected seed keyword %q", k)
		}
	}
}

func TestDefaultStoreSearchable(t *testing.T) {
	store, err := DefaultStore(11)
	if err != nil {
		t.Fatal(err)
	}
	// The excavator/Europe query of the paper's case study must match a
	// meaningful number of posts.
	posts, err := SearchAll(context.Background(), store, Query{
		AnyTags:   []string{"dpfdelete", "dpfoff", "dpfremoval"},
		MustTerms: []string{"excavator"},
		Region:    RegionEurope,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) < 100 {
		t.Errorf("excavator/EU DPF query matched only %d posts", len(posts))
	}
}
