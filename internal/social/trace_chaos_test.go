// Chaos tracing tests: a federated partial-failure page must record
// one coherent distributed trace — stable trace ID across the HTTP
// hop, correct parent links, breaker/retry decisions as span events —
// and a durable ingest must attribute its WAL cost inside the same
// trace. All deterministic and -race clean.
package social

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

func spanAttrs(s *obs.Span) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for _, a := range s.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

func spanEventNames(s *obs.Span) map[string]bool {
	m := make(map[string]bool, len(s.Events))
	for _, e := range s.Events {
		m[e.Name] = true
	}
	return m
}

func findSpan(t *testing.T, spans []*obs.Span, name string) *obs.Span {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no %q span in %d recorded spans", name, len(spans))
	return nil
}

// TestChaosFederatedTraceCoherence: a Multi page over one healthy and
// one dead HTTP backend must produce a single trace — the multi.search
// root force-sampled by the degraded verdict, per-backend child spans
// carrying cost attrs, the client's retry decisions as events on the
// failing child, and the healthy backend's server span continuing the
// same trace ID across the wire even though that backend's own tracer
// would never have sampled it.
func TestChaosFederatedTraceCoherence(t *testing.T) {
	front := obs.NewTracer(obs.TracerOptions{SampleRate: 1})

	// alpha: a real HTTP backend with its own tracer at rate 0 — only
	// the inbound traceparent sampled flag can make it record.
	alphaStore := NewStore()
	if err := alphaStore.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	alphaTracer := obs.NewTracer(obs.TracerOptions{SampleRate: 0})
	var mu sync.Mutex
	var gotRequestID, gotTraceparent string
	alphaMet := obs.NewHTTPMetrics(obs.NewRegistry(), nil).WithTracer(alphaTracer)
	alphaSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotRequestID = r.Header.Get(obs.RequestIDHeader)
		gotTraceparent = r.Header.Get(obs.TraceparentHeader)
		mu.Unlock()
		alphaMet.Instrument(
			func(r *http.Request) string { return r.URL.Path },
			NewServer(alphaStore, nil).Handler(),
		).ServeHTTP(w, r)
	}))
	defer alphaSrv.Close()

	// beta: a dead gateway — transient 503s that the client retries
	// before giving up.
	betaSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer betaSrv.Close()

	alphaClient := NewClient(alphaSrv.URL, alphaSrv.Client())
	betaClient := NewClient(betaSrv.URL, betaSrv.Client())
	betaClient.MaxRetries = 1
	betaClient.sleep = func(context.Context, time.Duration) error { return nil }

	m, err := NewMultiOptions(MultiOptions{
		Partial:          true,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Tracer:           front,
	},
		PlatformSource{Name: "alpha", Searcher: alphaClient},
		PlatformSource{Name: "beta", Searcher: betaClient},
	)
	if err != nil {
		t.Fatal(err)
	}

	ctx := obs.ContextWithRequestID(context.Background(), "req-chaos-1")
	page, err := m.Search(ctx, Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatalf("partial page: %v", err)
	}
	if !page.Degraded || len(page.Posts) == 0 {
		t.Fatalf("page degraded=%v posts=%d, want degraded with alpha's posts", page.Degraded, len(page.Posts))
	}

	spans := front.Spans(0)
	root := findSpan(t, spans, "multi.search")
	if !validTraceID(root.TraceID) {
		t.Fatalf("root trace ID %q not 32 hex", root.TraceID)
	}
	// Every frontend span of the page shares the root's trace ID.
	var backends []*obs.Span
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %s in trace %s, want %s", s.Name, s.TraceID, root.TraceID)
		}
		if s.Name == "multi.backend" {
			backends = append(backends, s)
		}
	}
	if len(backends) != 2 {
		t.Fatalf("recorded %d multi.backend spans, want 2", len(backends))
	}
	rootAttrs := spanAttrs(root)
	if rootAttrs["degraded"] != "true" || !spanEventNames(root)["degraded_page"] {
		t.Fatalf("degraded verdict missing from root: attrs=%v events=%v", rootAttrs, root.Events)
	}

	var alpha, beta *obs.Span
	for _, b := range backends {
		if b.ParentID != root.SpanID {
			t.Fatalf("backend span parent %s, want root %s", b.ParentID, root.SpanID)
		}
		switch spanAttrs(b)["backend"] {
		case "alpha":
			alpha = b
		case "beta":
			beta = b
		}
	}
	if alpha == nil || beta == nil {
		t.Fatalf("backend spans missing names: %+v", backends)
	}
	if a := spanAttrs(alpha); alpha.Err != "" || a["posts"] == "" || a["total"] == "" {
		t.Fatalf("alpha span: err=%q attrs=%v, want healthy with posts/total", alpha.Err, a)
	}
	if beta.Err == "" {
		t.Fatalf("beta span not failed: %+v", beta)
	}
	betaEvents := spanEventNames(beta)
	if !betaEvents["retry"] || !betaEvents["backend_failure"] {
		t.Fatalf("beta events = %v, want retry + backend_failure", beta.Events)
	}

	// The hop itself: alpha received the request ID and a traceparent
	// naming the alpha child span, and its server span — recorded only
	// because the inbound flag said sampled — continues the same trace.
	mu.Lock()
	reqID, tp := gotRequestID, gotTraceparent
	mu.Unlock()
	if reqID != "req-chaos-1" {
		t.Fatalf("alpha received request ID %q, want req-chaos-1", reqID)
	}
	traceID, parentID, sampled, ok := obs.ParseTraceparent(tp)
	if !ok || !sampled || traceID != root.TraceID || parentID != alpha.SpanID {
		t.Fatalf("alpha traceparent %q, want sampled (%s,%s)", tp, root.TraceID, alpha.SpanID)
	}
	serverSpans := alphaTracer.TraceSpans(root.TraceID)
	if len(serverSpans) == 0 {
		t.Fatal("alpha recorded no server span despite the sampled inbound flag")
	}
	srvSpan := serverSpans[0]
	if !strings.HasPrefix(srvSpan.Name, "http.server ") || srvSpan.ParentID != alpha.SpanID {
		t.Fatalf("alpha server span %q parent %s, want http.server child of %s", srvSpan.Name, srvSpan.ParentID, alpha.SpanID)
	}

	// Second page: beta's breaker (threshold 1) is now open — the skip
	// decision must appear as an event on a fresh trace.
	page2, err := m.Search(ctx, Query{MaxResults: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if !page2.Degraded {
		t.Fatal("second page not degraded under the open breaker")
	}
	root2 := findSpan(t, front.Spans(0), "multi.search")
	if root2.TraceID == root.TraceID {
		t.Fatal("second page reused the first page's trace ID")
	}
	var skipped *obs.Span
	for _, s := range front.TraceSpans(root2.TraceID) {
		if s.Name == "multi.backend" && spanAttrs(s)["backend"] == "beta" {
			skipped = s
		}
	}
	if skipped == nil || !spanEventNames(skipped)["breaker_skip"] {
		t.Fatalf("open-breaker skip not traced: %+v", skipped)
	}
}

func validTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// TestTraceDurableIngestAndSearchCost: a durable ingest under a traced
// context must record store.add and wal.append spans in the caller's
// trace with group-commit cost attrs, publish the ingest link for the
// monitor, and a traced search must attribute stripes visited and
// postings scanned.
func TestTraceDurableIngestAndSearchCost(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	s, err := OpenStoreDir(t.TempDir(), DurableOptions{Shards: 2, CompactEvery: -1, CompactRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetTracer(tr)

	ctx, root := tr.Start(context.Background(), "test.ingest")
	if _, err := s.AddCountContext(ctx, samplePosts()...); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.TraceSpans(root.TraceID)
	add := findSpan(t, spans, "store.add")
	if add.ParentID != root.SpanID {
		t.Fatalf("store.add parent %s, want %s", add.ParentID, root.SpanID)
	}
	addAttrs := spanAttrs(add)
	if addAttrs["posts"] == "" || addAttrs["inserted"] == "" {
		t.Fatalf("store.add attrs = %v, want posts/inserted", addAttrs)
	}
	wal := findSpan(t, spans, "wal.append")
	if wal.ParentID != add.SpanID {
		t.Fatalf("wal.append parent %s, want store.add %s", wal.ParentID, add.SpanID)
	}
	walAttrs := spanAttrs(wal)
	if walAttrs["stripes"] == "" || walAttrs["records"] == "" || walAttrs["group_max"] == "" {
		t.Fatalf("wal.append attrs = %v, want stripes/records/group_max", walAttrs)
	}

	// The sampled ingest published its link for the monitor's flush.
	traceID, spanID := s.LastIngestTrace()
	if traceID != root.TraceID || spanID != add.SpanID {
		t.Fatalf("ingest link = (%s,%s), want (%s,%s)", traceID, spanID, root.TraceID, add.SpanID)
	}

	// Search cost attribution.
	sctx, sroot := tr.Start(context.Background(), "test.search")
	if _, err := s.Search(sctx, Query{AnyTags: []string{"chiptuning"}, MaxResults: MaxPageSize}); err != nil {
		t.Fatal(err)
	}
	sroot.End()
	search := findSpan(t, tr.TraceSpans(sroot.TraceID), "store.search")
	got := spanAttrs(search)
	for _, key := range []string{"stripes", "delta_posts", "scanned", "posts", "total"} {
		if got[key] == "" {
			t.Fatalf("store.search attrs = %v, missing %q", got, key)
		}
	}
	if got["stripes"] != "2" {
		t.Fatalf("store.search visited %s stripes, want 2", got["stripes"])
	}
}
