package social

import (
	"time"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/obs"
)

// StoreMetrics is the store's recording surface: ingest, search,
// changefeed and durability telemetry. Every field is an obs recorder
// (atomic, nil-safe); the store holds the struct behind an atomic
// pointer, so an uninstrumented store pays one pointer load and a nil
// check per operation and nothing else.
type StoreMetrics struct {
	// Ingest: batches, posts, failures, and end-to-end Add latency
	// (validation through WAL fsync through index commit).
	Adds       *obs.Counter
	AddedPosts *obs.Counter
	AddErrors  *obs.Counter
	AddLatency *obs.Histogram
	// Search: calls, latency, and shard snapshots visited (the
	// window→stripe pruning fan-out; always counted when instrumented).
	Searches      *obs.Counter
	SearchLatency *obs.Histogram
	ShardVisits   *obs.Counter
	// Changefeed publication volume.
	FeedBatches *obs.Counter
	FeedPosts   *obs.Counter
	// Durability: snapshot compactions and recovery (set by OpenStoreDir).
	Compactions       *obs.Counter
	CompactionErrors  *obs.Counter
	CompactionLatency *obs.Histogram
	// CompactionBytes / CompactedStripes measure incremental compaction
	// volume: snapshot+sidecar bytes written and stripes rewritten. With
	// per-stripe dirty tracking they grow with the delta, not the corpus.
	CompactionBytes  *obs.Counter
	CompactedStripes *obs.Counter
	RecoverySeconds  *obs.Gauge
	RecoveredPosts   *obs.Gauge
	// Recovery phase breakdown: phase-labeled series of the same
	// psp_store_recovery_seconds family as the wall-clock total. Phase
	// times are summed across stripes (stripe loads run in parallel).
	RecoverySnapshotSeconds *obs.Gauge // phase="snapshot_read"
	RecoveryIndexSeconds    *obs.Gauge // phase="index_load"
	RecoveryRebuildSeconds  *obs.Gauge // phase="index_rebuild"
	RecoveryReplaySeconds   *obs.Gauge // phase="wal_replay"
	// WAL is the per-stripe logs' shared surface (psp_wal_*).
	WAL *durable.LogMetrics

	reg *obs.Registry
}

// NewStoreMetrics registers the psp_store_* and psp_wal_* families in
// reg and returns the recording surface for one store. A nil registry
// yields an all-no-op surface.
func NewStoreMetrics(reg *obs.Registry) *StoreMetrics {
	return &StoreMetrics{
		Adds:       reg.Counter("psp_store_adds_total", "Ingest batches accepted by Store.Add."),
		AddedPosts: reg.Counter("psp_store_added_posts_total", "Posts inserted by Store.Add."),
		AddErrors:  reg.Counter("psp_store_add_errors_total", "Store.Add calls that returned an error."),
		AddLatency: reg.Histogram("psp_store_add_seconds",
			"Store.Add latency, validation through durability and index commit.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		Searches: reg.Counter("psp_store_searches_total", "Store.Search calls."),
		SearchLatency: reg.Histogram("psp_store_search_seconds", "Store.Search latency.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		ShardVisits: reg.Counter("psp_store_search_shard_visits_total",
			"Shard snapshots examined by Search (window-to-stripe pruning fan-out)."),
		FeedBatches: reg.Counter("psp_store_changefeed_batches_total", "Batches published to the changefeed."),
		FeedPosts:   reg.Counter("psp_store_changefeed_posts_total", "Posts published to the changefeed."),
		Compactions: reg.Counter("psp_store_compactions_total", "Snapshot compactions completed."),
		CompactionErrors: reg.Counter("psp_store_compaction_errors_total",
			"Snapshot compactions failed (retried next tick)."),
		CompactionLatency: reg.Histogram("psp_store_compaction_seconds", "Snapshot compaction latency.",
			obs.DefaultLatencyBuckets, obs.LatencyScale),
		CompactionBytes: reg.Counter("psp_store_compaction_bytes_total",
			"Snapshot and index-sidecar bytes written by compactions (dirty stripes only)."),
		CompactedStripes: reg.Counter("psp_store_compaction_stripes_total",
			"Stripes rewritten by compactions (clean stripes are skipped)."),
		RecoverySeconds: reg.Gauge("psp_store_recovery_seconds",
			"Duration of the last OpenStoreDir recovery (snapshot load + WAL replay); phase-labeled series break it down, summed across parallel stripe loads."),
		RecoveredPosts: reg.Gauge("psp_store_recovered_posts",
			"Posts recovered by the last OpenStoreDir."),
		RecoverySnapshotSeconds: reg.Gauge("psp_store_recovery_seconds",
			"Duration of the last OpenStoreDir recovery (snapshot load + WAL replay); phase-labeled series break it down, summed across parallel stripe loads.",
			obs.Label{Key: "phase", Value: "snapshot_read"}),
		RecoveryIndexSeconds: reg.Gauge("psp_store_recovery_seconds",
			"Duration of the last OpenStoreDir recovery (snapshot load + WAL replay); phase-labeled series break it down, summed across parallel stripe loads.",
			obs.Label{Key: "phase", Value: "index_load"}),
		RecoveryRebuildSeconds: reg.Gauge("psp_store_recovery_seconds",
			"Duration of the last OpenStoreDir recovery (snapshot load + WAL replay); phase-labeled series break it down, summed across parallel stripe loads.",
			obs.Label{Key: "phase", Value: "index_rebuild"}),
		RecoveryReplaySeconds: reg.Gauge("psp_store_recovery_seconds",
			"Duration of the last OpenStoreDir recovery (snapshot load + WAL replay); phase-labeled series break it down, summed across parallel stripe loads.",
			obs.Label{Key: "phase", Value: "wal_replay"}),
		WAL: durable.NewLogMetrics(reg),
		reg: reg,
	}
}

// SetMetrics attaches (or, with nil, detaches) a recording surface.
// Gauge-valued readings that need store state — live post count,
// changefeed backlog — register as exposition-time callbacks here, so
// the hot paths never maintain them. One StoreMetrics instance should
// observe one store (the callbacks bind to the last store attached).
func (s *Store) SetMetrics(m *StoreMetrics) {
	s.met.Store(m)
	if m == nil || m.reg == nil {
		return
	}
	m.reg.GaugeFunc("psp_store_posts", "Posts currently stored.",
		func() float64 { return float64(s.Len()) })
	m.reg.GaugeFunc("psp_store_changefeed_backlog_posts",
		"Posts queued for changefeed subscribers, summed across subscribers.",
		func() float64 { return float64(s.ChangefeedBacklog()) })
	m.reg.GaugeFunc("psp_store_changefeed_subscribers", "Live changefeed subscriptions.",
		func() float64 { return float64(len(s.subs.Load().subs)) })
	m.reg.GaugeFunc("psp_store_degraded",
		"1 while the store is in read-only degraded mode after a WAL failure, else 0.",
		func() float64 {
			if s.degraded.Load() != nil {
				return 1
			}
			return 0
		})
}

// Metrics returns the attached recording surface (nil when
// uninstrumented).
func (s *Store) Metrics() *StoreMetrics { return s.met.Load() }

// StoreStats is a typed point-in-time snapshot of the store's own
// counters — the programmatic companion to the Prometheus exposition,
// and the public replacement for one-off test hooks like
// SearchShardVisits.
type StoreStats struct {
	// Posts and Shards describe the corpus layout.
	Posts  int
	Shards int
	// SearchShardVisits is the cumulative count of shard snapshots
	// examined by Search. Reading stats activates the observer-gated
	// counter (see SearchShardVisits), so take a baseline snapshot
	// before a measured workload.
	SearchShardVisits int64
	// ChangefeedSubscribers / ChangefeedBacklog describe the changefeed:
	// live subscriptions and posts queued but not yet delivered.
	ChangefeedSubscribers int
	ChangefeedBacklog     int
	// Durable reports whether the store runs on a write-ahead log;
	// WALRecords counts appends since the last snapshot compaction and
	// WALFloors is the current DurableCursor (nil when not durable).
	Durable    bool
	WALRecords int64
	WALFloors  DurableCursor
	// DirtyStripes counts stripes with records applied since their last
	// snapshot; CompactionBytes / CompactedStripes accumulate the
	// incremental compactor's write volume since open.
	DirtyStripes     int
	CompactionBytes  int64
	CompactedStripes int64
	// RecoveredIndexed / RecoveredRebuilt split the last open's stripes
	// by recovery path: loaded from the index sidecar vs re-tokenized
	// through the fallback.
	RecoveredIndexed int
	RecoveredRebuilt int
	// Degraded reports read-only degraded mode (see Store.Degraded);
	// DegradedCause is the triggering WAL failure, empty when healthy.
	Degraded      bool
	DegradedCause string
}

// Stats snapshots the store's observability counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Posts:                 s.Len(),
		Shards:                len(s.shards),
		SearchShardVisits:     s.SearchShardVisits(),
		ChangefeedSubscribers: len(s.subs.Load().subs),
		ChangefeedBacklog:     s.ChangefeedBacklog(),
	}
	if s.dur != nil {
		st.Durable = true
		st.WALRecords = s.dur.records.Load()
		st.WALFloors = s.dur.floors()
		for i := range s.dur.stripes {
			if s.dur.stripes[i].dirty.Load() != 0 {
				st.DirtyStripes++
			}
		}
		st.CompactionBytes = s.dur.compactedBytes.Load()
		st.CompactedStripes = s.dur.compactedStripes.Load()
		st.RecoveredIndexed = s.dur.recIndexed
		st.RecoveredRebuilt = s.dur.recRebuilt
	}
	if de := s.degraded.Load(); de != nil {
		st.Degraded = true
		st.DegradedCause = de.Cause.Error()
	}
	return st
}

// metricsNow returns the attached surface and, when one is attached, a
// start timestamp — the single branch instrumented hot paths pay.
func (s *Store) metricsNow() (*StoreMetrics, time.Time) {
	m := s.met.Load()
	if m == nil {
		return nil, time.Time{}
	}
	return m, time.Now()
}
