package social

import (
	"context"
	"strings"
	"testing"
	"time"
)

func ts(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 12, 0, 0, 0, time.UTC)
}

func samplePosts() []*Post {
	return []*Post{
		{
			ID: "p1", Author: "u1", Region: RegionEurope, CreatedAt: ts(2021, 3, 1),
			Text:    "best #dpfdelete kit on my excavator, huge gains",
			Metrics: Metrics{Views: 1000, Likes: 50, Reposts: 5, Replies: 3},
		},
		{
			ID: "p2", Author: "u2", Region: RegionNorthAmerica, CreatedAt: ts(2022, 5, 1),
			Text:    "flashed through the obd port — #chiptuning on my car",
			Metrics: Metrics{Views: 800, Likes: 20, Reposts: 2, Replies: 1},
		},
		{
			ID: "p3", Author: "u3", Region: RegionEurope, CreatedAt: ts(2022, 7, 1),
			Text:    "#egrremoval done on the tractor, great savings",
			Metrics: Metrics{Views: 500, Likes: 10, Reposts: 1, Replies: 0},
		},
		{
			ID: "p4", Author: "u4", Region: RegionEurope, CreatedAt: ts(2023, 1, 10),
			Text:    "#dpfdelete on my excavator ended in limp mode, regret it",
			Metrics: Metrics{Views: 300, Likes: 5, Reposts: 0, Replies: 8},
		},
	}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.Add(samplePosts()...); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreAddValidation(t *testing.T) {
	s := NewStore()
	bad := []*Post{
		{ID: "", Text: "x", CreatedAt: ts(2022, 1, 1)},
		{ID: "x", Text: "", CreatedAt: ts(2022, 1, 1)},
		{ID: "x", Text: "y"},
		{ID: "x", Text: "y", CreatedAt: ts(2022, 1, 1), Metrics: Metrics{Views: -1}},
	}
	for i, p := range bad {
		if err := s.Add(p); err == nil {
			t.Errorf("case %d: Add(%+v) succeeded, want error", i, p)
		}
	}
	// A nil post (a JSON null from remote ingest) errors instead of
	// panicking.
	if err := s.Add(nil); err == nil {
		t.Error("nil post accepted")
	}
	ok := &Post{ID: "x", Text: "y", CreatedAt: ts(2022, 1, 1)}
	if err := s.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Post{ID: "x", Text: "z", CreatedAt: ts(2022, 1, 2)}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
	if s.Post("x") == nil || s.Post("nope") != nil {
		t.Error("Post lookup wrong")
	}
}

func TestSearchByTag(t *testing.T) {
	s := newTestStore(t)
	page, err := s.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 || page.TotalMatches != 2 {
		t.Fatalf("tag search returned %d posts (total %d), want 2", len(page.Posts), page.TotalMatches)
	}
	// Chronological order.
	if page.Posts[0].ID != "p1" || page.Posts[1].ID != "p4" {
		t.Errorf("order = %s,%s want p1,p4", page.Posts[0].ID, page.Posts[1].ID)
	}
	// '#'-prefixed and differently-cased tags normalize.
	page2, err := s.Search(context.Background(), Query{AnyTags: []string{"#DPFdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Posts) != 2 {
		t.Errorf("normalized tag search returned %d posts, want 2", len(page2.Posts))
	}
}

// TestSearchRepeatedHashtag: a post repeating a hashtag must surface
// once in tag queries. Regression: the posting list used to carry one
// entry per occurrence, relying on query-time dedup that the k-way
// merge's single-list fast path skipped.
func TestSearchRepeatedHashtag(t *testing.T) {
	s := NewStore()
	if err := s.Add(&Post{
		ID: "rep", Author: "u", CreatedAt: ts(2022, 6, 1),
		Text:    "#dpfdelete twice in one post #dpfdelete",
		Metrics: Metrics{Views: 1},
	}); err != nil {
		t.Fatal(err)
	}
	page, err := s.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(page.Posts); len(got) != 1 || page.TotalMatches != 1 {
		t.Fatalf("repeated-hashtag search = %v (total %d), want [rep] once", got, page.TotalMatches)
	}
}

func TestSearchMustTerms(t *testing.T) {
	s := newTestStore(t)
	page, err := s.Search(context.Background(), Query{
		AnyTags:   []string{"dpfdelete", "egrremoval"},
		MustTerms: []string{"excavator"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 2 {
		t.Fatalf("must-term search returned %d posts, want 2", len(page.Posts))
	}
	for _, p := range page.Posts {
		if !p.Terms()["excavator"] {
			t.Errorf("post %s lacks must term", p.ID)
		}
	}
}

func TestSearchRegionAndWindow(t *testing.T) {
	s := newTestStore(t)
	page, err := s.Search(context.Background(), Query{
		Region: RegionEurope,
		Since:  ts(2022, 1, 1),
		Until:  ts(2023, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Posts) != 1 || page.Posts[0].ID != "p3" {
		t.Fatalf("windowed region search = %v, want [p3]", ids(page.Posts))
	}
	// Until is exclusive: a post exactly at the bound is excluded.
	pageEdge, err := s.Search(context.Background(), Query{Until: ts(2021, 3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(pageEdge.Posts) != 0 {
		t.Errorf("exclusive until violated: %v", ids(pageEdge.Posts))
	}
}

func TestSearchPagination(t *testing.T) {
	s := newTestStore(t)
	var all []*Post
	q := Query{MaxResults: 2}
	for {
		page, err := s.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, page.Posts...)
		if page.NextToken == "" {
			break
		}
		q.PageToken = page.NextToken
	}
	if len(all) != 4 {
		t.Fatalf("pagination collected %d posts, want 4", len(all))
	}
	// SearchAll agrees.
	got, err := SearchAll(context.Background(), s, Query{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("SearchAll returned %d posts, want 4", len(got))
	}
}

func TestSearchBadPageToken(t *testing.T) {
	s := newTestStore(t)
	// Malformed keyset tokens are rejected outright; "k5" lacks the ID
	// separator and "k5.!!" carries invalid base64.
	for _, tok := range []string{"garbage", "k", "k5", "k5.!!", "kx.cDE", "5", "K5.cDE"} {
		if _, err := s.Search(context.Background(), Query{PageToken: tok}); err == nil {
			t.Errorf("bad page token %q accepted", tok)
		}
	}
	// The retired offset tokens fail with a deprecation hint.
	_, err := s.Search(context.Background(), Query{PageToken: "o2"})
	if err == nil || !strings.Contains(err.Error(), "no longer supported") {
		t.Errorf("offset token not reported as deprecated: %v", err)
	}
	// A token the store itself emitted resumes the listing.
	first, err := s.Search(context.Background(), Query{MaxResults: 2})
	if err != nil || first.NextToken == "" {
		t.Fatalf("first page: %v", err)
	}
	rest, err := s.Search(context.Background(), Query{MaxResults: 2, PageToken: first.NextToken})
	if err != nil {
		t.Fatalf("valid keyset token rejected: %v", err)
	}
	if got := ids(rest.Posts); len(got) != 2 || got[0] != "p3" || got[1] != "p4" {
		t.Errorf("resumed page = %v, want [p3 p4]", got)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	for _, c := range []Cursor{
		{CreatedAt: ts(2022, 5, 1), ID: "p2"},
		{CreatedAt: ts(2022, 5, 1), ID: "platform:with/odd+chars"},
		{CreatedAt: ts(2022, 5, 1)}, // empty ID: sorts before same-instant posts
	} {
		back, err := ParseCursor(EncodeCursor(c))
		if err != nil {
			t.Fatalf("round trip %+v: %v", c, err)
		}
		if !back.CreatedAt.Equal(c.CreatedAt) || back.ID != c.ID {
			t.Errorf("round trip %+v → %+v", c, back)
		}
	}
	// Empty-ID cursors admit same-instant posts (the federated resume
	// path relies on this).
	c := Cursor{CreatedAt: ts(2022, 5, 1)}
	if !c.Before(&Post{ID: "a", CreatedAt: ts(2022, 5, 1)}) {
		t.Error("empty-ID cursor excluded a same-instant post")
	}
	if c.Before(&Post{ID: "a", CreatedAt: ts(2022, 4, 30)}) {
		t.Error("cursor admitted an earlier post")
	}
}

func TestSearchMustTermsWithoutTags(t *testing.T) {
	s := newTestStore(t)
	// Term-only queries go through the inverted term index.
	page, err := s.Search(context.Background(), Query{MustTerms: []string{"excavator"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(page.Posts); len(got) != 2 || got[0] != "p1" || got[1] != "p4" {
		t.Fatalf("term-index search = %v, want [p1 p4]", got)
	}
	// Multi-term intersection, normalization of '#' and case included.
	page, err = s.Search(context.Background(), Query{MustTerms: []string{"#Excavator", "regret"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(page.Posts); len(got) != 1 || got[0] != "p4" {
		t.Fatalf("intersection = %v, want [p4]", got)
	}
	// A term absent from the corpus yields an empty page, not an error.
	page, err = s.Search(context.Background(), Query{MustTerms: []string{"nonexistentterm"}})
	if err != nil || len(page.Posts) != 0 || page.TotalMatches != 0 {
		t.Fatalf("absent term: page %+v err %v", page, err)
	}
	// Term filters combine with region and window filters.
	page, err = s.Search(context.Background(), Query{
		MustTerms: []string{"excavator"},
		Region:    RegionEurope,
		Since:     ts(2022, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(page.Posts); len(got) != 1 || got[0] != "p4" {
		t.Fatalf("filtered term search = %v, want [p4]", got)
	}
}

// TestTermIndexMatchesScan pins the inverted-index fast path to the
// semantics of a naive corpus scan on the reference corpus.
func TestTermIndexMatchesScan(t *testing.T) {
	store, err := DefaultStore(42)
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), store, Query{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{MustTerms: []string{"excavator"}},
		{MustTerms: []string{"obd"}},
		{MustTerms: []string{"excavator", "obd"}},
		{MustTerms: []string{"excavator", "limp", "mode"}},
		{MustTerms: []string{"tractor"}, Region: RegionEurope},
		{MustTerms: []string{"truck"}, Since: ts(2022, 1, 1), Until: ts(2023, 1, 1)},
	}
	for _, q := range queries {
		got, err := SearchAll(context.Background(), store, q)
		if err != nil {
			t.Fatalf("query %+v: %v", q.MustTerms, err)
		}
		var want []string
		for _, p := range all {
			if q.Region != "" && p.Region != q.Region {
				continue
			}
			if !q.Since.IsZero() && p.CreatedAt.Before(q.Since) {
				continue
			}
			if !q.Until.IsZero() && !p.CreatedAt.Before(q.Until) {
				continue
			}
			terms := p.Terms()
			ok := true
			for _, m := range q.MustTerms {
				if !terms[m] {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, p.ID)
			}
		}
		if len(want) == 0 {
			t.Fatalf("query %v matches nothing in the reference corpus; test is vacuous", q.MustTerms)
		}
		gotIDs := ids(got)
		if len(gotIDs) != len(want) {
			t.Fatalf("query %v: index returned %d posts, scan %d", q.MustTerms, len(gotIDs), len(want))
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("query %v: post %d = %s, scan says %s", q.MustTerms, i, gotIDs[i], want[i])
			}
		}
	}
}

// TestMatchesPostAgreesWithSearch pins the invalidation predicate to
// Search membership over the reference corpus: the result cache's
// exactness guarantee holds only while MatchesPost and matchLocked
// implement the same filters, so a filter added to one but not the
// other must fail here.
func TestMatchesPostAgreesWithSearch(t *testing.T) {
	store, err := DefaultStore(13)
	if err != nil {
		t.Fatal(err)
	}
	all, err := SearchAll(context.Background(), store, Query{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{AnyTags: []string{"dpfdelete", "chiptuning"}},
		{AnyTags: []string{"#DPFdelete"}, MustTerms: []string{"excavator"}},
		{MustTerms: []string{"excavator", "limp"}},
		{AnyTags: []string{"egrremoval"}, Region: RegionEurope},
		{AnyTags: []string{"gpsblocker"}, Since: ts(2022, 1, 1), Until: ts(2023, 1, 1)},
		{Region: RegionNorthAmerica, Since: ts(2022, 6, 1)},
	}
	for _, q := range queries {
		matched, err := SearchAll(context.Background(), store, q)
		if err != nil {
			t.Fatal(err)
		}
		inResults := make(map[string]bool, len(matched))
		for _, p := range matched {
			inResults[p.ID] = true
		}
		if len(matched) == 0 {
			t.Fatalf("query %+v matches nothing; test is vacuous", q)
		}
		for _, p := range all {
			if got := q.MatchesPost(p); got != inResults[p.ID] {
				t.Errorf("query %+v post %s: MatchesPost=%v, Search membership=%v",
					q, p.ID, got, inResults[p.ID])
			}
		}
	}
}

func TestSearchContextCancelled(t *testing.T) {
	s := newTestStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Search(ctx, Query{}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPostDerivations(t *testing.T) {
	p := samplePosts()[0]
	tags := p.Hashtags()
	if len(tags) != 1 || tags[0] != "dpfdelete" {
		t.Errorf("Hashtags() = %v", tags)
	}
	if !p.Terms()["gains"] || !p.Terms()["dpfdelete"] {
		t.Errorf("Terms() missing expected entries: %v", p.Terms())
	}
	if got := p.Metrics.Interactions(); got != 58 {
		t.Errorf("Interactions() = %d, want 58", got)
	}
}

func ids(posts []*Post) []string {
	out := make([]string, len(posts))
	for i, p := range posts {
		out[i] = p.ID
	}
	return out
}
