// Package social implements the social-media substrate that replaces the
// Twitter APIs used by the PSP paper's prototype.
//
// It provides an in-memory post store with hashtag, time and inverted
// term indices, a query engine (keyword, hashtag, region and time-window
// filters with pagination), a changefeed (Watch) for the continuous
// monitoring subsystem, a deterministic synthetic corpus generator
// whose topic trends are calibrated to the case studies reported in the
// paper, and an HTTP JSON search API — server and client — so the
// framework exercises the same remote-service code path as the prototype
// (pagination, rate limiting, transport errors).
//
// Sharding: the Store stripes its corpus across N lock shards keyed by
// CreatedAt time bucket — bucket b = floor(CreatedAt / one UTC day)
// lives on shard b mod N (NewStoreShards; NewStore picks
// DefaultShards). Each shard owns its slice of the time, hashtag and
// term indices under its own RWMutex, so writers contend only for the
// stripes their batch's timestamps fall in while search fans out
// across stripes on a bounded worker set and k-way merges the
// per-shard streams back into one (CreatedAt, ID) order. Search holds
// every stripe's read lock while it streams a page, so an in-flight
// page still delays writers — but only for its O(page + seek)
// duration, not the O(matches) materialization the monolithic store
// paid. The shard count never changes a result — listings are
// byte-identical at any N — it only sets how much of the store a
// single lock covers.
//
// Indexing: Store.Add ingests posts in batches (one index merge per
// touched shard rather than a per-post insertion sort) and maintains
// the time index, the hashtag index and the inverted term index all in
// (CreatedAt, ID) posting order. Term-only queries (the paper's
// target-application filter) walk the rarest term's postings, and tag
// unions k-way merge their sorted postings, so query cost tracks the
// matching posts instead of the corpus size.
//
// Pagination: listings resume with keyset tokens —
// "k<unix-nanoseconds>.<base64url(post ID)>", the (CreatedAt, ID) key of
// the last delivered post (see EncodeCursor). A page picks up strictly
// after that key, so concurrent Add can neither shift posts across page
// boundaries (duplicates) nor hide them (skips): every post present when
// the drain started is delivered exactly once. Pages stream: each shard
// seeks its sorted postings to the cursor and the Since/Until window by
// binary search and yields matches lazily, and the merge stops at
// MaxResults+1 posts — per-page cost is O(page + seek), never a
// materialized match set. TotalMatches is counted index-side (O(log n)
// for unfiltered time-window queries). The offset tokens ("o<offset>")
// of earlier releases are retired; they addressed a position in a live
// listing and went stale whenever a write landed before the position.
// Parsing one now returns a deprecation error.
//
// Changefeed: Store.Watch delivers every batch accepted by Add to each
// subscriber exactly once, in insertion order, optionally replaying the
// stored listing after a keyset cursor first. A store-level sequencer
// orders batches across shards: Add publishes while still holding its
// shard write locks, and Watch snapshots every stripe under all shard
// read locks plus the sequencer, so the feed has no gap or overlap even
// with writers landing on different shards concurrently. The continuous
// monitoring subsystem (internal/monitor) tails this feed to re-assess
// only the affected keyword topics as new posts arrive.
//
// Federation: Multi fans a query out to every platform backend
// concurrently. Each federated page fetches one bounded slice per
// backend past the shared keyset cursor — the pre-cursor listing is
// never re-drained — and merges the heads into one (CreatedAt, ID)
// ordered page with platform-namespaced post IDs.
//
// Determinism: the generator derives everything from an explicit seed;
// two runs with the same seed and spec produce identical corpora, and
// search results are (CreatedAt, ID)-ordered at any concurrency.
package social
