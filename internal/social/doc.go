// Package social implements the social-media substrate that replaces the
// Twitter APIs used by the PSP paper's prototype.
//
// It provides an in-memory post store with hashtag, time and inverted
// term indices, a query engine (keyword, hashtag, region and time-window
// filters with pagination), a deterministic synthetic corpus generator
// whose topic trends are calibrated to the case studies reported in the
// paper, and an HTTP JSON search API — server and client — so the
// framework exercises the same remote-service code path as the prototype
// (pagination, rate limiting, transport errors).
//
// Indexing: Store.Add ingests posts in batches (one index merge per
// batch rather than a per-post insertion sort) and maintains an inverted
// term index — normalized term → (CreatedAt, ID)-sorted posting list.
// Term-only queries (the paper's target-application filter) intersect
// posting lists by walking the rarest term's postings, so their cost
// tracks the matching posts instead of the corpus size.
//
// Federation: Multi fans a query out to every platform backend
// concurrently and pages the merged listing with the same strict
// "o<offset>" continuation tokens the Store uses, so SearchAll drains
// federated listings completely even with a capped page size.
//
// Determinism: the generator derives everything from an explicit seed;
// two runs with the same seed and spec produce identical corpora, and
// search results are (CreatedAt, ID)-ordered at any concurrency.
package social
