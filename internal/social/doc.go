// Package social implements the social-media substrate that replaces the
// Twitter APIs used by the PSP paper's prototype.
//
// It provides an in-memory post store with hashtag, time and inverted
// term indices, a query engine (keyword, hashtag, region and time-window
// filters with pagination), a changefeed (Watch) for the continuous
// monitoring subsystem, a deterministic synthetic corpus generator
// whose topic trends are calibrated to the case studies reported in the
// paper, and an HTTP JSON search API — server and client — so the
// framework exercises the same remote-service code path as the prototype
// (pagination, rate limiting, transport errors).
//
// Indexing: Store.Add ingests posts in batches (one index merge per
// batch rather than a per-post insertion sort) and maintains the time
// index, the hashtag index and the inverted term index all in
// (CreatedAt, ID) posting order. Term-only queries (the paper's
// target-application filter) intersect posting lists by walking the
// rarest term's postings, and tag unions k-way merge their sorted
// postings, so query cost tracks the matching posts instead of the
// corpus size.
//
// Pagination: listings resume with keyset tokens —
// "k<unix-nanoseconds>.<base64url(post ID)>", the (CreatedAt, ID) key of
// the last delivered post (see EncodeCursor). A page picks up strictly
// after that key, so concurrent Add can neither shift posts across page
// boundaries (duplicates) nor hide them (skips): every post present when
// the drain started is delivered exactly once. The offset tokens
// ("o<offset>") of earlier releases are retired; they addressed a
// position in a live listing and went stale whenever a write landed
// before the position. Parsing one now returns a deprecation error.
//
// Changefeed: Store.Watch delivers every batch accepted by Add to each
// subscriber exactly once, in insertion order, optionally replaying the
// stored listing after a keyset cursor first. Replay snapshot and live
// subscription are taken atomically under the store lock, so the feed
// has no gap or overlap even under concurrent writers. The continuous
// monitoring subsystem (internal/monitor) tails this feed to re-assess
// only the affected keyword topics as new posts arrive.
//
// Federation: Multi fans a query out to every platform backend
// concurrently. Each federated page fetches one bounded slice per
// backend past the shared keyset cursor — the pre-cursor listing is
// never re-drained — and merges the heads into one (CreatedAt, ID)
// ordered page with platform-namespaced post IDs.
//
// Determinism: the generator derives everything from an explicit seed;
// two runs with the same seed and spec produce identical corpora, and
// search results are (CreatedAt, ID)-ordered at any concurrency.
package social
