// Package social implements the social-media substrate that replaces the
// Twitter APIs used by the PSP paper's prototype.
//
// It provides an in-memory post store with hashtag, time and inverted
// term indices, a query engine (keyword, hashtag, region and time-window
// filters with pagination), a changefeed (Watch) for the continuous
// monitoring subsystem, a deterministic synthetic corpus generator
// whose topic trends are calibrated to the case studies reported in the
// paper, and an HTTP JSON search API — server and client — so the
// framework exercises the same remote-service code path as the prototype
// (pagination, rate limiting, transport errors).
//
// Sharding and snapshots: the Store stripes its corpus across N shards
// keyed by CreatedAt time bucket — bucket b = floor(CreatedAt / one UTC
// day) lives on shard b mod N (NewStoreShards; NewStore picks
// DefaultShards). Each shard publishes an immutable snapshot of its
// time, hashtag and term indices behind an atomic pointer: two
// generations, a large compacted base plus a small delta absorbing
// recent commits (folded into a fresh base once the delta outgrows its
// bound), every posting list sorted in (CreatedAt, ID) order within its
// generation. Reads are lock-free — Search loads one coherent snapshot
// per visited stripe and streams it, so an in-flight page never delays
// a writer and a committing writer never stalls a reader. Writers hold
// their stripe's mutex only against other writers: Add builds the
// successor snapshot aside (small commits copy O(delta) index entries,
// not O(shard)) and commits it with a single pointer swap. A batch
// spanning several stripes becomes searchable stripe by stripe, exactly
// as if split into per-stripe Adds — keyset listings stay skip- and
// duplicate-free regardless, and the changefeed still delivers the
// batch as one unit. Duplicate detection, Post and Len run on a global
// ID registry striped across 64 hash-keyed mutexes, so the ingest path
// takes no store-global lock at all. The shard count never changes a
// result — listings are byte-identical at any N — it only sets how many
// writers commit concurrently.
//
// Window→stripe pruning: a query window [Since, Until) covers a
// contiguous run of time buckets, and every bucket lives on stripe
// (bucket mod N). When the run is shorter than one round of stripes,
// Search maps the window to its bucket set and visits only the stripes
// that set occupies — a narrow delta query (the monitor's dominant
// shape) touches O(window) stripes instead of all N, and stripes that
// cannot hold matches are skipped without even loading their snapshot.
//
// Indexing: Store.Add ingests posts in batches (one index merge per
// touched shard rather than a per-post insertion sort) and maintains
// the time index, the hashtag index and the inverted term index all in
// (CreatedAt, ID) posting order. Term-only queries (the paper's
// target-application filter) walk the rarest term's postings, and tag
// unions k-way merge their sorted postings, so query cost tracks the
// matching posts instead of the corpus size.
//
// Pagination: listings resume with keyset tokens —
// "k<unix-nanoseconds>.<base64url(post ID)>", the (CreatedAt, ID) key of
// the last delivered post (see EncodeCursor). A page picks up strictly
// after that key, so concurrent Add can neither shift posts across page
// boundaries (duplicates) nor hide them (skips): every post present when
// the drain started is delivered exactly once. Pages stream: each shard
// seeks its sorted postings to the cursor and the Since/Until window by
// binary search and yields matches lazily, and the merge stops at
// MaxResults+1 posts — per-page cost is O(page + seek), never a
// materialized match set. TotalMatches is counted index-side for
// unfiltered, single-tag and single-term windowed queries by bound
// subtraction (O(log n)) — the per-shard per-tag counts are the sorted
// posting lists themselves — and sublinearly for multi-term and
// two-tag queries: multiple must-terms intersect their posting lists
// with galloping seeks pivoting on the rarest term, and a two-tag
// union counts by inclusion–exclusion (|A| + |B| − |A∩B|), so both
// track the rarest list instead of the candidate walk. Callers that do
// not need the total set
// Query.SkipTotal (HTTP: skip_total=1) to skip the count walk entirely,
// making every filtered page fully O(page + seek); SearchAll does so
// automatically. The offset tokens ("o<offset>") of earlier releases
// are retired; they addressed a position in a live listing and went
// stale whenever a write landed before the position. Parsing one now
// returns a deprecation error.
//
// Changefeed: Store.Watch delivers every batch accepted by Add to each
// subscriber exactly once, in insertion order, optionally replaying the
// stored listing after a keyset cursor first. A store-level sequencer
// orders batches across shards: Add publishes while still holding its
// shard writer locks — after its snapshot swaps, so the sequencer
// observes post-commit state — and Watch registration briefly takes
// every shard writer lock plus the sequencer to read the published
// snapshots and register atomically. The feed therefore has no gap or
// overlap even with writers landing on different shards concurrently,
// while lock-free readers are never involved. The continuous monitoring
// subsystem (internal/monitor) tails this feed to re-assess only the
// affected keyword topics as new posts arrive.
//
// Federation: Multi fans a query out to every platform backend
// concurrently. Each federated page fetches one bounded slice per
// backend past the shared keyset cursor — the pre-cursor listing is
// never re-drained — and merges the heads into one (CreatedAt, ID)
// ordered page with platform-namespaced post IDs.
//
// Partial failure: by default a federated page is all-or-nothing — one
// failing backend fails the page. NewMultiOptions changes the
// contract. MultiOptions.BackendTimeout bounds every backend's share
// of a page with one shared deadline. MultiOptions.Partial opts into
// partial-results mode: a page with at least one healthy backend
// serves the healthy merge, marked Page.Degraded with per-backend
// health in Page.Backends (populated only on degraded pages; a healthy
// federated page carries no annotations and costs the same as the bare
// path). A degraded page that contains posts always carries a
// NextToken, so a listing keeps paging through an outage and backends
// that recover rejoin on later pages — keyset cursors never move
// backwards, so posts the failed backend held during the outage window
// are not replayed. TotalMatches sums healthy backends only, and a
// page on which every backend fails is still an error.
// MultiOptions.BreakerThreshold arms a per-backend circuit breaker:
// after that many consecutive failures the backend is skipped
// (fail-fast, reported as ErrBackendSkipped in its annotation) until
// BreakerCooldown elapses, then one half-open probe either closes the
// breaker or re-opens it for another cooldown. Context cancellation by
// the caller never counts as a backend failure; a deadline expiry
// does.
//
// Remote resilience: the HTTP Client retries transient failures —
// transport errors and 502/503/504 — with exponential backoff
// (Client.RetryBase doubling up to Client.RetryMax, jittered), honors
// 429 Retry-After waits, and bounds both by Client.MaxRetries; every
// wait aborts promptly on context cancellation. WithFault wraps any
// Searcher with a fault.Injector, and fault.RoundTripper sits under
// the Client's transport, so the chaos suite drives flaky backends and
// dying connections through the same code paths production traffic
// takes.
//
// Degraded mode: a durable store whose WAL reports a persistent write
// or fsync failure flips read-only instead of crashing — the first
// cause wins and sticks. Add (and ingest endpoints above it) refuse
// with a *DegradedError matching errors.Is(err, ErrDegraded), while
// every acknowledged post keeps serving: Search, Post, Len, Watch and
// the monitor's cached assessments all remain live, and Stats reports
// Degraded plus its cause for health surfaces (pspd answers ingest
// with 503 + Retry-After and fails readiness). Restarting the process
// recovers the acknowledged state through the normal WAL recovery path
// and, if the disk has healed, resumes writes.
//
// Durability: OpenStoreDir runs a store on the crash-safe engine of
// internal/durable. Each stripe owns a segmented write-ahead log; Add
// appends its per-stripe sub-batches (CRC-framed JSON, group-committed
// and fsync'd, off the commit critical section) before the snapshot
// swap makes them searchable, so an acknowledged Add survives kill -9
// and an unacknowledged one never half-surfaces. Snapshots are per
// stripe: each stripe persists a JSON Lines post snapshot plus an
// index sidecar (see sidecar.go for the on-disk format) holding its
// posting lists in a CRC-framed, position-encoded form bound to the
// posts file by an ID checksum. A warm open loads each stripe's
// indices as a file read — no re-tokenization — and stripes load in
// parallel, so reopening a large corpus costs milliseconds instead of
// a full index rebuild. Compaction is incremental and delta-bounded:
// per-stripe dirty counters track which stripes absorbed records since
// their last snapshot, a pass rewrites only those stripes (an idle
// pass writes nothing at all, not even a manifest), clean stripes keep
// their files and floors verbatim, and WAL segments wholly below the
// new floors are truncated.
//
// The fallback contract makes the sidecar strictly an optimization: a
// missing, torn, corrupt or version-skewed sidecar — or a posts file
// whose order or routing disagrees with the opening store — degrades
// that stripe to the re-tokenizing load and marks it dirty so the next
// compaction rewrites it; it never fails the open. Pre-indexing
// directories (manifest Version 0, one whole-corpus snapshot) open the
// same way and upgrade to the per-stripe format at their first
// compaction. Only real data loss is fatal: an unreadable or invalid
// posts file, or two snapshot files claiming the same post ID.
// Recovery replays each stripe's WAL tail above its floor,
// deduplicating the (deliberately conservative) overlap by post ID.
// DurableCursor and PostsSince expose the WAL position to consumers
// that checkpoint their own progress — the monitor persists the cursor
// with its assessment and catches up incrementally after a restart.
// WritePostsFile/WriteStoreFile are the atomic (temp + fsync + rename)
// snapshot dumps; a reader can never observe a truncated file.
//
// Determinism: the generator derives everything from an explicit seed;
// two runs with the same seed and spec produce identical corpora, and
// search results are (CreatedAt, ID)-ordered at any concurrency.
package social
