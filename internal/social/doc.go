// Package social implements the social-media substrate that replaces the
// Twitter APIs used by the PSP paper's prototype.
//
// It provides an in-memory post store with hashtag and time indices, a
// query engine (keyword, hashtag, region and time-window filters with
// pagination), a deterministic synthetic corpus generator whose topic
// trends are calibrated to the case studies reported in the paper, and an
// HTTP JSON search API — server and client — so the framework exercises
// the same remote-service code path as the prototype (pagination, rate
// limiting, transport errors).
//
// Determinism: the generator derives everything from an explicit seed;
// two runs with the same seed and spec produce identical corpora.
package social
