package social

import (
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/obs"
)

// BreakerState is one circuit-breaker state. The zero value is Closed.
type BreakerState int

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: calls are skipped until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// between re-closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one backend's circuit breaker: it opens after `threshold`
// consecutive failures, fails fast for `cooldown`, then admits a single
// half-open probe whose outcome re-closes or re-opens it. All methods
// are safe for concurrent use; the state changes under one small mutex
// (the breaker guards a network call, so the lock is never the
// bottleneck).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	// gauge, when set, exports the state (0 closed, 1 open, 2 half-open).
	gauge *obs.Gauge
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, gauge *obs.Gauge) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, gauge: gauge}
}

// setState transitions state and exports it (callers hold mu).
func (b *breaker) setState(s BreakerState) {
	b.state = s
	b.gauge.Set(float64(s))
}

// Allow reports whether a call may proceed now. An open breaker past
// its cooldown moves to half-open and admits the caller as the probe;
// while a probe is in flight everyone else is skipped.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful call: the breaker re-closes and the
// failure run resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure records a failed call: a failed half-open probe re-opens
// immediately; the threshold'th consecutive failure while closed opens.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.setState(BreakerOpen)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.fails = 0
			b.openedAt = b.now()
			b.setState(BreakerOpen)
		}
	}
}

// State returns the current state (open breakers past their cooldown
// still report open until a call moves them to half-open).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
