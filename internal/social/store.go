package social

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// Query selects posts from a store. All filters combine conjunctively;
// zero-valued filters are inactive.
type Query struct {
	// AnyTags matches posts carrying at least one of these hashtags
	// (normalized, no '#'). Empty means "any post".
	AnyTags []string
	// MustTerms are words or hashtags that must ALL appear in the post
	// text (the paper's target-application filter, e.g. "excavator").
	MustTerms []string
	// Region filters by origin region; empty means all regions.
	Region Region
	// Since/Until bound CreatedAt: Since ≤ t < Until. Zero values are
	// open ends.
	Since, Until time.Time
	// MaxResults caps the page size; 0 means the server default.
	MaxResults int
	// PageToken resumes a paginated listing; empty starts at the top.
	PageToken string
}

// normalizedTags returns the query's tags normalized for index lookup.
func (q Query) normalizedTags() []string {
	out := make([]string, 0, len(q.AnyTags))
	for _, t := range q.AnyTags {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Page is one page of search results.
type Page struct {
	// Posts are the matching posts in (CreatedAt, ID) order.
	Posts []*Post
	// NextToken resumes the listing; empty when the listing is complete.
	NextToken string
	// TotalMatches is the total number of posts matching the query
	// across all pages.
	TotalMatches int
}

// Searcher is the capability the PSP framework needs from a social
// platform: paginated keyword search. Both the in-process Store and the
// HTTP Client implement it.
type Searcher interface {
	Search(ctx context.Context, q Query) (*Page, error)
}

// Store is an in-memory post store with hashtag and time indices. It is
// safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	posts  map[string]*Post
	byTime []*Post // sorted by (CreatedAt, ID)
	byTag  map[string][]*Post
	terms  map[string]map[string]bool // post ID → term set (precomputed)
}

var _ Searcher = (*Store)(nil)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		posts: make(map[string]*Post),
		byTag: make(map[string][]*Post),
		terms: make(map[string]map[string]bool),
	}
}

// Add inserts posts. Duplicate IDs and invalid posts are rejected; on
// error the store is left unchanged for the offending post but earlier
// posts of the batch stay inserted.
func (s *Store) Add(posts ...*Post) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range posts {
		if err := p.Validate(); err != nil {
			return err
		}
		if _, dup := s.posts[p.ID]; dup {
			return fmt.Errorf("social: duplicate post ID %s", p.ID)
		}
		s.posts[p.ID] = p
		s.terms[p.ID] = p.Terms()
		i := sort.Search(len(s.byTime), func(i int) bool {
			if !s.byTime[i].CreatedAt.Equal(p.CreatedAt) {
				return s.byTime[i].CreatedAt.After(p.CreatedAt)
			}
			return s.byTime[i].ID > p.ID
		})
		s.byTime = append(s.byTime, nil)
		copy(s.byTime[i+1:], s.byTime[i:])
		s.byTime[i] = p
		for _, tag := range p.Hashtags() {
			tag = nlp.Normalize(tag)
			s.byTag[tag] = append(s.byTag[tag], p)
		}
	}
	return nil
}

// Len returns the number of stored posts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.posts)
}

// Post returns the post with the given ID, or nil.
func (s *Store) Post(id string) *Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.posts[id]
}

// defaultPageSize caps pages when the query does not specify MaxResults.
const defaultPageSize = 100

// maxPageSize is the hard page-size ceiling, mirroring public API limits.
const maxPageSize = 500

// Search runs the query and returns one result page. The context is
// honoured between scan batches.
func (s *Store) Search(ctx context.Context, q Query) (*Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	matches, err := s.matchLocked(q)
	if err != nil {
		return nil, err
	}
	offset := 0
	if q.PageToken != "" {
		if _, err := fmt.Sscanf(q.PageToken, "o%d", &offset); err != nil || offset < 0 {
			return nil, fmt.Errorf("social: invalid page token %q", q.PageToken)
		}
	}
	size := q.MaxResults
	if size <= 0 {
		size = defaultPageSize
	}
	if size > maxPageSize {
		size = maxPageSize
	}
	page := &Page{TotalMatches: len(matches)}
	if offset >= len(matches) {
		return page, nil
	}
	end := offset + size
	if end > len(matches) {
		end = len(matches)
	}
	page.Posts = append(page.Posts, matches[offset:end]...)
	if end < len(matches) {
		page.NextToken = fmt.Sprintf("o%d", end)
	}
	return page, nil
}

// matchLocked evaluates the query filters and returns all matches in
// (CreatedAt, ID) order. Caller holds at least the read lock.
func (s *Store) matchLocked(q Query) ([]*Post, error) {
	tags := q.normalizedTags()

	// Candidate set: union of tag postings, or the full time index.
	var candidates []*Post
	if len(tags) > 0 {
		seen := make(map[string]bool)
		for _, tag := range tags {
			for _, p := range s.byTag[tag] {
				if !seen[p.ID] {
					seen[p.ID] = true
					candidates = append(candidates, p)
				}
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			if !candidates[i].CreatedAt.Equal(candidates[j].CreatedAt) {
				return candidates[i].CreatedAt.Before(candidates[j].CreatedAt)
			}
			return candidates[i].ID < candidates[j].ID
		})
	} else {
		candidates = s.byTime
	}

	must := make([]string, 0, len(q.MustTerms))
	for _, t := range q.MustTerms {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			must = append(must, t)
		}
	}

	var out []*Post
	for _, p := range candidates {
		if q.Region != "" && p.Region != q.Region {
			continue
		}
		if !q.Since.IsZero() && p.CreatedAt.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && !p.CreatedAt.Before(q.Until) {
			continue
		}
		if len(must) > 0 {
			terms := s.terms[p.ID]
			ok := true
			for _, m := range must {
				if !terms[m] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// SearchAll drains every page of a query through any Searcher,
// accumulating all matching posts. It guards against runaway listings
// with a hard cap of 100 pages.
func SearchAll(ctx context.Context, s Searcher, q Query) ([]*Post, error) {
	var out []*Post
	q.PageToken = ""
	for pages := 0; ; pages++ {
		if pages >= 100 {
			return nil, fmt.Errorf("social: pagination exceeded 100 pages")
		}
		page, err := s.Search(ctx, q)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Posts...)
		if page.NextToken == "" {
			return out, nil
		}
		q.PageToken = page.NextToken
	}
}
