package social

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// Query selects posts from a store. All filters combine conjunctively;
// zero-valued filters are inactive.
type Query struct {
	// AnyTags matches posts carrying at least one of these hashtags
	// (normalized, no '#'). Empty means "any post".
	AnyTags []string
	// MustTerms are words or hashtags that must ALL appear in the post
	// text (the paper's target-application filter, e.g. "excavator").
	MustTerms []string
	// Region filters by origin region; empty means all regions.
	Region Region
	// Since/Until bound CreatedAt: Since ≤ t < Until. Zero values are
	// open ends.
	Since, Until time.Time
	// MaxResults caps the page size; 0 means the server default.
	MaxResults int
	// PageToken resumes a paginated listing; empty starts at the top.
	PageToken string
}

// normalizedTags returns the query's tags normalized for index lookup.
func (q Query) normalizedTags() []string {
	out := make([]string, 0, len(q.AnyTags))
	for _, t := range q.AnyTags {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// normalizedMustTerms returns the query's must-terms normalized for
// index lookup.
func (q Query) normalizedMustTerms() []string {
	out := make([]string, 0, len(q.MustTerms))
	for _, t := range q.MustTerms {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Page is one page of search results.
type Page struct {
	// Posts are the matching posts in (CreatedAt, ID) order.
	Posts []*Post
	// NextToken resumes the listing; empty when the listing is complete.
	NextToken string
	// TotalMatches is the total number of posts matching the query
	// across all pages.
	TotalMatches int
}

// Searcher is the capability the PSP framework needs from a social
// platform: paginated keyword search. Both the in-process Store and the
// HTTP Client implement it.
//
// Implementations must be safe for concurrent use: the framework's
// social workflow fans queries out across a worker pool, and federated
// search (Multi) drains all backends in parallel goroutines.
type Searcher interface {
	Search(ctx context.Context, q Query) (*Page, error)
}

// Store is an in-memory post store with hashtag, term and time indices.
// It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	posts  map[string]*Post
	byTime []*Post            // sorted by (CreatedAt, ID)
	byTag  map[string][]*Post // tag → postings (insertion order)
	// byTerm is the inverted term index: normalized term → posting list
	// in (CreatedAt, ID) order. Term-only queries intersect posting
	// lists here instead of scanning byTime.
	byTerm map[string][]*Post
	terms  map[string]map[string]bool // post ID → term set (precomputed)
}

var _ Searcher = (*Store)(nil)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		posts:  make(map[string]*Post),
		byTag:  make(map[string][]*Post),
		byTerm: make(map[string][]*Post),
		terms:  make(map[string]map[string]bool),
	}
}

// postLess orders posts by (CreatedAt, ID).
func postLess(a, b *Post) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.Before(b.CreatedAt)
	}
	return a.ID < b.ID
}

// Add inserts posts as one batch: validation happens per post, index
// maintenance once per batch (single re-sort instead of a per-post
// insertion sort). Duplicate IDs and invalid posts are rejected; on
// error the store is left unchanged for the offending post but earlier
// posts of the batch stay inserted.
func (s *Store) Add(posts ...*Post) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	batch := make([]*Post, 0, len(posts))
	for _, p := range posts {
		if err = p.Validate(); err != nil {
			break
		}
		if _, dup := s.posts[p.ID]; dup {
			err = fmt.Errorf("social: duplicate post ID %s", p.ID)
			break
		}
		s.posts[p.ID] = p
		s.terms[p.ID] = p.Terms()
		batch = append(batch, p)
	}
	s.insertBatchLocked(batch)
	return err
}

// insertBatchLocked merges a validated batch into the time, tag and
// term indices with one sort per touched index.
func (s *Store) insertBatchLocked(batch []*Post) {
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return postLess(batch[i], batch[j]) })
	s.byTime = mergeSorted(s.byTime, batch)

	touched := make(map[string]bool)
	for _, p := range batch {
		for _, tag := range p.Hashtags() {
			tag = nlp.Normalize(tag)
			s.byTag[tag] = append(s.byTag[tag], p)
		}
		for term := range s.terms[p.ID] {
			s.byTerm[term] = append(s.byTerm[term], p)
			touched[term] = true
		}
	}
	for term := range touched {
		plist := s.byTerm[term]
		if !sort.SliceIsSorted(plist, func(i, j int) bool { return postLess(plist[i], plist[j]) }) {
			sort.Slice(plist, func(i, j int) bool { return postLess(plist[i], plist[j]) })
		}
	}
}

// mergeSorted merges two (CreatedAt, ID)-sorted slices into one.
func mergeSorted(a, b []*Post) []*Post {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]*Post, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if postLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Len returns the number of stored posts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.posts)
}

// Post returns the post with the given ID, or nil.
func (s *Store) Post(id string) *Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.posts[id]
}

// defaultPageSize caps pages when the query does not specify MaxResults.
const defaultPageSize = 100

// maxPageSize is the hard page-size ceiling, mirroring public API limits.
const maxPageSize = 500

// parsePageToken parses an "o<offset>" continuation token. Parsing is
// strict: the token must be exactly "o" followed by decimal digits, so
// trailing garbage ("o5junk") is rejected rather than silently accepted.
func parsePageToken(token string) (int, error) {
	rest, ok := strings.CutPrefix(token, "o")
	if !ok || rest == "" {
		return 0, fmt.Errorf("social: invalid page token %q", token)
	}
	for _, r := range rest {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("social: invalid page token %q", token)
		}
	}
	offset, err := strconv.Atoi(rest)
	if err != nil || offset < 0 {
		return 0, fmt.Errorf("social: invalid page token %q", token)
	}
	return offset, nil
}

// pageOf cuts one page out of a full (CreatedAt, ID)-ordered match list,
// applying the shared page-size defaults and offset-token continuation.
func pageOf(matches []*Post, maxResults int, pageToken string) (*Page, error) {
	offset := 0
	if pageToken != "" {
		var err error
		if offset, err = parsePageToken(pageToken); err != nil {
			return nil, err
		}
	}
	size := maxResults
	if size <= 0 {
		size = defaultPageSize
	}
	if size > maxPageSize {
		size = maxPageSize
	}
	page := &Page{TotalMatches: len(matches)}
	if offset >= len(matches) {
		return page, nil
	}
	end := offset + size
	if end > len(matches) {
		end = len(matches)
	}
	page.Posts = append(page.Posts, matches[offset:end]...)
	if end < len(matches) {
		page.NextToken = fmt.Sprintf("o%d", end)
	}
	return page, nil
}

// Search runs the query and returns one result page.
func (s *Store) Search(ctx context.Context, q Query) (*Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	matches, err := s.matchLocked(q)
	if err != nil {
		return nil, err
	}
	return pageOf(matches, q.MaxResults, q.PageToken)
}

// matchLocked evaluates the query filters and returns all matches in
// (CreatedAt, ID) order. Caller holds at least the read lock.
func (s *Store) matchLocked(q Query) ([]*Post, error) {
	tags := q.normalizedTags()
	must := q.normalizedMustTerms()

	// Candidate set: union of tag postings, intersection of term
	// postings, or the full time index, in that preference order. The
	// term-index path already guarantees every candidate carries all
	// must-terms, so the per-post term check below is skipped.
	var candidates []*Post
	termIndexed := false
	switch {
	case len(tags) > 0:
		seen := make(map[string]bool)
		for _, tag := range tags {
			for _, p := range s.byTag[tag] {
				if !seen[p.ID] {
					seen[p.ID] = true
					candidates = append(candidates, p)
				}
			}
		}
		sort.Slice(candidates, func(i, j int) bool { return postLess(candidates[i], candidates[j]) })
	case len(must) > 0:
		candidates = s.intersectTermsLocked(must)
		termIndexed = true
	default:
		candidates = s.byTime
	}

	var out []*Post
	for _, p := range candidates {
		if q.Region != "" && p.Region != q.Region {
			continue
		}
		if !q.Since.IsZero() && p.CreatedAt.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && !p.CreatedAt.Before(q.Until) {
			continue
		}
		if len(must) > 0 && !termIndexed && !s.hasAllTermsLocked(p.ID, must) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// intersectTermsLocked intersects the posting lists of all terms by
// walking the shortest list and membership-testing the rest, so the
// cost is proportional to the rarest term's postings rather than the
// corpus size. The result keeps (CreatedAt, ID) order because posting
// lists are maintained sorted.
func (s *Store) intersectTermsLocked(must []string) []*Post {
	shortest := -1
	for i, m := range must {
		plist, ok := s.byTerm[m]
		if !ok || len(plist) == 0 {
			return nil
		}
		if shortest < 0 || len(plist) < len(s.byTerm[must[shortest]]) {
			shortest = i
		}
	}
	base := s.byTerm[must[shortest]]
	out := make([]*Post, 0, len(base))
	for _, p := range base {
		if s.hasAllTermsLocked(p.ID, must) {
			out = append(out, p)
		}
	}
	return out
}

// hasAllTermsLocked reports whether the post carries every term.
func (s *Store) hasAllTermsLocked(id string, must []string) bool {
	terms := s.terms[id]
	for _, m := range must {
		if !terms[m] {
			return false
		}
	}
	return true
}

// SearchAll drains every page of a query through any Searcher,
// accumulating all matching posts. It guards against runaway listings
// with a hard cap of 100 pages.
func SearchAll(ctx context.Context, s Searcher, q Query) ([]*Post, error) {
	var out []*Post
	q.PageToken = ""
	for pages := 0; ; pages++ {
		if pages >= 100 {
			return nil, fmt.Errorf("social: pagination exceeded 100 pages")
		}
		page, err := s.Search(ctx, q)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Posts...)
		if page.NextToken == "" {
			return out, nil
		}
		q.PageToken = page.NextToken
	}
}
