package social

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psp-framework/psp/internal/durable"
	"github.com/psp-framework/psp/internal/nlp"
	"github.com/psp-framework/psp/internal/obs"
)

// Query selects posts from a store. All filters combine conjunctively;
// zero-valued filters are inactive.
type Query struct {
	// AnyTags matches posts carrying at least one of these hashtags
	// (normalized, no '#'). Empty means "any post".
	AnyTags []string
	// MustTerms are words or hashtags that must ALL appear in the post
	// text (the paper's target-application filter, e.g. "excavator").
	MustTerms []string
	// Region filters by origin region; empty means all regions.
	Region Region
	// Since/Until bound CreatedAt: Since ≤ t < Until. Zero values are
	// open ends.
	Since, Until time.Time
	// MaxResults caps the page size; 0 means the server default.
	MaxResults int
	// PageToken resumes a paginated listing; empty starts at the top.
	PageToken string
	// SkipTotal declares that the caller does not need
	// Page.TotalMatches, letting filtered pages skip the count walk and
	// stay fully O(page + seek). With it set, TotalMatches is
	// unspecified (implementations may leave it zero or still fill it).
	// Like the pagination fields it is a per-call cost hint, not a
	// filter: it never changes which posts match.
	SkipTotal bool
}

// normalizedTags returns the query's tags normalized for index lookup.
func (q Query) normalizedTags() []string {
	out := make([]string, 0, len(q.AnyTags))
	for _, t := range q.AnyTags {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// normalizedMustTerms returns the query's must-terms normalized for
// index lookup.
func (q Query) normalizedMustTerms() []string {
	out := make([]string, 0, len(q.MustTerms))
	for _, t := range q.MustTerms {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Canonical returns the query with tags and must-terms normalized and
// sorted and pagination fields cleared — two queries with equal
// canonical forms select the same posts. The canonical form is the cache
// key of the workflow result cache. SkipTotal, a per-call cost hint, is
// cleared like the pagination fields.
func (q Query) Canonical() Query {
	c := Query{
		AnyTags:   q.normalizedTags(),
		MustTerms: q.normalizedMustTerms(),
		Region:    q.Region,
		Since:     q.Since,
		Until:     q.Until,
	}
	sort.Strings(c.AnyTags)
	sort.Strings(c.MustTerms)
	return c
}

// PostProfile is a post with its normalized tag and term sets
// precomputed, so evaluating many queries against the same post (the
// monitoring subsystem's invalidation and dirty-set passes) tokenizes
// it once instead of once per query.
type PostProfile struct {
	post  *Post
	tags  map[string]bool
	terms map[string]bool
}

// ProfilePost tokenizes a post once for repeated query matching.
func ProfilePost(p *Post) *PostProfile {
	tags := make(map[string]bool)
	for _, t := range p.Hashtags() {
		tags[nlp.Normalize(t)] = true
	}
	return &PostProfile{post: p, tags: tags, terms: p.Terms()}
}

// ProfilePosts tokenizes a batch once for repeated query matching.
func ProfilePosts(posts []*Post) []*PostProfile {
	out := make([]*PostProfile, len(posts))
	for i, p := range posts {
		out[i] = ProfilePost(p)
	}
	return out
}

// MatchesPost reports whether the post satisfies every filter of the
// query — the exact predicate Search applies, evaluated against a single
// post without touching a store. The monitoring subsystem uses it to
// decide which cached query results a newly ingested post invalidates.
func (q Query) MatchesPost(p *Post) bool {
	return q.Matcher().Matches(ProfilePost(p))
}

// QueryMatcher is a query compiled for repeated profile matching: tags
// and must-terms are normalized once, so the (query × post) invalidation
// loops of the monitoring subsystem do no per-call normalization.
type QueryMatcher struct {
	region       Region
	since, until time.Time
	tags, must   []string
}

// Matcher compiles the query's filters.
func (q Query) Matcher() QueryMatcher {
	return QueryMatcher{
		region: q.Region,
		since:  q.Since,
		until:  q.Until,
		tags:   q.normalizedTags(),
		must:   q.normalizedMustTerms(),
	}
}

// Matches applies the compiled predicate to a profiled post.
func (m QueryMatcher) Matches(pp *PostProfile) bool {
	p := pp.post
	if m.region != "" && p.Region != m.region {
		return false
	}
	if !m.since.IsZero() && p.CreatedAt.Before(m.since) {
		return false
	}
	if !m.until.IsZero() && !p.CreatedAt.Before(m.until) {
		return false
	}
	if len(m.tags) > 0 {
		hit := false
		for _, t := range m.tags {
			if pp.tags[t] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	for _, t := range m.must {
		if !pp.terms[t] {
			return false
		}
	}
	return true
}

// Page is one page of search results.
type Page struct {
	// Posts are the matching posts in (CreatedAt, ID) order.
	Posts []*Post
	// NextToken resumes the listing; empty when the listing is complete.
	NextToken string
	// TotalMatches is the total number of posts matching the query
	// across all pages. Unspecified when the query set SkipTotal. On a
	// Degraded federated page it sums the healthy backends only.
	TotalMatches int
	// Degraded marks a partial federated page: some backends failed or
	// were skipped and their posts are missing (see MultiOptions.Partial;
	// always false on single-backend pages).
	Degraded bool
	// Backends carries per-backend health annotations on Degraded
	// federated pages; nil on healthy (and single-backend) pages, so the
	// hot path never pays for annotations it does not need.
	Backends []BackendStatus
}

// Searcher is the capability the PSP framework needs from a social
// platform: paginated keyword search. Both the in-process Store and the
// HTTP Client implement it.
//
// Implementations must be safe for concurrent use: the framework's
// social workflow fans queries out across a worker pool, and federated
// search (Multi) drains all backends in parallel goroutines.
type Searcher interface {
	Search(ctx context.Context, q Query) (*Page, error)
}

// idStripes is the stripe count of the global ID → post registry.
// Duplicate detection, Post and Len take one hash-keyed stripe lock
// instead of a store-global mutex, so the Add path holds no
// store-global lock at all.
const idStripes = 64

// idStripe is one lock stripe of the ID registry.
type idStripe struct {
	mu    sync.RWMutex
	posts map[string]*Post
}

// idStripeOf hashes a post ID to its registry stripe (FNV-1a).
func idStripeOf(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % idStripes)
}

// minPrunableTime and maxPrunableTime bound the timestamps whose
// bucket arithmetic is exact in int64 nanoseconds (one bucket of
// margin for Until's exclusive-bound adjustment).
var (
	minPrunableTime = time.Unix(0, math.MinInt64+shardBucketNanos)
	maxPrunableTime = time.Unix(0, math.MaxInt64-shardBucketNanos)
)

// Store is an in-memory post store with hashtag, term and time indices,
// striped across shards keyed by CreatedAt time bucket (see shard.go
// for the stripe layout). It is safe for concurrent use. Reads are
// lock-free: each shard publishes an immutable snapshot of its indices
// behind an atomic pointer, Search loads one snapshot per stripe and
// streams it, so an in-flight page never delays a writer and a
// committing writer never stalls a reader. Writers contend only with
// writers of the same stripe (the shard mutex is writer–writer only)
// plus, batch-wide, the changefeed sequencer.
//
// Lock order (nested acquisitions always follow it): shard writer locks
// in ascending stripe index, then the subscriber-registry mutex submu,
// then a subscriber's own lock. ID-registry stripe locks nest inside
// nothing. Changefeed publication takes no store-level lock at all — it
// atomically loads the subscriber set and enqueues under each
// subscriber's own lock.
type Store struct {
	shards []*shard

	// ids is the global ID → post registry (duplicate detection, Post,
	// Len), striped by ID hash. Index maintenance happens in the shard
	// snapshots.
	ids [idStripes]idStripe

	// visits counts shard snapshots examined by Search — the
	// observable effect of window→stripe pruning, read by tests and
	// benchmarks. countVisits gates it: the increment would be the only
	// cross-core shared write on the otherwise share-nothing read path,
	// so it stays off until someone reads the counter (Search then only
	// pays a read-shared bool load).
	visits      atomic.Int64
	countVisits atomic.Bool

	// subs is the changefeed subscriber registry behind an atomic
	// pointer to an immutable set: publication is a lock-free load plus
	// per-subscriber enqueue, so commits on disjoint stripe sets no
	// longer serialize store-wide through a sequencer mutex. submu
	// serializes only registry mutations (Watch registration, delivery
	// teardown), which copy-on-write a replacement set.
	submu sync.Mutex
	subs  atomic.Pointer[subscriberSet]

	// dur is the store's write-ahead persistence (OpenStoreDir); nil
	// for a purely in-memory store. When set, Add appends each batch to
	// its stripes' logs — group-committed, fsync'd, before any index
	// commit — so an acknowledged Add survives a crash (see durable.go).
	dur *storeDurability

	// met is the optional recording surface (SetMetrics). Hot paths pay
	// one atomic pointer load and a nil check when detached; every
	// recorder behind it is itself lock-free (see internal/obs).
	met atomic.Pointer[StoreMetrics]

	// trc is the optional span tracer (SetTracer), same contract as
	// met: one atomic load per operation, nil means fully off.
	trc atomic.Pointer[obs.Tracer]

	// lastIngest names the most recent recorded ingest span so the
	// monitor can link its delta run into that trace (LastIngestTrace).
	lastIngest atomic.Pointer[ingestRef]

	// degraded, when non-nil, marks the store read-only after a
	// persistent WAL failure (see ErrDegraded): ingest is refused with
	// the typed error, reads keep serving. Add pays one atomic load.
	degraded atomic.Pointer[DegradedError]
}

var _ Searcher = (*Store)(nil)

// DefaultShards is the stripe count NewStore uses. Search results are
// independent of the shard count; it only sets how many writers can
// make progress concurrently.
const DefaultShards = 8

// NewStore returns an empty store striped across DefaultShards shards.
func NewStore() *Store { return NewStoreShards(0) }

// NewStoreShards returns an empty store striped across n shards keyed
// by CreatedAt time bucket; n ≤ 0 selects DefaultShards. Any n yields
// byte-identical search results — the shard count trades write
// concurrency against per-query fan-out width.
func NewStoreShards(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Store{
		shards: make([]*shard, n),
	}
	s.subs.Store(&subscriberSet{})
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	for i := range s.ids {
		s.ids[i].posts = make(map[string]*Post)
	}
	return s
}

// Shards returns the store's stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor maps a timestamp to its stripe index.
func (s *Store) shardFor(t time.Time) int {
	i := int(bucketOf(t) % int64(len(s.shards)))
	if i < 0 {
		i += len(s.shards)
	}
	return i
}

// stripesFor maps a query window to the stripe indices that can hold
// matches: the window [since, until) covers a contiguous run of time
// buckets, every bucket lives on stripe (bucket mod N), so a window
// narrower than N buckets reaches fewer than N stripes and the rest are
// skipped without loading a snapshot. nil means "every stripe" (an
// unbounded or wide window); an empty non-nil slice means the window is
// empty.
func (s *Store) stripesFor(since, until time.Time) []int {
	n := int64(len(s.shards))
	if since.IsZero() || until.IsZero() {
		return nil
	}
	// Bucket math runs on UnixNano, which only represents ~1678–2262;
	// a far-past Since or far-future Until (the usual open-end
	// sentinels) would compute a garbage bucket run, so such windows
	// fall back to the unpruned fan-out instead.
	if since.Before(minPrunableTime) || until.After(maxPrunableTime) {
		return nil
	}
	if !since.Before(until) {
		return []int{}
	}
	first := bucketOf(since)
	last := bucketOf(until.Add(-time.Nanosecond)) // until is exclusive
	if last-first+1 >= n {
		return nil
	}
	stripes := make([]int, 0, last-first+1)
	for b := first; b <= last; b++ {
		i := int(b % n)
		if i < 0 {
			i += int(n)
		}
		stripes = append(stripes, i)
	}
	// Consecutive buckets hit distinct stripes until wrapping, so the
	// run contains no duplicates by construction (its length is < n).
	return stripes
}

// lockWriters acquires every shard writer lock in ascending stripe
// order — the store's lock order, shared with Add's write-side
// acquisition. Only Watch registration takes the full set: it freezes
// commits store-wide for the duration of its snapshot. Readers never
// lock.
func (s *Store) lockWriters() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Store) unlockWriters() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// postLess orders posts by (CreatedAt, ID).
func postLess(a, b *Post) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.Before(b.CreatedAt)
	}
	return a.ID < b.ID
}

// Add inserts posts as one batch: validation happens per post, index
// maintenance once per batch (single sorted merge per touched index).
// Duplicate IDs and invalid posts are rejected; on error the store is
// left unchanged for the offending post but earlier posts of the batch
// stay inserted. On a durable store (OpenStoreDir) a write-ahead-log
// failure likewise keeps exactly the posts whose log records were
// already fsync'd — the disk truth a recovery would replay — and rolls
// back the rest, reporting the partial insert in the error.
func (s *Store) Add(posts ...*Post) error {
	_, err := s.AddCount(posts...)
	return err
}

// AddCount is Add reporting how many posts of this batch were inserted
// — the count is exact under concurrent writers, unlike diffing Len
// around the call.
//
// Visibility: IDs commit to the global registry (duplicate detection,
// Post, Len) before the shard snapshots commit, so under a concurrent
// writer a post can briefly be visible to Post/Len — and reject a
// duplicate — while Search does not return it yet. Searchability of an
// accepted post is guaranteed once its Add (or, for a rejected
// duplicate, the winning Add of a post with the same timestamp)
// returns. Likewise, a batch spanning several stripes becomes
// searchable stripe by stripe in ascending order: a concurrent reader
// may observe a prefix of the batch's stripes, exactly as if the batch
// had been split into per-stripe Adds — keyset listings stay skip- and
// duplicate-free regardless. The changefeed is stricter: it always
// delivers the whole batch as one unit (see Watch).
func (s *Store) AddCount(posts ...*Post) (int, error) {
	return s.AddCountContext(context.Background(), posts...)
}

// AddCountContext is AddCount under a caller context. The context does
// not cancel the insert — an acknowledged batch is all-or-nothing per
// the WAL contract — it carries the caller's trace: when a tracer is
// attached (SetTracer), the ingest records a "store.add" span (with a
// "wal.append" child on durable stores) linked under whatever span the
// context holds, so an HTTP ingest and the delta run it triggers share
// one trace.
func (s *Store) AddCountContext(ctx context.Context, posts ...*Post) (int, error) {
	m, t0 := s.metricsNow()
	ctx, span := s.trc.Load().Start(ctx, "store.add")
	span.SetInt("posts", int64(len(posts)))
	if de := s.degraded.Load(); de != nil {
		// Read-only degraded mode: refuse before registering anything, so
		// a rejected batch leaves no trace in the ID registry.
		if m != nil {
			m.Adds.Inc()
			m.AddErrors.Inc()
			m.AddLatency.ObserveSince(t0)
		}
		span.Fail(de)
		span.End()
		return 0, de
	}
	var err error
	batch := make([]*Post, 0, len(posts))
	for _, p := range posts {
		if p == nil {
			// Guard remote ingest: a JSON array element of null decodes
			// to a nil *Post.
			err = fmt.Errorf("social: nil post")
			break
		}
		if err = p.Validate(); err != nil {
			break
		}
		st := &s.ids[idStripeOf(p.ID)]
		st.mu.Lock()
		if _, dup := st.posts[p.ID]; dup {
			st.mu.Unlock()
			err = fmt.Errorf("social: duplicate post ID %s", p.ID)
			break
		}
		st.posts[p.ID] = p
		st.mu.Unlock()
		batch = append(batch, p)
	}
	inserted, walErr := s.insertBatch(ctx, batch)
	if walErr != nil {
		err = walErr
	}
	if m != nil {
		m.Adds.Inc()
		m.AddedPosts.Add(uint64(inserted))
		if err != nil {
			m.AddErrors.Inc()
		}
		m.AddLatency.ObserveSince(t0)
	}
	span.SetInt("inserted", int64(inserted))
	span.Fail(err)
	span.End()
	s.noteIngest(span)
	return inserted, err
}

// stripePart is one stripe's share of a validated batch: its posts and
// their precomputed term sets in (CreatedAt, ID) order, plus — on a
// durable store — the stripe-WAL sequences the sub-batch's records
// were logged under (several when the sub-batch exceeds the per-record
// chunk size).
type stripePart struct {
	stripe int
	posts  []*Post
	terms  []map[string]bool
	seqs   []uint64
}

// partitionBatch splits a (CreatedAt, ID)-sorted batch into its
// time-bucket stripes, tokenizing outside any lock: term-set
// construction is the expensive part of ingest and needs no store
// state. Parts come out in ascending stripe order — the store's lock
// order.
func (s *Store) partitionBatch(batch []*Post) []*stripePart {
	n := len(s.shards)
	byStripe := make([]*stripePart, n)
	for _, p := range batch {
		i := s.shardFor(p.CreatedAt)
		if byStripe[i] == nil {
			byStripe[i] = &stripePart{stripe: i}
		}
		byStripe[i].posts = append(byStripe[i].posts, p)
		byStripe[i].terms = append(byStripe[i].terms, p.Terms())
	}
	parts := make([]*stripePart, 0, 1)
	for _, part := range byStripe {
		if part != nil {
			parts = append(parts, part)
		}
	}
	return parts
}

// insertBatch makes a validated, registered batch durable (when the
// store has a write-ahead log) and commits it to the in-memory indices,
// returning how many of the batch's posts were inserted. The in-memory
// commit itself cannot fail; on a WAL failure the disk truth wins —
// sub-batches whose records were already fsync'd are committed (a
// recovery would resurface them regardless), the unlogged remainder is
// unregistered, and the error reports the partial insert.
func (s *Store) insertBatch(ctx context.Context, batch []*Post) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	sort.Slice(batch, func(i, j int) bool { return postLess(batch[i], batch[j]) })
	parts := s.partitionBatch(batch)
	if s.dur == nil {
		s.commitParts(parts, batch)
		return len(batch), nil
	}
	// Write-ahead: the batch hits its stripes' logs (group-committed
	// and fsync'd) before any index sees it, off the commit critical
	// section below — a slow fsync never extends a lock hold. The span
	// measures the durability wait end to end; logParts fills in the
	// record/group-size attribution.
	_, wspan := s.trc.Load().Start(ctx, "wal.append")
	wspan.SetInt("stripes", int64(len(parts)))
	logged, err := s.dur.logParts(parts, wspan)
	wspan.Fail(err)
	wspan.End()
	if err == nil {
		s.commitParts(parts, batch)
		s.dur.markApplied(parts)
		return len(batch), nil
	}
	committed := make([]*Post, 0, len(batch))
	for _, part := range logged {
		committed = append(committed, part.posts...)
	}
	sort.Slice(committed, func(i, j int) bool { return postLess(committed[i], committed[j]) })
	if len(committed) > 0 {
		s.commitParts(logged, committed)
		s.dur.markApplied(logged)
	}
	onDisk := make(map[*Post]bool, len(committed))
	for _, p := range committed {
		onDisk[p] = true
	}
	rollback := make([]*Post, 0, len(batch)-len(committed))
	for _, p := range batch {
		if !onDisk[p] {
			rollback = append(rollback, p)
		}
	}
	s.unregister(rollback)
	// A write or fsync failure is the log's sticky error state — every
	// later append on that stripe would fail too — so the store flips to
	// read-only degraded mode. A closed log (racing Close) and an encode
	// failure (a per-batch problem) are not disk damage and do not.
	if !errors.Is(err, durable.ErrClosed) && !errors.Is(err, errEncode) {
		s.markDegraded(err)
	}
	return len(committed), fmt.Errorf("social: wal append (%d of %d posts inserted): %w", len(committed), len(batch), err)
}

// commitParts distributes a partitioned batch across its time-bucket
// shards and publishes it to the changefeed. The batch commits one
// snapshot swap per touched shard under the shards' writer locks
// (acquired in ascending stripe order), with the publication inside
// that window, so changefeed registrations — which hold every writer
// lock while they snapshot and register — observe the batch atomically,
// never a torn prefix, while readers are never involved in the critical
// section at all. Publication itself is lock-free against other
// commits: batches whose stripe sets overlap still serialize on the
// shared shard locks, but commits on disjoint stripes publish
// concurrently (see Watch for the resulting ordering contract).
func (s *Store) commitParts(parts []*stripePart, batch []*Post) {
	for _, part := range parts {
		s.shards[part.stripe].mu.Lock()
	}
	for _, part := range parts {
		s.shards[part.stripe].commit(part.posts, part.terms)
	}
	s.publishSequenced(batch)
	for i := len(parts) - 1; i >= 0; i-- {
		s.shards[parts[i].stripe].mu.Unlock()
	}
}

// unregister rolls a batch's IDs back out of the global registry (the
// WAL-failure path: the batch never reached an index).
func (s *Store) unregister(batch []*Post) {
	for _, p := range batch {
		st := &s.ids[idStripeOf(p.ID)]
		st.mu.Lock()
		delete(st.posts, p.ID)
		st.mu.Unlock()
	}
}

// mergeHeap orders posting-list heads by (CreatedAt, ID) for the k-way
// merge of tag unions. Each element is a posting list with a read
// position.
type mergeHeap []mergeSource

type mergeSource struct {
	plist []*Post
	pos   int
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return postLess(h[i].plist[h[i].pos], h[j].plist[h[j].pos])
}
func (h mergeHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)     { *h = append(*h, x.(mergeSource)) }
func (h *mergeHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// mergeKSorted merges k (CreatedAt, ID)-sorted posting lists into one
// sorted, duplicate-free union. Posts carrying several of the queried
// tags appear in multiple lists; equal heads are deduplicated by key
// during the merge, so the union costs O(total postings · log k) with no
// query-time sort.
func mergeKSorted(lists [][]*Post) []*Post {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	h := make(mergeHeap, 0, len(lists))
	total := 0
	for _, plist := range lists {
		total += len(plist)
		h = append(h, mergeSource{plist: plist})
	}
	heap.Init(&h)
	out := make([]*Post, 0, total)
	for h.Len() > 0 {
		src := h[0]
		p := src.plist[src.pos]
		if n := len(out); n == 0 || out[n-1] != p {
			out = append(out, p)
		}
		if src.pos+1 < len(src.plist) {
			h[0].pos++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// mergeSorted merges two (CreatedAt, ID)-sorted slices into one. Inputs
// are never mutated; when one side is empty the other is returned as
// is, which is safe because published posting lists are immutable.
func mergeSorted(a, b []*Post) []*Post {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]*Post, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if postLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Len returns the number of stored posts.
func (s *Store) Len() int {
	n := 0
	for i := range s.ids {
		s.ids[i].mu.RLock()
		n += len(s.ids[i].posts)
		s.ids[i].mu.RUnlock()
	}
	return n
}

// Post returns the post with the given ID, or nil.
func (s *Store) Post(id string) *Post {
	st := &s.ids[idStripeOf(id)]
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.posts[id]
}

// DefaultPageSize caps pages when the query does not specify MaxResults.
const DefaultPageSize = 100

// MaxPageSize is the hard page-size ceiling, mirroring public API
// limits. Callers draining full listings (the core workflow's platform
// queries) should request it explicitly to minimize page round trips.
const MaxPageSize = 500

// Search runs the query and returns one result page. Continuation uses
// keyset tokens — see EncodeCursor — so a listing drained page by page
// while writers Add posts concurrently never skips or repeats a post
// that was present when the drain started.
//
// Search is lock-free: it loads one immutable snapshot per stripe and
// never blocks a writer (or is blocked by one). Window→stripe pruning
// runs first — a Since/Until window narrower than one round of time
// buckets maps to the stripe set those buckets occupy, and only that
// set is visited. Pages stream: every visited snapshot seeks its sorted
// indices to the cursor by binary search and yields matches lazily, the
// per-shard streams k-way merge in (CreatedAt, ID) order, and the merge
// stops after MaxResults+1 posts — so producing a page costs
// O(page + seek), not O(matches). TotalMatches is counted index-side
// without materializing (O(log corpus) for unfiltered, single-tag and
// single-term windowed queries; a walk of the narrowed candidate
// postings otherwise) and skipped entirely when the query sets
// SkipTotal.
func (s *Store) Search(ctx context.Context, q Query) (*Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, t0 := s.metricsNow()
	_, span := s.trc.Load().Start(ctx, "store.search")
	var cur *Cursor
	if q.PageToken != "" {
		c, err := ParseCursor(q.PageToken)
		if err != nil {
			span.Fail(err)
			span.End()
			return nil, err
		}
		cur = &c
	}
	size := resolvePageSize(q.MaxResults)
	tags := q.normalizedTags()
	must := q.normalizedMustTerms()

	// Window→stripe pruning, then one coherent snapshot load per
	// surviving stripe. Each snapshot stays valid for the whole call no
	// matter how many commits land meanwhile.
	stripes := s.stripesFor(q.Since, q.Until)
	if stripes == nil {
		stripes = make([]int, len(s.shards))
		for i := range stripes {
			stripes[i] = i
		}
	}
	if s.countVisits.Load() {
		s.visits.Add(int64(len(stripes)))
	}
	if m != nil {
		m.ShardVisits.Add(uint64(len(stripes)))
	}
	snaps := make([]*shardSnapshot, len(stripes))
	for k, i := range stripes {
		snaps[k] = s.shards[i].view()
	}
	if span != nil {
		// Per-query cost attribution: the stripe fan-out after pruning
		// and how much un-compacted delta the visited snapshots carry.
		span.SetInt("stripes", int64(len(stripes)))
		deltaPosts := 0
		for _, sn := range snaps {
			deltaPosts += len(sn.delta.byTime)
		}
		span.SetInt("delta_posts", int64(deltaPosts))
	}

	// Per-shard seek + count fan out across a bounded worker set; the
	// page merge below then pulls the pre-seeked streams serially. An
	// unfiltered time-window query does a few binary searches per
	// snapshot (count by bound subtraction) — there the goroutine
	// handoff would dwarf the work, so it runs inline.
	iters := make([]*shardIter, len(snaps))
	counts := make([]int, len(snaps))
	perSnap := func(k int) {
		iters[k] = snaps[k].matchIter(&q, tags, must, cur)
		if !q.SkipTotal {
			counts[k] = snaps[k].countMatches(&q, tags, must)
		}
	}
	// With SkipTotal the filtered case reduces to iterator construction
	// — a few binary searches — so it runs inline too.
	if q.SkipTotal || (len(tags) == 0 && len(must) == 0 && q.Region == "") {
		for k := range snaps {
			perSnap(k)
		}
	} else {
		forEachBounded(len(snaps), perSnap)
	}

	page := &Page{}
	for _, c := range counts {
		page.TotalMatches += c
	}
	posts := mergeShardStreams(iters, size+1)
	if len(posts) > size {
		posts = posts[:size]
		page.NextToken = EncodeCursor(CursorOf(posts[len(posts)-1]))
	}
	if len(posts) > 0 {
		page.Posts = posts
	}
	if m != nil {
		m.Searches.Inc()
		m.SearchLatency.ObserveSince(t0)
	}
	if span != nil {
		scanned := 0
		for _, it := range iters {
			scanned += it.scanned
		}
		span.SetInt("scanned", int64(scanned))
		span.SetInt("posts", int64(len(posts)))
		if !q.SkipTotal {
			span.SetInt("total", int64(page.TotalMatches))
		}
		span.End()
	}
	return page, nil
}

// SearchShardVisits reads the cumulative count of shard snapshots
// Search has examined. It is an observability counter: the difference
// across a workload divided by its query count is the per-query stripe
// fan-out, which window→stripe pruning keeps at O(window buckets)
// instead of the stripe count. Counting is observer-activated — it
// starts at the first call, so read a baseline before the measured
// workload; stores nobody observes never pay the shared write on the
// read path. The pruning tests and benchmarks verify the stripe-set
// contract through it.
func (s *Store) SearchShardVisits() int64 {
	s.countVisits.Store(true)
	return s.visits.Load()
}

// forEachBounded runs fn for every index on a bounded worker set (the
// internal/core pool idiom): at most GOMAXPROCS calls in flight. With
// one item or no parallelism to exploit it stays inline, so
// single-stripe stores pay no goroutine overhead.
func forEachBounded(n int, fn func(i int)) {
	limit := runtime.GOMAXPROCS(0)
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// streamHead is one shard stream's buffered front post.
type streamHead struct {
	p  *Post
	it *shardIter
}

// streamHeap orders live shard streams by their head post.
type streamHeap []streamHead

func (h streamHeap) Len() int           { return len(h) }
func (h streamHeap) Less(i, j int) bool { return postLess(h[i].p, h[j].p) }
func (h streamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)        { *h = append(*h, x.(streamHead)) }
func (h *streamHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}

// mergeShardStreams k-way merges the per-shard match streams in
// (CreatedAt, ID) order, pulling at most limit posts. Shards partition
// the corpus, so no cross-stream dedup is needed, and a single live
// stream drains directly without the heap.
func mergeShardStreams(iters []*shardIter, limit int) []*Post {
	if limit <= 0 {
		return nil
	}
	h := make(streamHeap, 0, len(iters))
	for _, it := range iters {
		if p := it.next(); p != nil {
			h = append(h, streamHead{p: p, it: it})
		}
	}
	if len(h) == 0 {
		return nil
	}
	if len(h) == 1 {
		out := make([]*Post, 0, limit)
		out = append(out, h[0].p)
		for len(out) < limit {
			p := h[0].it.next()
			if p == nil {
				break
			}
			out = append(out, p)
		}
		return out
	}
	heap.Init(&h)
	out := make([]*Post, 0, limit)
	for len(out) < limit && len(h) > 0 {
		out = append(out, h[0].p)
		if p := h[0].it.next(); p != nil {
			h[0].p = p
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// maxSearchPages bounds SearchAll drains (2000 pages × the 500-post
// ceiling ≈ one million posts); keyset tokens advance strictly, so the
// cap only trips on a backend that emits non-advancing tokens.
const maxSearchPages = 2000

// SearchAll drains every page of a query through any Searcher,
// accumulating all matching posts. It guards against runaway listings
// with a hard cap of maxSearchPages pages. The drain never reads
// TotalMatches, so it sets SkipTotal and filtered drains skip the
// per-page count walk.
func SearchAll(ctx context.Context, s Searcher, q Query) ([]*Post, error) {
	var out []*Post
	q.PageToken = ""
	q.SkipTotal = true
	for pages := 0; ; pages++ {
		if pages >= maxSearchPages {
			return nil, fmt.Errorf("social: pagination exceeded %d pages", maxSearchPages)
		}
		page, err := s.Search(ctx, q)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Posts...)
		if page.NextToken == "" {
			return out, nil
		}
		q.PageToken = page.NextToken
	}
}
