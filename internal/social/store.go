package social

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/psp-framework/psp/internal/nlp"
)

// Query selects posts from a store. All filters combine conjunctively;
// zero-valued filters are inactive.
type Query struct {
	// AnyTags matches posts carrying at least one of these hashtags
	// (normalized, no '#'). Empty means "any post".
	AnyTags []string
	// MustTerms are words or hashtags that must ALL appear in the post
	// text (the paper's target-application filter, e.g. "excavator").
	MustTerms []string
	// Region filters by origin region; empty means all regions.
	Region Region
	// Since/Until bound CreatedAt: Since ≤ t < Until. Zero values are
	// open ends.
	Since, Until time.Time
	// MaxResults caps the page size; 0 means the server default.
	MaxResults int
	// PageToken resumes a paginated listing; empty starts at the top.
	PageToken string
}

// normalizedTags returns the query's tags normalized for index lookup.
func (q Query) normalizedTags() []string {
	out := make([]string, 0, len(q.AnyTags))
	for _, t := range q.AnyTags {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// normalizedMustTerms returns the query's must-terms normalized for
// index lookup.
func (q Query) normalizedMustTerms() []string {
	out := make([]string, 0, len(q.MustTerms))
	for _, t := range q.MustTerms {
		t = nlp.Normalize(strings.TrimPrefix(strings.TrimSpace(t), "#"))
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Canonical returns the query with tags and must-terms normalized and
// sorted and pagination fields cleared — two queries with equal
// canonical forms select the same posts. The canonical form is the cache
// key of the workflow result cache.
func (q Query) Canonical() Query {
	c := Query{
		AnyTags:   q.normalizedTags(),
		MustTerms: q.normalizedMustTerms(),
		Region:    q.Region,
		Since:     q.Since,
		Until:     q.Until,
	}
	sort.Strings(c.AnyTags)
	sort.Strings(c.MustTerms)
	return c
}

// PostProfile is a post with its normalized tag and term sets
// precomputed, so evaluating many queries against the same post (the
// monitoring subsystem's invalidation and dirty-set passes) tokenizes
// it once instead of once per query.
type PostProfile struct {
	post  *Post
	tags  map[string]bool
	terms map[string]bool
}

// ProfilePost tokenizes a post once for repeated query matching.
func ProfilePost(p *Post) *PostProfile {
	tags := make(map[string]bool)
	for _, t := range p.Hashtags() {
		tags[nlp.Normalize(t)] = true
	}
	return &PostProfile{post: p, tags: tags, terms: p.Terms()}
}

// ProfilePosts tokenizes a batch once for repeated query matching.
func ProfilePosts(posts []*Post) []*PostProfile {
	out := make([]*PostProfile, len(posts))
	for i, p := range posts {
		out[i] = ProfilePost(p)
	}
	return out
}

// MatchesPost reports whether the post satisfies every filter of the
// query — the exact predicate Search applies, evaluated against a single
// post without touching a store. The monitoring subsystem uses it to
// decide which cached query results a newly ingested post invalidates.
func (q Query) MatchesPost(p *Post) bool {
	return q.Matcher().Matches(ProfilePost(p))
}

// QueryMatcher is a query compiled for repeated profile matching: tags
// and must-terms are normalized once, so the (query × post) invalidation
// loops of the monitoring subsystem do no per-call normalization.
type QueryMatcher struct {
	region       Region
	since, until time.Time
	tags, must   []string
}

// Matcher compiles the query's filters.
func (q Query) Matcher() QueryMatcher {
	return QueryMatcher{
		region: q.Region,
		since:  q.Since,
		until:  q.Until,
		tags:   q.normalizedTags(),
		must:   q.normalizedMustTerms(),
	}
}

// Matches applies the compiled predicate to a profiled post.
func (m QueryMatcher) Matches(pp *PostProfile) bool {
	p := pp.post
	if m.region != "" && p.Region != m.region {
		return false
	}
	if !m.since.IsZero() && p.CreatedAt.Before(m.since) {
		return false
	}
	if !m.until.IsZero() && !p.CreatedAt.Before(m.until) {
		return false
	}
	if len(m.tags) > 0 {
		hit := false
		for _, t := range m.tags {
			if pp.tags[t] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	for _, t := range m.must {
		if !pp.terms[t] {
			return false
		}
	}
	return true
}

// Page is one page of search results.
type Page struct {
	// Posts are the matching posts in (CreatedAt, ID) order.
	Posts []*Post
	// NextToken resumes the listing; empty when the listing is complete.
	NextToken string
	// TotalMatches is the total number of posts matching the query
	// across all pages.
	TotalMatches int
}

// Searcher is the capability the PSP framework needs from a social
// platform: paginated keyword search. Both the in-process Store and the
// HTTP Client implement it.
//
// Implementations must be safe for concurrent use: the framework's
// social workflow fans queries out across a worker pool, and federated
// search (Multi) drains all backends in parallel goroutines.
type Searcher interface {
	Search(ctx context.Context, q Query) (*Page, error)
}

// Store is an in-memory post store with hashtag, term and time indices.
// It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	posts map[string]*Post
	// byTime, byTag and byTerm all keep their posting lists in
	// (CreatedAt, ID) order, so tag unions k-way merge and term
	// intersections walk postings without any query-time sort.
	byTime []*Post
	byTag  map[string][]*Post
	byTerm map[string][]*Post
	terms  map[string]map[string]bool // post ID → term set (precomputed)

	// subs are the live Watch subscribers; inserted batches are handed
	// to every subscriber inside the insert critical section, so the
	// changefeed neither misses nor duplicates posts relative to a
	// registration-time snapshot.
	subs   map[uint64]*subscriber
	subSeq uint64
}

var _ Searcher = (*Store)(nil)

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		posts:  make(map[string]*Post),
		byTag:  make(map[string][]*Post),
		byTerm: make(map[string][]*Post),
		terms:  make(map[string]map[string]bool),
		subs:   make(map[uint64]*subscriber),
	}
}

// postLess orders posts by (CreatedAt, ID).
func postLess(a, b *Post) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.Before(b.CreatedAt)
	}
	return a.ID < b.ID
}

// Add inserts posts as one batch: validation happens per post, index
// maintenance once per batch (single re-sort instead of a per-post
// insertion sort). Duplicate IDs and invalid posts are rejected; on
// error the store is left unchanged for the offending post but earlier
// posts of the batch stay inserted.
func (s *Store) Add(posts ...*Post) error {
	_, err := s.AddCount(posts...)
	return err
}

// AddCount is Add reporting how many posts of this batch were inserted
// — the count is exact under concurrent writers, unlike diffing Len
// around the call.
func (s *Store) AddCount(posts ...*Post) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	batch := make([]*Post, 0, len(posts))
	for _, p := range posts {
		if p == nil {
			// Guard remote ingest: a JSON array element of null decodes
			// to a nil *Post.
			err = fmt.Errorf("social: nil post")
			break
		}
		if err = p.Validate(); err != nil {
			break
		}
		if _, dup := s.posts[p.ID]; dup {
			err = fmt.Errorf("social: duplicate post ID %s", p.ID)
			break
		}
		s.posts[p.ID] = p
		s.terms[p.ID] = p.Terms()
		batch = append(batch, p)
	}
	s.insertBatchLocked(batch)
	return len(batch), err
}

// insertBatchLocked merges a validated batch into the time, tag and
// term indices with one sort per touched index, then publishes the batch
// to every Watch subscriber.
func (s *Store) insertBatchLocked(batch []*Post) {
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return postLess(batch[i], batch[j]) })
	s.byTime = mergeSorted(s.byTime, batch)

	touchedTags := make(map[string]bool)
	touchedTerms := make(map[string]bool)
	for _, p := range batch {
		// Dedupe per post: a repeated hashtag must contribute one
		// posting, or the post would surface twice in tag queries.
		postTags := make(map[string]bool)
		for _, tag := range p.Hashtags() {
			tag = nlp.Normalize(tag)
			if postTags[tag] {
				continue
			}
			postTags[tag] = true
			s.byTag[tag] = append(s.byTag[tag], p)
			touchedTags[tag] = true
		}
		for term := range s.terms[p.ID] {
			s.byTerm[term] = append(s.byTerm[term], p)
			touchedTerms[term] = true
		}
	}
	for tag := range touchedTags {
		restoreOrder(s.byTag[tag])
	}
	for term := range touchedTerms {
		restoreOrder(s.byTerm[term])
	}
	s.publishLocked(batch)
}

// restoreOrder re-sorts a posting list only when appends broke its
// (CreatedAt, ID) order — the common case of chronological ingest stays
// O(n) verification with no sort.
func restoreOrder(plist []*Post) {
	if !sort.SliceIsSorted(plist, func(i, j int) bool { return postLess(plist[i], plist[j]) }) {
		sort.Slice(plist, func(i, j int) bool { return postLess(plist[i], plist[j]) })
	}
}

// mergeHeap orders posting-list heads by (CreatedAt, ID) for the k-way
// merge of tag unions. Each element is a posting list with a read
// position.
type mergeHeap []mergeSource

type mergeSource struct {
	plist []*Post
	pos   int
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return postLess(h[i].plist[h[i].pos], h[j].plist[h[j].pos])
}
func (h mergeHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)     { *h = append(*h, x.(mergeSource)) }
func (h *mergeHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// mergeKSorted merges k (CreatedAt, ID)-sorted posting lists into one
// sorted, duplicate-free union. Posts carrying several of the queried
// tags appear in multiple lists; equal heads are deduplicated by key
// during the merge, so the union costs O(total postings · log k) with no
// query-time sort.
func mergeKSorted(lists [][]*Post) []*Post {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	h := make(mergeHeap, 0, len(lists))
	total := 0
	for _, plist := range lists {
		total += len(plist)
		h = append(h, mergeSource{plist: plist})
	}
	heap.Init(&h)
	out := make([]*Post, 0, total)
	for h.Len() > 0 {
		src := h[0]
		p := src.plist[src.pos]
		if n := len(out); n == 0 || out[n-1] != p {
			out = append(out, p)
		}
		if src.pos+1 < len(src.plist) {
			h[0].pos++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// mergeSorted merges two (CreatedAt, ID)-sorted slices into one.
func mergeSorted(a, b []*Post) []*Post {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]*Post, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if postLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Len returns the number of stored posts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.posts)
}

// Post returns the post with the given ID, or nil.
func (s *Store) Post(id string) *Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.posts[id]
}

// DefaultPageSize caps pages when the query does not specify MaxResults.
const DefaultPageSize = 100

// MaxPageSize is the hard page-size ceiling, mirroring public API
// limits. Callers draining full listings (the core workflow's platform
// queries) should request it explicitly to minimize page round trips.
const MaxPageSize = 500

// Search runs the query and returns one result page. Continuation uses
// keyset tokens — see EncodeCursor — so a listing drained page by page
// while writers Add posts concurrently never skips or repeats a post
// that was present when the drain started.
func (s *Store) Search(ctx context.Context, q Query) (*Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	matches, err := s.matchLocked(q)
	if err != nil {
		return nil, err
	}
	return PagePosts(matches, q.MaxResults, q.PageToken)
}

// matchLocked evaluates the query filters and returns all matches in
// (CreatedAt, ID) order. Caller holds at least the read lock.
func (s *Store) matchLocked(q Query) ([]*Post, error) {
	tags := q.normalizedTags()
	must := q.normalizedMustTerms()

	// Candidate set: union of tag postings, intersection of term
	// postings, or the full time index, in that preference order. The
	// term-index path already guarantees every candidate carries all
	// must-terms, so the per-post term check below is skipped.
	var candidates []*Post
	termIndexed := false
	switch {
	case len(tags) > 0:
		lists := make([][]*Post, 0, len(tags))
		for _, tag := range tags {
			if plist := s.byTag[tag]; len(plist) > 0 {
				lists = append(lists, plist)
			}
		}
		candidates = mergeKSorted(lists)
	case len(must) > 0:
		candidates = s.intersectTermsLocked(must)
		termIndexed = true
	default:
		candidates = s.byTime
	}

	var out []*Post
	for _, p := range candidates {
		if q.Region != "" && p.Region != q.Region {
			continue
		}
		if !q.Since.IsZero() && p.CreatedAt.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && !p.CreatedAt.Before(q.Until) {
			continue
		}
		if len(must) > 0 && !termIndexed && !s.hasAllTermsLocked(p.ID, must) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// intersectTermsLocked intersects the posting lists of all terms by
// walking the shortest list and membership-testing the rest, so the
// cost is proportional to the rarest term's postings rather than the
// corpus size. The result keeps (CreatedAt, ID) order because posting
// lists are maintained sorted.
func (s *Store) intersectTermsLocked(must []string) []*Post {
	shortest := -1
	for i, m := range must {
		plist, ok := s.byTerm[m]
		if !ok || len(plist) == 0 {
			return nil
		}
		if shortest < 0 || len(plist) < len(s.byTerm[must[shortest]]) {
			shortest = i
		}
	}
	base := s.byTerm[must[shortest]]
	out := make([]*Post, 0, len(base))
	for _, p := range base {
		if s.hasAllTermsLocked(p.ID, must) {
			out = append(out, p)
		}
	}
	return out
}

// hasAllTermsLocked reports whether the post carries every term.
func (s *Store) hasAllTermsLocked(id string, must []string) bool {
	terms := s.terms[id]
	for _, m := range must {
		if !terms[m] {
			return false
		}
	}
	return true
}

// maxSearchPages bounds SearchAll drains (2000 pages × the 500-post
// ceiling ≈ one million posts); keyset tokens advance strictly, so the
// cap only trips on a backend that emits non-advancing tokens.
const maxSearchPages = 2000

// SearchAll drains every page of a query through any Searcher,
// accumulating all matching posts. It guards against runaway listings
// with a hard cap of maxSearchPages pages.
func SearchAll(ctx context.Context, s Searcher, q Query) ([]*Post, error) {
	var out []*Post
	q.PageToken = ""
	for pages := 0; ; pages++ {
		if pages >= maxSearchPages {
			return nil, fmt.Errorf("social: pagination exceeded %d pages", maxSearchPages)
		}
		page, err := s.Search(ctx, q)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Posts...)
		if page.NextToken == "" {
			return out, nil
		}
		q.PageToken = page.NextToken
	}
}
