package social

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestStoreConcurrentAddSearch exercises the documented thread safety:
// concurrent writers and readers over the same store must neither race
// (run with -race) nor observe torn state.
func TestStoreConcurrentAddSearch(t *testing.T) {
	s := NewStore()
	const writers, postsPerWriter, readers = 4, 50, 4

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < postsPerWriter; i++ {
				p := &Post{
					ID:        fmt.Sprintf("w%d-p%d", w, i),
					Author:    fmt.Sprintf("author%d", w),
					Text:      "concurrent #dpfdelete post on my excavator",
					CreatedAt: ts(2022, 1+i%12, 1+i%28),
					Region:    RegionEurope,
					Metrics:   Metrics{Views: 100 + i},
				}
				if err := s.Add(p); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				page, err := s.Search(context.Background(), Query{AnyTags: []string{"dpfdelete"}})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				// Pages observed mid-write must still be internally
				// consistent: sorted and duplicate-free.
				seen := map[string]bool{}
				for j, p := range page.Posts {
					if seen[p.ID] {
						t.Errorf("duplicate %s in concurrent page", p.ID)
						return
					}
					seen[p.ID] = true
					if j > 0 && page.Posts[j-1].CreatedAt.After(p.CreatedAt) {
						t.Error("unsorted concurrent page")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*postsPerWriter {
		t.Errorf("final store size = %d, want %d", s.Len(), writers*postsPerWriter)
	}
}
