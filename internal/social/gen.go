package social

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// VectorKey names an attack-vector phrase family in topic mixes. The sai
// package maps these onto ISO-21434 attack vectors; social stays free of
// a tara dependency.
const (
	VectorKeyPhysical = "physical"
	VectorKeyLocal    = "local"
	VectorKeyAdjacent = "adjacent"
	VectorKeyNetwork  = "network"
)

// TopicSpec describes one attack topic of the synthetic corpus.
type TopicSpec struct {
	// Key identifies the topic ("dpf-delete").
	Key string
	// Tags are the hashtags posts of this topic carry; the first tag is
	// canonical and always present, the rest appear probabilistically.
	Tags []string
	// Applications are the vehicle applications the topic concerns; each
	// post names one ("excavator", "car", ...).
	Applications []string
	// Insider marks owner-approved attack topics; outsider topics use
	// theft-flavoured phrasing.
	Insider bool
	// YearlyVolume is the number of posts per calendar year.
	YearlyVolume map[int]int
	// VectorMix is the probability of each vector phrase family before
	// MixSwitchYear; VectorMixAfter applies from MixSwitchYear onward.
	// Probabilities should sum to 1; they are renormalized defensively.
	VectorMix map[string]float64
	// MixSwitchYear is the first year VectorMixAfter applies; 0 disables
	// the switch.
	MixSwitchYear  int
	VectorMixAfter map[string]float64
	// EngagementScale multiplies the base engagement level — hotter
	// topics draw more views and interactions.
	EngagementScale float64
	// PositiveShare is the fraction of posts with positive phrasing
	// (the rest split between neutral and negative 2:1).
	PositiveShare float64
}

// GeneratorSpec configures a corpus generation run.
type GeneratorSpec struct {
	// Seed drives all randomness; identical specs and seeds produce
	// identical corpora.
	Seed int64
	// Topics are the attack topics to generate.
	Topics []TopicSpec
	// Years bounds the corpus (inclusive). FinalYearMonths limits the
	// last year to its first N months (the paper's corpus ends in spring
	// 2023); 0 means the full year.
	FirstYear, LastYear int
	FinalYearMonths     int
	// RegionWeights sets the sampling distribution over regions; nil
	// uses the default EU-heavy mix.
	RegionWeights map[Region]float64
}

// DefaultRegionWeights returns the default region sampling mix.
func DefaultRegionWeights() map[Region]float64 {
	return map[Region]float64{
		RegionEurope:       0.50,
		RegionNorthAmerica: 0.30,
		RegionAsiaPacific:  0.15,
		RegionOther:        0.05,
	}
}

// phrase families keyed by vector family. The sai vector classifier
// recognizes the bolded method words; families are lexically disjoint.
var vectorPhrases = map[string][]string{
	VectorKeyPhysical: {
		"bench flashed it with a bdm probe",
		"soldered the bypass straight on the board",
		"boot mode pins and a bench harness did it",
		"pulled the unit apart and clamped the eeprom",
		"full teardown, desolder and reflash on the bench",
	},
	VectorKeyLocal: {
		"flashed through the obd port in minutes",
		"plug-in obd dongle, job done",
		"obd2 cable on the stock connector, no teardown",
		"diagnostic port flash from the driver seat",
	},
	VectorKeyAdjacent: {
		"paired over bluetooth from the cab",
		"wifi flasher sitting next to the machine",
		"wireless link bridged from ten meters away",
	},
	VectorKeyNetwork: {
		"remote ota push via the telematics account",
		"cloud reflash service over the sim card",
		"internet remap pushed from their server",
	},
}

// sentiment phrase families for insider topics.
var (
	insiderPositive = []string{
		"huge gains, totally worth it",
		"best money ever spent, awesome power",
		"great savings on fuel, works perfectly",
		"highly recommend, easy install and solid results",
		"unlocked so much torque, love it",
	}
	insiderNeutral = []string{
		"asking for a friend, anyone tried this",
		"looking for advice before i commit",
		"comparing kits, what does the forum think",
	}
	insiderNegative = []string{
		"ended in limp mode, regret everything",
		"got fined at inspection, avoid this seller",
		"bricked the unit, total waste of money",
	}
	outsiderPhrases = []string{
		"gone in under a minute, relay kit straight through the door",
		"stolen off the yard overnight, tracker went dark",
		"they cloned the fob and drove it away",
		"broke the column lock and hotwired the bus line",
	}
)

// Generate builds the corpus described by the spec. Posts come back
// sorted by (CreatedAt, ID) with sequential IDs.
func Generate(spec GeneratorSpec) ([]*Post, error) {
	if spec.FirstYear == 0 || spec.LastYear == 0 || spec.LastYear < spec.FirstYear {
		return nil, fmt.Errorf("social: invalid year range %d..%d", spec.FirstYear, spec.LastYear)
	}
	if len(spec.Topics) == 0 {
		return nil, fmt.Errorf("social: no topics to generate")
	}
	regions := spec.RegionWeights
	if regions == nil {
		regions = DefaultRegionWeights()
	}
	regionKeys, regionCum, err := cumulative(regions)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var posts []*Post
	id := 0
	for _, topic := range spec.Topics {
		if err := validateTopic(topic); err != nil {
			return nil, err
		}
		for year := spec.FirstYear; year <= spec.LastYear; year++ {
			n := topic.YearlyVolume[year]
			mix := topic.VectorMix
			if topic.MixSwitchYear != 0 && year >= topic.MixSwitchYear && topic.VectorMixAfter != nil {
				mix = topic.VectorMixAfter
			}
			mixKeys, mixCum, err := cumulative(mix)
			if err != nil {
				return nil, fmt.Errorf("social: topic %s year %d: %w", topic.Key, year, err)
			}
			months := 12
			if year == spec.LastYear && spec.FinalYearMonths > 0 {
				months = spec.FinalYearMonths
			}
			for i := 0; i < n; i++ {
				id++
				posts = append(posts, synthPost(rng, id, topic, year, months,
					mixKeys, mixCum, regionKeys, regionCum))
			}
		}
	}
	sort.Slice(posts, func(i, j int) bool {
		if !posts[i].CreatedAt.Equal(posts[j].CreatedAt) {
			return posts[i].CreatedAt.Before(posts[j].CreatedAt)
		}
		return posts[i].ID < posts[j].ID
	})
	return posts, nil
}

func validateTopic(t TopicSpec) error {
	if t.Key == "" || len(t.Tags) == 0 || len(t.Applications) == 0 {
		return fmt.Errorf("social: topic %q: missing key, tags or applications", t.Key)
	}
	if len(t.VectorMix) == 0 {
		return fmt.Errorf("social: topic %s: empty vector mix", t.Key)
	}
	for k := range t.VectorMix {
		if _, ok := vectorPhrases[k]; !ok {
			return fmt.Errorf("social: topic %s: unknown vector key %q", t.Key, k)
		}
	}
	for k := range t.VectorMixAfter {
		if _, ok := vectorPhrases[k]; !ok {
			return fmt.Errorf("social: topic %s: unknown vector key %q", t.Key, k)
		}
	}
	return nil
}

// cumulative converts a weight map into parallel (keys, cumulative
// probabilities) slices, sorted by key for determinism.
func cumulative[K ~string](weights map[K]float64) ([]K, []float64, error) {
	keys := make([]K, 0, len(weights))
	var total float64
	for k, w := range weights {
		if w < 0 {
			return nil, nil, fmt.Errorf("social: negative weight for %q", string(k))
		}
		keys = append(keys, k)
		total += w
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("social: weights sum to zero")
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cum := make([]float64, len(keys))
	acc := 0.0
	for i, k := range keys {
		acc += weights[k] / total
		cum[i] = acc
	}
	return keys, cum, nil
}

func pick[K ~string](rng *rand.Rand, keys []K, cum []float64) K {
	r := rng.Float64()
	for i, c := range cum {
		if r <= c {
			return keys[i]
		}
	}
	return keys[len(keys)-1]
}

func synthPost(rng *rand.Rand, id int, topic TopicSpec, year, months int,
	mixKeys []string, mixCum []float64, regionKeys []Region, regionCum []float64) *Post {

	vectorKey := pick(rng, mixKeys, mixCum)
	app := topic.Applications[rng.Intn(len(topic.Applications))]
	region := pick(rng, regionKeys, regionCum)

	// Body: sentiment phrase + method phrase + application + tags.
	var body string
	if topic.Insider {
		r := rng.Float64()
		switch {
		case r < topic.PositiveShare:
			body = insiderPositive[rng.Intn(len(insiderPositive))]
		case r < topic.PositiveShare+(1-topic.PositiveShare)*2/3:
			body = insiderNeutral[rng.Intn(len(insiderNeutral))]
		default:
			body = insiderNegative[rng.Intn(len(insiderNegative))]
		}
	} else {
		body = outsiderPhrases[rng.Intn(len(outsiderPhrases))]
	}
	method := vectorPhrases[vectorKey][rng.Intn(len(vectorPhrases[vectorKey]))]
	text := fmt.Sprintf("%s — %s on my %s", body, method, app)
	// One primary tag chosen at random (posts tagged only with a variant
	// are the coverage gap the keyword learner exists to close), plus
	// secondary tags with 40% probability each.
	primary := rng.Intn(len(topic.Tags))
	text += " #" + topic.Tags[primary]
	for i, tag := range topic.Tags {
		if i != primary && rng.Float64() < 0.4 {
			text += " #" + tag
		}
	}

	// Timestamp: uniform over the allowed months of the year.
	start := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, months, 0)
	span := end.Sub(start)
	created := start.Add(time.Duration(rng.Int63n(int64(span))))

	// Engagement: log-normal views, interaction rates proportional to
	// views. Scales are engagement-topic dependent but vector-independent
	// so vector shares remain unbiased.
	scale := topic.EngagementScale
	if scale <= 0 {
		scale = 1
	}
	views := int(400 * scale * math.Exp(rng.NormFloat64()*0.9))
	if views < 10 {
		views = 10
	}
	likes := int(float64(views) * (0.015 + 0.03*rng.Float64()))
	reposts := int(float64(views) * (0.002 + 0.008*rng.Float64()))
	replies := int(float64(views) * (0.001 + 0.01*rng.Float64()))

	return &Post{
		ID:        fmt.Sprintf("p%06d", id),
		Author:    fmt.Sprintf("user%04d", rng.Intn(5000)),
		Text:      text,
		CreatedAt: created,
		Region:    region,
		Metrics:   Metrics{Views: views, Likes: likes, Reposts: reposts, Replies: replies},
	}
}
