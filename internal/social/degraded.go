package social

import (
	"errors"
	"fmt"
	"time"
)

// ErrDegraded is the sentinel matched (errors.Is) by the typed error
// ingest returns while the store is in read-only degraded mode: the
// write-ahead log failed persistently (a write or fsync error — the
// log's sticky failure state), so accepting new posts would break the
// acknowledged-means-durable contract. Reads — Search, Post, Len, the
// changefeed — keep serving the committed snapshots untouched.
// Degraded mode is sticky for the process lifetime, like the WAL error
// beneath it: recovery is a restart, which replays the durable truth.
var ErrDegraded = errors.New("social: store degraded (read-only)")

// DegradedError is the typed error carrying when and why the store
// went read-only. errors.Is(err, ErrDegraded) matches it.
type DegradedError struct {
	// Cause is the WAL failure that triggered degradation.
	Cause error
	// Since is when the store entered degraded mode.
	Since time.Time
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("social: store degraded (read-only) since %s: %v",
		e.Since.Format(time.RFC3339), e.Cause)
}

// Unwrap exposes the WAL failure for errors.Is/As chains.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Is matches the ErrDegraded sentinel.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Degraded returns the store's degradation state: nil when healthy, the
// *DegradedError when the WAL has failed and ingest is refused. The
// readiness gate, health detail and the psp_store_degraded gauge all
// read it.
func (s *Store) Degraded() error {
	if de := s.degraded.Load(); de != nil {
		return de
	}
	return nil
}

// markDegraded flips the store read-only (first caller wins; the cause
// of the first WAL failure is the one reported).
func (s *Store) markDegraded(cause error) {
	s.degraded.CompareAndSwap(nil, &DegradedError{Cause: cause, Since: time.Now()})
}
