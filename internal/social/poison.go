package social

import (
	"fmt"
	"math/rand"
	"time"
)

// PoisonCampaign describes a data-poisoning attempt against the PSP
// pipeline: a small set of bot handles pushing one hashtag with
// duplicated text and bought views, aiming to inflate a topic's Social
// Attraction Index. The paper's roadmap motivates defending against
// exactly this.
type PoisonCampaign struct {
	// Seed drives the bot randomness.
	Seed int64
	// Tag is the hashtag being pushed (without '#').
	Tag string
	// Application is the vehicle application named in the bot text.
	Application string
	// Region is the claimed origin region.
	Region Region
	// Posts is the campaign volume.
	Posts int
	// Authors is the number of bot handles (small by construction).
	Authors int
	// Start/End bound the posting window.
	Start, End time.Time
	// Views is the inflated per-post view count; interactions stay near
	// zero, the signature of bought reach.
	Views int
}

// Validate checks the campaign parameters.
func (c PoisonCampaign) Validate() error {
	if c.Tag == "" || c.Application == "" {
		return fmt.Errorf("social: poison campaign needs tag and application")
	}
	if c.Posts < 1 || c.Authors < 1 || c.Views < 1 {
		return fmt.Errorf("social: poison campaign needs positive posts/authors/views")
	}
	if c.Start.IsZero() || !c.End.After(c.Start) {
		return fmt.Errorf("social: poison campaign needs a valid window")
	}
	return nil
}

// InjectPoison generates the campaign's bot posts. IDs are prefixed
// "poison-" so they cannot collide with generated corpus IDs.
func InjectPoison(c PoisonCampaign) ([]*Post, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	span := c.End.Sub(c.Start)
	text := fmt.Sprintf(
		"unbelievable results, everyone needs this on their %s right now #%s",
		c.Application, c.Tag)
	posts := make([]*Post, 0, c.Posts)
	for i := 0; i < c.Posts; i++ {
		posts = append(posts, &Post{
			ID:        fmt.Sprintf("poison-%05d", i),
			Author:    fmt.Sprintf("bot%03d", rng.Intn(c.Authors)),
			Text:      text,
			CreatedAt: c.Start.Add(time.Duration(rng.Int63n(int64(span)))),
			Region:    c.Region,
			Metrics: Metrics{
				Views: c.Views + rng.Intn(c.Views/10+1),
				// A token interaction or two: bots are not literally
				// zero-engagement, just far below organic rates.
				Likes: rng.Intn(2),
			},
		})
	}
	return posts, nil
}
