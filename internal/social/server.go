package social

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Server exposes a store over an HTTP JSON API shaped like the public
// search APIs the paper's prototype consumed:
//
//	GET /v2/search?tags=a,b&must=x,y&region=EU&since=RFC3339&until=RFC3339&max_results=100&next_token=...&skip_total=1
//	GET /v2/healthz
//
// Responses carry {"data": [...], "meta": {"result_count", "total_matches",
// "next_token"}}. max_results defaults to DefaultPageSize (100) and is
// clamped to MaxPageSize (500); next_token carries an opaque keyset
// cursor that stays valid while posts are ingested concurrently.
// skip_total=1 declares the caller does not need meta.total_matches
// (reported as 0), making filtered pages fully O(page) server-side.
// Rate-limited requests receive 429 with a Retry-After header.
type Server struct {
	store   *Store
	limiter *RateLimiter
}

// NewServer wraps a store. limiter may be nil to disable rate limiting.
func NewServer(store *Store, limiter *RateLimiter) *Server {
	return &Server{store: store, limiter: limiter}
}

// Handler returns the HTTP handler implementing the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/search", s.handleSearch)
	mux.HandleFunc("/v2/healthz", s.handleHealth)
	return mux
}

// searchResponse is the wire format of /v2/search.
type searchResponse struct {
	Data []*Post        `json:"data"`
	Meta searchMetadata `json:"meta"`
}

type searchMetadata struct {
	ResultCount  int    `json:"result_count"`
	TotalMatches int    `json:"total_matches"`
	NextToken    string `json:"next_token,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","posts":%d}`, s.store.Len())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.Allow(); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds()+1)))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
	}
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	page, err := s.store.Search(r.Context(), q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(searchResponse{
		Data: page.Posts,
		Meta: searchMetadata{
			ResultCount:  len(page.Posts),
			TotalMatches: page.TotalMatches,
			NextToken:    page.NextToken,
		},
	})
}

func parseQuery(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{
		AnyTags:   splitList(v.Get("tags")),
		MustTerms: splitList(v.Get("must")),
		Region:    Region(v.Get("region")),
		PageToken: v.Get("next_token"),
	}
	if raw := v.Get("skip_total"); raw != "" {
		skip, err := strconv.ParseBool(raw)
		if err != nil {
			return Query{}, fmt.Errorf("invalid skip_total %q", raw)
		}
		q.SkipTotal = skip
	}
	if raw := v.Get("since"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return Query{}, fmt.Errorf("invalid since %q: %w", raw, err)
		}
		q.Since = t
	}
	if raw := v.Get("until"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return Query{}, fmt.Errorf("invalid until %q: %w", raw, err)
		}
		q.Until = t
	}
	if raw := v.Get("max_results"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return Query{}, fmt.Errorf("invalid max_results %q", raw)
		}
		// Clamp to the public ceiling at the API edge, mirroring the
		// behaviour of the platform APIs this server stands in for: an
		// oversized request is served the maximum page, not an error.
		if n > MaxPageSize {
			n = MaxPageSize
		}
		q.MaxResults = n
	}
	return q, nil
}

func splitList(raw string) []string {
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
