package social

import (
	"context"
	"sort"
	"sync"
)

// WatchOptions configures a Store changefeed subscription.
type WatchOptions struct {
	// After resumes the feed from a keyset position: stored posts with
	// keys strictly after the cursor are replayed first, in
	// (CreatedAt, ID) order, before live batches. Nil skips replay and
	// delivers only posts added after the subscription (the zero Cursor
	// replays the whole store).
	After *Cursor
	// Buffer is the delivery channel capacity in batches (default 16).
	Buffer int
}

// subscriber is one live changefeed consumer. Inserted batches are
// queued under the subscriber's own lock inside the store's insert
// critical section; a dedicated goroutine drains the queue into the
// delivery channel so slow consumers never block writers.
type subscriber struct {
	mu      sync.Mutex
	pending []*Post
	notify  chan struct{} // capacity 1: at-least-once wake-up signal
}

func (sub *subscriber) enqueue(posts []*Post) {
	sub.mu.Lock()
	sub.pending = append(sub.pending, posts...)
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// publishLocked hands an inserted batch (already (CreatedAt, ID)-sorted)
// to every subscriber. Caller holds the store write lock, so delivery
// order equals insertion order and registration snapshots stay
// gap-free.
func (s *Store) publishLocked(batch []*Post) {
	for _, sub := range s.subs {
		sub.enqueue(batch)
	}
}

// Watch subscribes to the store's changefeed: every batch of posts
// accepted by Add after the subscription is delivered exactly once, in
// insertion order, with posts inside a batch in (CreatedAt, ID) order.
// With Options.After set, stored posts after the cursor are replayed
// ahead of live traffic; the replay snapshot and the live subscription
// are taken atomically, so no post is missed or duplicated even under
// concurrent Add.
//
// The returned channel is closed when ctx is cancelled. Pending batches
// queue in memory without bound while the consumer lags; consume
// promptly or cancel the subscription.
func (s *Store) Watch(ctx context.Context, opts WatchOptions) <-chan []*Post {
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	out := make(chan []*Post, buffer)
	sub := &subscriber{notify: make(chan struct{}, 1)}

	s.mu.Lock()
	if opts.After != nil {
		c := *opts.After
		i := sort.Search(len(s.byTime), func(i int) bool { return c.Before(s.byTime[i]) })
		if i < len(s.byTime) {
			sub.pending = append(sub.pending, s.byTime[i:]...)
		}
	}
	id := s.subSeq
	s.subSeq++
	s.subs[id] = sub
	s.mu.Unlock()

	// Unconditional non-blocking kick: concurrent Adds may already have
	// filled the capacity-1 notify channel (and appended to pending), so
	// neither block on it nor inspect pending without its lock. A
	// spurious wake-up on an empty queue is harmless.
	select {
	case sub.notify <- struct{}{}:
	default:
	}
	go s.deliver(ctx, id, sub, out)
	return out
}

// deliver drains one subscriber's queue into its channel until the
// subscription context ends.
func (s *Store) deliver(ctx context.Context, id uint64, sub *subscriber, out chan<- []*Post) {
	defer func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
		close(out)
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.notify:
		}
		for {
			sub.mu.Lock()
			batch := sub.pending
			sub.pending = nil
			sub.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			select {
			case out <- batch:
			case <-ctx.Done():
				return
			}
		}
	}
}
