package social

import (
	"context"
	"sort"
	"sync"
)

// WatchOptions configures a Store changefeed subscription.
type WatchOptions struct {
	// After resumes the feed from a keyset position: stored posts with
	// keys strictly after the cursor are replayed first, in
	// (CreatedAt, ID) order, before live batches. Nil skips replay and
	// delivers only posts added after the subscription (the zero Cursor
	// replays the whole store).
	After *Cursor
	// Buffer is the delivery channel capacity in batches (default 16).
	Buffer int
}

// subscriber is one live changefeed consumer. Inserted batches are
// queued under the subscriber's own lock inside the store's insert
// critical section; a dedicated goroutine drains the queue into the
// delivery channel so slow consumers never block writers.
type subscriber struct {
	mu      sync.Mutex
	pending []*Post
	notify  chan struct{} // capacity 1: at-least-once wake-up signal
}

// subscriberSet is the immutable subscriber registry: publication loads
// it atomically and never mutates it; Watch and delivery teardown
// replace it copy-on-write under the store's submu. seq is the ID the
// next registration takes.
type subscriberSet struct {
	subs map[uint64]*subscriber
	seq  uint64
}

// withSub returns a copy of the set with one subscriber added, plus the
// ID it was registered under.
func (set *subscriberSet) withSub(sub *subscriber) (*subscriberSet, uint64) {
	next := &subscriberSet{subs: make(map[uint64]*subscriber, len(set.subs)+1), seq: set.seq + 1}
	for id, s := range set.subs {
		next.subs[id] = s
	}
	next.subs[set.seq] = sub
	return next, set.seq
}

// withoutSub returns a copy of the set with one subscriber removed.
func (set *subscriberSet) withoutSub(id uint64) *subscriberSet {
	next := &subscriberSet{subs: make(map[uint64]*subscriber, len(set.subs)), seq: set.seq}
	for sid, s := range set.subs {
		if sid != id {
			next.subs[sid] = s
		}
	}
	return next
}

func (sub *subscriber) enqueue(posts []*Post) {
	sub.mu.Lock()
	sub.pending = append(sub.pending, posts...)
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// publishSequenced hands an inserted batch (already (CreatedAt, ID)-
// sorted) to every subscriber. The caller still holds the batch's shard
// writer locks — its snapshot swaps are already visible to lock-free
// readers, i.e. the batch is post-commit — so relative to any Watch
// registration, which holds every shard writer lock while it snapshots
// and registers, the commit and its publication are one atomic event:
// registration snapshots stay gap- and overlap-free.
//
// The subscriber set is read with one atomic load, no store-level lock:
// a batch acquiring its shard locks after a registration released them
// observes the new set (the lock hand-off orders the pointer load), and
// a batch that published before the registration window is fully inside
// the registration's replay snapshot. Between batches the only ordering
// left is the shard locks themselves — batches with overlapping stripe
// sets deliver in commit order, batches on disjoint stripe sets may
// interleave differently per subscriber (they carry disjoint time
// buckets, so any (CreatedAt, ID)-merging consumer is unaffected).
func (s *Store) publishSequenced(batch []*Post) {
	for _, sub := range s.subs.Load().subs {
		sub.enqueue(batch)
	}
	if m := s.met.Load(); m != nil {
		m.FeedBatches.Inc()
		m.FeedPosts.Add(uint64(len(batch)))
	}
}

// ChangefeedBacklog sums the posts queued for delivery across all live
// subscribers — the publish-to-consume lag signal. A batch delivered
// to N subscribers counts once per subscriber still holding it.
func (s *Store) ChangefeedBacklog() int {
	total := 0
	for _, sub := range s.subs.Load().subs {
		sub.mu.Lock()
		total += len(sub.pending)
		sub.mu.Unlock()
	}
	return total
}

// mergeOwned k-way merges sorted, disjoint posting-list suffixes into
// one slice the caller owns. (mergeKSorted's single-list fast path
// returns an alias into snapshot memory; snapshots are immutable, so
// aliasing is safe, but the subscriber queue appends to its pending
// slice and must own the backing array — hence the explicit copy.)
func mergeOwned(lists [][]*Post) []*Post {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		return append([]*Post(nil), lists[0]...)
	}
	return mergeKSorted(lists)
}

// Watch subscribes to the store's changefeed: every batch of posts
// accepted by Add after the subscription is delivered exactly once,
// with posts inside a batch in (CreatedAt, ID) order. Batches whose
// stripe sets overlap are delivered in commit order; concurrent batches
// on disjoint stripe sets carry disjoint time buckets and may
// interleave differently per subscriber. With Options.After set, stored
// posts after the cursor are replayed ahead of live traffic; the replay
// snapshot and the live subscription are taken atomically, so no post
// is missed or duplicated even under concurrent Add.
//
// The returned channel is closed when ctx is cancelled. Pending batches
// queue in memory without bound while the consumer lags; consume
// promptly or cancel the subscription.
func (s *Store) Watch(ctx context.Context, opts WatchOptions) <-chan []*Post {
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	out := make(chan []*Post, buffer)
	sub := &subscriber{notify: make(chan struct{}, 1)}

	// Atomic snapshot + registration across all stripes: hold every
	// shard writer lock (ascending, the store's lock order) while
	// snapshotting and publishing the enlarged subscriber set. Lock-free
	// readers are untouched, but no commit can land inside this window.
	// Because Add publishes while still holding its shard writer locks —
	// after its snapshot swaps — any batch either committed before this
	// window (its posts are in the replayed snapshots and it loaded a
	// subscriber set without this subscriber) or starts after it (it
	// observes the new set and reaches this subscriber live) — never
	// both, at any shard count.
	s.lockWriters()
	if opts.After != nil {
		c := *opts.After
		var suffixes [][]*Post
		for _, sh := range s.shards {
			for _, plist := range sh.view().genLists(nil, func(g *shardGen) []*Post { return g.byTime }) {
				i := sort.Search(len(plist), func(i int) bool { return c.Before(plist[i]) })
				if i < len(plist) {
					suffixes = append(suffixes, plist[i:])
				}
			}
		}
		sub.pending = mergeOwned(suffixes)
	}
	s.submu.Lock()
	next, id := s.subs.Load().withSub(sub)
	s.subs.Store(next)
	s.submu.Unlock()
	s.unlockWriters()

	// Unconditional non-blocking kick: concurrent Adds may already have
	// filled the capacity-1 notify channel (and appended to pending), so
	// neither block on it nor inspect pending without its lock. A
	// spurious wake-up on an empty queue is harmless.
	select {
	case sub.notify <- struct{}{}:
	default:
	}
	go s.deliver(ctx, id, sub, out)
	return out
}

// deliver drains one subscriber's queue into its channel until the
// subscription context ends.
func (s *Store) deliver(ctx context.Context, id uint64, sub *subscriber, out chan<- []*Post) {
	defer func() {
		s.submu.Lock()
		s.subs.Store(s.subs.Load().withoutSub(id))
		s.submu.Unlock()
		close(out)
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.notify:
		}
		for {
			sub.mu.Lock()
			batch := sub.pending
			sub.pending = nil
			sub.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			select {
			case out <- batch:
			case <-ctx.Done():
				return
			}
		}
	}
}
