package social

import (
	"context"
	"sort"
	"sync"
)

// WatchOptions configures a Store changefeed subscription.
type WatchOptions struct {
	// After resumes the feed from a keyset position: stored posts with
	// keys strictly after the cursor are replayed first, in
	// (CreatedAt, ID) order, before live batches. Nil skips replay and
	// delivers only posts added after the subscription (the zero Cursor
	// replays the whole store).
	After *Cursor
	// Buffer is the delivery channel capacity in batches (default 16).
	Buffer int
}

// subscriber is one live changefeed consumer. Inserted batches are
// queued under the subscriber's own lock inside the store's insert
// critical section; a dedicated goroutine drains the queue into the
// delivery channel so slow consumers never block writers.
type subscriber struct {
	mu      sync.Mutex
	pending []*Post
	notify  chan struct{} // capacity 1: at-least-once wake-up signal
}

func (sub *subscriber) enqueue(posts []*Post) {
	sub.mu.Lock()
	sub.pending = append(sub.pending, posts...)
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// publishSequenced hands an inserted batch (already (CreatedAt, ID)-
// sorted) to every subscriber under the store-level sequencer. The
// caller still holds the batch's shard writer locks — its snapshot
// swaps are already visible to lock-free readers, i.e. the batch is
// post-commit — so relative to any Watch registration, which holds
// every shard writer lock while it snapshots and registers, the commit
// and its publication are one atomic event: delivery order equals
// commit order across all shards, and registration snapshots stay gap-
// and overlap-free.
func (s *Store) publishSequenced(batch []*Post) {
	s.wmu.Lock()
	for _, sub := range s.subs {
		sub.enqueue(batch)
	}
	s.wmu.Unlock()
}

// mergeOwned k-way merges sorted, disjoint posting-list suffixes into
// one slice the caller owns. (mergeKSorted's single-list fast path
// returns an alias into snapshot memory; snapshots are immutable, so
// aliasing is safe, but the subscriber queue appends to its pending
// slice and must own the backing array — hence the explicit copy.)
func mergeOwned(lists [][]*Post) []*Post {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		return append([]*Post(nil), lists[0]...)
	}
	return mergeKSorted(lists)
}

// Watch subscribes to the store's changefeed: every batch of posts
// accepted by Add after the subscription is delivered exactly once, in
// insertion order, with posts inside a batch in (CreatedAt, ID) order.
// With Options.After set, stored posts after the cursor are replayed
// ahead of live traffic; the replay snapshot and the live subscription
// are taken atomically, so no post is missed or duplicated even under
// concurrent Add.
//
// The returned channel is closed when ctx is cancelled. Pending batches
// queue in memory without bound while the consumer lags; consume
// promptly or cancel the subscription.
func (s *Store) Watch(ctx context.Context, opts WatchOptions) <-chan []*Post {
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	out := make(chan []*Post, buffer)
	sub := &subscriber{notify: make(chan struct{}, 1)}

	// Atomic snapshot + registration across all stripes: hold every
	// shard writer lock (ascending, the store's lock order) plus the
	// changefeed sequencer. Lock-free readers are untouched, but no
	// commit can land inside this window. Because Add publishes while
	// still holding its shard writer locks — after its snapshot swaps —
	// any batch either committed before this window (its posts are in
	// the replayed snapshots and it was published only to earlier
	// subscribers) or starts after it (it reaches this subscriber live)
	// — never both, at any shard count.
	s.lockWriters()
	s.wmu.Lock()
	if opts.After != nil {
		c := *opts.After
		var suffixes [][]*Post
		for _, sh := range s.shards {
			for _, plist := range sh.view().genLists(nil, func(g *shardGen) []*Post { return g.byTime }) {
				i := sort.Search(len(plist), func(i int) bool { return c.Before(plist[i]) })
				if i < len(plist) {
					suffixes = append(suffixes, plist[i:])
				}
			}
		}
		sub.pending = mergeOwned(suffixes)
	}
	id := s.subSeq
	s.subSeq++
	s.subs[id] = sub
	s.wmu.Unlock()
	s.unlockWriters()

	// Unconditional non-blocking kick: concurrent Adds may already have
	// filled the capacity-1 notify channel (and appended to pending), so
	// neither block on it nor inspect pending without its lock. A
	// spurious wake-up on an empty queue is harmless.
	select {
	case sub.notify <- struct{}{}:
	default:
	}
	go s.deliver(ctx, id, sub, out)
	return out
}

// deliver drains one subscriber's queue into its channel until the
// subscription context ends.
func (s *Store) deliver(ctx context.Context, id uint64, sub *subscriber, out chan<- []*Post) {
	defer func() {
		s.wmu.Lock()
		delete(s.subs, id)
		s.wmu.Unlock()
		close(out)
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.notify:
		}
		for {
			sub.mu.Lock()
			batch := sub.pending
			sub.pending = nil
			sub.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			select {
			case out <- batch:
			case <-ctx.Done():
				return
			}
		}
	}
}
